"""Shared fixtures: tiny lakes and fitted engines, built once per session."""

from __future__ import annotations

import pytest

from repro.core.system import CMDL, CMDLConfig
from repro.lakes.mlopen import MLOpenLakeConfig, generate_mlopen_lake
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.ukopen import UKOpenLakeConfig, generate_ukopen_lake
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table

TINY_PHARMA = PharmaLakeConfig(
    num_drugs=40,
    num_enzymes=20,
    num_documents=40,
    noise_documents=8,
    interactions_rows=60,
    targets_rows=50,
    chembl_compounds=40,
    chebi_compounds=24,
    union_derived_per_base=2,
    seed=0,
)

TINY_UKOPEN = UKOpenLakeConfig(
    num_families=5,
    tables_per_family=3,
    rows_per_table=30,
    num_places=80,
    num_documents=50,
    noise_documents=8,
    seed=0,
)

TINY_MLOPEN = MLOpenLakeConfig(
    ss_tables=6,
    ss_rows=20,
    ms_tables=8,
    ms_rows=30,
    ls_tables=6,
    ls_rows=60,
    num_reviews=40,
    noise_reviews=8,
    seed=0,
)


@pytest.fixture(scope="session")
def pharma_generated():
    return generate_pharma_lake(TINY_PHARMA)


@pytest.fixture(scope="session")
def ukopen_generated():
    return generate_ukopen_lake(TINY_UKOPEN)


@pytest.fixture(scope="session")
def mlopen_generated():
    return generate_mlopen_lake(TINY_MLOPEN)


@pytest.fixture(scope="session")
def pharma_lake(pharma_generated):
    return pharma_generated.lake


@pytest.fixture(scope="session")
def fitted_cmdl(pharma_lake):
    """A CMDL instance fitted on the tiny pharma lake (joint model included)."""
    cmdl = CMDL(CMDLConfig(sample_fraction=0.4, max_epochs=25, seed=0))
    cmdl.fit(pharma_lake)
    return cmdl


@pytest.fixture(scope="session")
def engine(fitted_cmdl):
    return fitted_cmdl.engine


@pytest.fixture(scope="session")
def ukopen_engine(ukopen_generated):
    """UK-Open engine without joint training (fast; solo/structured paths)."""
    return CMDL(CMDLConfig(use_joint=False, seed=0)).fit(ukopen_generated.lake)


@pytest.fixture(scope="session")
def mlopen_engine(mlopen_generated):
    """ML-Open engine without joint training (fast; solo/structured paths)."""
    return CMDL(CMDLConfig(use_joint=False, seed=0)).fit(mlopen_generated.lake)


@pytest.fixture()
def toy_lake() -> DataLake:
    """A handcrafted 3-table, 3-document lake with obvious relationships."""
    lake = DataLake(name="toy")
    lake.add_table(Table.from_dict(
        "drugs",
        {
            "drug_id": ["D1", "D2", "D3", "D4"],
            "name": ["aspirin", "ibuprofen", "codeine", "morphine"],
            "year": ["1999", "2001", "2005", "2010"],
        },
    ))
    lake.add_table(Table.from_dict(
        "targets",
        {
            "target_id": ["T1", "T2", "T3"],
            "drug_ref": ["D1", "D2", "D2"],
            "protein": ["cox synthase", "cox reductase", "mu receptor"],
        },
    ))
    lake.add_table(Table.from_dict(
        "cities",
        {
            "city": ["london", "paris", "berlin", "madrid"],
            "population": ["8.9", "2.1", "3.6", "3.2"],
        },
    ))
    lake.add_document(Document(
        doc_id="doc:aspirin",
        title="Aspirin and cox synthase",
        text="Aspirin inhibits cox synthase and reduces inflammation.",
    ))
    lake.add_document(Document(
        doc_id="doc:ibuprofen",
        title="Ibuprofen study",
        text="Ibuprofen targets cox reductase in chronic inflammation.",
    ))
    lake.add_document(Document(
        doc_id="doc:city",
        title="Urban growth",
        text="The population of london and berlin keeps growing.",
    ))
    return lake
