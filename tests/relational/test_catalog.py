"""Tests for DataLake and Document."""

import pytest

from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table


@pytest.fixture()
def lake() -> DataLake:
    lake = DataLake("test")
    lake.add_table(Table.from_dict("t1", {"a": ["1", "2"], "b": ["x", "y"]}))
    lake.add_table(Table.from_dict("t2", {"c": ["p", "q"]}))
    lake.add_document(Document("d1", "Title one", "Some text here."))
    return lake


class TestDataLake:
    def test_counts(self, lake):
        assert lake.num_tables == 2
        assert lake.num_columns == 3
        assert lake.num_documents == 1

    def test_duplicate_table_rejected(self, lake):
        with pytest.raises(ValueError, match="duplicate"):
            lake.add_table(Table.from_dict("t1", {"z": ["0", "0"]}))

    def test_duplicate_document_rejected(self, lake):
        with pytest.raises(ValueError, match="duplicate"):
            lake.add_document(Document("d1", "t", "x"))

    def test_missing_table_raises(self, lake):
        with pytest.raises(KeyError, match="no table"):
            lake.table("nope")

    def test_missing_document_raises(self, lake):
        with pytest.raises(KeyError, match="no document"):
            lake.document("nope")

    def test_column_by_qualified_name(self, lake):
        col = lake.column("t1.a")
        assert col.values == ["1", "2"]

    def test_numeric_fraction(self, lake):
        # 'a' is numeric out of 3 columns.
        assert lake.numeric_fraction() == pytest.approx(1 / 3)

    def test_numeric_fraction_empty_lake(self):
        assert DataLake().numeric_fraction() == 0.0

    def test_add_documents_bulk(self, lake):
        lake.add_documents([Document("d2", "t", "x"), Document("d3", "t", "y")])
        assert lake.num_documents == 3

    def test_repr(self, lake):
        assert "tables=2" in repr(lake)


class TestDocumentSplitting:
    def test_short_document_unsplit(self):
        d = Document("d", "t", "One. Two. Three.")
        assert d.split_long(max_sentences=6) == [d]

    def test_long_document_split(self):
        text = " ".join(f"Sentence number {i}." for i in range(14))
        parts = Document("d", "t", text).split_long(max_sentences=6)
        assert len(parts) == 3
        assert parts[0].doc_id == "d#p0"
        assert parts[2].doc_id == "d#p2"

    def test_split_preserves_metadata(self):
        text = " ".join(f"S {i}." for i in range(10))
        d = Document("d", "t", text, source="src", metadata={"k": "v"})
        parts = d.split_long(max_sentences=4)
        assert all(p.source == "src" and p.metadata == {"k": "v"} for p in parts)
