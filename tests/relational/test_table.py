"""Tests for Column and Table."""

import pytest

from repro.relational.table import Column, Table
from repro.relational.types import ColumnType


@pytest.fixture()
def drugs_table() -> Table:
    return Table.from_dict(
        "drugs",
        {
            "drug_id": ["D1", "D2", "D3", "D3"],
            "name": ["aspirin", "ibuprofen", "codeine", "codeine"],
            "dose": ["10", "20", "", "30"],
        },
    )


class TestColumn:
    def test_qualified_name(self, drugs_table):
        assert drugs_table.column("name").qualified_name == "drugs.name"

    def test_distinct_and_cardinality(self, drugs_table):
        col = drugs_table.column("drug_id")
        assert col.distinct_values == {"D1", "D2", "D3"}
        assert col.cardinality == 3

    def test_non_missing_skips_empties(self, drugs_table):
        assert drugs_table.column("dose").non_missing == ["10", "20", "30"]

    def test_uniqueness(self, drugs_table):
        assert drugs_table.column("drug_id").uniqueness == 0.75
        assert drugs_table.column("dose").uniqueness == 1.0

    def test_uniqueness_empty(self):
        assert Column("c", ["", "NA"]).uniqueness == 0.0

    def test_dtype(self, drugs_table):
        assert drugs_table.column("dose").dtype is ColumnType.INTEGER
        assert drugs_table.column("name").dtype is ColumnType.TEXT

    def test_numeric_values(self, drugs_table):
        assert drugs_table.column("dose").numeric_values == [10.0, 20.0, 30.0]
        assert drugs_table.column("name").numeric_values == []

    def test_len_and_repr(self, drugs_table):
        col = drugs_table.column("name")
        assert len(col) == 4
        assert "drugs.name" in repr(col)


class TestTable:
    def test_shape(self, drugs_table):
        assert drugs_table.num_rows == 4
        assert drugs_table.num_columns == 3
        assert drugs_table.column_names == ["drug_id", "name", "dose"]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Table("bad", [Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table("bad", [Column("a", ["1"]), Column("a", ["2"])])

    def test_missing_column_raises(self, drugs_table):
        with pytest.raises(KeyError, match="no column"):
            drugs_table.column("nope")

    def test_contains(self, drugs_table):
        assert "name" in drugs_table
        assert "nope" not in drugs_table

    def test_rows(self, drugs_table):
        rows = drugs_table.rows()
        assert rows[0] == ("D1", "aspirin", "10")
        assert len(rows) == 4

    def test_empty_table(self):
        t = Table("empty", [])
        assert t.num_rows == 0
        assert t.rows() == []

    def test_column_table_name_set(self, drugs_table):
        assert all(c.table_name == "drugs" for c in drugs_table.columns)


class TestDerivedTables:
    def test_project(self, drugs_table):
        p = drugs_table.project(["name", "dose"], "p")
        assert p.column_names == ["name", "dose"]
        assert p.num_rows == 4
        assert p.name == "p"

    def test_project_leaves_base_untouched(self, drugs_table):
        drugs_table.project(["name"], "p")
        assert drugs_table.num_columns == 3

    def test_select_rows(self, drugs_table):
        s = drugs_table.select_rows([0, 2], "s")
        assert s.num_rows == 2
        assert s.column("drug_id").values == ["D1", "D3"]

    def test_rename_columns(self, drugs_table):
        r = drugs_table.rename_columns({"name": "title"}, "r")
        assert "title" in r
        assert "name" not in r
        assert r.column("title").values == drugs_table.column("name").values

    def test_rename_partial_mapping(self, drugs_table):
        r = drugs_table.rename_columns({}, "r")
        assert r.column_names == drugs_table.column_names
