"""Tests for CSV IO."""

from pathlib import Path

from repro.relational.csvio import read_csv, table_from_csv, table_to_csv, write_csv
from repro.relational.table import Table


class TestReadWrite:
    def test_roundtrip(self):
        header = ["a", "b"]
        rows = [["1", "x"], ["2", "y,z"]]
        text = write_csv(header, rows)
        h2, r2 = read_csv(text)
        assert h2 == header
        assert r2 == rows

    def test_quoted_commas(self):
        text = write_csv(["a"], [["hello, world"]])
        _, rows = read_csv(text)
        assert rows[0][0] == "hello, world"

    def test_empty(self):
        assert read_csv("") == ([], [])


class TestTableCsv:
    def test_table_from_csv_text(self):
        t = table_from_csv("t", "a,b\n1,x\n2,y\n")
        assert t.column_names == ["a", "b"]
        assert t.column("a").values == ["1", "2"]

    def test_short_rows_padded(self):
        t = table_from_csv("t", "a,b\n1\n")
        assert t.column("b").values == [""]

    def test_table_to_csv_roundtrip(self):
        t = Table.from_dict("t", {"x": ["1", "2"], "y": ["a", "b"]})
        text = table_to_csv(t)
        t2 = table_from_csv("t2", text)
        assert t2.column("x").values == t.column("x").values
        assert t2.column("y").values == t.column("y").values

    def test_file_roundtrip(self, tmp_path: Path):
        t = Table.from_dict("t", {"x": ["1"]})
        path = tmp_path / "t.csv"
        table_to_csv(t, path)
        t2 = table_from_csv("t", path)
        assert t2.column("x").values == ["1"]

    def test_empty_csv_gives_empty_table(self):
        t = table_from_csv("t", "\n")
        assert t.num_columns == 0
