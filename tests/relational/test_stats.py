"""Tests for numeric statistics and numeric overlap."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.stats import NumericStats, numeric_overlap, numeric_stats

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestNumericStats:
    def test_basic(self):
        s = numeric_stats([1.0, 2.0, 3.0, 3.0])
        assert s.count == 4
        assert s.distinct == 3
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.mean == pytest.approx(2.25)

    def test_empty_is_none(self):
        assert numeric_stats([]) is None

    def test_domain_size(self):
        s = numeric_stats([10.0, 20.0])
        assert s.domain_size == 10.0

    @given(st.lists(floats, min_size=1, max_size=30))
    def test_bounds_property(self, values):
        s = numeric_stats(values)
        slack = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack


class TestRangeOverlap:
    def test_identical(self):
        a = numeric_stats([0.0, 10.0])
        assert a.range_overlap(a) == 1.0

    def test_disjoint(self):
        a = numeric_stats([0.0, 1.0])
        b = numeric_stats([5.0, 6.0])
        assert a.range_overlap(b) == 0.0

    def test_contained(self):
        small = numeric_stats([4.0, 6.0])
        big = numeric_stats([0.0, 10.0])
        assert small.range_overlap(big) == 1.0
        assert big.range_overlap(small) == 1.0  # over the smaller range

    def test_partial(self):
        a = numeric_stats([0.0, 10.0])
        b = numeric_stats([5.0, 15.0])
        assert a.range_overlap(b) == pytest.approx(0.5)

    def test_point_range_inside(self):
        point = numeric_stats([5.0])
        wide = numeric_stats([0.0, 10.0])
        assert point.range_overlap(wide) == 1.0

    def test_inclusion(self):
        inner = numeric_stats([2.0, 3.0])
        outer = numeric_stats([0.0, 10.0])
        assert inner.inclusion(outer)
        assert not outer.inclusion(inner)


class TestNumericOverlap:
    def test_none_inputs(self):
        s = numeric_stats([1.0])
        assert numeric_overlap(None, s) == 0.0
        assert numeric_overlap(s, None) == 0.0
        assert numeric_overlap(None, None) == 0.0

    def test_identical_high(self):
        s = numeric_stats([1.0, 2.0, 3.0])
        assert numeric_overlap(s, s) == pytest.approx(1.0)

    def test_disjoint_low(self):
        a = numeric_stats([0.0, 1.0])
        b = numeric_stats([1000.0, 1001.0])
        assert numeric_overlap(a, b) < 0.1

    @given(st.lists(floats, min_size=2, max_size=20),
           st.lists(floats, min_size=2, max_size=20))
    def test_bounded_and_symmetricish(self, xs, ys):
        a, b = numeric_stats(xs), numeric_stats(ys)
        v1, v2 = numeric_overlap(a, b), numeric_overlap(b, a)
        assert 0.0 <= v1 <= 1.0
        assert v1 == pytest.approx(v2)
