"""Tests for column type inference."""

from repro.relational.types import (
    ColumnType,
    infer_column_type,
    infer_value_type,
    is_missing,
)


class TestValueType:
    def test_integers(self):
        assert infer_value_type("42") is ColumnType.INTEGER
        assert infer_value_type("-7") is ColumnType.INTEGER

    def test_floats(self):
        assert infer_value_type("3.14") is ColumnType.FLOAT
        assert infer_value_type("1e5") is ColumnType.FLOAT
        assert infer_value_type(".5") is ColumnType.FLOAT

    def test_dates(self):
        for v in ("2023-06-01", "6/1/2023", "1-Jun-2023", "2023/06/01"):
            assert infer_value_type(v) is ColumnType.DATE, v

    def test_text(self):
        assert infer_value_type("aspirin") is ColumnType.TEXT
        assert infer_value_type("DB00642") is ColumnType.TEXT

    def test_missing(self):
        for v in ("", "NA", "null", "None", "-", "?", "n/a"):
            assert infer_value_type(v) is ColumnType.EMPTY, v

    def test_is_missing(self):
        assert is_missing("  NA ")
        assert not is_missing("0")


class TestColumnType:
    def test_integer_column(self):
        assert infer_column_type(["1", "2", "3"]) is ColumnType.INTEGER

    def test_float_wins_if_any_float(self):
        assert infer_column_type(["1", "2.5", "3"]) is ColumnType.FLOAT

    def test_mixed_falls_to_text(self):
        assert infer_column_type(["1", "a", "b", "c"]) is ColumnType.TEXT

    def test_mostly_numeric_with_noise(self):
        values = ["1"] * 95 + ["x"] * 5
        assert infer_column_type(values) is ColumnType.INTEGER

    def test_date_column(self):
        assert infer_column_type(["2020-01-01", "2020-01-02"]) is ColumnType.DATE

    def test_empty_column(self):
        assert infer_column_type(["", "NA"]) is ColumnType.EMPTY
        assert infer_column_type([]) is ColumnType.EMPTY

    def test_missing_ignored(self):
        assert infer_column_type(["1", "", "2", "NA"]) is ColumnType.INTEGER

    def test_is_numeric_property(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.DATE.is_numeric
