"""Tests for the banded LSH index."""

import pytest

from repro.sketch.lsh import LSHIndex
from repro.sketch.minhash import MinHash


@pytest.fixture(scope="module")
def mh() -> MinHash:
    return MinHash(num_hashes=128, seed=0)


def build_index(mh, sets: dict[str, set[str]], num_bands: int = 16) -> LSHIndex:
    index = LSHIndex(num_bands=num_bands)
    for key, s in sets.items():
        index.add(key, mh.signature(s))
    return index


class TestBuild:
    def test_len_and_contains(self, mh):
        index = build_index(mh, {"a": {"x"}, "b": {"y"}})
        assert len(index) == 2
        assert "a" in index
        assert "c" not in index

    def test_duplicate_key_rejected(self, mh):
        index = build_index(mh, {"a": {"x"}})
        with pytest.raises(ValueError, match="duplicate"):
            index.add("a", mh.signature({"z"}))

    def test_rejects_bad_bands(self):
        with pytest.raises(ValueError):
            LSHIndex(num_bands=0)


class TestQuery:
    def test_identical_set_found_first(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 20)} for i in range(10)}
        index = build_index(mh, sets)
        result = index.query(mh.signature(sets["s4"]), k=3)
        assert result[0][0] == "s4"
        assert result[0][1] == 1.0

    def test_k_limits_results(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 5)} for i in range(10)}
        index = build_index(mh, sets)
        assert len(index.query(mh.signature({"x1", "x2"}), k=4)) == 4

    def test_exclude(self, mh):
        sets = {"a": {"x", "y"}, "b": {"x", "y"}}
        index = build_index(mh, sets)
        result = index.query(mh.signature({"x", "y"}), k=5, exclude={"a"})
        assert "a" not in [k for k, _ in result]

    def test_fallback_full_scan_when_no_candidates(self, mh):
        # A query with zero overlap lands in no bucket; the fallback still
        # returns ranked results.
        sets = {"a": {f"x{i}" for i in range(20)}}
        index = build_index(mh, sets)
        result = index.query(mh.signature({f"z{i}" for i in range(20)}), k=1)
        assert result[0][0] == "a"

    def test_similar_sets_collide(self, mh):
        base = {f"x{i}" for i in range(50)}
        near = set(list(base)[:48]) | {"extra1", "extra2"}
        index = build_index(mh, {"base": base})
        candidates = index.candidates(mh.signature(near))
        assert "base" in candidates

    def test_scores_sorted_descending(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i * 3, i * 3 + 10)} for i in range(8)}
        index = build_index(mh, sets)
        result = index.query(mh.signature(sets["s0"]), k=8)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)

    def test_signature_of(self, mh):
        index = build_index(mh, {"a": {"x"}})
        assert index.signature_of("a") == mh.signature({"x"})


class TestRemove:
    def test_removed_key_not_returned(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 20)} for i in range(6)}
        index = build_index(mh, sets)
        index.remove("s2")
        assert "s2" not in index
        result = index.query(mh.signature(sets["s2"]), k=10)
        assert all(key != "s2" for key, _ in result)

    def test_candidates_drop_removed_key(self, mh):
        base = {f"x{i}" for i in range(50)}
        index = build_index(mh, {"base": base, "other": {"y1", "y2"}})
        index.remove("base")
        assert "base" not in index.candidates(mh.signature(base))

    def test_remove_missing_raises(self, mh):
        index = build_index(mh, {"a": {"x"}})
        with pytest.raises(KeyError, match="no LSH entry"):
            index.remove("ghost")

    def test_len_after_remove(self, mh):
        index = build_index(mh, {"a": {"x"}, "b": {"y"}})
        index.remove("a")
        assert len(index) == 1
