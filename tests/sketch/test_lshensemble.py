"""Tests for the LSH Ensemble containment index."""

import pytest

from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash


@pytest.fixture(scope="module")
def mh() -> MinHash:
    return MinHash(num_hashes=128, seed=0)


def build(mh, sets: dict[str, set[str]], **kwargs) -> LSHEnsemble:
    ens = LSHEnsemble(**kwargs)
    for key, s in sets.items():
        ens.add(key, mh.signature(s))
    return ens.build()


class TestBuild:
    def test_len_before_and_after_build(self, mh):
        ens = LSHEnsemble()
        ens.add("a", mh.signature({"x"}))
        assert len(ens) == 1
        ens.build()
        assert len(ens) == 1

    def test_add_after_build_rejected(self, mh):
        ens = build(mh, {"a": {"x"}})
        with pytest.raises(RuntimeError, match="already built"):
            ens.add("b", mh.signature({"y"}))

    def test_build_idempotent(self, mh):
        ens = build(mh, {"a": {"x"}})
        assert ens.build() is ens

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            LSHEnsemble(num_partitions=0)

    def test_partition_by_size(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(5 * (i + 1))} for i in range(8)}
        ens = build(mh, sets, num_partitions=4)
        # Small sets land in earlier partitions than large ones.
        assert ens.partition_of(5) <= ens.partition_of(40)

    def test_partition_of_requires_build(self, mh):
        ens = LSHEnsemble()
        ens.add("a", mh.signature({"x"}))
        with pytest.raises(RuntimeError, match="build"):
            ens.partition_of(3)


class TestContainmentQuery:
    def test_contained_set_ranked_top(self, mh):
        sets = {
            "superset": {f"x{i}" for i in range(100)},
            "other": {f"y{i}" for i in range(100)},
        }
        ens = build(mh, sets)
        query = mh.signature({f"x{i}" for i in range(10)})
        result = ens.query(query, k=2)
        assert result[0][0] == "superset"
        # The containment estimator's variance is amplified by |B|/|A| for
        # small queries; 128 hashes give a coarse but correctly-ranked score.
        assert result[0][1] > 0.4

    def test_containment_estimate_tightens_with_hashes(self):
        big_mh = MinHash(num_hashes=2048, seed=0)
        superset = big_mh.signature({f"x{i}" for i in range(100)})
        query = big_mh.signature({f"x{i}" for i in range(10)})
        assert query.containment(superset) > 0.8

    def test_skewed_cardinality_found(self, mh):
        """The ensemble's raison d'etre: small query inside one huge set."""
        sets = {f"s{i}": {f"v{i}_{j}" for j in range(10 + 40 * i)} for i in range(10)}
        sets["huge"] = {f"q{j}" for j in range(500)}
        ens = build(mh, sets, num_partitions=5)
        query = mh.signature({f"q{j}" for j in range(8)})
        assert ens.query(query, k=1)[0][0] == "huge"

    def test_threshold_filters(self, mh):
        sets = {"far": {f"y{i}" for i in range(50)}}
        ens = build(mh, sets)
        query = mh.signature({f"x{i}" for i in range(20)})
        assert ens.query(query, k=5, threshold=0.5) == []

    def test_exclude(self, mh):
        sets = {"a": {"x", "y", "z"}, "b": {"x", "y", "w"}}
        ens = build(mh, sets)
        result = ens.query(mh.signature({"x", "y"}), k=5, exclude={"a"})
        assert all(key != "a" for key, _ in result)

    def test_query_builds_lazily(self, mh):
        ens = LSHEnsemble()
        ens.add("a", mh.signature({"x", "y"}))
        result = ens.query(mh.signature({"x"}), k=1)
        assert result[0][0] == "a"

    def test_k_respected(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(20)} for i in range(10)}
        ens = build(mh, sets)
        assert len(ens.query(mh.signature({"x1"}), k=3)) == 3

    def test_scores_descending(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 30)} for i in range(10)}
        ens = build(mh, sets)
        result = ens.query(mh.signature({f"x{j}" for j in range(5, 15)}), k=10)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)


class TestMutation:
    def test_insert_before_build_stages(self, mh):
        ens = LSHEnsemble()
        ens.insert("a", mh.signature({"x", "y"}))
        assert ens.query(mh.signature({"x"}), k=1)[0][0] == "a"

    def test_insert_after_build_is_queryable(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(10)} for i in range(6)}
        ens = build(mh, sets)
        new = {f"x{j}" for j in range(10)} | {"fresh"}
        ens.insert("new", mh.signature(new))
        assert "new" in ens
        assert len(ens) == 7
        hits = [k for k, _ in ens.query(mh.signature(new), k=3)]
        assert "new" in hits

    def test_insert_duplicate_rejected(self, mh):
        ens = build(mh, {"a": {"x"}})
        with pytest.raises(ValueError, match="duplicate"):
            ens.insert("a", mh.signature({"y"}))

    def test_delete_removes_from_queries(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 10)} for i in range(6)}
        ens = build(mh, sets)
        ens.delete("s0")
        assert "s0" not in ens
        assert all(
            k != "s0"
            for k, _ in ens.query(mh.signature(sets["s0"]), k=10)
        )
        assert "s0" not in ens.candidate_keys(mh.signature(sets["s0"]))

    def test_delete_missing_raises(self, mh):
        ens = build(mh, {"a": {"x"}})
        with pytest.raises(KeyError, match="no ensemble entry"):
            ens.delete("ghost")

    def test_churn_triggers_repartition(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 8)} for i in range(8)}
        ens = build(mh, sets, num_partitions=2)
        for i in range(8):
            ens.insert(f"n{i}", mh.signature({f"y{j}" for j in range(i, i + 8)}))
        # Inserts exceeded half the built base: it repartitioned itself
        # (the rebuilt base includes the inserts absorbed so far).
        assert ens._built_size > 8
        assert ens._inserted_since_build < 8
        assert len(ens) == 16

    def test_mutated_matches_cold_build(self, mh):
        sets = {f"s{i}": {f"x{j}" for j in range(i, i + 12)} for i in range(10)}
        ens = build(mh, sets)
        ens.delete("s3")
        ens.insert("s99", mh.signature({"q1", "q2", "q3"}))
        cold_sets = {k: v for k, v in sets.items() if k != "s3"}
        cold_sets["s99"] = {"q1", "q2", "q3"}
        cold = build(mh, cold_sets)
        query = mh.signature({f"x{j}" for j in range(4, 12)})
        assert ens.query(query, k=10) == cold.query(query, k=10)

    def test_insert_duplicate_rejected_before_build(self, mh):
        ens = LSHEnsemble()
        ens.insert("a", mh.signature({"x"}))
        with pytest.raises(ValueError, match="duplicate"):
            ens.insert("a", mh.signature({"y"}))

    def test_delete_before_build(self, mh):
        ens = LSHEnsemble()
        ens.insert("a", mh.signature({"x"}))
        ens.delete("a")
        assert "a" not in ens
        assert len(ens) == 0
