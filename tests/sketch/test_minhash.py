"""Tests for minwise hashing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.minhash import MinHash, MINHASH_PRIME

small_sets = st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=4),
                     min_size=0, max_size=30)


@pytest.fixture(scope="module")
def mh() -> MinHash:
    return MinHash(num_hashes=256, seed=0)


class TestSignature:
    def test_deterministic(self, mh):
        s1 = mh.signature({"a", "b", "c"})
        s2 = mh.signature({"a", "b", "c"})
        assert s1 == s2

    def test_order_invariant(self, mh):
        assert mh.signature(["a", "b", "c"]) == mh.signature(["c", "a", "b"])

    def test_duplicates_ignored(self, mh):
        assert mh.signature(["a", "a", "b"]) == mh.signature(["a", "b"])

    def test_empty_set(self, mh):
        s = mh.signature(set())
        assert s.set_size == 0
        assert (s.values == MINHASH_PRIME).all()

    def test_values_below_prime(self, mh):
        s = mh.signature({"x", "y"})
        assert (s.values < MINHASH_PRIME).all()

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MinHash(num_hashes=0)


class TestJaccardEstimation:
    def test_identical_sets(self, mh):
        s = mh.signature({"a", "b", "c"})
        assert s.jaccard(s) == 1.0

    def test_disjoint_sets(self, mh):
        a = mh.signature({f"a{i}" for i in range(20)})
        b = mh.signature({f"b{i}" for i in range(20)})
        assert a.jaccard(b) < 0.1

    def test_estimate_close_to_truth(self, mh):
        a_set = {f"x{i}" for i in range(100)}
        b_set = {f"x{i}" for i in range(50, 150)}
        truth = len(a_set & b_set) / len(a_set | b_set)
        estimate = mh.signature(a_set).jaccard(mh.signature(b_set))
        assert abs(estimate - truth) < 0.12

    def test_incompatible_signatures_rejected(self):
        s1 = MinHash(num_hashes=64).signature({"a"})
        s2 = MinHash(num_hashes=128).signature({"a"})
        with pytest.raises(ValueError, match="incomparable"):
            s1.jaccard(s2)

    def test_different_seeds_rejected(self):
        s1 = MinHash(num_hashes=64, seed=1).signature({"a"})
        s2 = MinHash(num_hashes=64, seed=2).signature({"a"})
        with pytest.raises(ValueError, match="incomparable"):
            s1.jaccard(s2)

    @settings(max_examples=25, deadline=None)
    @given(small_sets, small_sets)
    def test_estimate_bounded(self, a, b):
        mh = MinHash(num_hashes=64)
        assert 0.0 <= mh.signature(a).jaccard(mh.signature(b)) <= 1.0


class TestContainmentEstimation:
    def test_subset_containment_high(self, mh):
        small = {f"x{i}" for i in range(10)}
        big = {f"x{i}" for i in range(200)}
        est = mh.signature(small).containment(mh.signature(big))
        assert est > 0.8

    def test_empty_query(self, mh):
        assert mh.signature(set()).containment(mh.signature({"a"})) == 0.0

    def test_clamped_to_unit(self, mh):
        a = mh.signature({"a", "b"})
        b = mh.signature({"a", "b", "c"})
        assert 0.0 <= a.containment(b) <= 1.0

    def test_asymmetry(self, mh):
        small = {f"x{i}" for i in range(10)}
        big = {f"x{i}" for i in range(100)}
        fwd = mh.signature(small).containment(mh.signature(big))
        bwd = mh.signature(big).containment(mh.signature(small))
        assert fwd > bwd

    @settings(max_examples=25, deadline=None)
    @given(small_sets, small_sets)
    def test_containment_bounded(self, a, b):
        mh = MinHash(num_hashes=64)
        assert 0.0 <= mh.signature(a).containment(mh.signature(b)) <= 1.0


class TestBandHashes:
    def test_band_count(self, mh):
        s = mh.signature({"a"})
        assert len(s.band_hashes(16)) == 16

    def test_indivisible_bands_rejected(self, mh):
        s = mh.signature({"a"})
        with pytest.raises(ValueError, match="divisible"):
            s.band_hashes(7)

    def test_identical_signatures_same_bands(self, mh):
        s1 = mh.signature({"a", "b"})
        s2 = mh.signature({"b", "a"})
        assert s1.band_hashes(8) == s2.band_hashes(8)

    def test_different_sets_differ_somewhere(self, mh):
        s1 = mh.signature({f"x{i}" for i in range(30)})
        s2 = mh.signature({f"y{i}" for i in range(30)})
        assert s1.band_hashes(8) != s2.band_hashes(8)


class TestVectorisedCorrectness:
    def test_min_matches_manual(self):
        """The vectorised (a*x+b) mod p minimum must equal a scalar loop."""
        mh = MinHash(num_hashes=8, seed=3)
        items = {"alpha", "beta", "gamma"}
        sig = mh.signature(items)
        from repro.utils.hashing import stable_hash_32

        fingerprints = [stable_hash_32(i, 3) % MINHASH_PRIME for i in items]
        for k in range(8):
            expected = min(
                (int(mh._a[k]) * x + int(mh._b[k])) % MINHASH_PRIME
                for x in fingerprints
            )
            assert int(sig.values[k]) == expected


class TestSignaturesBatch:
    """Batch signatures must be byte-identical to per-set signature()."""

    def _assert_batch_matches(self, mh, sets):
        batch = mh.signatures_batch(sets)
        singles = [mh.signature(s) for s in sets]
        assert len(batch) == len(singles)
        for got, want in zip(batch, singles):
            assert np.array_equal(got.values, want.values)
            assert got.set_size == want.set_size
            assert got.num_hashes == want.num_hashes and got.seed == want.seed

    def test_basic_parity(self, mh):
        self._assert_batch_matches(
            mh, [{"a", "b"}, {"c"}, {"a", "b", "c", "d"}]
        )

    def test_empty_sets_interleaved(self, mh):
        self._assert_batch_matches(mh, [set(), {"a"}, set(), {"b", "c"}, set()])

    def test_all_empty(self, mh):
        self._assert_batch_matches(mh, [set(), frozenset()])

    def test_empty_batch(self, mh):
        assert mh.signatures_batch([]) == []

    def test_duplicate_heavy_lists(self, mh):
        self._assert_batch_matches(mh, [["a"] * 50 + ["b"], ["b"] * 99])

    def test_frozensets_and_lists_mixed(self, mh):
        self._assert_batch_matches(mh, [frozenset({"x"}), ["y", "x"], {"z"}])

    def test_shared_cache_changes_nothing(self, mh):
        from repro.sketch.fingerprints import FingerprintCache

        sets = [{"a", "b"}, {"b", "c"}, {"a", "c"}]
        cache = FingerprintCache(mh.seed)
        with_cache = mh.signatures_batch(sets, cache=cache)
        without = mh.signatures_batch(sets)
        for got, want in zip(with_cache, without):
            assert np.array_equal(got.values, want.values)
        # every distinct string hashed exactly once through the cache
        assert cache.misses == 3

    def test_slab_boundaries(self, mh, monkeypatch):
        # Force tiny slabs so sets split across several reduceat passes.
        import repro.sketch.minhash as minhash_mod

        sets = [{f"s{i}-{j}" for j in range(5)} for i in range(10)] + [set()]
        monkeypatch.setattr(minhash_mod, "_BATCH_CHUNK_ITEMS", 7)
        batch = mh.signatures_batch(sets)
        singles = [mh.signature(s) for s in sets]
        for got, want in zip(batch, singles):
            assert np.array_equal(got.values, want.values)

    def test_oversized_single_set(self, mh, monkeypatch):
        import repro.sketch.minhash as minhash_mod

        monkeypatch.setattr(minhash_mod, "_BATCH_CHUNK_ITEMS", 4)
        big = {f"t{i}" for i in range(64)}
        (got,) = mh.signatures_batch([big])
        assert np.array_equal(got.values, mh.signature(big).values)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(small_sets, max_size=8))
    def test_parity_property(self, sets):
        mh = MinHash(num_hashes=32, seed=5)
        self._assert_batch_matches(mh, sets)


class TestSignatureInputHandling:
    def test_set_input_not_copied_semantics(self, mh):
        # Passing a set/frozenset directly must equal the list path.
        items = ["a", "b", "b", "c"]
        assert mh.signature(set(items)) == mh.signature(items)
        assert mh.signature(frozenset(items)) == mh.signature(items)

    def test_containment_single_compat_check(self, mh):
        # containment() delegates estimation without re-checking the family.
        a = mh.signature({"a", "b"})
        other = MinHash(num_hashes=128, seed=9).signature({"a"})
        with pytest.raises(ValueError):
            a.containment(other)
