"""Tests for the per-fit fingerprint cache."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sketch.fingerprints import FingerprintCache
from repro.sketch.minhash import MINHASH_PRIME
from repro.utils.hashing import stable_hash_32


class TestFingerprintCache:
    def test_matches_direct_hash(self):
        cache = FingerprintCache(seed=3)
        assert cache.fingerprint("abc") == stable_hash_32("abc", 3) % MINHASH_PRIME

    def test_each_string_hashed_once(self):
        cache = FingerprintCache()
        cache.fingerprints(["a", "b", "a"])
        cache.fingerprints(["a", "c"])
        assert cache.misses == 3  # a, b, c
        assert cache.hits == 2
        assert len(cache) == 3

    def test_bulk_matches_single(self):
        cache = FingerprintCache(seed=1)
        items = ["x", "y", "z", "x"]
        bulk = cache.fingerprints(items)
        singles = [FingerprintCache(seed=1).fingerprint(i) for i in items]
        assert bulk.dtype == np.uint64
        assert bulk.tolist() == singles

    def test_contains(self):
        cache = FingerprintCache()
        cache.fingerprint("seen")
        assert "seen" in cache
        assert "unseen" not in cache

    def test_seed_changes_values(self):
        assert FingerprintCache(seed=1).fingerprint("v") != FingerprintCache(
            seed=2
        ).fingerprint("v")

    @given(st.lists(st.text(max_size=8)))
    def test_order_preserved_and_in_range(self, items):
        cache = FingerprintCache()
        out = cache.fingerprints(items)
        assert len(out) == len(items)
        assert all(0 <= int(v) < MINHASH_PRIME for v in out)
        again = cache.fingerprints(items)
        assert np.array_equal(out, again)


class TestCacheSeedGuard:
    def test_mismatched_cache_seed_rejected(self):
        from repro.sketch.minhash import MinHash

        mh = MinHash(num_hashes=32, seed=0)
        wrong = FingerprintCache(seed=1)
        with pytest.raises(ValueError, match="seed"):
            mh.signature({"a"}, cache=wrong)
        with pytest.raises(ValueError, match="seed"):
            mh.signatures_batch([{"a"}], cache=wrong)

    def test_raw_fingerprint_is_the_formula(self):
        from repro.sketch.fingerprints import raw_fingerprint

        assert raw_fingerprint("abc", 3) == stable_hash_32("abc", 3) % MINHASH_PRIME
