"""Tests for the SearchEngine facade."""

import pytest

from repro.search.engine import SearchEngine


@pytest.fixture()
def engine() -> SearchEngine:
    e = SearchEngine()
    e.add("d1", ["drug", "enzyme"])
    e.add("d2", ["drug", "city", "city"])
    e.add("d3", ["population"])
    return e


class TestSearch:
    def test_topk(self, engine):
        result = engine.search(["drug"], k=1)
        assert len(result) == 1

    def test_ranked_descending(self, engine):
        result = engine.search(["drug", "city"], k=3)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)

    def test_exclude(self, engine):
        result = engine.search(["drug"], k=5, exclude={"d1"})
        assert all(key != "d1" for key, _ in result)

    def test_no_match(self, engine):
        assert engine.search(["nothing"], k=5) == []

    def test_len_contains(self, engine):
        assert len(engine) == 3
        assert "d1" in engine

    def test_unknown_ranker_rejected(self):
        with pytest.raises(ValueError, match="unknown ranker"):
            SearchEngine(ranker="tfidf")

    def test_lm_dirichlet_ranker(self):
        e = SearchEngine(ranker="lm_dirichlet")
        e.add("d1", ["drug", "drug"])
        e.add("d2", ["drug", "x", "y", "z"])
        result = e.search(["drug"], k=2)
        assert result[0][0] == "d1"

    def test_incremental_add_rebuilds_scorer(self, engine):
        before = engine.search(["drug"], k=5)
        engine.add("d4", ["drug"] * 10)
        after = engine.search(["drug"], k=5)
        assert len(after) == len(before) + 1

    def test_deterministic_tiebreak(self):
        e = SearchEngine()
        e.add("b", ["x"])
        e.add("a", ["x"])
        result = e.search(["x"], k=2)
        assert [k for k, _ in result] == ["a", "b"]
