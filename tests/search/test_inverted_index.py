"""Tests for the inverted index."""

from collections import Counter

import pytest

from repro.search.inverted_index import InvertedIndex


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add("d1", ["drug", "enzyme", "drug"])
    idx.add("d2", ["city", "population"])
    idx.add("d3", Counter({"drug": 1, "city": 2}))
    return idx


class TestStats:
    def test_num_docs(self, index):
        assert index.num_docs == 3

    def test_doc_length(self, index):
        assert index.doc_length("d1") == 3
        assert index.doc_length("d3") == 3
        assert index.doc_length("missing") == 0

    def test_collection_length(self, index):
        assert index.collection_length == 8

    def test_average_doc_length(self, index):
        assert index.average_doc_length == pytest.approx(8 / 3)

    def test_average_empty_index(self):
        assert InvertedIndex().average_doc_length == 0.0

    def test_document_frequency(self, index):
        assert index.document_frequency("drug") == 2
        assert index.document_frequency("missing") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("drug") == 3
        assert index.collection_frequency("city") == 3


class TestPostings:
    def test_term_frequency_recorded(self, index):
        postings = {p.doc_key: p.term_frequency for p in index.postings("drug")}
        assert postings == {"d1": 2, "d3": 1}

    def test_missing_term(self, index):
        assert index.postings("nothing") == []

    def test_duplicate_key_rejected(self, index):
        with pytest.raises(ValueError, match="duplicate"):
            index.add("d1", ["x"])

    def test_contains_and_keys(self, index):
        assert "d1" in index
        assert set(index.keys()) == {"d1", "d2", "d3"}
