"""Tests for the inverted index."""

from collections import Counter

import pytest

from repro.search.inverted_index import InvertedIndex


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add("d1", ["drug", "enzyme", "drug"])
    idx.add("d2", ["city", "population"])
    idx.add("d3", Counter({"drug": 1, "city": 2}))
    return idx


class TestStats:
    def test_num_docs(self, index):
        assert index.num_docs == 3

    def test_doc_length(self, index):
        assert index.doc_length("d1") == 3
        assert index.doc_length("d3") == 3
        assert index.doc_length("missing") == 0

    def test_collection_length(self, index):
        assert index.collection_length == 8

    def test_average_doc_length(self, index):
        assert index.average_doc_length == pytest.approx(8 / 3)

    def test_average_empty_index(self):
        assert InvertedIndex().average_doc_length == 0.0

    def test_document_frequency(self, index):
        assert index.document_frequency("drug") == 2
        assert index.document_frequency("missing") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("drug") == 3
        assert index.collection_frequency("city") == 3


class TestPostings:
    def test_term_frequency_recorded(self, index):
        postings = {p.doc_key: p.term_frequency for p in index.postings("drug")}
        assert postings == {"d1": 2, "d3": 1}

    def test_missing_term(self, index):
        assert index.postings("nothing") == []

    def test_duplicate_key_rejected(self, index):
        with pytest.raises(ValueError, match="duplicate"):
            index.add("d1", ["x"])

    def test_contains_and_keys(self, index):
        assert "d1" in index
        assert set(index.keys()) == {"d1", "d2", "d3"}


class TestRemove:
    def test_stats_match_cold_build(self, index):
        index.remove("d2")
        cold = InvertedIndex()
        cold.add("d1", ["drug", "enzyme", "drug"])
        cold.add("d3", Counter({"drug": 1, "city": 2}))
        assert index.num_docs == cold.num_docs
        assert index.collection_length == cold.collection_length
        for term in ("drug", "city", "population", "enzyme"):
            assert index.document_frequency(term) == cold.document_frequency(term)
            assert index.collection_frequency(term) == cold.collection_frequency(term)
            assert {(p.doc_key, p.term_frequency) for p in index.postings(term)} == {
                (p.doc_key, p.term_frequency) for p in cold.postings(term)
            }

    def test_removed_key_gone(self, index):
        index.remove("d1")
        assert "d1" not in index
        assert index.doc_length("d1") == 0
        assert all(p.doc_key != "d1" for p in index.postings("drug"))

    def test_remove_missing_raises(self, index):
        with pytest.raises(KeyError, match="no index entry"):
            index.remove("ghost")

    def test_compaction_past_churn_bar(self):
        idx = InvertedIndex()
        for i in range(8):
            idx.add(f"d{i}", ["shared", f"t{i}"])
        for i in range(4):
            idx.remove(f"d{i}")
        # >25% of the live corpus was tombstoned: postings were compacted.
        assert not idx._deleted
        assert len(idx._postings["shared"]) == 4

    def test_readd_after_remove(self, index):
        index.remove("d2")
        index.add("d2", ["city"])
        assert index.doc_length("d2") == 1
        assert index.document_frequency("city") == 2  # d2 + d3
