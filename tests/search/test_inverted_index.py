"""Tests for the inverted index."""

from collections import Counter

import pytest

from repro.search.inverted_index import InvertedIndex


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add("d1", ["drug", "enzyme", "drug"])
    idx.add("d2", ["city", "population"])
    idx.add("d3", Counter({"drug": 1, "city": 2}))
    return idx


class TestStats:
    def test_num_docs(self, index):
        assert index.num_docs == 3

    def test_doc_length(self, index):
        assert index.doc_length("d1") == 3
        assert index.doc_length("d3") == 3
        assert index.doc_length("missing") == 0

    def test_collection_length(self, index):
        assert index.collection_length == 8

    def test_average_doc_length(self, index):
        assert index.average_doc_length == pytest.approx(8 / 3)

    def test_average_empty_index(self):
        assert InvertedIndex().average_doc_length == 0.0

    def test_document_frequency(self, index):
        assert index.document_frequency("drug") == 2
        assert index.document_frequency("missing") == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("drug") == 3
        assert index.collection_frequency("city") == 3


class TestPostings:
    def test_term_frequency_recorded(self, index):
        postings = {p.doc_key: p.term_frequency for p in index.postings("drug")}
        assert postings == {"d1": 2, "d3": 1}

    def test_missing_term(self, index):
        assert index.postings("nothing") == []

    def test_duplicate_key_rejected(self, index):
        with pytest.raises(ValueError, match="duplicate"):
            index.add("d1", ["x"])

    def test_contains_and_keys(self, index):
        assert "d1" in index
        assert set(index.keys()) == {"d1", "d2", "d3"}


class TestRemove:
    def test_stats_match_cold_build(self, index):
        index.remove("d2")
        cold = InvertedIndex()
        cold.add("d1", ["drug", "enzyme", "drug"])
        cold.add("d3", Counter({"drug": 1, "city": 2}))
        assert index.num_docs == cold.num_docs
        assert index.collection_length == cold.collection_length
        for term in ("drug", "city", "population", "enzyme"):
            assert index.document_frequency(term) == cold.document_frequency(term)
            assert index.collection_frequency(term) == cold.collection_frequency(term)
            assert {(p.doc_key, p.term_frequency) for p in index.postings(term)} == {
                (p.doc_key, p.term_frequency) for p in cold.postings(term)
            }

    def test_removed_key_gone(self, index):
        index.remove("d1")
        assert "d1" not in index
        assert index.doc_length("d1") == 0
        assert all(p.doc_key != "d1" for p in index.postings("drug"))

    def test_remove_missing_raises(self, index):
        with pytest.raises(KeyError, match="no index entry"):
            index.remove("ghost")

    def test_compaction_past_churn_bar(self):
        idx = InvertedIndex()
        for i in range(8):
            idx.add(f"d{i}", ["shared", f"t{i}"])
        for i in range(4):
            idx.remove(f"d{i}")
        # >25% of the live corpus was tombstoned: postings were compacted.
        assert not idx._deleted
        assert len(idx._postings["shared"]) == 4

    def test_readd_after_remove(self, index):
        index.remove("d2")
        index.add("d2", ["city"])
        assert index.doc_length("d2") == 1
        assert index.document_frequency("city") == 2  # d2 + d3


class TestColumnarBulkBuild:
    """``build_bulk`` must equal per-item ``add`` exactly — postings content
    and order, corpus statistics, even dict insertion order."""

    BAGS = [
        ("d1", ["drug", "enzyme", "drug"]),
        ("d2", ["city", "population"]),
        ("d3", Counter({"drug": 1, "city": 2})),
        ("d4", []),
        ("d5", Counter({"zeta": 3, "alpha": 1})),
    ]

    @staticmethod
    def _per_item(bags) -> InvertedIndex:
        idx = InvertedIndex()
        for key, terms in bags:
            idx.add(key, terms)
        return idx

    def test_matches_per_item_adds(self):
        bulk = InvertedIndex()
        bulk.build_bulk(self.BAGS)
        single = self._per_item(self.BAGS)
        assert dict(bulk._postings) == dict(single._postings)
        assert list(bulk._postings) == list(single._postings)
        assert bulk._doc_lengths == single._doc_lengths
        assert list(bulk._doc_lengths) == list(single._doc_lengths)
        assert bulk._df == single._df
        assert list(bulk._df) == list(single._df)
        assert bulk._collection_tf == single._collection_tf
        assert list(bulk._collection_tf) == list(single._collection_tf)
        assert bulk._doc_terms == single._doc_terms

    def test_posting_lists_keep_document_order(self):
        bulk = InvertedIndex()
        bulk.build_bulk(self.BAGS)
        assert [p.doc_key for p in bulk.postings("drug")] == ["d1", "d3"]
        assert [p.term_frequency for p in bulk.postings("drug")] == [2, 1]

    def test_empty_iterable_and_empty_bags(self):
        idx = InvertedIndex()
        idx.build_bulk([])
        assert idx.num_docs == 0
        idx.build_bulk([("a", [])])
        assert idx.num_docs == 1 and idx.doc_length("a") == 0

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            InvertedIndex().build_bulk([("a", ["x"]), ("a", ["y"])])

    def test_bulk_on_nonempty_index_falls_back(self):
        idx = InvertedIndex()
        idx.add("a", ["x"])
        idx.build_bulk([("b", ["x", "y"])])
        single = self._per_item([("a", ["x"]), ("b", ["x", "y"])])
        assert dict(idx._postings) == dict(single._postings)
        assert idx._df == single._df

    def test_bulk_after_churn_handles_readded_tombstone(self):
        idx = InvertedIndex()
        idx.add("a", ["x"])
        idx.add("b", ["y"])
        idx.remove("a")
        idx.build_bulk([("a", ["z"])])  # falls back: churned index
        assert idx.document_frequency("z") == 1
        assert idx.document_frequency("x") == 0
        assert all(p.doc_key != "a" for p in idx.postings("x"))

    def test_remove_and_compaction_after_bulk(self):
        idx = InvertedIndex()
        idx.build_bulk([(f"d{i}", ["shared", f"t{i}"]) for i in range(8)])
        for i in range(4):
            idx.remove(f"d{i}")
        cold = self._per_item([(f"d{i}", ["shared", f"t{i}"]) for i in range(4, 8)])
        assert not idx._deleted  # past the churn bar: compacted
        assert idx.document_frequency("shared") == cold.document_frequency("shared")
        assert [p.doc_key for p in idx.postings("shared")] == [
            p.doc_key for p in cold.postings("shared")
        ]

    def test_restore_state_roundtrip(self):
        idx = self._per_item(self.BAGS)
        idx.remove("d2")
        restored = InvertedIndex.restore_state(idx.persistent_state())
        assert restored._doc_lengths == idx._doc_lengths
        assert restored._df == idx._df
        assert restored._collection_tf == idx._collection_tf
        assert restored._deleted == idx._deleted
        for term in ("drug", "city", "zeta"):
            assert restored.postings(term) == idx.postings(term)
