"""Tests for BM25 and LM-Dirichlet scoring."""

import math

import pytest

from repro.search.inverted_index import InvertedIndex
from repro.search.scoring import BM25Scorer, LMDirichletScorer


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add("d1", ["drug"] * 3 + ["enzyme"])
    idx.add("d2", ["drug"] + ["city"] * 5)
    idx.add("d3", ["city", "population", "budget"])
    idx.add("d4", ["enzyme", "protein", "enzyme"])
    return idx


class TestBM25:
    def test_matching_docs_scored(self, index):
        scores = BM25Scorer(index).scores(["drug"])
        assert set(scores) == {"d1", "d2"}

    def test_tf_increases_score(self, index):
        scores = BM25Scorer(index).scores(["drug"])
        assert scores["d1"] > scores["d2"]

    def test_rare_term_higher_idf(self, index):
        scorer = BM25Scorer(index)
        assert scorer.idf("population") > scorer.idf("drug")

    def test_idf_non_negative(self, index):
        scorer = BM25Scorer(index)
        for term in ("drug", "city", "enzyme", "unseen"):
            assert scorer.idf(term) >= 0.0

    def test_query_term_weight(self, index):
        once = BM25Scorer(index).scores(["drug"])
        twice = BM25Scorer(index).scores(["drug", "drug"])
        assert twice["d1"] == pytest.approx(2 * once["d1"])

    def test_unseen_term_no_matches(self, index):
        assert BM25Scorer(index).scores(["zzz"]) == {}

    def test_invalid_params(self, index):
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=-1)
        with pytest.raises(ValueError):
            BM25Scorer(index, b=2.0)

    def test_length_normalisation(self):
        idx = InvertedIndex()
        idx.add("short", ["drug"])
        idx.add("long", ["drug"] + ["filler"] * 50)
        scores = BM25Scorer(idx).scores(["drug"])
        assert scores["short"] > scores["long"]

    def test_multi_term_accumulates(self, index):
        single = BM25Scorer(index).scores(["drug"])
        multi = BM25Scorer(index).scores(["drug", "enzyme"])
        assert multi["d1"] > single["d1"]


class TestLMDirichlet:
    def test_matching_docs_scored(self, index):
        scores = LMDirichletScorer(index).scores(["drug"])
        assert "d1" in scores and "d2" in scores

    def test_tf_ordering(self, index):
        scores = LMDirichletScorer(index, mu=100).scores(["drug"])
        assert scores["d1"] > scores["d2"]

    def test_scores_non_negative(self, index):
        scores = LMDirichletScorer(index).scores(["drug", "city", "enzyme"])
        assert all(v >= 0.0 for v in scores.values())

    def test_unseen_term_ignored(self, index):
        assert LMDirichletScorer(index).scores(["zzz"]) == {}

    def test_invalid_mu(self, index):
        with pytest.raises(ValueError):
            LMDirichletScorer(index, mu=0)

    def test_mu_smooths(self, index):
        tight = LMDirichletScorer(index, mu=10).scores(["drug"])
        smooth = LMDirichletScorer(index, mu=10_000).scores(["drug"])
        # Heavier smoothing compresses the scores toward zero.
        assert max(smooth.values()) < max(tight.values())

    def test_formula_spot_check(self):
        idx = InvertedIndex()
        idx.add("d", ["t", "t", "u"])
        scorer = LMDirichletScorer(idx, mu=100.0)
        p_c = 2 / 3
        expected = math.log(1 + 2 / (100 * p_c)) + math.log(100 / (3 + 100))
        got = scorer.scores(["t"])["d"]
        assert got == pytest.approx(max(0.0, expected))
