"""End-to-end integration tests over the tiny lakes.

These validate the paper-level behaviours: the Figure 1 pipeline, CMDL
beating the keyword baselines where the paper says it does, and the
containment-vs-Jaccard gap on skewed joins.
"""

import pytest

from repro.baselines import (
    AurumBaseline,
    CMDLDocToTable,
    D3LBaseline,
    ElasticSearchBaseline,
)
from repro.core.system import CMDL, CMDLConfig
from repro.eval.benchmarks import Benchmark
from repro.eval.metrics import mean_metric, recall_at_k
from repro.eval.runner import evaluate_doc_to_table


class TestFigure1Pipeline:
    """The five-question discovery chain of the motivation example."""

    def test_full_chain(self, engine, pharma_generated):
        r1 = engine.content_search("synthase", mode="text", k=5)
        assert len(r1) > 0

        r2 = engine.cross_modal_search(r1[1], top_n=3)
        assert len(r2) > 0

        r3 = engine.cross_modal_search(r1[min(3, len(r1))], top_n=3)
        assert len(r3) > 0

        r4 = engine.pkfk(r3[1], top_n=2)
        r5_source = r4[1] if len(r4) else r3[1]
        r5 = engine.unionable(r5_source, top_n=2)
        assert isinstance(r5.items, list)

    def test_drs_composition_across_ops(self, engine, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        a = engine.cross_modal_search(gt.queries[0], top_n=5)
        b = engine.cross_modal_search(gt.queries[1], top_n=5)
        merged = a.unite(b)
        assert len(merged) >= max(len(a), len(b))


class TestCrossModalQuality:
    def test_cmdl_recall_beats_schema_only_elastic(self, fitted_cmdl,
                                                   pharma_generated):
        gen = pharma_generated
        bench = Benchmark(
            "tiny-1B", "doc_to_table", gen, gen.ground_truth("doc_to_table"),
            scope_tables=set(gen.tables_in("drugbank")), k_values=(4,),
        )
        cmdl_points = evaluate_doc_to_table(
            CMDLDocToTable(fitted_cmdl.engine, "solo"), bench)
        schema_points = evaluate_doc_to_table(
            ElasticSearchBaseline(fitted_cmdl.profile, "bm25_schema"), bench)
        assert cmdl_points[0].recall > schema_points[0].recall

    def test_cmdl_solo_well_above_random(self, fitted_cmdl, pharma_generated):
        gen = pharma_generated
        gt = gen.ground_truth("doc_to_table")
        scope = set(gen.tables_in("drugbank"))
        recalls = []
        for doc_id in gt.queries[:25]:
            # Rank generously, then restrict to the benchmark's collection
            # (the whole lake is searched but 1B only scores DrugBank).
            drs = fitted_cmdl.engine.cross_modal_search(
                doc_id, top_n=20, representation="solo")
            retrieved = [t for t in drs.ids() if t in scope][:4]
            relevant = {t for t in gt.relevant(doc_id) if t in scope}
            if relevant:
                recalls.append(recall_at_k(retrieved, relevant, 4))
        assert mean_metric(recalls) > 0.4


class TestSkewedJoinGap:
    """Table 3/4's central claim: containment beats Jaccard on skewed data."""

    def test_cmdl_beats_aurum_on_skewed_pharma_joins(self, fitted_cmdl,
                                                     pharma_generated):
        from repro.core.joinability import JoinDiscovery
        from repro.eval.runner import evaluate_join

        gen = pharma_generated
        bench = Benchmark(
            "tiny-2B", "syntactic_join", gen,
            gen.ground_truth("syntactic_join"),
            scope_tables=set(gen.tables_in("drugbank")),
        )
        profile = fitted_cmdl.profile
        uniqueness = {
            c.qualified_name: c.uniqueness for c in gen.lake.columns
        }
        cmdl_score = evaluate_join(
            lambda cid, k: JoinDiscovery(profile).joinable_columns(cid, k=k),
            bench)
        aurum = AurumBaseline(profile, uniqueness)
        aurum_score = evaluate_join(
            lambda cid, k: aurum.joinable_columns(cid, k=k), bench)
        assert cmdl_score >= aurum_score

    def test_cmdl_pkfk_recall_exceeds_aurum_on_drugbank(self, fitted_cmdl,
                                                        pharma_generated):
        from repro.core.pkfk import PKFKDiscovery
        from repro.eval.runner import evaluate_pkfk

        gen = pharma_generated
        bench = Benchmark(
            "tiny-2D", "pkfk", gen, gen.ground_truth("pkfk:drugbank"),
            scope_tables=set(gen.tables_in("drugbank")),
        )
        profile = fitted_cmdl.profile
        uniqueness = {c.qualified_name: c.uniqueness for c in gen.lake.columns}
        # DrugBank's planted duplicates mean strict uniqueness misses keys;
        # both systems run with the same threshold for fairness.
        cmdl = PKFKDiscovery(profile, uniqueness, key_uniqueness_threshold=0.85)
        cmdl_links = [
            (l.pk_column, l.fk_column)
            for l in cmdl.discover(table_scope=bench.scope_tables)
        ]
        _, cmdl_recall = evaluate_pkfk(cmdl_links, bench)

        aurum = AurumBaseline(profile, uniqueness,
                              key_uniqueness_threshold=0.85)
        aurum_links = [
            (l.pk_column, l.fk_column)
            for l in aurum.discover_pkfk(table_scope=bench.scope_tables)
        ]
        _, aurum_recall = evaluate_pkfk(aurum_links, bench)
        assert cmdl_recall > aurum_recall


class TestUnionQuality:
    def test_cmdl_union_beats_aurum(self, fitted_cmdl, pharma_generated):
        from repro.eval.runner import evaluate_union_curve

        gen = pharma_generated
        bench = Benchmark(
            "tiny-3B", "union", gen, gen.ground_truth("union"),
            scope_tables=(set(gen.tables_in("drugbank_synthetic"))
                          | set(gen.tables_in("drugbank"))),
        )
        profile = fitted_cmdl.profile
        uniqueness = {c.qualified_name: c.uniqueness for c in gen.lake.columns}
        cmdl_points = evaluate_union_curve(
            lambda t, k: fitted_cmdl.engine.union_discovery.unionable_tables(t, k=k),
            bench, k_values=(4,), max_queries=12)
        aurum = AurumBaseline(profile, uniqueness)
        aurum_points = evaluate_union_curve(
            lambda t, k: aurum.unionable_tables(t, k=k),
            bench, k_values=(4,), max_queries=12)
        assert cmdl_points[0].recall >= aurum_points[0].recall

    def test_d3l_union_competitive(self, fitted_cmdl, pharma_generated):
        """Figure 7: D3L and CMDL perform comparably on unionability."""
        from repro.eval.runner import evaluate_union_curve

        gen = pharma_generated
        bench = Benchmark(
            "tiny-3B", "union", gen, gen.ground_truth("union"),
            scope_tables=(set(gen.tables_in("drugbank_synthetic"))
                          | set(gen.tables_in("drugbank"))),
        )
        d3l = D3LBaseline(fitted_cmdl.profile)
        points = evaluate_union_curve(
            lambda t, k: d3l.unionable_tables(t, k=k),
            bench, k_values=(4,), max_queries=12)
        assert points[0].recall > 0.2


class TestRobustness:
    def test_refit_deterministic(self, pharma_lake):
        a = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=5, seed=1))
        b = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=5, seed=1))
        ea = a.fit(pharma_lake)
        eb = b.fit(pharma_lake)
        doc = pharma_lake.documents[0].doc_id
        ra = ea.cross_modal_search(doc, top_n=3)
        rb = eb.cross_modal_search(doc, top_n=3)
        assert ra.ids() == rb.ids()

    def test_lake_without_documents(self):
        from repro.relational.catalog import DataLake
        from repro.relational.table import Table

        lake = DataLake("tables-only")
        lake.add_table(Table.from_dict("t", {"a": ["x", "y", "z"] * 5}))
        cmdl = CMDL(CMDLConfig(seed=0))
        engine = cmdl.fit(lake)
        assert cmdl.joint_model is None  # nothing to train on
        assert engine.joinable("t", top_n=2).items == []
