"""Tests for evaluation metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import (
    mean_metric,
    precision_at_k,
    r_precision,
    recall_at_k,
    relative_recall,
)

ranked = st.lists(st.text(alphabet="abcdef", min_size=1, max_size=2),
                  max_size=15, unique=True)
relevant_sets = st.sets(st.text(alphabet="abcdef", min_size=1, max_size=2),
                        max_size=10)


class TestPrecisionRecall:
    def test_perfect_retrieval(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0
        assert recall_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_half_precision(self):
        assert precision_at_k(["a", "x"], {"a"}, 2) == 0.5

    def test_recall_denominator_is_relevant(self):
        assert recall_at_k(["a"], {"a", "b", "c", "d"}, 1) == 0.25

    def test_k_zero(self):
        assert precision_at_k(["a"], {"a"}, 0) == 0.0
        assert recall_at_k(["a"], {"a"}, 0) == 0.0

    def test_empty_relevant(self):
        assert recall_at_k(["a"], set(), 5) == 0.0

    def test_empty_retrieved(self):
        assert precision_at_k([], {"a"}, 5) == 0.0

    def test_precision_counts_only_topk(self):
        assert precision_at_k(["x", "y", "a"], {"a"}, 2) == 0.0

    def test_precision_divides_by_k_not_retrieved(self):
        # Fewer results than k: missing slots count against precision.
        assert precision_at_k(["a"], {"a"}, 4) == 0.25

    @given(ranked, relevant_sets, st.integers(min_value=1, max_value=20))
    def test_bounds(self, retrieved, relevant, k):
        assert 0.0 <= precision_at_k(retrieved, relevant, k) <= 1.0
        assert 0.0 <= recall_at_k(retrieved, relevant, k) <= 1.0

    @given(ranked, relevant_sets)
    def test_recall_monotone_in_k(self, retrieved, relevant):
        recalls = [recall_at_k(retrieved, relevant, k) for k in range(1, 10)]
        assert recalls == sorted(recalls)


class TestRPrecision:
    def test_equals_recall_at_r(self):
        retrieved = ["a", "b", "x", "y"]
        relevant = {"a", "b", "c"}
        assert r_precision(retrieved, relevant) == pytest.approx(
            recall_at_k(retrieved, relevant, 3))

    def test_empty_relevant(self):
        assert r_precision(["a"], set()) == 0.0

    @given(ranked, relevant_sets)
    def test_p_equals_r_property(self, retrieved, relevant):
        """Table 3's property: at k = |GT|, precision and recall coincide."""
        k = len(relevant)
        if k == 0:
            return
        assert precision_at_k(retrieved, relevant, k) == pytest.approx(
            recall_at_k(retrieved, relevant, k))


class TestRelativeRecall:
    def test_full_coverage(self):
        assert relative_recall({"a", "b"}, {"a", "b"}) == 1.0

    def test_partial(self):
        assert relative_recall({"a"}, {"a", "b", "c", "d"}) == 0.25

    def test_extraneous_ignored(self):
        assert relative_recall({"a", "z"}, {"a", "b"}) == 0.5

    def test_empty_union(self):
        assert relative_recall({"a"}, set()) == 0.0


class TestMeanMetric:
    def test_mean(self):
        assert mean_metric([0.0, 1.0]) == 0.5

    def test_empty(self):
        assert mean_metric([]) == 0.0
