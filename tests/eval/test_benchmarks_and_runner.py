"""Tests for benchmark definitions, runners, and reporting."""

import pytest

from repro.eval.benchmarks import (
    BENCHMARK_BUILDERS,
    Benchmark,
    build_benchmark,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.runner import (
    PRPoint,
    evaluate_doc_to_table,
    evaluate_join,
    evaluate_pkfk,
    evaluate_union_curve,
)
from repro.lakes.groundtruth import GroundTruth


class StubMethod:
    """Returns a fixed ranking regardless of query."""

    def __init__(self, ranking):
        self.ranking = ranking

    def rank_tables(self, doc_id, k):
        return self.ranking[:k]


def stub_benchmark(answers: dict, scope=None, task="doc_to_table") -> Benchmark:
    gt = GroundTruth(task=task)
    for q, rel in answers.items():
        for a in rel:
            gt.add(q, a)
    return Benchmark("T", task, generated=None, ground_truth=gt,
                     scope_tables=scope, k_values=(1, 2))


class TestBenchmarkScope:
    def test_filter_results(self):
        b = stub_benchmark({"q": {"a"}}, scope={"a", "b"})
        filtered = b.filter_results([("a", 1.0), ("z", 0.9)])
        assert filtered == [("a", 1.0)]

    def test_no_scope_passthrough(self):
        b = stub_benchmark({"q": {"a"}})
        assert b.filter_results([("z", 1.0)]) == [("z", 1.0)]

    def test_in_scope(self):
        b = stub_benchmark({"q": {"a"}}, scope={"a"})
        assert b.in_scope("a")
        assert not b.in_scope("z")


class TestDocToTableRunner:
    def test_perfect_method(self):
        b = stub_benchmark({"q1": {"a"}, "q2": {"a"}})
        method = StubMethod([("a", 1.0)])
        points = evaluate_doc_to_table(method, b, k_values=(1,))
        assert points[0].precision == 1.0
        assert points[0].recall == 1.0

    def test_useless_method(self):
        b = stub_benchmark({"q1": {"a"}})
        method = StubMethod([("z", 1.0)])
        points = evaluate_doc_to_table(method, b, k_values=(1,))
        assert points[0].precision == 0.0

    def test_out_of_scope_results_ignored(self):
        b = stub_benchmark({"q1": {"a"}}, scope={"a"})
        method = StubMethod([("z", 1.0), ("a", 0.9)])
        points = evaluate_doc_to_table(method, b, k_values=(1,))
        assert points[0].precision == 1.0

    def test_max_queries(self):
        b = stub_benchmark({f"q{i}": {"a"} for i in range(10)})
        calls = []

        class Counting(StubMethod):
            def rank_tables(self, doc_id, k):
                calls.append(doc_id)
                return super().rank_tables(doc_id, k)

        evaluate_doc_to_table(Counting([("a", 1.0)]), b, k_values=(1,),
                              max_queries=3)
        assert len(calls) == 3


class TestJoinRunner:
    def test_r_precision_perfect(self):
        b = stub_benchmark({"c1": {"c2", "c3"}}, task="syntactic_join")
        score = evaluate_join(lambda cid, k: [("c2", 1.0), ("c3", 0.9)][:k], b)
        assert score == 1.0

    def test_r_precision_half(self):
        b = stub_benchmark({"c1": {"c2", "c3"}}, task="syntactic_join")
        score = evaluate_join(lambda cid, k: [("c2", 1.0), ("zz", 0.9)][:k], b)
        assert score == 0.5


class TestPKFKRunner:
    def test_precision_recall(self):
        b = stub_benchmark({"pk1": {"fk1", "fk2"}}, task="pkfk")
        found = [("pk1", "fk1"), ("pk1", "bogus")]
        precision, recall = evaluate_pkfk(found, b)
        assert precision == 0.5
        assert recall == 0.5

    def test_empty_found(self):
        b = stub_benchmark({"pk1": {"fk1"}}, task="pkfk")
        assert evaluate_pkfk([], b) == (0.0, 0.0)


class TestUnionRunner:
    def test_curve_shape(self):
        b = stub_benchmark({"t1": {"t2", "t3"}}, task="union")
        points = evaluate_union_curve(
            lambda t, k: [("t2", 1.0), ("t3", 0.9), ("x", 0.1)][:k],
            b, k_values=(1, 2, 3))
        assert [p.k for p in points] == [1, 2, 3]
        assert points[2].recall == 1.0
        assert points[0].precision == 1.0


class TestBenchmarkBuilders:
    def test_registry_complete(self):
        expected = {"1A", "1B", "1C", "2A", "2B", "2C-SS", "2C-MS", "2C-LS",
                    "2D-drugbank", "2D-chembl", "2D-chebi", "3A", "3B"}
        assert set(BENCHMARK_BUILDERS) == expected

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("9Z")

    def test_build_1b(self):
        b = build_benchmark("1B")
        assert b.task == "doc_to_table"
        assert b.ground_truth.num_queries > 0
        assert b.scope_tables
        assert b.k_values

    def test_lakes_cached_across_benchmarks(self):
        b1 = build_benchmark("1B")
        b2 = build_benchmark("2B")
        assert b1.lake is b2.lake


class TestReporting:
    def test_format_table(self):
        out = format_table(["name", "score"], [["cmdl", 0.87], ["aurum", 0.2]],
                           title="Table X")
        assert "Table X" in out
        assert "cmdl" in out
        assert "0.87" in out

    def test_format_table_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_format_series(self):
        points = [PRPoint(1, 0.5, 0.25), PRPoint(5, 0.4, 0.6)]
        out = format_series("cmdl", points)
        assert "cmdl" in out
        assert "k=1" in out
        assert "precision=0.500" in out
