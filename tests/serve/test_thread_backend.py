"""Thread-backed LakeServer: parity, snapshot pinning, cache invalidation.

The serving front-end wraps a *live* session here, so parity is a pure
executor check: the batched ServingExecutor (3 round-trips per shard,
plan-level cache) must merge per-shard partials byte-identically to the
session's own ShardedExecutor on every primitive — cold, warm (cache
hits), and after interleaved mutations through the server's writer path.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.session import open_lake
from repro.core.srql import Q
from repro.relational.table import Table
from repro.serve import LakeServer

from tests.serve.conftest import (
    assert_same_results,
    copy_lake,
    mutation_args,
    mutation_script,
    parity_config,
    workload,
)

LAKES = ("pharma", "ukopen", "mlopen")


def sharded_session(lake, shards: int = 2):
    return open_lake(
        copy_lake(lake), parity_config(), shards=shards, global_stats=True
    )


class TestThreadParity:
    @pytest.mark.parametrize("name", LAKES)
    def test_sharded_parity_cold_and_mutated(self, seed_lakes, name):
        session = sharded_session(seed_lakes[name])
        server = LakeServer(session)
        try:
            queries = workload(session)
            expected = session.discover_batch(queries)
            got = server.discover_batch(queries)
            assert_same_results(expected, got, queries, f"{name} cold")

            # Mutate through the server's writer path (same live session).
            victim_doc, victim_table, shrunk = mutation_args(session)
            mutation_script(server, victim_doc, victim_table, shrunk)

            queries = workload(session)
            expected = session.discover_batch(queries)
            got = server.discover_batch(queries)
            assert_same_results(expected, got, queries, f"{name} mutated")
        finally:
            server.close()
            session.close()

    def test_monolithic_session_served_as_one_shard(self, seed_lakes):
        session = open_lake(copy_lake(seed_lakes["pharma"]), parity_config())
        server = LakeServer(session)
        try:
            assert server.num_shards == 1
            queries = workload(session)
            expected = [session.discover(q) for q in queries]
            got = server.discover_batch(queries)
            assert_same_results(expected, got, queries, "monolithic")
        finally:
            server.close()
            session.close()

    def test_joint_representation_is_rejected(self, seed_lakes):
        session = sharded_session(seed_lakes["pharma"])
        server = LakeServer(session)
        try:
            doc = sorted(session.document_ids)[0]
            with pytest.raises(RuntimeError, match="joint"):
                server.discover(
                    Q.cross_modal(doc, top_n=3, representation="joint")
                )
        finally:
            server.close()
            session.close()


class TestExecutionStats:
    def test_round_trips_and_timings_per_shard(self, seed_lakes):
        session = sharded_session(seed_lakes["pharma"])
        server = LakeServer(session, cache=False)
        try:
            server.discover_batch(workload(session))
            stats = server.last_stats
            # At most three batched round-trips per shard per workload.
            assert set(stats.shard_round_trips) <= {0, 1}
            assert all(1 <= n <= 3 for n in stats.shard_round_trips.values())
            assert set(stats.shard_seconds) == set(stats.shard_round_trips)
            assert all(s >= 0.0 for s in stats.shard_seconds.values())
            # Cache disabled: the counters stay untouched.
            assert stats.cache_hits == 0
            assert stats.cache_misses == 0
        finally:
            server.close()
            session.close()

    def test_cache_counters_on_repeat_workload(self, seed_lakes):
        session = sharded_session(seed_lakes["pharma"])
        server = LakeServer(session)
        try:
            queries = workload(session)
            server.discover_batch(queries)
            cold = server.last_stats
            assert cold.cache_misses > 0
            assert cold.cache_hits == 0

            server.discover_batch(queries)
            warm = server.last_stats
            assert warm.cache_misses == 0
            assert warm.cache_hits > 0
            # Every partial came from the cache: no shard round-trips.
            assert warm.shard_round_trips == {}
        finally:
            server.close()
            session.close()


class TestCacheInvalidation:
    def test_mutation_on_shard_k_invalidates_only_its_entries(
        self, seed_lakes
    ):
        """The satellite contract: after a table-local mutation routed to
        shard *k*, every newly cached partial either lives on shard *k* or
        depends on shard *k*'s new generation; partials of untouched
        shards keep hitting, and results still match the session."""
        session = sharded_session(seed_lakes["pharma"])
        server = LakeServer(session)
        try:
            queries = workload(session)
            server.discover_batch(queries)
            before = set(server.cache.keys())

            table = Table.from_dict("invalidation_probe", {
                "probe_id": ["P1", "P2"], "label": ["left", "right"],
            })
            k = session.shard_of(table.name)
            server.add_table(table)
            new_gen = server.generations[k]

            got = server.discover_batch(queries)
            stats = server.last_stats
            # Untouched-shard partials were reused, not recomputed...
            assert stats.cache_hits > 0
            # ...and every re-filled entry depends on the mutated shard.
            delta = set(server.cache.keys()) - before
            assert delta, "the mutation should have invalidated something"
            for shard, (tag, dep) in delta:
                assert shard == k or new_gen in dep, (
                    f"entry {tag!r} on shard {shard} (dep={dep}) does not "
                    f"depend on mutated shard {k}"
                )
            # Correctness after the partial reuse.
            expected = session.discover_batch(queries)
            assert_same_results(expected, got, queries, "post-invalidation")
        finally:
            server.close()
            session.close()


class TestSnapshotPinning:
    def test_inflight_query_completes_against_its_snapshot(self, seed_lakes):
        """A reader that already started keeps its pinned generations: the
        writer blocks until the reader drains, and the reader's results
        match the pre-mutation lake."""
        session = sharded_session(seed_lakes["pharma"])
        # cache=False so the reader actually round-trips (and blocks).
        server = LakeServer(session, cache=False)
        query = Q.content_search("rate change", k=5)
        baseline = server.discover(query)

        reader_entered = threading.Event()
        release_reader = threading.Event()
        writer_done = threading.Event()
        inner = server.backend.round_trip

        def blocking_round_trip(shard, ops, pinned_gen=None):
            reader_entered.set()
            assert release_reader.wait(timeout=30)
            return inner(shard, ops, pinned_gen=pinned_gen)

        results: dict = {}

        def read():
            results["read"] = server.discover(query)

        def write():
            mutation_script(server, *mutation_args(session))
            writer_done.set()

        try:
            server.backend.round_trip = blocking_round_trip
            reader = threading.Thread(target=read)
            reader.start()
            assert reader_entered.wait(timeout=30)

            writer = threading.Thread(target=write)
            writer.start()
            # The writer must not commit while the reader is in flight.
            assert not writer_done.wait(timeout=0.5)
            pre_mutation_generations = server.generations

            release_reader.set()
            reader.join(timeout=60)
            assert not reader.is_alive()
            assert writer_done.wait(timeout=60)
            writer.join(timeout=60)

            # The reader saw the pre-mutation snapshot, byte for byte.
            assert results["read"].items == baseline.items
            assert server.generations != pre_mutation_generations

            server.backend.round_trip = inner
            # And a fresh read sees the post-mutation lake.
            fresh = server.discover(query)
            assert fresh.items == session.discover(query).items
        finally:
            server.backend.round_trip = inner
            release_reader.set()
            server.close()
            session.close()


class TestLifecycle:
    def test_close_is_idempotent_and_leaves_session_open(self, seed_lakes):
        session = sharded_session(seed_lakes["pharma"])
        server = LakeServer(session)
        server.close()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.discover(Q.content_search("rate", k=3))
        with pytest.raises(RuntimeError, match="closed"):
            server.remove("anything")
        # Unowned backend: the caller's session survives the server.
        assert session.discover(Q.content_search("rate", k=3)) is not None
        session.close()

    def test_context_manager_closes(self, seed_lakes):
        session = open_lake(copy_lake(seed_lakes["pharma"]), parity_config())
        with LakeServer(session) as server:
            server.discover(Q.content_search("rate", k=3))
        assert server._closed
        session.close()

    def test_process_backend_requires_a_saved_catalog(self, seed_lakes):
        session = open_lake(copy_lake(seed_lakes["pharma"]), parity_config())
        with pytest.raises(ValueError, match="saved catalog"):
            LakeServer(session, backend="process")
        session.close()

    def test_unknown_backend_rejected(self, seed_lakes):
        session = open_lake(copy_lake(seed_lakes["pharma"]), parity_config())
        with pytest.raises(ValueError, match="backend"):
            LakeServer(session, backend="fiber")
        session.close()
