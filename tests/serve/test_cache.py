"""ResultCache: LRU behaviour, counters, thread safety."""

from __future__ import annotations

import threading

from repro.serve.cache import ResultCache


def test_get_put_roundtrip():
    cache = ResultCache()
    assert cache.get(0, ("kw", (1,))) is None
    cache.put(0, ("kw", (1,)), [1, 2, 3])
    assert cache.get(0, ("kw", (1,))) == [1, 2, 3]
    assert len(cache) == 1


def test_keys_are_shard_scoped():
    cache = ResultCache()
    cache.put(0, ("kw", (1,)), "a")
    cache.put(1, ("kw", (1,)), "b")
    assert cache.get(0, ("kw", (1,))) == "a"
    assert cache.get(1, ("kw", (1,))) == "b"
    assert sorted(cache.keys()) == [(0, ("kw", (1,))), (1, ("kw", (1,)))]


def test_counters_track_hits_and_misses():
    cache = ResultCache()
    cache.get(0, "k")            # miss
    cache.put(0, "k", 1)
    cache.get(0, "k")            # hit
    cache.get(0, "other")        # miss
    assert cache.hits == 1
    assert cache.misses == 2


def test_none_values_are_cacheable():
    cache = ResultCache()
    cache.put(0, "k", None)
    assert cache.get(0, "k") is None
    # ...but it counted as a hit: the sentinel distinguishes absence.
    assert cache.hits == 1
    assert cache.misses == 0


def test_lru_eviction_prefers_recent_entries():
    cache = ResultCache(max_entries=3)
    for i in range(3):
        cache.put(0, i, i)
    cache.get(0, 0)              # touch 0: now 1 is the oldest
    cache.put(0, 3, 3)           # evicts 1
    assert cache.get(0, 0) == 0
    assert cache.get(0, 1) is None
    assert cache.get(0, 2) == 2
    assert cache.get(0, 3) == 3
    assert len(cache) == 3


def test_put_refreshes_recency():
    cache = ResultCache(max_entries=2)
    cache.put(0, "a", 1)
    cache.put(0, "b", 2)
    cache.put(0, "a", 10)        # refresh "a": "b" is now the oldest
    cache.put(0, "c", 3)         # evicts "b"
    assert cache.get(0, "a") == 10
    assert cache.get(0, "b") is None
    assert cache.get(0, "c") == 3


def test_clear_resets_entries_but_keeps_counters():
    cache = ResultCache()
    cache.put(0, "k", 1)
    cache.get(0, "k")
    cache.clear()
    assert len(cache) == 0
    assert cache.get(0, "k") is None
    assert cache.hits == 1
    assert cache.misses == 1


def test_concurrent_access_is_safe():
    cache = ResultCache(max_entries=64)
    errors = []

    def worker(base):
        try:
            for i in range(500):
                key = (base * 500 + i) % 96  # force evictions
                cache.put(base, key, i)
                cache.get(base, key)
                cache.get((base + 1) % 4, key)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert len(cache) <= 64
