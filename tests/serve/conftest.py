"""Shared helpers for the serving-layer tests.

The parity bar mirrors tests/core/test_sharding.py: the documented parity
configuration (no joint model, corpus-independent hashing embedder,
``global_stats=True``) under which serving front-ends must return
byte-identical top-k to the in-process session they serve.
"""

from __future__ import annotations

import pytest

from repro.core.sharding import ShardedLakeSession
from repro.core.srql import Q
from repro.core.system import CMDLConfig
from repro.embed.hashing_embedder import HashingEmbedder
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table


def parity_config() -> CMDLConfig:
    return CMDLConfig(use_joint=False, embedder=HashingEmbedder(seed=0))


def copy_lake(lake: DataLake) -> DataLake:
    fresh = DataLake(name=lake.name)
    for table in lake.tables:
        fresh.add_table(table)
    for document in lake.documents:
        fresh.add_document(document)
    return fresh


def workload(session, tables_n: int = 4, docs_n: int = 2) -> list:
    """All six primitives over a deterministic slice of the lake."""
    if isinstance(session, ShardedLakeSession):
        tables = sorted(session.table_names)[:tables_n]
        docs = sorted(session.document_ids)[:docs_n]
    else:
        tables = sorted(session.lake.table_names)[:tables_n]
        docs = sorted(d.doc_id for d in session.lake.documents)[:docs_n]
    queries = [
        Q.content_search("rate change", k=5),
        Q.content_search("name", mode="table", k=5),
        Q.metadata_search("report", k=5),
        Q.cross_modal("compound formulation trial", top_n=3,
                      representation="solo"),
    ]
    queries += [
        Q.cross_modal(doc, top_n=3, representation="solo") for doc in docs
    ]
    for table in tables:
        queries += [
            Q.joinable(table, top_n=3),
            Q.unionable(table, top_n=3),
            Q.pkfk(table, top_n=3),
        ]
    return queries


def mutation_script(target, victim_doc: str, victim_table: str,
                    shrink_table: Table) -> None:
    """The interleaved add/remove/update script, identical on any target
    exposing the mutation surface (sessions and servers alike)."""
    target.add_table(Table.from_dict("parity_extra", {
        "extra_id": ["X1", "X2", "X3"],
        "label": ["alpha", "beta", "gamma"],
    }))
    target.add_documents([
        Document(doc_id="doc:parity0", title="Parity report",
                 text="A fresh report about compound rates and alpha labels."),
        Document(doc_id="doc:parity1", title="Second parity report",
                 text="Beta labels appear in the rate change discussion."),
    ])
    target.remove(victim_doc)
    target.remove(victim_table)
    target.update_table(shrink_table)


def mutation_args(session) -> tuple[str, str, Table]:
    """(victim doc, victim table, shrunken replacement) for the script,
    computed from a live session before anything mutates."""
    if isinstance(session, ShardedLakeSession):
        tables = sorted(session.table_names)
        docs = sorted(session.document_ids)
        target = tables[0]
        owner = session.shards[session.shard_of(target)]
        table = owner.lake.table(target)
    else:
        tables = sorted(session.lake.table_names)
        docs = sorted(d.doc_id for d in session.lake.documents)
        target = tables[0]
        table = session.lake.table(target)
    keep = list(range(max(1, table.num_rows // 2)))
    return docs[0], tables[-1], table.select_rows(keep, target)


def assert_same_results(expected: list, got: list, queries: list,
                        context: str) -> None:
    for query, want, have in zip(queries, expected, got):
        assert have.items == want.items, (
            f"{context}: serving diverged on {query!r}\n"
            f"  expected={want.items}\n  got={have.items}"
        )


@pytest.fixture(scope="module")
def seed_lakes(pharma_generated, ukopen_generated, mlopen_generated):
    return {
        "pharma": pharma_generated.lake,
        "ukopen": ukopen_generated.lake,
        "mlopen": mlopen_generated.lake,
    }
