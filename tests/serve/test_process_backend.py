"""Process-backed LakeServer: one worker process per shard.

The acceptance bar of the serving tentpole: with ``global_stats=True``
and the hashing embedder, a process-backed server over a saved catalog
returns byte-identical top-k to the in-process ShardedLakeSession for
all six primitives on all three seed lakes — cold (fresh boot via the
catalog-reopen path) and after interleaved mutations applied through the
server's RPC writer path (including the corpus-wide df ripple that
document churn triggers under global statistics).
"""

from __future__ import annotations

import gc
import shutil
import time

import pytest

from repro.core.session import open_lake
from repro.core.srql import Q
from repro.relational.table import Table
from repro.serve import LakeServer, ShardUnavailable, faults

from tests.serve.conftest import (
    assert_same_results,
    copy_lake,
    mutation_args,
    mutation_script,
    parity_config,
    workload,
)

LAKES = ("pharma", "ukopen", "mlopen")


def saved_session(lake, path, shards: int = 2):
    """Fit + save a sharded session, then unbind its store so the process
    server is the catalog's only writer. The session object stays usable
    in memory as the parity reference."""
    session = open_lake(
        copy_lake(lake), parity_config(), shards=shards, global_stats=True
    )
    session.save(path)
    session.close()
    return session


def wait_exit(procs, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(p.poll() is not None for p in procs):
            return True
        time.sleep(0.05)
    return False


def parity_case(lake, tmp_path, shards: int) -> None:
    reference = saved_session(lake, tmp_path / "lake", shards=shards)
    server = LakeServer(tmp_path / "lake", backend="process")
    try:
        assert server.num_shards == shards
        queries = workload(reference)
        expected = reference.discover_batch(queries)
        got = server.discover_batch(queries)
        assert_same_results(
            expected, got, queries, f"{lake.name} shards={shards} cold"
        )

        mutation = mutation_args(reference)
        mutation_script(reference, *mutation)
        mutation_script(server, *mutation)

        queries = workload(reference)
        expected = reference.discover_batch(queries)
        got = server.discover_batch(queries)
        assert_same_results(
            expected, got, queries, f"{lake.name} shards={shards} mutated"
        )
    finally:
        server.close()


class TestProcessParity:
    @pytest.mark.parametrize("name", LAKES)
    def test_two_shards_cold_and_mutated(self, seed_lakes, name, tmp_path):
        parity_case(seed_lakes[name], tmp_path, shards=2)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", LAKES)
    def test_four_shards_cold_and_mutated(self, seed_lakes, name, tmp_path):
        parity_case(seed_lakes[name], tmp_path, shards=4)

    def test_checkpoint_keeps_catalog_reopenable(self, seed_lakes, tmp_path):
        """After mutating and checkpointing through the server, the same
        directory reopens in-process with the mutations folded in."""
        reference = saved_session(seed_lakes["pharma"], tmp_path / "lake")
        server = LakeServer(tmp_path / "lake", backend="process")
        try:
            mutation = mutation_args(reference)
            mutation_script(reference, *mutation)
            mutation_script(server, *mutation)
            server.checkpoint()
        finally:
            server.close()

        reopened = open_lake(tmp_path / "lake")
        try:
            queries = workload(reference)
            expected = reference.discover_batch(queries)
            got = reopened.discover_batch(queries)
            assert_same_results(expected, got, queries, "reopen after serve")
        finally:
            reopened.close()


class TestJournalReplay:
    def test_unsaved_mutations_replay_on_reboot(self, seed_lakes, tmp_path):
        """Mutations applied through the server but never checkpointed
        live in the shard journals; a rebooted server replays them."""
        reference = saved_session(seed_lakes["pharma"], tmp_path / "lake")
        queries = workload(reference)

        server = LakeServer(tmp_path / "lake", backend="process")
        try:
            mutation = mutation_args(reference)
            mutation_script(reference, *mutation)
            mutation_script(server, *mutation)
            expected = server.discover_batch(queries)
            generations = server.generations
        finally:
            server.close()  # no checkpoint: the journal tail stays

        rebooted = LakeServer(tmp_path / "lake", backend="process")
        try:
            got = rebooted.discover_batch(queries)
            assert_same_results(expected, got, queries, "journal replay")
            want = reference.discover_batch(queries)
            assert_same_results(want, got, queries, "replay vs reference")
        finally:
            rebooted.close()


class TestCrashWindow:
    def test_kill_between_append_and_apply_replays_on_reboot(
        self, seed_lakes, tmp_path
    ):
        """The write-ahead window: a worker killed after the journal
        append committed but before the op applied. With recovery
        disabled the mutation fails in-flight — but the journaled record
        is durable, so a reboot replays it to the exact generation an
        undisturbed server reaches."""
        reference = saved_session(seed_lakes["pharma"], tmp_path / "lake")
        shutil.copytree(tmp_path / "lake", tmp_path / "twin")
        table = Table.from_dict(
            "window_extra", {"wx_id": ["W1", "W2"], "label": ["up", "down"]}
        )
        marker = tmp_path / "append-crash"
        with faults.inject(f"crash:after_journal_append@{marker}"):
            server = LakeServer(
                tmp_path / "lake", backend="process", max_respawns=0
            )
            try:
                with pytest.raises(ShardUnavailable):
                    server.add_table(table)
            finally:
                server.close()
        assert marker.exists(), "the injected crash never fired"

        twin = LakeServer(tmp_path / "twin", backend="process")
        rebooted = LakeServer(tmp_path / "lake", backend="process")
        try:
            twin.add_table(table)
            assert "window_extra" in rebooted.backend.catalog.table_columns
            assert rebooted.generations == twin.generations
            reference.add_table(table)
            queries = workload(reference)
            expected = twin.discover_batch(queries)
            got = rebooted.discover_batch(queries)
            assert_same_results(
                expected, got, queries, "crash-window reboot vs undisturbed"
            )
            want = reference.discover_batch(queries)
            assert_same_results(
                want, got, queries, "crash-window reboot vs reference"
            )
        finally:
            twin.close()
            rebooted.close()


class TestWorkerLifecycle:
    def test_close_shuts_workers_down(self, seed_lakes, tmp_path):
        saved_session(seed_lakes["pharma"], tmp_path / "lake")
        server = LakeServer(tmp_path / "lake", backend="process")
        procs = [worker.proc for worker in server.backend.workers]
        assert len(procs) == 2
        assert all(p.poll() is None for p in procs)
        server.close()
        assert wait_exit(procs), "workers still alive after close()"
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.discover(Q.content_search("rate", k=3))

    def test_gc_reaps_abandoned_workers(self, seed_lakes, tmp_path):
        saved_session(seed_lakes["pharma"], tmp_path / "lake")
        server = LakeServer(tmp_path / "lake", backend="process")
        procs = [worker.proc for worker in server.backend.workers]
        del server
        gc.collect()
        assert wait_exit(procs), "workers leaked after the server was GC'd"

    def test_serve_contract_on_sessions(self, seed_lakes, tmp_path):
        """``session.serve(backend='process')`` hands the catalog over:
        the session closes, the server becomes the sole writer."""
        session = open_lake(
            copy_lake(seed_lakes["pharma"]), parity_config(),
            shards=2, global_stats=True,
        )
        # Unsaved sessions cannot be process-served.
        with pytest.raises(ValueError, match="save"):
            session.serve(backend="process")

        session.save(tmp_path / "lake")
        queries = workload(session)
        expected = session.discover_batch(queries)
        server = session.serve(backend="process")
        try:
            assert session._store is None  # handed over
            got = server.discover_batch(queries)
            assert_same_results(expected, got, queries, "session.serve")
        finally:
            server.close()


class TestMutationSurface:
    def test_validation_errors_match_the_session(self, seed_lakes, tmp_path):
        reference = saved_session(seed_lakes["pharma"], tmp_path / "lake")
        server = LakeServer(tmp_path / "lake", backend="process")
        try:
            ghost = Table.from_dict("ghost", {"x": [1]})
            with pytest.raises(KeyError) as server_err:
                server.update_table(ghost)
            with pytest.raises(KeyError) as session_err:
                reference.update_table(ghost)
            assert str(server_err.value) == str(session_err.value)

            with pytest.raises(KeyError) as server_err:
                server.remove("no_such_thing")
            with pytest.raises(KeyError) as session_err:
                reference.remove("no_such_thing")
            assert str(server_err.value) == str(session_err.value)

            # A failed mutation leaves no journal residue: a reboot sees
            # the same lake.
            generations = server.generations
            server.close()
            rebooted = LakeServer(tmp_path / "lake", backend="process")
            try:
                assert rebooted.generations == generations
            finally:
                rebooted.close()
        finally:
            server.close()

    def test_refresh_and_rebalance_are_rejected(self, seed_lakes, tmp_path):
        saved_session(seed_lakes["pharma"], tmp_path / "lake")
        server = LakeServer(tmp_path / "lake", backend="process")
        try:
            with pytest.raises(NotImplementedError, match="open_lake"):
                server.backend.apply("refresh", {})
            with pytest.raises(NotImplementedError, match="open_lake"):
                server.backend.apply("rebalance", {})
        finally:
            server.close()

    def test_missing_catalog_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="catalog.sqlite"):
            LakeServer(tmp_path / "nowhere", backend="process")
