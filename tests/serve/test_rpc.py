"""RPC framing: slab round-trips, socket transport, error shipping."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.serve.ops import ColumnLite
from repro.serve.rpc import (
    _U32,
    _U64,
    MAX_PART_BYTES,
    Connection,
    ConnectionClosed,
    FrameCorrupt,
    RemoteShardError,
    RPCError,
    WorkerTimeout,
    check_response,
    decode_message,
    encode_message,
    frame_bytes,
)


def roundtrip(obj):
    return decode_message([bytes(p) for p in encode_message(obj)])


class TestMessageCodec:
    def test_plain_payloads_use_a_single_part(self):
        parts = encode_message(("ok", {"generation": 3, "names": ["a", "b"]}))
        assert len(parts) == 1
        assert roundtrip(("ok", {"generation": 3})) == ("ok", {"generation": 3})

    def test_arrays_travel_as_typed_slabs(self):
        payload = {
            "encoding": np.arange(12, dtype=np.float32).reshape(3, 4),
            "ids": np.array([5, 7, 11], dtype=np.int64),
            "k": 10,
        }
        parts = encode_message(payload)
        assert len(parts) == 3  # residual + one slab per array
        restored = decode_message(parts)
        assert restored["k"] == 10
        np.testing.assert_array_equal(restored["encoding"], payload["encoding"])
        np.testing.assert_array_equal(restored["ids"], payload["ids"])
        assert restored["encoding"].dtype == np.float32

    def test_nested_containers_and_empty_arrays(self):
        payload = [
            ("batch", {"ops": [("keyword", {"k": 5})]}),
            {"empty": np.zeros((0, 4), dtype=np.float64)},
        ]
        restored = roundtrip(payload)
        assert restored[0] == ("batch", {"ops": [("keyword", {"k": 5})]})
        assert restored[1]["empty"].shape == (0, 4)

    def test_column_lite_survives_the_codec(self):
        # split_arrays rebuilds tuples, so ColumnLite must not be one.
        lite = ColumnLite("drugs", None)
        restored = roundtrip({"col": lite})["col"]
        assert isinstance(restored, ColumnLite)
        assert restored.table_name == "drugs"
        assert restored.tags is None


class TestConnection:
    def pair(self):
        a, b = socket.socketpair()
        return Connection(a), Connection(b)

    def test_send_recv_roundtrip(self):
        left, right = self.pair()
        try:
            message = ("keyword", {"value": "rate", "vec": np.ones(8)})
            left.send(message)
            op, payload = right.recv()
            assert op == "keyword"
            np.testing.assert_array_equal(payload["vec"], np.ones(8))
        finally:
            left.close()
            right.close()

    def test_many_messages_in_both_directions(self):
        left, right = self.pair()
        try:
            def echo():
                for _ in range(20):
                    right.send(right.recv())

            thread = threading.Thread(target=echo)
            thread.start()
            for i in range(20):
                left.send({"i": i, "slab": np.full(16, i, dtype=np.int32)})
                back = left.recv()
                assert back["i"] == i
                assert back["slab"][0] == i
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            left.close()
            right.close()

    def test_closed_peer_raises_typed_error_not_bare_eof(self):
        left, right = self.pair()
        left.close()
        with pytest.raises(ConnectionClosed, match="closed"):
            right.recv()
        assert not issubclass(ConnectionClosed, EOFError)
        right.close()

    def test_mid_frame_close_raises_connection_closed(self):
        left, right = self.pair()
        frame = frame_bytes({"k": 1})
        left._sock.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(ConnectionClosed, match="mid-frame"):
            right.recv()
        right.close()

    def test_recv_timeout_raises_worker_timeout(self):
        left, right = self.pair()
        try:
            with pytest.raises(WorkerTimeout, match="no response within"):
                right.recv(timeout=0.05)
        finally:
            left.close()
            right.close()

    def test_oversized_part_raises_frame_corrupt(self):
        left, right = self.pair()
        try:
            left._sock.sendall(_U32.pack(1) + _U64.pack(MAX_PART_BYTES + 1))
            with pytest.raises(FrameCorrupt):
                right.recv()
        finally:
            left.close()
            right.close()

    def test_undecodable_frame_raises_frame_corrupt(self):
        left, right = self.pair()
        try:
            garbage = b"\x00not msgpack\xff" * 3
            left._sock.sendall(
                _U32.pack(1) + _U64.pack(len(garbage)) + garbage
            )
            with pytest.raises(FrameCorrupt, match="failed to decode"):
                right.recv()
        finally:
            left.close()
            right.close()

    def test_typed_errors_are_rpc_errors(self):
        for exc_type in (ConnectionClosed, WorkerTimeout, FrameCorrupt):
            assert issubclass(exc_type, RPCError)
        assert issubclass(RPCError, RuntimeError)

    def test_close_is_idempotent(self):
        left, right = self.pair()
        left.close()
        left.close()
        right.close()
        right.close()


class TestCheckResponse:
    def test_ok_unwraps(self):
        assert check_response(("ok", [1, 2])) == [1, 2]

    def test_err_raises_with_remote_traceback(self):
        with pytest.raises(RemoteShardError, match="ValueError: boom"):
            check_response(("err", "Traceback ...\nValueError: boom"))
