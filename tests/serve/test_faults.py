"""Fault-tolerant serving: supervision, recovery, degraded scatter-gather.

The recovery invariant under test throughout: after any injected fault —
worker kill, hang past the deadline, torn reply frame, corrupted frame,
crash inside the journal-append window, crash mid-checkpoint — a
recovered process-backed server returns byte-identical top-k to an
undisturbed one, across all six discovery primitives. Faults are armed
with :mod:`repro.serve.faults` so every run replays deterministically.
"""

from __future__ import annotations

import shutil
import threading
from types import SimpleNamespace

import pytest

from repro.core.session import open_lake
from repro.core.srql import Q
from repro.relational.table import Table
from repro.serve import (
    LakeServer,
    RemoteShardError,
    ShardUnavailable,
    WorkerSupervisor,
)
from repro.serve import faults
from repro.serve.worker import ShardWorker
from repro.store import CatalogCorrupt, ShardStore

from tests.serve.conftest import assert_same_results, workload
from tests.serve.test_process_backend import saved_session

#: Supervisor knobs keeping respawn loops fast in tests.
FAST = {"backoff_base": 0.01, "backoff_cap": 0.05}


@pytest.fixture(autouse=True)
def _no_fault_leak():
    """No test leaves a fault spec armed for the ones after it."""
    yield
    faults.clear()


@pytest.fixture(scope="module")
def seed(seed_lakes, tmp_path_factory):
    """One fitted+saved 2-shard pharma catalog, with the undisturbed
    reference session and its expected workload results."""
    root = tmp_path_factory.mktemp("fault-seed")
    reference = saved_session(seed_lakes["pharma"], root / "lake", shards=2)
    queries = workload(reference)
    expected = reference.discover_batch(queries)
    return SimpleNamespace(
        path=root / "lake",
        reference=reference,
        queries=queries,
        expected=expected,
    )


def lake_copy(seed, tmp_path, name: str = "lake"):
    destination = tmp_path / name
    shutil.copytree(seed.path, destination)
    return destination


def kill_worker(server, shard: int) -> None:
    """Crash a worker the way the OOM killer would: no parent-side
    bookkeeping runs until the next call notices."""
    worker = server.backend.workers[shard]
    worker.proc.kill()
    worker.proc.wait()


class TestRecoveryInvariant:
    def test_killed_workers_respawn_to_parity(self, seed, tmp_path):
        # cache=False so every batch re-reads both shards — a warm cache
        # would serve the second batch without touching the dead worker.
        server = LakeServer(
            lake_copy(seed, tmp_path), backend="process", cache=False, **FAST
        )
        try:
            for shard in range(server.num_shards):
                kill_worker(server, shard)
                got = server.discover_batch(seed.queries)
                assert_same_results(
                    seed.expected, got, seed.queries, f"kill shard {shard}"
                )
                assert server.last_stats.degraded_shards == []
            assert server.backend.total_respawns >= server.num_shards
        finally:
            server.close()

    def test_hung_worker_times_out_and_recovers(self, seed, tmp_path):
        with faults.inject(f"delay:keyword:30@{tmp_path}/hang-once"):
            server = LakeServer(
                lake_copy(seed, tmp_path), backend="process",
                request_timeout=5.0, **FAST,
            )
            try:
                got = server.discover_batch(seed.queries)
                assert_same_results(
                    seed.expected, got, seed.queries, "timeout recovery"
                )
                assert server.last_stats.retries >= 1
                assert server.backend.total_respawns >= 1
            finally:
                server.close()

    @pytest.mark.parametrize("spec", [
        "mid_frame:keyword",
        "corrupt:keyword",
        "mid_frame:table_sketches",
        "corrupt:union_phase1",
    ])
    def test_torn_and_corrupt_replies_recover_to_parity(
        self, seed, tmp_path, spec
    ):
        with faults.inject(f"{spec}@{tmp_path}/reply-once"):
            server = LakeServer(
                lake_copy(seed, tmp_path), backend="process", **FAST
            )
            try:
                got = server.discover_batch(seed.queries)
                assert_same_results(seed.expected, got, seed.queries, spec)
                assert server.last_stats.retries >= 1
                assert server.backend.total_respawns >= 1
            finally:
                server.close()


class TestMutationCrashWindows:
    def test_append_crash_mutation_is_never_lost(self, seed, tmp_path):
        """A worker dying right after the write-ahead append: the same
        apply() call finishes the mutation through recovery replay, and
        the result matches an undisturbed server byte for byte."""
        table = Table.from_dict(
            "crash_extra", {"cx_id": ["A1", "A2"], "label": ["red", "blue"]}
        )
        catalog = lake_copy(seed, tmp_path)
        twin_catalog = lake_copy(seed, tmp_path, "twin")

        with faults.inject(f"crash:after_journal_append@{tmp_path}/append-once"):
            server = LakeServer(catalog, backend="process", **FAST)
            try:
                server.add_table(table)
                assert server.backend.total_respawns >= 1
                gens = server.generations
                got = server.discover_batch(seed.queries)
            finally:
                server.close()

        twin = LakeServer(twin_catalog, backend="process")
        try:
            twin.add_table(table)
            assert twin.generations == gens
            expected = twin.discover_batch(seed.queries)
            assert_same_results(
                expected, got, seed.queries, "append-crash vs undisturbed"
            )

            # The journal tail replays the mutation on reboot too.
            rebooted = LakeServer(catalog, backend="process")
            try:
                assert rebooted.generations == twin.generations
                got = rebooted.discover_batch(seed.queries)
                assert_same_results(
                    expected, got, seed.queries, "append-crash reboot"
                )
            finally:
                rebooted.close()
        finally:
            twin.close()

    def test_mid_checkpoint_crash_keeps_the_journal(self, seed, tmp_path):
        """A crash between the staged full-state rewrite and the journal
        clear rolls the rewrite back; the journal survives, the retry
        lands, and the folded catalog reopens to parity."""
        catalog = lake_copy(seed, tmp_path)
        table = Table.from_dict(
            "ckpt_extra", {"ck_id": ["B1", "B2"], "label": ["one", "two"]}
        )
        with faults.inject(f"crash:mid_checkpoint@{tmp_path}/ckpt-once"):
            server = LakeServer(catalog, backend="process", **FAST)
            try:
                server.add_table(table)
                with pytest.raises(ShardUnavailable, match="mid-checkpoint"):
                    server.checkpoint()
                server.checkpoint()  # recovery replayed the tail: retry folds
                got = server.discover_batch(seed.queries)
            finally:
                server.close()

        reference = open_lake(lake_copy(seed, tmp_path, "ref"))
        try:
            reference.add_table(table)
            expected = reference.discover_batch(seed.queries)
            assert_same_results(
                expected, got, seed.queries, "post-checkpoint-crash serve"
            )
            reopened = open_lake(catalog)
            try:
                got = reopened.discover_batch(seed.queries)
                assert_same_results(
                    expected, got, seed.queries, "checkpoint-crash reopen"
                )
            finally:
                reopened.close()
        finally:
            reference.close()


class TestDegraded:
    def down_server(self, seed, tmp_path, **kwargs):
        """A server whose shard 1 is dead with recovery disabled."""
        server = LakeServer(
            lake_copy(seed, tmp_path), backend="process",
            max_respawns=0, **kwargs,
        )
        kill_worker(server, 1)
        return server

    def test_fail_mode_raises_shard_unavailable(self, seed, tmp_path):
        server = self.down_server(seed, tmp_path)
        try:
            with pytest.raises(ShardUnavailable, match="circuit open") as err:
                server.discover_batch(seed.queries)
            # Satellite guarantee: no bare transport error ever escapes
            # the discovery surface.
            assert not isinstance(err.value, (EOFError, OSError))
        finally:
            server.close()

    def test_partial_mode_serves_the_live_shards(self, seed, tmp_path):
        server = self.down_server(seed, tmp_path, degraded="partial")
        try:
            results = server.discover_batch(seed.queries)
            stats = server.last_stats
            assert stats.degraded_shards == [1]
            assert len(results) == len(seed.queries)
            # The live shard still contributes real partials.
            assert any(result.items for result in results)
            # Partial results are served, never cached: a second pass
            # reports the same degradation instead of a stale hit.
            server.discover_batch(seed.queries)
            assert server.last_stats.degraded_shards == [1]
        finally:
            server.close()

    def test_mutations_never_degrade(self, seed, tmp_path):
        server = self.down_server(seed, tmp_path, degraded="partial")
        try:
            router = server.backend.router

            def table_owned_by(shard: int) -> str:
                i = 0
                while True:
                    name = f"degraded_extra_{i}"
                    if router.shard_of(name) == shard:
                        return name
                    i += 1

            dead = Table.from_dict(table_owned_by(1), {"x": [1, 2]})
            with pytest.raises(ShardUnavailable, match="circuit open"):
                server.add_table(dead)
            live_name = table_owned_by(0)
            server.add_table(Table.from_dict(live_name, {"x": [1, 2]}))
            assert live_name in server.backend.catalog.table_columns
        finally:
            server.close()


class TestCircuitBreaker:
    def test_circuit_opens_then_reset_rearms(self, seed, tmp_path):
        server = LakeServer(
            lake_copy(seed, tmp_path), backend="process",
            max_respawns=2, cache=False, **FAST,
        )
        try:
            query = Q.content_search("rate change", k=5)
            baseline = server.discover(query)

            faults.install("crash:boot")  # every respawn dies at boot
            try:
                kill_worker(server, 0)
                with pytest.raises(ShardUnavailable, match="circuit open"):
                    server.discover(query)
            finally:
                faults.clear()
            assert server.backend.supervisor.failures[0] >= 2

            # Cleared faults alone don't close the circuit…
            with pytest.raises(ShardUnavailable, match="reset_shard"):
                server.discover(query)
            # …an explicit reset does.
            server.reset_shard(0)
            assert server.discover(query).items == baseline.items
            assert server.backend.total_respawns >= 1
        finally:
            server.close()


class TestSupervisorUnits:
    def test_backoff_doubles_and_caps(self):
        delays: list[float] = []
        supervisor = WorkerSupervisor(
            max_respawns=3, backoff_base=0.1, backoff_cap=0.25,
            sleep=delays.append,
        )
        supervisor.backoff(0)
        assert delays == []  # no failures yet: no sleep
        for _ in range(3):
            supervisor.note_failure(0)
            supervisor.backoff(0)
        assert delays == [0.1, 0.2, 0.25]
        assert supervisor.tripped(0)
        supervisor.note_ok(0)
        assert not supervisor.tripped(0)
        supervisor.note_respawn(0)
        supervisor.note_respawn(0)
        assert supervisor.respawns[0] == 2

    def test_zero_max_respawns_means_recovery_disabled(self):
        supervisor = WorkerSupervisor(max_respawns=0)
        assert supervisor.tripped(7)


class TestHeartbeat:
    def test_ping_tracks_liveness(self, seed, tmp_path):
        server = LakeServer(lake_copy(seed, tmp_path), backend="process")
        try:
            workers = server.backend.workers
            assert all(worker.ping() for worker in workers)
            kill_worker(server, 0)
            assert workers[0].ping() is False
        finally:
            server.close()

    def test_ping_answers_while_the_serve_loop_is_busy(self, seed, tmp_path):
        """A hung worker is distinguishable from a dead one: the request
        pipe stalls but the heartbeat thread keeps answering."""
        query = seed.queries[0]
        with faults.inject(f"delay:keyword:2@{tmp_path}/busy-once"):
            server = LakeServer(lake_copy(seed, tmp_path), backend="process")
            try:
                box: dict = {}
                reader = threading.Thread(
                    target=lambda: box.update(result=server.discover(query))
                )
                reader.start()
                try:
                    assert all(
                        worker.ping(timeout=1.5)
                        for worker in server.backend.workers
                    )
                finally:
                    reader.join(timeout=30)
                assert not reader.is_alive()
                assert box["result"].items == seed.expected[0].items
            finally:
                server.close()


class TestCatalogIntegrity:
    def test_truncated_shard_file_fails_boot_with_the_path(
        self, seed, tmp_path
    ):
        catalog = lake_copy(seed, tmp_path)
        shard_file = catalog / "shard-0000.sqlite"
        data = shard_file.read_bytes()
        shard_file.write_bytes(data[: len(data) // 3])
        for suffix in ("-wal", "-shm"):
            sidecar = shard_file.with_name(shard_file.name + suffix)
            sidecar.unlink(missing_ok=True)
        with pytest.raises(RemoteShardError) as err:
            LakeServer(catalog, backend="process")
        assert "CatalogCorrupt" in str(err.value)
        assert "shard-0000.sqlite" in str(err.value)

    def test_schema_version_mismatch_is_catalog_corrupt(self, seed, tmp_path):
        catalog = lake_copy(seed, tmp_path)
        shard_file = catalog / "shard-0000.sqlite"
        db = ShardStore(shard_file)
        db.put_meta("schema_version", "99")
        db.commit()
        db.close()
        with pytest.raises(CatalogCorrupt, match="schema version"):
            ShardStore(shard_file)
        assert issubclass(CatalogCorrupt, ValueError)

    def test_quick_check_passes_on_a_healthy_shard(self, seed, tmp_path):
        db = ShardStore(lake_copy(seed, tmp_path) / "shard-0001.sqlite")
        try:
            db.integrity_check()
        finally:
            db.close()

    def test_quick_check_flags_a_torn_shard(self, seed, tmp_path):
        catalog = lake_copy(seed, tmp_path)
        shard_file = catalog / "shard-0000.sqlite"
        data = bytearray(shard_file.read_bytes())
        # Tear a page in the middle; the header stays valid so the file
        # still opens and the quick_check gate is what must catch it.
        start = len(data) // 2
        data[start : start + 4096] = b"\xde\xad\xbe\xef" * 1024
        shard_file.write_bytes(bytes(data))
        # Depending on where the tear lands, either the open-time meta
        # read or the quick_check gate trips — both are CatalogCorrupt.
        with pytest.raises(CatalogCorrupt) as err:
            db = ShardStore(shard_file)
            db.integrity_check()
        assert "shard-0000.sqlite" in str(err.value)


class TestShutdownTolerance:
    def test_server_close_survives_dead_children(self, seed, tmp_path):
        server = LakeServer(lake_copy(seed, tmp_path), backend="process")
        for shard in range(server.num_shards):
            kill_worker(server, shard)
        server.close()
        server.close()  # idempotent

    def test_worker_close_and_kill_are_idempotent(self, seed, tmp_path):
        catalog = lake_copy(seed, tmp_path)
        worker = ShardWorker(catalog / "shard-0000.sqlite", index=0)
        worker.wait_ready(timeout=30)
        worker.proc.kill()
        worker.proc.wait()
        worker.close()  # child already dead: must not raise
        worker.close()
        worker.kill()


class TestFaultSpecs:
    def test_parse_round_trips_the_grammar(self):
        parsed = faults.parse(
            "crash:boot;delay:keyword:1.5;mid_frame:batch@/tmp/m;corrupt:keyword"
        )
        assert [fault.kind for fault in parsed] == [
            "crash", "delay", "mid_frame", "corrupt"
        ]
        assert parsed[1].seconds == 1.5
        assert parsed[2].marker == "/tmp/m"
        assert parsed[3].marker is None

    @pytest.mark.parametrize("bad", [
        "explode:boot", "crash:nowhere", "delay:keyword", "mid_frame",
    ])
    def test_bad_specs_are_rejected_in_the_parent(self, bad):
        with pytest.raises(ValueError):
            faults.install(bad)

    def test_batch_sub_ops_match(self):
        plan = faults.FaultPlan([faults.Fault("delay", "keyword", 0.0)])
        assert plan.reply_action(
            "batch", {"ops": [("keyword", {"k": 5})]}
        ) is None  # the zero-second delay fired (and returned None)
        assert plan.reply_action("batch", {"ops": [("pk_entries", {})]}) is None
        fault = faults.FaultPlan([faults.Fault("corrupt", "keyword")])
        assert fault.reply_action(
            "batch", {"ops": [("keyword", {"k": 5})]}
        ) is not None
