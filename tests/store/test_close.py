"""Close semantics of the store stack: idempotent teardown at every
layer, durability of the journal tail across a close, and the public
single-shard restore entry point the serving workers boot through."""

from __future__ import annotations

from repro.core.session import open_lake
from repro.relational.table import Table
from repro.store import ShardStore, restore_shard_session
from repro.store.catalog import LakeStore

from tests.core.test_sharding import _config, _copy_lake, _workload


class TestIdempotentClose:
    def test_shard_store_double_close(self, tmp_path):
        db = ShardStore(tmp_path / "one.sqlite", create=True)
        db.put_meta("k", "v")
        db.commit()
        db.close()
        db.close()  # second close is a no-op, not a crash

    def test_lake_store_double_close(self, toy_lake, tmp_path):
        session = open_lake(_copy_lake(toy_lake), _config())
        session.save(tmp_path / "catalog")
        store = session._store
        assert isinstance(store, LakeStore)
        store.close()
        store.close()
        session._store = None
        session.close()

    def test_session_double_close_monolithic(self, toy_lake, tmp_path):
        session = open_lake(_copy_lake(toy_lake), _config())
        session.save(tmp_path / "catalog")
        session.close()
        session.close()

    def test_session_double_close_sharded(self, toy_lake, tmp_path):
        session = open_lake(
            _copy_lake(toy_lake), _config(), shards=2, global_stats=True
        )
        session.save(tmp_path / "catalog")
        session.close()
        session.close()

    def test_close_without_store_is_safe(self, toy_lake):
        session = open_lake(_copy_lake(toy_lake), _config())
        session.close()
        session.close()


class TestCloseDurability:
    def test_journal_tail_survives_close(self, toy_lake, tmp_path):
        """close() releases handles but does not drop the write-ahead
        journal: an un-checkpointed mutation replays on reopen."""
        session = open_lake(
            _copy_lake(toy_lake), _config(), shards=2, global_stats=True
        )
        session.save(tmp_path / "catalog")
        session.add_table(Table.from_dict("close_probe", {
            "probe_id": ["C1", "C2"], "value": [1, 2],
        }))
        expected = {
            q: session.discover(q).items for q in _workload(session.catalog)
        }
        session.close()

        reopened = open_lake(tmp_path / "catalog")
        try:
            assert "close_probe" in reopened.table_names
            for query, items in expected.items():
                assert reopened.discover(query).items == items
        finally:
            reopened.close()


class TestRestoreShardSession:
    def test_restores_one_shard_without_refit(self, toy_lake, tmp_path):
        """The worker boot path: restore a single shard file into a live
        LakeSession that answers queries identically to the saved one."""
        live = open_lake(_copy_lake(toy_lake), _config())
        live.save(tmp_path / "catalog")
        db = ShardStore(tmp_path / "catalog" / "shard-0000.sqlite")
        try:
            restored = restore_shard_session(db)
            for query in _workload(live.profile):
                assert restored.discover(query).items == \
                    live.discover(query).items
        finally:
            db.close()
            live.close()
