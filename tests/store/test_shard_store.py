"""Unit tests for the on-disk layer: typed-blob codec and ShardStore.

These test the storage primitives in isolation — array split/join, typed
blob round-trips, row ordering semantics, state sections, journal
persistence, and the schema-version gate — independent of any session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import SCHEMA_VERSION, ShardStore
from repro.store.codec import (
    ArrayRef,
    decode_array,
    encode_array,
    join_arrays,
    split_arrays,
)


class TestCodec:
    def test_split_join_nested_containers(self):
        state = {
            "slab": np.arange(12, dtype=np.float64).reshape(3, 4),
            "nested": {"rows": [np.array([1, 2], dtype=np.int64), "text"]},
            "pair": (np.array([0.5], dtype=np.float32), 7),
            "plain": {"a": 1, "b": None},
        }
        arrays: list[np.ndarray] = []
        residual = split_arrays(state, arrays)
        assert len(arrays) == 3
        assert isinstance(residual["slab"], ArrayRef)
        assert isinstance(residual["nested"]["rows"][0], ArrayRef)
        assert isinstance(residual["pair"][0], ArrayRef)
        joined = join_arrays(residual, arrays)
        assert np.array_equal(joined["slab"], state["slab"])
        assert np.array_equal(joined["nested"]["rows"][0],
                              state["nested"]["rows"][0])
        assert joined["nested"]["rows"][1] == "text"
        assert np.array_equal(joined["pair"][0], state["pair"][0])
        assert joined["pair"][1] == 7
        assert joined["plain"] == state["plain"]

    def test_encode_decode_preserves_dtype_and_shape(self):
        for array in (
            np.arange(6, dtype=np.uint64).reshape(2, 3),
            np.array([], dtype=np.float32),
            np.array([[True, False]], dtype=bool),
        ):
            restored = decode_array(*encode_array(array))
            assert restored.dtype == array.dtype
            assert restored.shape == array.shape
            assert np.array_equal(restored, array)

    def test_decoded_arrays_are_writable(self):
        # Restored slabs may be mutated in place (e.g. incremental
        # embedder updates after a reopen) — frombuffer over the raw
        # blob would be read-only.
        restored = decode_array(*encode_array(np.zeros(4)))
        restored[0] = 1.0
        assert restored[0] == 1.0

    def test_non_contiguous_arrays_survive(self):
        base = np.arange(16, dtype=np.float64).reshape(4, 4)
        view = base[:, ::2]  # strided, non-contiguous
        assert not view.flags["C_CONTIGUOUS"]
        assert np.array_equal(decode_array(*encode_array(view)), view)


class TestShardStore:
    def test_create_then_reopen(self, tmp_path):
        path = tmp_path / "shard-0000.sqlite"
        store = ShardStore(path, create=True)
        store.put_meta("generation", "3")
        store.commit()
        store.close()
        reopened = ShardStore(path)
        assert reopened.get_meta("generation") == "3"
        assert reopened.get_meta("schema_version") == str(SCHEMA_VERSION)
        assert reopened.get_meta("missing", "fallback") == "fallback"
        reopened.close()

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardStore(tmp_path / "absent.sqlite")

    def test_schema_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "shard-0000.sqlite"
        store = ShardStore(path, create=True)
        store.put_meta("schema_version", str(SCHEMA_VERSION + 1))
        store.commit()
        store.close()
        with pytest.raises(ValueError, match="schema"):
            ShardStore(path)

    def test_rows_preserve_write_order(self, tmp_path):
        # Sessions rebuild their dict-backed catalogs from rowid order, so
        # a rewrite (DELETE + INSERT) must move the key to the end exactly
        # like a dict overwrite after a delete would.
        store = ShardStore(tmp_path / "s.sqlite", create=True)
        for name in ("alpha", "beta", "gamma"):
            store.put_row("lake_tables", name, {"name": name})
        store.put_row("lake_tables", "alpha", {"name": "alpha", "v": 2})
        store.delete_row("lake_tables", "beta")
        store.commit()
        keys = [key for key, _ in store.iter_rows("lake_tables")]
        assert keys == ["gamma", "alpha"]
        store.close()

    def test_sketch_rows(self, tmp_path):
        store = ShardStore(tmp_path / "s.sqlite", create=True)
        store.put_sketch("doc::a", "document", {"sig": 1})
        store.put_sketch("tbl::c1", "column", {"sig": 2})
        store.put_sketch("tbl::c2", "column", {"sig": 3})
        store.delete_sketch("tbl::c1")
        assert sorted(de_id for de_id, _, _ in store.iter_sketches()) == [
            "doc::a", "tbl::c2"
        ]
        store.delete_sketches_of_kind("document")
        assert [de_id for de_id, _, _ in store.iter_sketches()] == ["tbl::c2"]
        store.close()

    def test_state_sections_round_trip_arrays(self, tmp_path):
        store = ShardStore(tmp_path / "s.sqlite", create=True)
        section = {
            "matrix": np.arange(8, dtype=np.float32).reshape(2, 4),
            "names": ["a", "b"],
            "scalars": {"k": 3},
        }
        store.put_state("embedder", section)
        store.commit()
        restored = store.get_state("embedder")
        assert np.array_equal(restored["matrix"], section["matrix"])
        assert restored["names"] == section["names"]
        assert restored["scalars"] == section["scalars"]
        # Overwrite replaces the old slab rows rather than appending.
        store.put_state("embedder", {"matrix": np.zeros(2)})
        store.commit()
        assert store.get_state("embedder")["matrix"].shape == (2,)

    def test_missing_state_section_raises(self, tmp_path):
        store = ShardStore(tmp_path / "s.sqlite", create=True)
        with pytest.raises(KeyError):
            store.get_state("nope")

    def test_journal_round_trip(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = ShardStore(path, create=True)
        store.append_journal(1, "add_table", {"table": "t1"})
        store.append_journal(2, "remove", {"name": "t0"})
        store.append_journal(3, "refresh", {"with_gold": False})
        store.delete_journal(2)
        store.commit()
        store.close()
        reopened = ShardStore(path)
        entries = reopened.journal_entries()
        assert [(seq, op) for seq, op, _ in entries] == [
            (1, "add_table"), (3, "refresh")
        ]
        assert entries[0][2] == {"table": "t1"}
        reopened.clear_journal()
        assert reopened.journal_entries() == []
        reopened.close()
