"""Pickle and ``persistent_state`` round-trips for every index structure.

The persistence contract has two halves. Every structure must survive a
plain ``pickle`` round-trip (the journal and the residual blobs rely on
it), and its ``persistent_state()`` / ``restore_state()`` pair must
rebuild an object whose *query behaviour* is byte-identical while
excluding derived caches — band memos, term memos, lazy scorers — which
are recomputed on demand after a reopen.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ann.intervals import IntervalIndex
from repro.ann.rpforest import RPForestIndex
from repro.relational.stats import NumericStats
from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex
from repro.sketch.lsh import LSHIndex
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash
from repro.text.pipeline import DocumentPipeline

WORDS = [
    "aspirin", "ibuprofen", "codeine", "morphine", "paracetamol",
    "cox", "synthase", "reductase", "receptor", "inflammation",
    "trial", "compound", "formulation", "rate", "change",
]


def _signatures(count: int = 12, num_hashes: int = 64) -> list:
    minhash = MinHash(num_hashes=num_hashes, seed=3)
    sigs = []
    for i in range(count):
        items = {WORDS[(i + j) % len(WORDS)] for j in range(3 + i % 5)}
        sigs.append(minhash.signature(items))
    return sigs


def _roundtrips(structure):
    """Both halves of the contract for one structure."""
    return [
        pickle.loads(pickle.dumps(structure)),
        type(structure).restore_state(structure.persistent_state()),
    ]


class TestMinHashSignature:
    def test_pickle_drops_band_memo(self):
        sig = _signatures(1)[0]
        sig.band_hashes(8)
        sig.band_hashes(16)
        assert sig._band_memo  # warmed
        copy = pickle.loads(pickle.dumps(sig))
        assert copy._band_memo == {}
        assert np.array_equal(copy.values, sig.values)
        assert copy.set_size == sig.set_size
        # The memo refills lazily and lands on the same hashes.
        assert copy.band_hashes(8) == sig.band_hashes(8)

    def test_jaccard_and_containment_preserved(self):
        a, b = _signatures(2)
        a2, b2 = pickle.loads(pickle.dumps((a, b)))
        assert a2.jaccard(b2) == a.jaccard(b)
        assert a2.containment(b2) == a.containment(b)


class TestLSHIndex:
    def test_roundtrip_query_parity(self):
        sigs = _signatures(12)
        index = LSHIndex(num_bands=8)
        for i, sig in enumerate(sigs):
            index.add(f"key:{i}", sig)
        index.remove("key:7")
        for restored in _roundtrips(index):
            assert restored.keys() == index.keys()
            assert "key:7" not in restored
            for probe in sigs[:4]:
                assert restored.candidates(probe) == index.candidates(probe)
                assert restored.query(probe, k=5) == index.query(probe, k=5)

    def test_restored_index_accepts_mutations(self):
        sigs = _signatures(6)
        index = LSHIndex(num_bands=8)
        index.build_bulk((f"key:{i}", sig) for i, sig in enumerate(sigs))
        restored = LSHIndex.restore_state(index.persistent_state())
        extra = _signatures(7)[-1]
        restored.add("key:new", extra)
        index.add("key:new", extra)
        assert restored.query(extra, k=3) == index.query(extra, k=3)


class TestLSHEnsemble:
    def test_roundtrip_preserves_partition_layout(self):
        sigs = _signatures(14)
        ensemble = LSHEnsemble(num_partitions=4, num_bands=8)
        ensemble.build_bulk((f"key:{i}", sig) for i, sig in enumerate(sigs[:10]))
        for i, sig in enumerate(sigs[10:], start=10):
            ensemble.insert(f"key:{i}", sig)
        ensemble.delete("key:3")
        for restored in _roundtrips(ensemble):
            assert [len(p) for p in restored._partitions] == [
                len(p) for p in ensemble._partitions
            ]
            assert restored._partition_upper == ensemble._partition_upper
            for probe in sigs[:4]:
                assert restored.query(probe, k=5) == ensemble.query(probe, k=5)


class TestRPForestIndex:
    def test_roundtrip_query_parity(self):
        rng = np.random.default_rng(11)
        forest = RPForestIndex(dim=16, num_trees=4, leaf_size=4, seed=0)
        vectors = rng.standard_normal((20, 16)).astype(np.float64)
        forest.build_bulk(
            (f"vec:{i}", vectors[i]) for i in range(16)
        )
        for i in range(16, 20):
            forest.insert(f"vec:{i}", vectors[i])
        forest.delete("vec:5")
        for restored in _roundtrips(forest):
            for probe in vectors[:4]:
                assert restored.query(probe, k=5) == forest.query(probe, k=5)


class TestIntervalIndex:
    def test_roundtrip_query_parity(self):
        index = IntervalIndex()
        for i in range(10):
            index.add(f"col:{i}", NumericStats(
                count=20 + i, distinct=10 + i,
                minimum=float(i), maximum=float(i + 5),
                mean=float(i) + 2.5, std=1.0 + 0.1 * i,
            ))
        index.remove("col:4")
        probe = NumericStats(count=8, distinct=8, minimum=3.0,
                             maximum=6.0, mean=4.5, std=0.9)
        for restored in _roundtrips(index):
            assert restored.query(probe) == index.query(probe)
            assert restored.query_scored(probe, k=5) == index.query_scored(
                probe, k=5
            )


class TestInvertedIndex:
    def _build(self) -> InvertedIndex:
        index = InvertedIndex()
        index.build_bulk(
            (f"doc:{i}", [WORDS[(i + j) % len(WORDS)] for j in range(6)])
            for i in range(8)
        )
        index.remove("doc:2")  # leaves a tombstone behind
        return index

    def test_roundtrip_statistics_and_postings(self):
        index = self._build()
        for restored in _roundtrips(index):
            assert restored.keys() == index.keys()
            assert restored.num_docs == index.num_docs
            assert restored.collection_length == index.collection_length
            for term in WORDS:
                assert restored.document_frequency(term) == (
                    index.document_frequency(term)
                )
                assert [
                    (p.doc_key, p.term_frequency) for p in restored.postings(term)
                ] == [(p.doc_key, p.term_frequency) for p in index.postings(term)]

    def test_search_engine_drops_derived_caches(self):
        engine = SearchEngine(ranker="bm25")
        engine.build_bulk(
            (f"doc:{i}", [WORDS[(i + j) % len(WORDS)] for j in range(6)])
            for i in range(8)
        )
        before = engine.search(["cox", "inflammation"], k=5)
        assert engine._scorer is not None  # warmed by the search
        for restored in _roundtrips(engine):
            assert restored._scorer is None
            assert restored._stats_group is None
            assert restored.search(["cox", "inflammation"], k=5) == before


class TestDocumentPipeline:
    def test_pickle_empties_term_memo(self):
        pipeline = DocumentPipeline(max_doc_frequency=0.9)
        corpus = [
            "Aspirin inhibits cox synthase and reduces inflammation.",
            "Ibuprofen targets cox reductase in chronic inflammation.",
            "The population of london keeps growing.",
        ]
        pipeline.fit(corpus)
        before = [pipeline.transform(text).terms for text in corpus]
        assert pipeline._term_memo  # warmed by fit/transform
        for restored in (
            pickle.loads(pickle.dumps(pipeline)),
            DocumentPipeline.restore_state(pipeline.persistent_state()),
        ):
            assert restored._term_memo == {}
            assert [
                restored.transform(text).terms for text in corpus
            ] == before


class TestStatefulRestoreRejectsGarbage:
    @pytest.mark.parametrize("cls", [LSHIndex, LSHEnsemble, InvertedIndex])
    def test_missing_keys_raise(self, cls):
        with pytest.raises((KeyError, TypeError)):
            cls.restore_state({})
