"""Save / reopen behaviour of the persistent catalog subsystem.

The acceptance bar mirrors the sharding parity suite: a session reopened
from disk must return *identical* top-k results to the live session it
was saved from — for all six SRQL primitives, monolithic and sharded,
before and after journal-replayed mutations. The fast tests run the full
behaviour matrix on the handcrafted toy lake; the ``slow``-marked class
sweeps the three generated seed lakes at 1/2/4 shards.
"""

from __future__ import annotations

import pytest

from repro.core.session import LakeSession, open_lake
from repro.core.sharding import ShardedLakeSession
from repro.core.system import CMDL

from tests.core.test_sharding import (
    _config,
    _copy_lake,
    _mutate,
    _workload,
)


def _assert_parity(live, reopened, context: str) -> None:
    for query in _workload(live.profile):
        expected = live.discover(query)
        got = reopened.discover(query)
        assert got.items == expected.items, (
            f"{context}: reopened session diverged on {query!r}\n"
            f"  live={expected.items}\n  reopened={got.items}"
        )


def _open(lake, shards: int):
    if shards == 0:
        return open_lake(_copy_lake(lake), _config())
    return open_lake(_copy_lake(lake), _config(), shards=shards,
                     global_stats=True)


class TestSaveAndReopen:
    @pytest.mark.parametrize("shards", [0, 3])
    def test_reopen_parity(self, toy_lake, tmp_path, shards):
        live = _open(toy_lake, shards)
        path = live.save(tmp_path / "catalog")
        live.close()
        assert (path / "catalog.sqlite").exists()
        reopened = open_lake(path)
        twin = _open(toy_lake, shards)
        assert type(reopened) is type(twin)
        _assert_parity(twin, reopened, f"shards={shards} (cold reopen)")
        reopened.close()

    def test_cmdl_load_equals_open_lake(self, toy_lake, tmp_path):
        live = _open(toy_lake, 0)
        live.save(tmp_path / "catalog")
        live.close()
        a = CMDL.load(tmp_path / "catalog")
        b = open_lake(str(tmp_path / "catalog"))
        _assert_parity(a, b, "CMDL.load vs open_lake")
        a.close()
        b.close()

    def test_save_rebinds_only_to_same_path(self, toy_lake, tmp_path):
        live = _open(toy_lake, 0)
        with pytest.raises(ValueError, match="no bound catalog"):
            live.save()
        live.save(tmp_path / "catalog")
        # A no-argument save on a bound session checkpoints in place.
        assert live.save() == live.save(tmp_path / "catalog")
        live.close()

    def test_open_lake_path_rejects_fit_options(self, tmp_path):
        with pytest.raises(ValueError):
            open_lake(str(tmp_path / "nowhere"), _config())
        with pytest.raises(ValueError):
            open_lake(str(tmp_path / "nowhere"), shards=2)

    def test_context_manager_closes_store(self, toy_lake, tmp_path):
        with _open(toy_lake, 0) as live:
            live.save(tmp_path / "catalog")
            assert live._store is not None
        assert live._store is None


class TestJournalReplay:
    @pytest.mark.parametrize("shards", [0, 3])
    def test_mutations_replay_on_reopen(self, toy_lake, tmp_path, shards):
        """Mutate after save, close *without* checkpointing: the reopened
        session must replay the journal and land on the exact state."""
        live = _open(toy_lake, shards)
        live.save(tmp_path / "catalog")
        live._store.checkpoint_every = 0  # keep every op in the journal
        _mutate(live)
        generation = live.generation
        pending = live._store.pending_journal()
        assert pending > 0
        live._store.close()  # simulate a crash: no checkpoint
        live._store = None

        reopened = open_lake(tmp_path / "catalog")
        assert reopened.generation == generation
        if shards:
            assert reopened.generations == live.generations
        twin = _open(toy_lake, shards)
        _mutate(twin)
        _assert_parity(twin, reopened, f"shards={shards} (journal replay)")
        # Replayed entries stay pending until the next checkpoint persists
        # them; a second reopen must not double-apply.
        assert reopened._store.pending_journal() == pending
        reopened.save()
        assert reopened._store.pending_journal() == 0
        reopened.close()

        again = open_lake(tmp_path / "catalog")
        assert again.generation == generation
        _assert_parity(twin, again, f"shards={shards} (post-checkpoint)")
        again.close()

    def test_failed_mutation_leaves_no_journal_record(self, toy_lake, tmp_path):
        live = _open(toy_lake, 0)
        live.save(tmp_path / "catalog")
        live._store.checkpoint_every = 0
        with pytest.raises(KeyError):
            live.remove("no_such_table")
        assert live._store.pending_journal() == 0
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        twin = _open(toy_lake, 0)
        _assert_parity(twin, reopened, "failed-op replay")
        reopened.close()

    def test_auto_checkpoint_drains_journal(self, toy_lake, tmp_path):
        from repro.relational.table import Table

        live = _open(toy_lake, 0)
        live.save(tmp_path / "catalog")
        live._store.checkpoint_every = 2
        live.add_table(Table.from_dict("auto_a", {"x": ["1", "2"]}))
        assert live._store.pending_journal() == 1
        live.add_table(Table.from_dict("auto_b", {"y": ["3", "4"]}))
        assert live._store.pending_journal() == 0  # threshold hit
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        assert "auto_a" in reopened.lake.table_names
        assert "auto_b" in reopened.lake.table_names
        reopened.close()


class TestIncrementalCheckpoint:
    @pytest.mark.parametrize("shards", [0, 3])
    def test_delta_checkpoint_parity(self, toy_lake, tmp_path, shards):
        """save → mutate → save again: the second save is a dirty-tracked
        delta rewrite, and a fresh reopen must still match exactly."""
        live = _open(toy_lake, shards)
        live.save(tmp_path / "catalog")
        _mutate(live)
        live.save()
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        twin = _open(toy_lake, shards)
        _mutate(twin)
        _assert_parity(twin, reopened, f"shards={shards} (delta checkpoint)")
        reopened.close()

    def test_refresh_forces_full_rewrite(self, toy_lake, tmp_path):
        live = _open(toy_lake, 0)
        live.save(tmp_path / "catalog")
        live.refresh()
        live.save()
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        twin = _open(toy_lake, 0)
        twin.refresh()
        assert reopened.generation == twin.generation == 1
        _assert_parity(twin, reopened, "post-refresh reopen")
        reopened.close()


class TestDriftSurvivesReopen:
    @pytest.mark.parametrize("shards", [0, 3])
    def test_drift_and_threshold_survive(self, toy_lake, tmp_path, shards):
        from repro.relational.table import Table

        lake = _copy_lake(toy_lake)
        if shards:
            live = open_lake(lake, _config(), shards=shards,
                             global_stats=True, auto_refresh_threshold=0.9)
        else:
            live = open_lake(lake, _config(), auto_refresh_threshold=0.9)
        # Mostly fit-time vocabulary plus a few novel terms: drift lands
        # strictly between 0 and the threshold, so no auto refresh fires.
        live.add_table(Table.from_dict("drugs_extra", {
            "drug_id": ["D1", "D2", "D3", "D4"],
            "name": ["aspirin", "ibuprofen", "codeine", "morphine"],
            "year": ["1999", "2001", "2005", "2010"],
            "note": ["zyxglorp", "flumwort", "aspirin", "codeine"],
        }))
        drift = live.drift()
        assert 0.0 < drift < 0.9
        live.save(tmp_path / "catalog")
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        assert reopened.auto_refresh_threshold == 0.9
        assert reopened.drift() == pytest.approx(drift)
        reopened.close()


@pytest.mark.slow
class TestReopenParitySlow:
    """The full acceptance sweep: three seed lakes, monolithic plus 2 and
    4 shards, cold reopen and journal-replayed mutations."""

    def _case(self, lake, shards, tmp_path):
        live = _open(lake, shards)
        live.save(tmp_path / "catalog")
        live.close()
        reopened = open_lake(tmp_path / "catalog")
        twin = _open(lake, shards)
        _assert_parity(twin, reopened, f"{lake.name} shards={shards} (cold)")
        _mutate(reopened)
        _mutate(twin)
        reopened.close()  # journal persisted, checkpoint not required
        replayed = open_lake(tmp_path / "catalog")
        _assert_parity(twin, replayed,
                       f"{lake.name} shards={shards} (mutated+replayed)")
        replayed.close()

    @pytest.mark.parametrize("shards", [0, 2, 4])
    def test_pharma(self, pharma_generated, shards, tmp_path):
        self._case(pharma_generated.lake, shards, tmp_path)

    @pytest.mark.parametrize("shards", [0, 2, 4])
    def test_ukopen(self, ukopen_generated, shards, tmp_path):
        self._case(ukopen_generated.lake, shards, tmp_path)

    @pytest.mark.parametrize("shards", [0, 2, 4])
    def test_mlopen(self, mlopen_generated, shards, tmp_path):
        self._case(mlopen_generated.lake, shards, tmp_path)
