"""Tests for the triplet margin loss, including gradient checks."""

import numpy as np
import pytest

from repro.nn.losses import TripletMarginLoss, triplet_margin_loss


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLossValue:
    def test_satisfied_triplet_zero_loss(self):
        anchor = np.array([[0.0, 0.0]])
        positive = np.array([[0.1, 0.0]])
        negative = np.array([[5.0, 0.0]])
        loss, *_ = triplet_margin_loss(anchor, positive, negative, margin=0.2)
        assert loss == 0.0

    def test_violated_triplet_positive_loss(self):
        anchor = np.array([[0.0, 0.0]])
        positive = np.array([[3.0, 0.0]])
        negative = np.array([[0.5, 0.0]])
        loss, *_ = triplet_margin_loss(anchor, positive, negative, margin=0.2)
        assert loss == pytest.approx(0.2 + 3.0 - 0.5, abs=1e-4)

    def test_margin_boundary(self):
        anchor = np.array([[0.0]])
        positive = np.array([[1.0]])
        negative = np.array([[1.0]])
        loss, *_ = triplet_margin_loss(anchor, positive, negative, margin=0.5)
        assert loss == pytest.approx(0.5, abs=1e-4)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            triplet_margin_loss(np.zeros((1, 2)), np.zeros((1, 2)),
                                np.zeros((1, 2)), margin=-0.1)

    def test_batch_mean(self):
        anchor = np.zeros((2, 1))
        positive = np.array([[3.0], [0.1]])
        negative = np.array([[0.5], [9.0]])
        loss, *_ = triplet_margin_loss(anchor, positive, negative, margin=0.2)
        # First triplet violates by 2.7, second is satisfied.
        assert loss == pytest.approx(2.7 / 2, abs=1e-4)


class TestGradients:
    def test_gradient_check_all_inputs(self):
        rng = np.random.default_rng(0)
        anchor = rng.standard_normal((3, 4))
        positive = rng.standard_normal((3, 4))
        negative = rng.standard_normal((3, 4))

        loss, ga, gp, gn = triplet_margin_loss(anchor, positive, negative, 0.5)

        for array, grad in ((anchor, ga), (positive, gp), (negative, gn)):
            def f():
                return triplet_margin_loss(anchor, positive, negative, 0.5)[0]

            num = numerical_gradient(f, array)
            assert np.allclose(grad, num, atol=1e-4)

    def test_inactive_triplets_zero_gradient(self):
        anchor = np.array([[0.0, 0.0]])
        positive = np.array([[0.1, 0.0]])
        negative = np.array([[9.0, 0.0]])
        _, ga, gp, gn = triplet_margin_loss(anchor, positive, negative, 0.2)
        assert (ga == 0).all() and (gp == 0).all() and (gn == 0).all()

    def test_gradient_directions(self):
        """Gradient descent pulls positive closer and pushes negative away."""
        anchor = np.array([[0.0, 0.0]])
        positive = np.array([[2.0, 0.0]])
        negative = np.array([[1.0, 0.0]])
        _, _, gp, gn = triplet_margin_loss(anchor, positive, negative, 0.2)
        new_positive = positive - 0.1 * gp
        new_negative = negative - 0.1 * gn
        assert np.linalg.norm(new_positive - anchor) < np.linalg.norm(positive - anchor)
        assert np.linalg.norm(new_negative - anchor) > np.linalg.norm(negative - anchor)


class TestTripletMarginLossClass:
    def test_callable(self):
        loss_fn = TripletMarginLoss(margin=0.3)
        loss, *_ = loss_fn(np.zeros((1, 2)), np.ones((1, 2)), np.ones((1, 2)))
        assert loss == pytest.approx(0.3, abs=1e-4)

    def test_violation_rate(self):
        loss_fn = TripletMarginLoss(margin=0.2)
        anchor = np.zeros((2, 1))
        positive = np.array([[3.0], [0.01]])
        negative = np.array([[0.5], [9.0]])
        assert loss_fn.violation_rate(anchor, positive, negative) == 0.5

    def test_violation_rate_empty(self):
        loss_fn = TripletMarginLoss()
        assert loss_fn.violation_rate(np.zeros((0, 2)), np.zeros((0, 2)),
                                      np.zeros((0, 2))) == 0.0

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            TripletMarginLoss(margin=-1.0)
