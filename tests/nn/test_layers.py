"""Tests for NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU, Sequential, Tanh


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=0)
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_is_affine(self):
        layer = Dense(2, 2, seed=0)
        x = np.array([[1.0, 2.0]])
        assert np.allclose(layer.forward(x), x @ layer.weight + layer.bias)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_weight_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=1)
        x = rng.standard_normal((4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        num = numerical_gradient(loss, layer.weight)
        assert np.allclose(layer.grad_weight, num, atol=1e-5)

    def test_bias_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=1)
        x = rng.standard_normal((4, 3))

        def loss():
            return float(layer.forward(x).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        num = numerical_gradient(loss, layer.bias)
        assert np.allclose(layer.grad_bias, num, atol=1e-5)

    def test_input_gradient(self):
        layer = Dense(3, 2, seed=1)
        x = np.random.default_rng(0).standard_normal((4, 3))
        layer.forward(x)
        grad_in = layer.backward(np.ones((4, 2)))
        assert np.allclose(grad_in, np.ones((4, 2)) @ layer.weight.T)

    def test_gradients_accumulate(self):
        layer = Dense(2, 2, seed=0)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        assert np.allclose(layer.grad_weight, 2 * first)

    def test_zero_grad(self):
        layer = Dense(2, 2, seed=0)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.zero_grad()
        assert (layer.grad_weight == 0).all()
        assert (layer.grad_bias == 0).all()


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 2.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(grad, [[0.0, 5.0]])

    def test_tanh_forward(self):
        out = Tanh().forward(np.array([[0.0, 100.0]]))
        assert out[0, 0] == 0.0
        assert out[0, 1] == pytest.approx(1.0)

    def test_tanh_gradient_check(self):
        tanh = Tanh()
        x = np.random.default_rng(0).standard_normal((2, 3))

        def loss():
            return float(np.tanh(x).sum())

        tanh.forward(x)
        analytic = tanh.backward(np.ones((2, 3)))
        num = numerical_gradient(loss, x)
        assert np.allclose(analytic, num, atol=1e-5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.zeros((1, 1)))


class TestSequential:
    def test_composition(self):
        net = Sequential([Dense(3, 4, seed=0), ReLU(), Dense(4, 2, seed=1)])
        out = net.forward(np.zeros((2, 3)))
        assert out.shape == (2, 2)

    def test_parameters_collected(self):
        net = Sequential([Dense(3, 4, seed=0), ReLU(), Dense(4, 2, seed=1)])
        assert len(net.parameters) == 4  # two weights + two biases
        assert len(net.gradients) == 4

    def test_end_to_end_gradient_check(self):
        rng = np.random.default_rng(3)
        net = Sequential([Dense(3, 5, seed=0), Tanh(), Dense(5, 2, seed=1)])
        x = rng.standard_normal((4, 3))

        def loss():
            return float(net.forward(x).sum())

        net.zero_grad()
        net.forward(x)
        net.backward(np.ones((4, 2)))
        for param, grad in zip(net.parameters, net.gradients):
            num = numerical_gradient(loss, param)
            assert np.allclose(grad, num, atol=1e-4)
