"""Tests for optimisers and the MLP."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam


def quadratic_problem():
    """Minimise ||w - target||^2 via the optimiser interface."""
    target = np.array([3.0, -2.0])
    w = np.zeros(2)
    g = np.zeros(2)

    def compute_grad():
        g[...] = 2 * (w - target)

    return w, g, target, compute_grad


class TestSGD:
    def test_converges_on_quadratic(self):
        w, g, target, compute_grad = quadratic_problem()
        opt = SGD([w], [g], lr=0.1)
        for _ in range(200):
            compute_grad()
            opt.step()
        assert np.allclose(w, target, atol=1e-3)

    def test_momentum_accelerates(self):
        w1, g1, target, grad1 = quadratic_problem()
        opt1 = SGD([w1], [g1], lr=0.01)
        w2, g2, _, grad2 = quadratic_problem()
        opt2 = SGD([w2], [g2], lr=0.01, momentum=0.9)
        for _ in range(50):
            grad1()
            opt1.step()
            grad2()
            opt2.step()
        assert np.linalg.norm(w2 - target) < np.linalg.norm(w1 - target)

    def test_zero_grad(self):
        w, g, _, compute_grad = quadratic_problem()
        opt = SGD([w], [g], lr=0.1)
        compute_grad()
        opt.zero_grad()
        assert (g == 0).all()

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [np.zeros(1)], lr=0.0)

    def test_mismatched_params(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], [], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, g, target, compute_grad = quadratic_problem()
        opt = Adam([w], [g], lr=0.1)
        for _ in range(500):
            compute_grad()
            opt.step()
        assert np.allclose(w, target, atol=1e-2)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], [np.zeros(1)], lr=-1.0)

    def test_step_counts(self):
        w, g, _, compute_grad = quadratic_problem()
        opt = Adam([w], [g], lr=0.1)
        compute_grad()
        opt.step()
        assert opt._t == 1


class TestMLP:
    def test_shapes(self):
        mlp = MLP(8, [6, 5], 4, seed=0)
        out = mlp(np.zeros((3, 8)))
        assert out.shape == (3, 4)

    def test_single_sample_promoted(self):
        mlp = MLP(4, [3], 2, seed=0)
        assert mlp(np.zeros(4)).shape == (1, 2)

    def test_dim_mismatch(self):
        mlp = MLP(4, [], 2, seed=0)
        with pytest.raises(ValueError, match="dim"):
            mlp(np.zeros((1, 5)))

    def test_unknown_activation(self):
        with pytest.raises(ValueError, match="activation"):
            MLP(4, [3], 2, activation="swish")

    def test_no_hidden_layers(self):
        mlp = MLP(4, [], 2, seed=0)
        assert len(mlp.parameters) == 2

    def test_num_parameters(self):
        mlp = MLP(4, [3], 2, seed=0)
        assert mlp.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_learns_simple_regression(self):
        """The MLP + Adam must fit y = x W for a fixed random W."""
        rng = np.random.default_rng(0)
        true_w = rng.standard_normal((5, 2))
        x = rng.standard_normal((64, 5))
        y = x @ true_w
        mlp = MLP(5, [16], 2, seed=0)
        opt = Adam(mlp.parameters, mlp.gradients, lr=1e-2)
        first_loss = None
        for _ in range(300):
            pred = mlp(x)
            err = pred - y
            loss = float((err**2).mean())
            if first_loss is None:
                first_loss = loss
            mlp.zero_grad()
            mlp.backward(2 * err / err.size)
            opt.step()
        assert loss < first_loss * 0.05

    def test_tanh_activation_variant(self):
        mlp = MLP(4, [3], 2, activation="tanh", seed=0)
        assert mlp(np.ones((2, 4))).shape == (2, 2)
