"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Timer, time_call


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_elapsed_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            sum(range(10000))
        assert t.elapsed >= 0.0
        assert isinstance(first, float)


class TestTimeCall:
    def test_returns_result_and_seconds(self):
        result, seconds = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_repeat_averages(self):
        result, seconds = time_call(lambda: "x", repeat=3)
        assert result == "x"
        assert seconds >= 0.0

    def test_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeat=0)

    def test_args_passed(self):
        result, _ = time_call(lambda a, b=0: a + b, 1, b=2)
        assert result == 3
