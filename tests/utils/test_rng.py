"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_from_int(self):
        rng = ensure_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].integers(0, 10**6, size=8)
        b = children[1].integers(0, 10**6, size=8)
        assert not (a == b).all()

    def test_deterministic(self):
        a = spawn(ensure_rng(7), 3)[1].integers(0, 10**6, size=4)
        b = spawn(ensure_rng(7), 3)[1].integers(0, 10**6, size=4)
        assert (a == b).all()
