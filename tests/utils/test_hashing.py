"""Tests for repro.utils.hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.hashing import (
    MERSENNE_PRIME,
    hash_family,
    stable_hash_32,
    stable_hash_64,
    token_fingerprint,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash_64("hello") == stable_hash_64("hello")

    def test_seed_changes_value(self):
        assert stable_hash_64("hello", seed=1) != stable_hash_64("hello", seed=2)

    def test_different_inputs_differ(self):
        assert stable_hash_64("hello") != stable_hash_64("world")

    def test_accepts_bytes(self):
        assert stable_hash_64(b"hello") == stable_hash_64("hello")

    def test_32_bit_range(self):
        for value in ("a", "b", "longer string", ""):
            assert 0 <= stable_hash_32(value) < 2**32

    def test_64_bit_range(self):
        assert 0 <= stable_hash_64("x") < 2**64

    @given(st.text())
    def test_stable_across_calls_property(self, s):
        assert stable_hash_64(s) == stable_hash_64(s)

    @given(st.text(min_size=1), st.integers(min_value=0, max_value=2**32))
    def test_seeded_in_range(self, s, seed):
        assert 0 <= stable_hash_64(s, seed) < 2**64

    def test_unicode_handled(self):
        assert stable_hash_64("naïve café 東京") == stable_hash_64("naïve café 東京")


class TestHashFamily:
    def test_size(self):
        assert len(hash_family(7)) == 7

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            hash_family(0)

    def test_functions_differ(self):
        h = hash_family(3)
        values = {f(12345) for f in h}
        assert len(values) == 3

    def test_deterministic_family(self):
        h1 = hash_family(4, seed=9)
        h2 = hash_family(4, seed=9)
        for f1, f2 in zip(h1, h2):
            assert f1(42) == f2(42)

    def test_output_below_prime(self):
        for f in hash_family(8):
            for x in (0, 1, 2**40, 2**63):
                assert 0 <= f(x) < MERSENNE_PRIME


class TestTokenFingerprint:
    def test_matches_stable_hash(self):
        assert token_fingerprint("abc") == stable_hash_64("abc")

    def test_seed_respected(self):
        assert token_fingerprint("abc", 5) != token_fingerprint("abc", 6)
