"""Tests for repro.utils.hashing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_32,
    stable_hash_64,
    token_fingerprint,
    universal_hash_family,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash_64("hello") == stable_hash_64("hello")

    def test_seed_changes_value(self):
        assert stable_hash_64("hello", seed=1) != stable_hash_64("hello", seed=2)

    def test_different_inputs_differ(self):
        assert stable_hash_64("hello") != stable_hash_64("world")

    def test_accepts_bytes(self):
        assert stable_hash_64(b"hello") == stable_hash_64("hello")

    def test_32_bit_range(self):
        for value in ("a", "b", "longer string", ""):
            assert 0 <= stable_hash_32(value) < 2**32

    def test_64_bit_range(self):
        assert 0 <= stable_hash_64("x") < 2**64

    @given(st.text())
    def test_stable_across_calls_property(self, s):
        assert stable_hash_64(s) == stable_hash_64(s)

    @given(st.text(min_size=1), st.integers(min_value=0, max_value=2**32))
    def test_seeded_in_range(self, s, seed):
        assert 0 <= stable_hash_64(s, seed) < 2**64

    def test_unicode_handled(self):
        assert stable_hash_64("naïve café 東京") == stable_hash_64("naïve café 東京")


class TestUniversalHashFamily:
    def test_shapes_and_dtype(self):
        a, b = universal_hash_family(7)
        assert a.shape == b.shape == (7,)
        assert a.dtype == b.dtype == np.uint64

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            universal_hash_family(0)

    def test_coefficient_ranges(self):
        a, b = universal_hash_family(64, seed=3)
        assert (a >= 1).all() and (a < UNIVERSAL_HASH_PRIME).all()
        assert (b < UNIVERSAL_HASH_PRIME).all()

    def test_functions_differ(self):
        a, b = universal_hash_family(3)
        x = np.uint64(12345)
        values = {int((ai * x + bi) % np.uint64(UNIVERSAL_HASH_PRIME))
                  for ai, bi in zip(a, b)}
        assert len(values) == 3

    def test_deterministic_family(self):
        a1, b1 = universal_hash_family(4, seed=9)
        a2, b2 = universal_hash_family(4, seed=9)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_tag_gives_independent_family(self):
        a1, _ = universal_hash_family(4, seed=9)
        a2, _ = universal_hash_family(4, seed=9, tag="bucket")
        assert not np.array_equal(a1, a2)

    def test_vectorised_output_below_prime(self):
        a, b = universal_hash_family(8)
        x = np.array([0, 1, 2**20, UNIVERSAL_HASH_PRIME - 1], dtype=np.uint64)
        hashed = (a[:, None] * x[None, :] + b[:, None]) % np.uint64(
            UNIVERSAL_HASH_PRIME
        )
        assert (hashed < UNIVERSAL_HASH_PRIME).all()

    def test_products_fit_uint64(self):
        # The prime-choice contract: a * x never wraps in uint64.
        a, _ = universal_hash_family(16, seed=1)
        x = np.uint64(UNIVERSAL_HASH_PRIME - 1)
        assert int(a.max()) * int(x) < 2**64


class TestTokenFingerprint:
    def test_matches_stable_hash(self):
        assert token_fingerprint("abc") == stable_hash_64("abc")

    def test_seed_respected(self):
        assert token_fingerprint("abc", 5) != token_fingerprint("abc", 6)
