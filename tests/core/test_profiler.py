"""Tests for the profiler."""

import numpy as np
import pytest

from repro.core.profiler import COLUMN, DOCUMENT, Profiler


@pytest.fixture()
def toy_profile(toy_lake):
    return Profiler(embedding_dim=32, num_hashes=64, seed=0).profile(toy_lake)


class TestProfileStructure:
    def test_all_des_profiled(self, toy_profile, toy_lake):
        assert len(toy_profile.documents) == toy_lake.num_documents
        assert len(toy_profile.columns) == toy_lake.num_columns
        assert toy_profile.num_des == toy_lake.num_documents + toy_lake.num_columns

    def test_kinds(self, toy_profile):
        assert all(s.kind == DOCUMENT for s in toy_profile.documents.values())
        assert all(s.kind == COLUMN for s in toy_profile.columns.values())

    def test_table_columns_map(self, toy_profile):
        assert toy_profile.columns_of_table("drugs") == [
            "drugs.drug_id", "drugs.name", "drugs.year",
        ]
        assert toy_profile.columns_of_table("missing") == []

    def test_sketch_lookup(self, toy_profile):
        assert toy_profile.sketch("doc:aspirin").kind == DOCUMENT
        assert toy_profile.sketch("drugs.name").kind == COLUMN
        with pytest.raises(KeyError):
            toy_profile.sketch("nope")

    def test_timings_recorded(self, toy_profile):
        assert toy_profile.structured_seconds > 0
        assert toy_profile.unstructured_seconds > 0


class TestDocumentSketches:
    def test_content_bow_nouns(self, toy_profile):
        bow = toy_profile.documents["doc:aspirin"].content_bow
        assert "aspirin" in bow
        assert "synthase" in bow
        assert "the" not in bow

    def test_metadata_from_title(self, toy_profile):
        meta = toy_profile.documents["doc:aspirin"].metadata_bow
        assert "aspirin" in meta

    def test_embedding_dims(self, toy_profile):
        sketch = toy_profile.documents["doc:aspirin"]
        assert sketch.content_embedding.shape == (32,)
        assert sketch.metadata_embedding.shape == (32,)
        assert sketch.encoding.shape == (64,)

    def test_signature_tracks_content(self, toy_profile):
        sketch = toy_profile.documents["doc:aspirin"]
        assert sketch.signature.set_size == len(sketch.content_bow.vocabulary)


class TestColumnSketches:
    def test_metadata_includes_table_and_column_names(self, toy_profile):
        meta = toy_profile.columns["targets.drug_ref"].metadata_bow
        assert "drug" in meta
        assert "ref" in meta
        assert "targets" in meta

    def test_numeric_stats_for_numeric_columns(self, toy_profile):
        assert toy_profile.columns["drugs.year"].numeric is not None
        assert toy_profile.columns["drugs.name"].numeric is None

    def test_tags_present(self, toy_profile):
        assert toy_profile.columns["drugs.name"].tags is not None

    def test_text_discovery_columns(self, toy_profile):
        eligible = toy_profile.text_discovery_columns()
        assert "drugs.name" in eligible
        assert "drugs.year" not in eligible

    def test_multi_token_cells_tokenised(self, toy_profile):
        bow = toy_profile.columns["targets.protein"].content_bow
        assert "cox" in bow
        assert "synthase" in bow

    def test_single_token_cells_verbatim(self, toy_profile):
        bow = toy_profile.columns["drugs.drug_id"].content_bow
        assert "d1" in bow


class TestSemanticSpace:
    def test_related_doc_column_closer_than_unrelated(self, toy_profile):
        doc = toy_profile.documents["doc:aspirin"].encoding
        drug_names = toy_profile.columns["drugs.name"].encoding
        cities = toy_profile.columns["cities.city"].encoding

        def cos(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        assert cos(doc, drug_names) > cos(doc, cities)

    def test_pooling_option(self, toy_lake):
        p = Profiler(embedding_dim=16, pooling="max", seed=0).profile(toy_lake)
        assert p.num_des > 0

    def test_invalid_pooling(self):
        with pytest.raises(ValueError):
            Profiler(pooling="median")

    def test_custom_embedder_used(self, toy_lake):
        from repro.embed.hashing_embedder import HashingEmbedder

        embedder = HashingEmbedder(dim=16, seed=0)
        p = Profiler(embedding_dim=16, embedder=embedder, seed=0)
        profile = p.profile(toy_lake)
        assert profile.documents["doc:aspirin"].content_embedding.shape == (16,)
