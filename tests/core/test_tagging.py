"""Tests for column tagging heuristics."""

from repro.core.tagging import tag_column
from repro.relational.table import Column


class TestTextDiscovery:
    def test_text_column_eligible(self):
        col = Column("name", [f"drug{i}" for i in range(50)])
        assert tag_column(col).text_discovery

    def test_numeric_excluded(self):
        col = Column("dose", [str(i) for i in range(50)])
        tags = tag_column(col)
        assert not tags.text_discovery
        assert tags.numeric_profile

    def test_date_excluded(self):
        col = Column("when", ["2020-01-01", "2020-02-01"] * 10)
        assert not tag_column(col).text_discovery

    def test_low_cardinality_categorical_excluded(self):
        col = Column("flag", (["yes"] * 50 + ["no"] * 50))
        assert not tag_column(col).text_discovery

    def test_high_cardinality_text_kept(self):
        col = Column("id", [f"X{i}" for i in range(100)])
        assert tag_column(col).text_discovery

    def test_empty_column_excluded(self):
        col = Column("empty", ["", "NA", ""])
        tags = tag_column(col)
        assert not tags.text_discovery
        assert not tags.pkfk_discovery


class TestPKFKDiscovery:
    def test_id_columns_eligible(self):
        col = Column("drug_id", [f"DB{i:05d}" for i in range(50)])
        assert tag_column(col).pkfk_discovery

    def test_numeric_keys_eligible(self):
        col = Column("molregno", [str(100000 + i) for i in range(50)])
        assert tag_column(col).pkfk_discovery

    def test_dates_excluded(self):
        col = Column("when", ["2020-01-01"] * 20)
        assert not tag_column(col).pkfk_discovery

    def test_long_text_excluded(self):
        long_text = "this is a long descriptive paragraph " * 2
        col = Column("description", [long_text + str(i) for i in range(20)])
        assert not tag_column(col).pkfk_discovery


class TestJoinDiscovery:
    def test_text_eligible(self):
        col = Column("name", [f"n{i}" for i in range(20)])
        assert tag_column(col).join_discovery

    def test_numeric_excluded(self):
        col = Column("value", [str(i) for i in range(20)])
        assert not tag_column(col).join_discovery

    def test_categorical_still_joinable(self):
        # Unlike text discovery, low-cardinality columns can still join.
        col = Column("status", ["active"] * 50 + ["retired"] * 50)
        assert tag_column(col).join_discovery


class TestThresholds:
    def test_categorical_threshold_respected(self):
        col = Column("c", [f"v{i % 8}" for i in range(100)])  # ratio 0.08
        assert tag_column(col, categorical_threshold=0.05).text_discovery
        assert not tag_column(col, categorical_threshold=0.10).text_discovery

    def test_long_text_threshold_respected(self):
        col = Column("c", ["one two three four five six"] * 10)
        assert tag_column(col, long_text_tokens=3).pkfk_discovery is False
        assert tag_column(col, long_text_tokens=10).pkfk_discovery is True
