"""Incremental-build vs cold-fit parity on the three seed lakes.

The acceptance bar of the lake-session redesign: building a lake through N
incremental ``add_table`` / ``add_document`` calls must yield *identical*
``discover()`` top-k results — for all six SRQL primitives — to a cold
``CMDL.fit`` on the same final lake.

Both systems run with the corpus-independent hashing embedder (the
documented parity configuration: the default blended embedder is trained on
the fit-time corpus, so its vectors are frozen between ``refresh()`` calls
and embedding-based scores drift by design).
"""

from __future__ import annotations

import pytest

from repro.core.session import open_lake
from repro.core.system import CMDL, CMDLConfig
from repro.core.srql import Q
from repro.embed.hashing_embedder import HashingEmbedder
from repro.relational.catalog import DataLake


def _config() -> CMDLConfig:
    return CMDLConfig(use_joint=False, embedder=HashingEmbedder(seed=0))


def _build_pair(lake):
    """(cold engine, incrementally-built session) over the same final lake."""
    cold = CMDL(_config()).fit(lake)

    tables = lake.tables
    documents = lake.documents
    base = DataLake(name=lake.name)
    base.add_table(tables[0])
    base.add_document(documents[0])
    session = open_lake(base, _config())
    for table in tables[1:]:
        session.add_table(table)
    session.add_documents(documents[1:])
    assert session.generation == len(tables)  # one bump per mutation call
    return cold, session


@pytest.fixture(scope="module")
def pharma_pair(pharma_generated):
    return _build_pair(pharma_generated.lake)


@pytest.fixture(scope="module")
def ukopen_pair(ukopen_generated):
    return _build_pair(ukopen_generated.lake)


@pytest.fixture(scope="module")
def mlopen_pair(mlopen_generated):
    return _build_pair(mlopen_generated.lake)


def _workload(profile) -> list:
    """All six primitives over a deterministic slice of the lake."""
    tables = sorted(profile.table_columns)[:6]
    docs = sorted(profile.documents)[:4]
    queries = [
        Q.content_search("rate change", k=5),
        Q.content_search("name", mode="table", k=5),
        Q.metadata_search("report", k=5),
        Q.metadata_search("id", mode="table", k=5),
    ]
    queries += [
        Q.cross_modal(doc, top_n=3, representation="solo") for doc in docs
    ]
    for table in tables:
        queries += [
            Q.joinable(table, top_n=3),
            Q.unionable(table, top_n=3),
            Q.pkfk(table, top_n=3),
        ]
    return queries


def _assert_parity(pair):
    cold, session = pair
    for query in _workload(cold.profile):
        incremental = session.discover(query)
        expected = cold.discover(query)
        assert incremental.items == expected.items, (
            f"incremental build diverged from cold fit on {query!r}"
        )


class TestIncrementalParity:
    def test_pharma(self, pharma_pair):
        _assert_parity(pharma_pair)

    def test_ukopen(self, ukopen_pair):
        _assert_parity(ukopen_pair)

    def test_mlopen(self, mlopen_pair):
        _assert_parity(mlopen_pair)

    def test_batch_parity_after_mutations(self, ukopen_pair):
        """discover_batch over the mutated session matches single queries."""
        cold, session = ukopen_pair
        workload = _workload(cold.profile)
        batch = session.discover_batch(workload)
        singles = [cold.discover(q) for q in workload]
        assert [b.items for b in batch] == [s.items for s in singles]
        assert session.engine.last_batch_stats.generation == session.generation
