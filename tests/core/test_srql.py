"""SRQL query layer: AST, builder, planner, and executor semantics."""

import pytest

from repro.core.srql import (
    ContentSearch,
    CrossModal,
    Intersect,
    Joinable,
    MetadataSearch,
    PKFK,
    Planner,
    Q,
    Then,
    Top,
    Unionable,
    Unite,
    make_op,
    op_binder,
)
from repro.core.srql import planner as planner_module
from repro.core.srql.ast import OpBinder, canonical_op
from repro.core.srql.planner import choose_strategy
from repro.core.system import CMDL, CMDLConfig


# ---------------------------------------------------------------- AST


class TestAST:
    def test_nodes_are_hashable_and_equal_by_value(self):
        a = Joinable("drugs", top_n=3)
        b = Joinable("drugs", top_n=3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_make_op_resolves_aliases(self):
        node = make_op("crossModal_search", "doc:1", top_n=5)
        assert node == CrossModal("doc:1", top_n=5)
        assert canonical_op("CROSS_MODAL_SEARCH") == "cross_modal"

    def test_make_op_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown SRQL operator"):
            make_op("teleport", "x")

    def test_make_op_unknown_param(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_op("pkfk", "drugs", depth=3)

    def test_op_binder_params_are_canonically_sorted(self):
        a = op_binder("cross_modal", top_n=3, representation="solo")
        b = op_binder("cross_modal", representation="solo", top_n=3)
        assert a == b
        assert a("doc:1") == CrossModal("doc:1", top_n=3,
                                        representation="solo")


# ------------------------------------------------------------- builder


class TestQBuilder:
    def test_primitive_constructors(self):
        assert Q.content_search("x", k=5).ast == ContentSearch("x", k=5)
        assert Q.metadata_search("x", mode="table").ast == MetadataSearch(
            "x", mode="table")
        assert Q.pkfk("drugs").ast == PKFK("drugs")
        assert Q.joinable("drugs", top_n=4).ast == Joinable("drugs", top_n=4)
        assert Q.unionable("drugs").ast == Unionable("drugs")

    def test_chaining_builds_then_with_op_binder(self):
        q = Q.content_search("synthase").cross_modal(top_n=3).pkfk(top_n=2)
        inner = q.ast
        assert isinstance(inner, Then)
        assert inner.binder == OpBinder("pkfk", (("top_n", 2),))
        assert isinstance(inner.source, Then)
        assert inner.source.source == ContentSearch("synthase")

    def test_equivalent_chains_compare_equal(self):
        a = Q.content_search("synthase").pkfk(top_n=2)
        b = Q.content_search("synthase").pkfk(top_n=2)
        assert a == b
        assert a.ast == b.ast

    def test_then_accepts_custom_callable(self):
        binder = lambda hit: Q.pkfk(hit)  # noqa: E731
        q = Q.content_search("x").then(binder, rank=2)
        assert q.ast == Then(ContentSearch("x"), binder, rank=2)

    def test_then_rejects_non_callable(self):
        with pytest.raises(TypeError, match="callable"):
            Q.content_search("x").then("pkfk")

    def test_operators_and_or_top(self):
        q = (Q.joinable("drugs") & Q.unionable("drugs")).top(2)
        assert q.ast == Top(
            Intersect(Joinable("drugs"), Unionable("drugs")), 2)
        q2 = Q.joinable("drugs") | Q.pkfk("drugs")
        assert q2.ast == Unite(Joinable("drugs"), PKFK("drugs"))

    def test_q_is_immutable_and_wraps_only_queries(self):
        q = Q.pkfk("drugs")
        with pytest.raises(AttributeError):
            q.ast = None
        with pytest.raises(TypeError):
            Q("pkfk('drugs')")

    def test_q_wraps_q_transparently(self):
        q = Q.pkfk("drugs")
        assert Q(q).ast is q.ast


# ------------------------------------------------------------- planner


class TestPlanner:
    @pytest.fixture()
    def planner(self, engine):
        return Planner(engine.profile, default_strategy="indexed")

    def test_unknown_table_rejected(self, planner):
        with pytest.raises(ValueError, match="unknown table 'nope'"):
            planner.plan(PKFK("nope"))

    def test_bad_mode_rejected(self, planner):
        with pytest.raises(ValueError, match="mode must be"):
            planner.plan(ContentSearch("x", mode="rows"))

    def test_non_positive_k_rejected(self, planner):
        with pytest.raises(ValueError, match="k must be a positive integer"):
            planner.plan(ContentSearch("x", k=0))

    def test_non_positive_top_rejected(self, planner):
        with pytest.raises(ValueError, match="TOP n must be a positive"):
            planner.plan(Top(ContentSearch("x"), 0))

    def test_bad_representation_rejected(self, planner):
        with pytest.raises(ValueError, match="unknown representation"):
            planner.plan(CrossModal("d", representation="quantum"))

    def test_non_string_value_rejected(self, planner):
        with pytest.raises(ValueError, match="takes a string"):
            planner.plan(ContentSearch(123))

    def test_then_hop_params_validated_eagerly(self, planner):
        q = Q.content_search("x").pkfk(top_n=0)
        with pytest.raises(ValueError, match="top_n must be a positive"):
            planner.plan(q.ast)

    def test_then_rank_validated(self, planner):
        q = Q.content_search("x").pkfk(rank=0)
        with pytest.raises(ValueError, match="rank must be a positive"):
            planner.plan(q.ast)

    def test_structured_ops_annotated_with_strategy(self, planner):
        plan = planner.plan(Joinable("drugs"))
        assert plan.root.strategy == "indexed"
        plan = planner.plan(ContentSearch("x"))
        assert plan.root.strategy is None

    def test_batch_shares_equal_subplans(self, planner):
        shared = Joinable("drugs", top_n=5)
        plans = planner.plan_batch(
            [shared, Intersect(shared, Unionable("drugs")), shared]
        )
        roots = [p.root for p in plans]
        assert roots[0] is roots[2]
        assert roots[1].children[0] is roots[0]

    def test_invalid_default_strategy(self, engine):
        with pytest.raises(ValueError, match="allowed values"):
            Planner(engine.profile, default_strategy="fuzzy")

    def test_invalid_operator_override(self, engine):
        with pytest.raises(ValueError, match="operator_strategies"):
            Planner(engine.profile, operator_strategies={"teleport": "exact"})


class TestStrategyHeuristic:
    def test_auto_resolves_to_concrete_choice(self, engine):
        for op in ("joinable", "unionable", "pkfk"):
            assert choose_strategy(op, engine.profile) in ("indexed", "exact")

    def test_limits_steer_the_choice(self, engine, monkeypatch):
        monkeypatch.setattr(planner_module, "JOIN_EXACT_COLUMN_LIMIT", 0)
        monkeypatch.setattr(planner_module, "UNION_EXACT_COLUMN_LIMIT", 0)
        monkeypatch.setattr(planner_module, "PKFK_EXACT_PAIR_LIMIT", 0)
        for op in ("joinable", "unionable", "pkfk"):
            assert choose_strategy(op, engine.profile) == "indexed"
        huge = 10**9
        monkeypatch.setattr(planner_module, "JOIN_EXACT_COLUMN_LIMIT", huge)
        monkeypatch.setattr(planner_module, "UNION_EXACT_COLUMN_LIMIT", huge)
        monkeypatch.setattr(planner_module, "PKFK_EXACT_PAIR_LIMIT", huge)
        for op in ("joinable", "unionable", "pkfk"):
            assert choose_strategy(op, engine.profile) == "exact"

    def test_unknown_operator(self, engine):
        with pytest.raises(ValueError, match="no strategy choice"):
            choose_strategy("content_search", engine.profile)


# ---------------------------------------------------- config validation


class TestConfigValidation:
    def test_bad_discovery_strategy_fails_at_fit(self, toy_lake):
        cmdl = CMDL(CMDLConfig(discovery_strategy="fuzzy"))
        with pytest.raises(ValueError, match="'indexed', 'exact', 'auto'"):
            cmdl.fit(toy_lake)

    def test_bad_operator_key_fails_at_fit(self, toy_lake):
        cmdl = CMDL(CMDLConfig(operator_strategies={"teleport": "exact"}))
        with pytest.raises(ValueError, match="operator_strategies key"):
            cmdl.fit(toy_lake)

    def test_bad_operator_value_fails_at_fit(self, toy_lake):
        cmdl = CMDL(CMDLConfig(operator_strategies={"pkfk": "sometimes"}))
        with pytest.raises(ValueError, match="allowed values"):
            cmdl.fit(toy_lake)

    def test_auto_strategy_fits_and_resolves(self, toy_lake):
        engine = CMDL(
            CMDLConfig(use_joint=False, discovery_strategy="auto")
        ).fit(toy_lake)
        assert set(engine.operator_strategy) == {"joinable", "unionable", "pkfk"}
        assert all(
            s in ("indexed", "exact")
            for s in engine.operator_strategy.values()
        )

    def test_operator_override_is_applied(self, toy_lake):
        engine = CMDL(
            CMDLConfig(
                use_joint=False,
                discovery_strategy="indexed",
                operator_strategies={"pkfk": "exact"},
            )
        ).fit(toy_lake)
        assert engine.operator_strategy["pkfk"] == "exact"
        assert engine.operator_strategy["joinable"] == "indexed"

    def test_default_strategy_is_auto(self):
        """ROADMAP flip, pinned: the config default lets the planner pick
        exact-vs-indexed per operator from the lake's size (the sharded
        benchmarks supplied the larger-lake evidence)."""
        assert CMDLConfig().discovery_strategy == "auto"


# ------------------------------------------------------------- executor


class TestExecutor:
    def test_single_discover_accepts_q_ast_and_string(self, engine):
        by_q = engine.discover(Q.pkfk("drugs", top_n=5))
        by_ast = engine.discover(PKFK("drugs", top_n=5))
        by_str = engine.discover(
            "SELECT * FROM lake WHERE pkfk('drugs', top_n=5)")
        assert by_q.items == by_ast.items == by_str.items

    def test_discover_rejects_non_queries(self, engine):
        with pytest.raises(TypeError, match="expected an SRQL query node"):
            engine.discover(42)

    def test_top_truncates(self, engine):
        full = engine.discover(Q.pkfk("drugs", top_n=5))
        if len(full) < 2:
            pytest.skip("lake yields too few pkfk hits for truncation")
        topped = engine.discover(Q.pkfk("drugs", top_n=5).top(1))
        assert topped.items == full.items[:1]
        assert "top1" in topped.operation

    def test_intersect_matches_manual_composition(self, engine):
        a = engine.joinable("drugs", top_n=5)
        b = engine.unionable("drugs", top_n=5)
        via_srql = engine.discover(
            Q.joinable("drugs", top_n=5) & Q.unionable("drugs", top_n=5))
        assert via_srql.items == a.intersect(b).items

    def test_unite_matches_manual_composition(self, engine):
        a = engine.joinable("drugs", top_n=5)
        b = engine.unionable("drugs", top_n=5)
        via_srql = engine.discover(
            Q.joinable("drugs", top_n=5) | Q.unionable("drugs", top_n=5))
        assert via_srql.items == a.unite(b).items

    def test_pipeline_matches_stepwise_execution(self, engine):
        r1 = engine.content_search("synthase", mode="text", k=3)
        assert len(r1) > 0
        r2 = engine.cross_modal_search(r1[1], top_n=3)
        chained = engine.discover(
            Q.content_search("synthase", k=3).cross_modal(top_n=3))
        assert chained.items == r2.items

    def test_then_with_empty_source_is_empty(self, engine):
        result = engine.discover(
            Q.content_search("zzzz_no_such_term_zzzz", k=3).pkfk())
        assert len(result) == 0
        assert result.operation.startswith("then(")

    def test_then_with_rank_beyond_results_is_empty(self, engine):
        result = engine.discover(
            Q.content_search("synthase", k=1).pkfk(rank=99))
        assert len(result) == 0

    def test_custom_callable_binder_runs(self, engine):
        q = Q.content_search("synthase", k=3).then(
            lambda hit: Q.cross_modal(hit, top_n=2))
        result = engine.discover(q)
        r1 = engine.content_search("synthase", mode="text", k=3)
        expected = engine.cross_modal_search(r1[1], top_n=2)
        assert result.items == expected.items

    def test_dynamic_table_validated_at_execution(self, engine):
        q = Q.content_search("synthase", k=1).then(
            lambda hit: Q.pkfk("definitely_not_a_table"))
        with pytest.raises(ValueError, match="unknown table"):
            engine.discover(q)

    def test_batch_matches_singles_and_dedupes(self, engine):
        workload = [
            Q.pkfk("drugs", top_n=3),
            Q.joinable("drugs", top_n=3),
            Q.pkfk("drugs", top_n=3),
            Q.content_search("synthase", k=3),
        ]
        singles = [engine.discover(q) for q in workload]
        batch = engine.discover_batch(workload)
        assert [b.items for b in batch] == [s.items for s in singles]
        stats = engine.last_batch_stats
        assert stats.requested == 4
        assert stats.executed == 3  # duplicate pkfk served from the memo
        assert stats.reused == 1
        assert stats.pkfk_queries == 1

    def test_batch_shares_one_pkfk_sweep(self, engine):
        engine.invalidate()
        tables = sorted(engine.profile.table_columns)[:4]
        engine.discover_batch([Q.pkfk(t, top_n=2) for t in tables])
        stats = engine.last_batch_stats
        assert stats.pkfk_queries == len(tables)
        assert stats.pkfk_sweeps == 1

    def test_per_query_strategy_override(self, engine):
        indexed = engine.discover(Q.joinable("drugs", top_n=3))
        exact = engine.joinable("drugs", top_n=3, strategy="exact")
        # Seed-scale probes reach full recall: identical top-k either way.
        assert indexed.items == exact.items


# ----------------------------------------------------- engine accessors


class TestPkfkLinksAccessor:
    def test_links_are_cached_per_strategy(self, engine):
        engine.invalidate()
        before = engine.pkfk_sweeps
        first = engine.pkfk_links()
        assert engine.pkfk_sweeps == before + 1
        assert engine.pkfk_links() is first  # cache hit, no new sweep
        assert engine.pkfk_sweeps == before + 1

    def test_refresh_forces_resweep(self, engine):
        engine.invalidate()
        before = engine.pkfk_sweeps
        engine.pkfk_links()
        engine.pkfk_links(refresh=True)
        assert engine.pkfk_sweeps == before + 2

    def test_invalidate_drops_cache(self, engine):
        engine.pkfk_links()
        before = engine.pkfk_sweeps
        engine.invalidate()
        engine.pkfk_links()
        assert engine.pkfk_sweeps == before + 1

    def test_strategies_cached_independently(self, engine):
        engine.invalidate()
        exact = engine.pkfk_links(strategy="exact")
        indexed = engine.pkfk_links(strategy="indexed")
        assert engine.pkfk_links(strategy="exact") is exact
        assert engine.pkfk_links(strategy="indexed") is indexed
        # Seed lakes: both sweeps find the same links (parity).
        assert (
            [(l.pk_column, l.fk_column) for l in exact]
            == [(l.pk_column, l.fk_column) for l in indexed]
        )

    def test_bad_strategy_rejected(self, engine):
        with pytest.raises(ValueError, match="invalid strategy"):
            engine.pkfk_links(strategy="fuzzy")
