"""Tests for mutable lake sessions (incremental add/remove/refresh).

Covers the session API surface, the generation-counter invalidation
protocol, and the mutation edge cases: removing a table referenced by a
cached PK-FK link, zero-row / all-null additions, ``update_table`` flipping
a column's inferred type, and SRQL batches interleaved with mutations.
Cross-checking incremental results against cold fits on the three seed
lakes lives in ``test_incremental_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.core.session import LakeSession, open_lake
from repro.core.system import CMDL, CMDLConfig
from repro.core.srql import Q
from repro.embed.hashing_embedder import HashingEmbedder
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Column, Table


def session_config() -> CMDLConfig:
    """Fast, mutation-friendly config: no joint model, and the
    corpus-independent hashing embedder so incremental sketches are exactly
    what a cold fit would produce."""
    return CMDLConfig(use_joint=False, embedder=HashingEmbedder(seed=0))


@pytest.fixture()
def session(toy_lake) -> LakeSession:
    return open_lake(toy_lake, session_config())


@pytest.fixture()
def indexed_session(toy_lake) -> LakeSession:
    """Session pinned to the indexed path (the "auto" default resolves to
    exact at toy scale, which would leave no CandidateGenerator to test)."""
    config = session_config()
    config.discovery_strategy = "indexed"
    return open_lake(toy_lake, config)


CITIES_EXTRA = {
    "city": ["london", "madrid", "rome"],
    "mayor": ["sadiq", "jose", "roberto"],
}


# ------------------------------------------------------------------- open


class TestOpen:
    def test_cmdl_open_returns_session(self, toy_lake):
        cmdl = CMDL(session_config())
        session = cmdl.open(toy_lake)
        assert isinstance(session, LakeSession)
        assert session.engine is cmdl.engine
        assert session.generation == 0

    def test_open_lake_convenience(self, toy_lake):
        session = open_lake(toy_lake, session_config())
        assert session.discover(Q.joinable("drugs", top_n=2)).items

    def test_unfitted_cmdl_rejected(self, toy_lake):
        with pytest.raises(RuntimeError, match="fitted CMDL"):
            LakeSession(CMDL(session_config()), toy_lake)


# ------------------------------------------------- smoke: one add + query


class TestSmokeCycle:
    """The tier-1 smoke check: one add+query cycle must just work."""

    def test_add_then_query(self, session):
        before = session.discover(Q.joinable("drugs", top_n=2)).items
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        assert session.generation == 1
        hits = session.discover(Q.joinable("capitals", top_n=2))
        assert hits.ids() == ["cities"]  # shares the city value set
        # Pre-existing queries still serve identical results mid-session.
        assert session.discover(Q.joinable("drugs", top_n=2)).items == before


# ------------------------------------------------------------- mutators


class TestAddTable:
    def test_profile_and_uniqueness_updated(self, session):
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        assert "capitals.city" in session.profile.columns
        assert session.profile.columns_of_table("capitals") == [
            "capitals.city", "capitals.mayor",
        ]
        assert session.engine.uniqueness["capitals.mayor"] == 1.0

    def test_duplicate_name_rejected_atomically(self, session):
        with pytest.raises(ValueError, match="duplicate table"):
            session.add_table(Table.from_dict("drugs", {"x": ["1"]}))
        assert session.generation == 0  # nothing was committed

    def test_zero_row_table(self, session):
        session.add_table(Table("ghostly", [Column("name", []), Column("id", [])]))
        assert "ghostly.name" in session.profile.columns
        assert session.profile.columns["ghostly.name"].value_set == frozenset()
        # Still queryable, just never a hit.
        assert session.discover(Q.joinable("ghostly", top_n=2)).items == []
        assert session.discover(Q.joinable("drugs", top_n=2)).items

    def test_all_null_column(self, session):
        session.add_table(Table.from_dict(
            "sparse", {"val": ["na", "", "null"], "name": ["aspirin", "codeine", "x"]}
        ))
        sketch = session.profile.columns["sparse.val"]
        assert sketch.tags is not None and not sketch.tags.join_discovery
        hits = session.discover(Q.joinable("sparse", top_n=2))
        assert hits.ids() == ["drugs"]  # via the non-null name column


class TestAddDocument:
    def test_new_document_searchable(self, session):
        session.add_document(Document(
            doc_id="doc:morphine", title="Morphine receptor binding",
            text="Morphine binds the mu receptor strongly.",
        ))
        hits = session.discover(Q.content_search("morphine receptor", k=3))
        assert hits[1] == "doc:morphine"

    def test_df_filter_resync(self, session):
        """Adding documents can push a term over the corpus df cutoff; the
        session must re-sketch the *old* documents it drifts."""
        assert "inflammation" in session.profile.documents[
            "doc:aspirin"].content_bow.terms
        session.add_documents([
            Document(doc_id=f"doc:extra{i}", title=f"Extra {i}",
                     text="Chronic inflammation is discussed here.")
            for i in range(3)
        ])
        # 5 of 5 documents now mention it: dropped as non-discriminative,
        # including from the documents profiled before the mutation.
        assert "inflammation" not in session.profile.documents[
            "doc:aspirin"].content_bow.terms
        assert session.discover(Q.content_search("inflammation", k=5)).items == []


class TestRemove:
    def test_remove_table_forgets_everything(self, session):
        session.remove("cities")
        assert "cities" not in session.profile.table_columns
        assert "cities.city" not in session.profile.columns
        assert "cities.city" not in session.engine.uniqueness
        with pytest.raises(ValueError, match="unknown table"):
            session.discover(Q.joinable("cities", top_n=2))

    def test_remove_table_with_cached_pkfk_link(self, session):
        links = session.engine.pkfk_links()  # warms the sweep cache
        assert any(
            link.fk_column.startswith("targets.") for link in links
        )
        session.remove("targets")
        fresh = session.engine.pkfk_links()
        assert all(
            not link.pk_column.startswith("targets.")
            and not link.fk_column.startswith("targets.")
            for link in fresh
        )
        assert session.discover(Q.pkfk("drugs", top_n=2)).items == []

    def test_remove_document(self, session):
        session.remove("doc:aspirin")
        assert "doc:aspirin" not in session.profile.documents
        hits = session.discover(Q.content_search("aspirin", k=5))
        assert "doc:aspirin" not in hits.ids()

    def test_remove_unknown_raises(self, session):
        with pytest.raises(KeyError, match="no table or document"):
            session.remove("nonexistent")
        assert session.generation == 0


class TestUpdateTable:
    def test_type_change_is_absorbed(self, session):
        assert session.profile.columns["cities.population"].numeric is not None
        session.update_table(Table.from_dict("cities", {
            "city": ["london", "paris", "berlin", "madrid"],
            "population": ["huge", "large", "large", "large"],
        }))
        sketch = session.profile.columns["cities.population"]
        assert sketch.numeric is None
        assert "cities.population" not in session.indexes.column_numeric
        assert session.discover(Q.unionable("drugs", top_n=3)) is not None

    def test_value_change_changes_results(self, session):
        assert session.discover(Q.joinable("cities", top_n=2)).items == []
        session.update_table(Table.from_dict("cities", {
            "city": ["london", "paris"],
            "resident_drug": ["aspirin", "codeine"],
        }))
        assert session.discover(Q.joinable("cities", top_n=2)).ids() == ["drugs"]

    def test_update_unknown_raises(self, session):
        with pytest.raises(KeyError, match="no table"):
            session.update_table(Table.from_dict("ghost", {"x": ["1"]}))


# ------------------------------------------------ invalidation protocol


class TestInvalidationProtocol:
    def test_generation_bumps_per_mutation(self, session):
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        session.remove("capitals")
        assert session.generation == 2
        assert session.mutations == 2

    def test_invalidate_scope_validated(self, session):
        with pytest.raises(ValueError, match="invalid invalidate scope"):
            session.engine.invalidate("everything")

    def test_scope_pkfk_keeps_candidates(self, indexed_session):
        engine = indexed_session.engine
        engine.pkfk_links()
        generator = engine.candidates
        assert generator is not None
        engine.invalidate("pkfk")
        assert engine._pkfk_links == {}
        assert engine.candidates is generator
        assert engine.generation == 0

    def test_scope_candidates_drops_generator_not_generation(self, indexed_session):
        engine = indexed_session.engine
        scorer = engine.join_discovery
        engine.invalidate("candidates")
        assert engine.candidates is None
        assert engine.generation == 0
        assert engine.join_discovery is not scorer  # rebuilt lazily

    def test_scope_all_stamps_new_generation(self, indexed_session):
        engine = indexed_session.engine
        engine.invalidate("all")
        assert engine.generation == 1
        engine.joinable("drugs", top_n=2)  # rebuilds the generator lazily
        assert engine.candidates.generation == 1

    def test_stats_report_generation(self, session):
        session.discover(Q.joinable("drugs", top_n=2))
        assert session.engine.last_batch_stats.generation == 0
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        session.discover(Q.joinable("drugs", top_n=2))
        assert session.engine.last_batch_stats.generation == 1

    def test_batch_interleaved_with_mutations(self, session):
        workload = [Q.joinable("cities", top_n=2), Q.pkfk("drugs", top_n=2)]
        before = session.discover_batch(workload)
        assert before[0].items == []
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        after = session.discover_batch(workload)
        assert after[0].ids() == ["capitals"]
        assert after[1].items == before[1].items  # untouched operator
        session.remove("targets")
        assert session.discover_batch(workload)[1].items == []


# ------------------------------------------------------------- refresh


class TestRefresh:
    def test_refresh_restores_cold_fit_state(self, session, toy_lake):
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        old_engine = session.engine
        engine = session.refresh()
        assert engine is session.engine
        assert engine is not old_engine
        assert session.mutations == 0
        cold = CMDL(session_config()).fit(toy_lake)
        for q in (Q.joinable("capitals", top_n=3), Q.unionable("drugs", top_n=3)):
            assert session.discover(q).items == cold.discover(q).items

    def test_generation_monotonic_across_refresh(self, session):
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        assert session.generation == 1
        session.refresh()
        assert session.generation == 2


class TestPerSweepAutoStrategy:
    def test_pkfk_auto_reresolved_each_sweep(self, toy_lake, monkeypatch):
        """Under "auto" the exact-vs-indexed choice is made per sweep from
        the planner's size/density thresholds, not frozen at fit time."""
        config = session_config()
        config.discovery_strategy = "auto"
        session = open_lake(toy_lake, config)
        engine = session.engine

        engine.pkfk_links()
        assert set(engine._pkfk_links) == {"exact"}  # tiny lake: exact wins

        from repro.core.srql import planner

        monkeypatch.setattr(planner, "PKFK_EXACT_PAIR_LIMIT", 0)
        links = engine.pkfk_links()  # re-resolves: now past the "lake size" bar
        assert set(engine._pkfk_links) == {"exact", "indexed"}
        # Seed-scale probes reach full recall: same links either way.
        assert [(l.pk_column, l.fk_column) for l in links] == [
            (l.pk_column, l.fk_column) for l in engine._pkfk_links["exact"]
        ]

    def test_mutation_refreshes_auto_resolution(self, toy_lake):
        config = session_config()
        config.discovery_strategy = "auto"
        session = open_lake(toy_lake, config)
        resolved_before = dict(session.engine.operator_strategy)
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        # Still below every crossover at toy scale, but re-resolved fresh.
        assert set(session.engine.operator_strategy) == set(resolved_before)


# ---------------------------------------------------------- joint model


@pytest.fixture(scope="module")
def joint_session(pharma_generated):
    """A session whose CMDL trained a joint model (frozen across mutations)."""
    cmdl = CMDL(CMDLConfig(sample_fraction=0.4, max_epochs=25, seed=0))
    return cmdl.open(pharma_generated.lake)


class TestJointDeltaIndexing:
    def test_mutations_keep_joint_space_live(self, joint_session):
        session = joint_session
        assert session.indexes.has_joint
        doc = sorted(session.profile.documents)[0]
        before = session.discover(
            Q.cross_modal(doc, top_n=3, representation="joint"))

        session.add_document(Document(
            doc_id="doc:joint-new", title="New enzyme inhibitor report",
            text="The inhibitor binds thymidylate synthase in the new assay.",
        ))
        session.add_table(Table.from_dict("trial_notes", {
            "note_id": [f"N{i}" for i in range(20)],
            "enzyme_name": [f"enzyme {i % 7}" for i in range(20)],
        }))
        # New DEs were embedded under the frozen model and delta-indexed.
        assert "doc:joint-new" in session.indexes.doc_joint
        text_cols = [
            c for c in session.profile.columns_of_table("trial_notes")
            if session.profile.columns[c].tags.text_discovery
        ]
        assert text_cols
        assert all(c in session.indexes.column_joint for c in text_cols)
        # Joint-representation queries still serve (unchanged for old DEs).
        after = session.discover(
            Q.cross_modal(doc, top_n=3, representation="joint"))
        assert after.items == before.items

        session.remove("trial_notes")
        session.remove("doc:joint-new")
        assert "doc:joint-new" not in session.indexes.doc_joint
        assert all(c not in session.indexes.column_joint for c in text_cols)


class TestGoldPairsRetention:
    def test_refresh_reuses_open_time_gold(self, toy_lake, monkeypatch):
        gold = [("doc:aspirin", "drugs.name", 1)]
        session = CMDL(session_config()).open(toy_lake, gold_pairs=gold)
        assert session.gold_pairs == gold
        seen = []
        original = CMDL.fit

        def spy(self, lake, gold_pairs=None):
            seen.append(gold_pairs)
            return original(self, lake, gold_pairs=gold_pairs)

        monkeypatch.setattr(CMDL, "fit", spy)
        session.refresh()
        assert seen == [gold]  # the open-time gold, not None
        replacement = [("doc:ibuprofen", "drugs.name", 1)]
        session.refresh(gold_pairs=replacement)
        assert seen == [gold, replacement]
        assert session.gold_pairs == replacement


class TestDrift:
    """session.drift(): OOV rate of post-fit DEs vs the fit vocabulary."""

    NEOLOGISMS = {"blarfle": ["wuggish", "snorfling", "quibblet"]}

    def test_zero_after_open(self, session):
        assert session.drift() == 0.0

    def test_novel_vocabulary_raises_drift(self, session):
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        assert session.drift() > 0.5  # nearly every term is unseen

    def test_known_vocabulary_keeps_drift_zero(self, session):
        session.add_document(Document(
            doc_id="doc:aspirin2",
            title="Aspirin and cox synthase",
            text="Aspirin inhibits cox synthase and reduces inflammation.",
        ))
        assert session.drift() == 0.0

    def test_removing_the_drifted_de_prunes_its_contribution(self, session):
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        assert session.drift() > 0.0
        session.remove("neologisms")
        # The lake is back to fit-time vocabulary: no spurious drift (and
        # so no spurious auto-refresh) from DEs that are no longer there.
        assert session.drift() == 0.0

    def test_update_replaces_drift_contribution(self, session):
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        assert session.drift() > 0.0
        session.update_table(Table.from_dict("neologisms", {
            "name": ["aspirin", "ibuprofen"],  # fit-time vocabulary
        }))
        drift = session.drift()
        assert drift < 0.5  # only the table-name metadata terms remain OOV

    def test_refresh_resets_drift(self, session):
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        assert session.drift() > 0.0
        session.refresh()
        assert session.drift() == 0.0

    def test_threshold_validated(self, toy_lake):
        with pytest.raises(ValueError, match="auto_refresh_threshold"):
            open_lake(toy_lake, session_config(), auto_refresh_threshold=2.0)

    def test_auto_refresh_triggers_on_threshold(self, toy_lake):
        session = open_lake(
            toy_lake, session_config(), auto_refresh_threshold=0.05
        )
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        # The mutation pushed drift past the bound: the session refreshed
        # itself (commit bump + refresh bump, mutation counter reset).
        assert session.mutations == 0
        assert session.drift() == 0.0
        assert session.generation == 2

    def test_below_threshold_no_refresh(self, toy_lake):
        # Drift must *exceed* the bound: at the maximum threshold of 1.0
        # even a fully-OOV mutation (drift == 1.0) never triggers.
        session = open_lake(
            toy_lake, session_config(), auto_refresh_threshold=1.0
        )
        session.add_table(Table.from_dict("neologisms", self.NEOLOGISMS))
        assert session.mutations == 1
        assert session.generation == 1
        assert 0.0 < session.drift() <= 1.0


class TestRefreshRestampsCandidates:
    def test_candidates_generation_matches_engine_after_refresh(self, indexed_session):
        session = indexed_session
        session.add_table(Table.from_dict("capitals", CITIES_EXTRA))
        engine = session.refresh()
        engine.joinable("drugs", top_n=2)  # materialise the generator
        assert engine.candidates is not None
        assert engine.candidates.generation == engine.generation
