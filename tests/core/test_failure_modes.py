"""Failure-injection and degenerate-input tests for the CMDL stack."""

import pytest

from repro.core.system import CMDL, CMDLConfig
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table


def minimal_lake(num_docs=3, num_rows=6) -> DataLake:
    lake = DataLake("minimal")
    lake.add_table(Table.from_dict("t", {
        "key": [f"k{i}" for i in range(num_rows)],
        "label": [f"item {i}" for i in range(num_rows)],
    }))
    for i in range(num_docs):
        lake.add_document(Document(f"d{i}", f"note {i}",
                                   f"item {i} relates to k{i} somehow."))
    return lake


class TestDegenerateLakes:
    def test_empty_lake(self):
        engine = CMDL(CMDLConfig(seed=0)).fit(DataLake("empty"))
        assert engine.content_search("anything", mode="text").items == []

    def test_empty_lake_free_text_query_raises_cleanly(self):
        # A free-text cross-modal query needs an existing sketch to borrow
        # hash-family settings from; an empty profile must raise ValueError,
        # not leak a bare StopIteration.
        engine = CMDL(CMDLConfig(seed=0)).fit(DataLake("empty"))
        with pytest.raises(ValueError, match="empty profile"):
            engine.cross_modal_search("anything at all")

    def test_documents_only(self):
        lake = DataLake("docs-only")
        lake.add_document(Document("d", "t", "an isolated note about enzymes"))
        cmdl = CMDL(CMDLConfig(seed=0))
        engine = cmdl.fit(lake)
        hits = engine.content_search("enzyme", mode="text", k=3)
        assert hits.ids() == ["d"]

    def test_single_row_tables(self):
        lake = DataLake("single-row")
        lake.add_table(Table.from_dict("t1", {"a": ["x"]}))
        lake.add_table(Table.from_dict("t2", {"b": ["x"]}))
        engine = CMDL(CMDLConfig(use_joint=False, seed=0)).fit(lake)
        assert isinstance(engine.joinable("t1", top_n=1).items, list)

    def test_all_numeric_lake(self):
        lake = DataLake("numeric")
        lake.add_table(Table.from_dict("m", {
            "x": [str(i) for i in range(20)],
            "y": [str(i * 2) for i in range(20)],
        }))
        lake.add_document(Document("d", "numbers", "a memo about measurements"))
        cmdl = CMDL(CMDLConfig(seed=0))
        engine = cmdl.fit(lake)
        # No text-discovery columns -> no joint model, but the engine works.
        assert engine.unionable("m", top_n=1).operation == "unionable"

    def test_missing_values_everywhere(self):
        lake = DataLake("sparse")
        lake.add_table(Table.from_dict("s", {
            "a": ["", "NA", "x", "", "y"],
            "b": ["", "", "", "", ""],
        }))
        lake.add_document(Document("d", "t", "notes mentioning x and y"))
        engine = CMDL(CMDLConfig(use_joint=False, seed=0)).fit(lake)
        assert engine.profile.columns["s.b"].value_set == frozenset()

    def test_duplicate_heavy_keys(self):
        lake = DataLake("dups")
        lake.add_table(Table.from_dict("k", {
            "id": ["a"] * 10 + ["b"] * 10,
        }))
        engine = CMDL(CMDLConfig(use_joint=False, seed=0)).fit(lake)
        # Cardinality 2/20 -> never a PK candidate.
        assert engine.pkfk("k", top_n=2).items == []


class TestQueryErrors:
    def test_unknown_table_queries(self):
        engine = CMDL(CMDLConfig(use_joint=False, seed=0)).fit(minimal_lake())
        assert engine.unionable("ghost", top_n=2).items == []
        assert engine.pkfk("ghost", top_n=2).items == []
        with pytest.raises(KeyError):
            engine.join_discovery.joinable_columns("ghost.col", k=2)

    def test_unknown_document_falls_back_to_text(self):
        engine = CMDL(CMDLConfig(seed=0)).fit(minimal_lake())
        # An unknown id is treated as free text; should not raise.
        result = engine.cross_modal_search("item 2 relates", top_n=2)
        assert isinstance(result.items, list)

    def test_empty_query_text(self):
        engine = CMDL(CMDLConfig(seed=0)).fit(minimal_lake())
        assert engine.content_search("", mode="text").items == []


class TestConfigSurface:
    def test_small_sample_still_fits(self):
        lake = minimal_lake(num_docs=5)
        cmdl = CMDL(CMDLConfig(sample_fraction=0.2, max_epochs=3, seed=0))
        cmdl.fit(lake)
        assert cmdl.labeling_report.sampled_docs == 1

    def test_median_hard_sampling_config(self):
        lake = minimal_lake(num_docs=5)
        cmdl = CMDL(CMDLConfig(hard_sampling="median", max_epochs=3, seed=0))
        engine = cmdl.fit(lake)
        assert engine is cmdl.engine

    def test_lm_dirichlet_ranker_config(self):
        lake = minimal_lake()
        cmdl = CMDL(CMDLConfig(ranker="lm_dirichlet", use_joint=False, seed=0))
        engine = cmdl.fit(lake)
        # 'item' occurs in every document and is filtered as
        # non-discriminative; the per-document key token survives.
        hits = engine.content_search("k1", mode="text", k=2)
        assert hits.ids()[0] == "d1"
