"""Tests for the discovery engine and the CMDL facade (uses session fixtures)."""

import pytest

from repro.core.discovery import DiscoveryResultSet
from repro.core.system import CMDL, CMDLConfig


class TestDiscoveryResultSet:
    def test_one_based_indexing(self):
        drs = DiscoveryResultSet([("a", 0.9), ("b", 0.5)], operation="test")
        assert drs[1] == "a"
        assert drs[2] == "b"

    def test_index_out_of_range(self):
        drs = DiscoveryResultSet([("a", 0.9)], operation="test")
        with pytest.raises(IndexError):
            drs[0]
        with pytest.raises(IndexError):
            drs[2]

    def test_ids_scores_len_iter(self):
        drs = DiscoveryResultSet([("a", 0.9), ("b", 0.5)], operation="test")
        assert drs.ids() == ["a", "b"]
        assert drs.scores() == {"a": 0.9, "b": 0.5}
        assert len(drs) == 2
        assert list(drs) == [("a", 0.9), ("b", 0.5)]

    def test_intersect(self):
        a = DiscoveryResultSet([("x", 1.0), ("y", 0.5)], operation="a")
        b = DiscoveryResultSet([("y", 2.0), ("z", 1.0)], operation="b")
        merged = a.intersect(b)
        assert merged.ids() == ["y"]
        assert merged.scores()["y"] == pytest.approx(0.5 + 1.0)

    def test_unite(self):
        a = DiscoveryResultSet([("x", 1.0)], operation="a")
        b = DiscoveryResultSet([("y", 1.0)], operation="b")
        merged = a.unite(b)
        assert set(merged.ids()) == {"x", "y"}


class TestResultSetCompositionEdgeCases:
    def test_intersect_with_empty_is_empty(self):
        a = DiscoveryResultSet([("x", 1.0), ("y", 0.5)], operation="a")
        empty = DiscoveryResultSet([], operation="b")
        assert a.intersect(empty).items == []
        assert empty.intersect(a).items == []

    def test_unite_with_empty_keeps_normalised_other(self):
        a = DiscoveryResultSet([("x", 4.0), ("y", 2.0)], operation="a")
        empty = DiscoveryResultSet([], operation="b")
        assert a.unite(empty).items == [("x", 1.0), ("y", 0.5)]
        assert empty.unite(a).items == [("x", 1.0), ("y", 0.5)]

    def test_both_empty(self):
        a = DiscoveryResultSet([], operation="a")
        b = DiscoveryResultSet([], operation="b")
        assert a.intersect(b).items == []
        assert a.unite(b).items == []

    def test_all_zero_scores_survive_without_dividing(self):
        a = DiscoveryResultSet([("x", 0.0), ("y", 0.0)], operation="a")
        b = DiscoveryResultSet([("y", 0.0), ("z", 0.0)], operation="b")
        merged = a.unite(b)
        assert merged.scores() == {"x": 0.0, "y": 0.0, "z": 0.0}
        common = a.intersect(b)
        assert common.items == [("y", 0.0)]

    def test_zero_scores_against_positive_scores(self):
        zero = DiscoveryResultSet([("x", 0.0), ("y", 0.0)], operation="a")
        pos = DiscoveryResultSet([("y", 2.0)], operation="b")
        merged = zero.intersect(pos)
        assert merged.items == [("y", 1.0)]  # 0-normalised + 2/2

    def test_deterministic_tie_breaking_by_id(self):
        a = DiscoveryResultSet([("b", 1.0), ("c", 1.0), ("a", 1.0)],
                               operation="a")
        b = DiscoveryResultSet([("c", 1.0), ("a", 1.0), ("b", 1.0)],
                               operation="b")
        assert a.unite(b).ids() == ["a", "b", "c"]
        assert a.intersect(b).ids() == ["a", "b", "c"]
        assert b.unite(a).ids() == ["a", "b", "c"]

    def test_operation_provenance_of_composition(self):
        a = DiscoveryResultSet([("x", 1.0)], operation="a")
        b = DiscoveryResultSet([("x", 1.0)], operation="b")
        assert "a" in a.intersect(b).operation
        assert "b" in a.unite(b).operation


class TestContentSearch:
    def test_doc_search_finds_relevant(self, engine, pharma_generated):
        doc = pharma_generated.lake.documents[0]
        token = sorted(engine.profile.documents[doc.doc_id].content_bow)[0]
        result = engine.content_search(token, mode="text", k=10)
        assert doc.doc_id in result.ids()

    def test_table_mode_returns_columns(self, engine):
        result = engine.content_search("enzyme", mode="table", k=5)
        assert all("." in cid for cid in result.ids())

    def test_invalid_mode(self, engine):
        with pytest.raises(ValueError):
            engine.content_search("x", mode="rows")

    def test_metadata_search(self, engine):
        result = engine.metadata_search("drug", mode="table", k=5)
        assert len(result) > 0
        assert any("drug" in cid for cid in result.ids())


class TestArgumentValidation:
    """k / top_n guards are shared and consistent across every operation."""

    @pytest.mark.parametrize("bad_k", [0, -1, 2.5, "3", True])
    def test_content_search_rejects_bad_k(self, engine, bad_k):
        with pytest.raises(ValueError, match="k must be a positive integer"):
            engine.content_search("x", k=bad_k)

    @pytest.mark.parametrize("bad_k", [0, -1])
    def test_metadata_search_rejects_bad_k(self, engine, bad_k):
        with pytest.raises(ValueError, match="k must be a positive integer"):
            engine.metadata_search("x", mode="table", k=bad_k)

    def test_metadata_search_rejects_bad_mode(self, engine):
        with pytest.raises(ValueError, match="mode must be"):
            engine.metadata_search("x", mode="rows")

    @pytest.mark.parametrize("method", ["cross_modal_search", "joinable",
                                        "pkfk", "unionable"])
    def test_top_n_rejected_when_not_positive(self, engine, method):
        with pytest.raises(ValueError,
                           match="top_n must be a positive integer"):
            getattr(engine, method)("drugs", top_n=0)

    def test_cross_modal_rejects_bad_column_k(self, engine):
        with pytest.raises(ValueError,
                           match="column_k must be a positive integer"):
            engine.cross_modal_search("drugs", column_k=-5)


class TestCrossModalSearch:
    def test_joint_search_returns_tables(self, engine, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        doc_id = gt.queries[0]
        result = engine.cross_modal_search(doc_id, top_n=3)
        assert 0 < len(result) <= 3
        table_names = set(pharma_generated.lake.table_names)
        assert all(t in table_names for t in result.ids())

    def test_solo_representation(self, engine, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        result = engine.cross_modal_search(gt.queries[0], top_n=3,
                                           representation="solo")
        assert len(result) > 0

    def test_joint_hits_ground_truth(self, engine, pharma_generated):
        """Averaged over queries, top-3 recall must be well above random."""
        gt = pharma_generated.ground_truth("doc_to_table")
        hits = 0
        for doc_id in gt.queries[:20]:
            result = engine.cross_modal_search(doc_id, top_n=3)
            if set(result.ids()) & gt.relevant(doc_id):
                hits += 1
        assert hits >= 10

    def test_free_text_query(self, engine):
        result = engine.cross_modal_search(
            "thymidylate synthase inhibition by antifolates", top_n=3)
        assert len(result) > 0

    def test_invalid_representation(self, engine):
        with pytest.raises(ValueError):
            engine.cross_modal_search("x", representation="quantum")

    def test_provenance_recorded(self, engine, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        result = engine.cross_modal_search(gt.queries[0], top_n=2)
        assert result.operation == "crossModal_search"
        assert result.inputs["value"] == gt.queries[0]


class TestStructuredOps:
    def test_pkfk_finds_fk_tables(self, engine):
        result = engine.pkfk("drugs", top_n=5)
        assert len(result) > 0

    def test_joinable(self, engine):
        result = engine.joinable("drugs", top_n=3)
        assert len(result) > 0
        assert "drugs" not in result.ids()

    def test_unionable_finds_derived(self, engine, pharma_generated):
        derived = pharma_generated.tables_in("drugbank_synthetic")
        base = derived[0].split("_", 1)[1].rsplit("_", 1)[0]
        result = engine.unionable(base, top_n=5)
        assert set(result.ids()) & set(derived)


class TestCMDLFacade:
    def test_fit_populates_diagnostics(self, fitted_cmdl):
        assert fitted_cmdl.profile is not None
        assert fitted_cmdl.indexes is not None
        assert fitted_cmdl.labeling_report is not None
        assert fitted_cmdl.training_result is not None
        assert fitted_cmdl.joint_model is not None

    def test_joint_indexed(self, fitted_cmdl):
        assert fitted_cmdl.indexes.has_joint

    def test_no_joint_mode(self, pharma_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0))
        engine = cmdl.fit(pharma_lake)
        assert cmdl.joint_model is None
        with pytest.raises(RuntimeError, match="joint representation"):
            engine.cross_modal_search(
                pharma_lake.documents[0].doc_id, representation="joint")

    def test_solo_works_without_joint(self, pharma_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0))
        engine = cmdl.fit(pharma_lake)
        result = engine.cross_modal_search(
            pharma_lake.documents[0].doc_id, top_n=3, representation="solo")
        assert len(result) > 0

    def test_motivating_pipeline_runs(self, engine):
        """The Q1-Q5 chain from the paper's Figure 1."""
        r1 = engine.content_search("synthase", mode="text", k=3)
        assert len(r1) > 0
        r2 = engine.cross_modal_search(r1[1], top_n=3)
        assert len(r2) > 0
        r4 = engine.pkfk(r2[1], top_n=2)
        r5 = engine.unionable(r2[1], top_n=2)
        assert r4.operation == "pkfk"
        assert r5.operation == "unionable"
