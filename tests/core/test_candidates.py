"""Tests for the index-backed candidate-generation layer.

Covers the :class:`~repro.core.candidates.CandidateGenerator` probe recall
guarantees, the supporting index structures (interval index, LSH accessors),
the strategy knob, the union pair-score memoization, and — under the ``slow``
marker — full indexed-vs-exact parity sweeps on the seed lakes.
"""

import pytest

from repro.ann.intervals import IntervalIndex
from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.indexes import IndexCatalog
from repro.core.joinability import JoinDiscovery
from repro.core.pkfk import PKFKDiscovery
from repro.core.profiler import Profiler
from repro.core.unionability import UnionDiscovery
from repro.relational.catalog import DataLake
from repro.relational.stats import numeric_stats
from repro.relational.table import Table
from repro.sketch.lsh import LSHIndex
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash


@pytest.fixture(scope="module")
def candidate_lake() -> DataLake:
    lake = DataLake("candidates")
    lake.add_table(Table.from_dict("drugs", {
        "drug_id": [f"DB{i:05d}" for i in range(40)],
        "name": [f"compound{i}" for i in range(40)],
        "score": [f"{i * 0.5:.1f}" for i in range(40)],
    }))
    # FK table: drug_ref covers only the first 10 drugs (skewed containment).
    lake.add_table(Table.from_dict("targets", {
        "target_id": [f"T{i}" for i in range(40)],
        "drug_ref": [f"DB{i % 10:05d}" for i in range(40)],
    }))
    # Unionable variant of drugs (projection + rename).
    lake.add_table(Table.from_dict("drugs_copy", {
        "drug_key": [f"DB{i:05d}" for i in range(10, 30)],
        "title": [f"compound{i}" for i in range(10, 30)],
        "score": [f"{i * 0.5:.1f}" for i in range(10, 30)],
    }))
    # Numeric tables with overlapping ranges (interval-probe territory).
    lake.add_table(Table.from_dict("readings", {
        "sensor": [f"s{i}" for i in range(30)],
        "reading": [str(i) for i in range(30)],
    }))
    lake.add_table(Table.from_dict("calibration", {
        "device": [f"d{i}" for i in range(20)],
        "reading": [str(10 + i) for i in range(20)],
    }))
    # Unrelated table.
    lake.add_table(Table.from_dict("cities", {
        "city": [f"town{i}" for i in range(40)],
        "population": [str(1000 + i) for i in range(40)],
    }))
    return lake


@pytest.fixture(scope="module")
def profile(candidate_lake):
    return Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(candidate_lake)


@pytest.fixture(scope="module")
def catalog(profile):
    return IndexCatalog(profile, num_partitions=2, num_bands=8, num_trees=4)


@pytest.fixture(scope="module")
def generator(profile, catalog):
    return CandidateGenerator(profile, catalog)


@pytest.fixture(scope="module")
def uniqueness(candidate_lake):
    return {c.qualified_name: c.uniqueness for c in candidate_lake.columns}


# ---------------------------------------------------------- interval index


class TestIntervalIndex:
    def test_overlap_query(self):
        index = IntervalIndex()
        index.add("a", numeric_stats([0.0, 10.0]))
        index.add("b", numeric_stats([8.0, 20.0]))
        index.add("c", numeric_stats([100.0, 101.0]))
        hits = index.query(numeric_stats([5.0, 9.0]))
        assert "a" in hits and "b" in hits
        assert "c" not in hits

    def test_mean_window_catches_disjoint_ranges(self):
        # numeric_overlap awards up to 0.3 for mean proximity even with
        # disjoint ranges; the index must not prune such near-miss pairs.
        index = IntervalIndex()
        index.add("near", numeric_stats([11.0, 12.0, 13.0]))
        hits = index.query(numeric_stats([8.0, 9.0, 10.0]))
        assert "near" in hits

    def test_empty_index(self):
        assert IntervalIndex().query(numeric_stats([1.0])) == []

    def test_duplicate_key_rejected(self):
        index = IntervalIndex()
        index.add("a", numeric_stats([1.0]))
        with pytest.raises(ValueError):
            index.add("a", numeric_stats([2.0]))

    def test_exclude(self):
        index = IntervalIndex()
        index.add("a", numeric_stats([0.0, 10.0]))
        assert index.query(numeric_stats([5.0]), exclude={"a"}) == []

    def test_len_and_contains(self):
        index = IntervalIndex()
        index.add("a", numeric_stats([0.0]))
        assert len(index) == 1 and "a" in index and "b" not in index


# ------------------------------------------------------------ lsh accessors


class TestLSHAccessors:
    def test_keys_and_items(self):
        mh = MinHash(num_hashes=32, seed=0)
        index = LSHIndex(num_bands=8)
        index.add("x", mh.signature({"a", "b"}))
        index.add("y", mh.signature({"c", "d"}))
        assert set(index.keys()) == {"x", "y"}
        assert dict(index.items())["x"] == index.signature_of("x")

    def test_ensemble_candidate_keys_total_on_small_partitions(self):
        mh = MinHash(num_hashes=32, seed=0)
        ensemble = LSHEnsemble(num_partitions=2, num_bands=8)
        for i in range(10):
            ensemble.add(f"k{i}", mh.signature({f"v{i}", f"w{i}"}))
        ensemble.build()
        # Every partition is under SCAN_LIMIT -> totality regardless of the
        # query's similarity to anything indexed.
        probe = mh.signature({"zzz"})
        assert ensemble.candidate_keys(probe) == {f"k{i}" for i in range(10)}

    def test_ensemble_candidate_keys_exclude(self):
        mh = MinHash(num_hashes=32, seed=0)
        ensemble = LSHEnsemble(num_partitions=1, num_bands=8)
        ensemble.add("only", mh.signature({"a"}))
        ensemble.build()
        assert ensemble.candidate_keys(mh.signature({"a"}), exclude={"only"}) == set()


# ------------------------------------------------------- candidate recall


class TestCandidateGenerator:
    def test_join_candidates_find_containment_partners(self, generator):
        cands = generator.join_candidates("drugs.drug_id")
        assert "targets.drug_ref" in cands
        assert "drugs_copy.drug_key" in cands

    def test_join_candidates_exclude_self_and_same_table(self, generator):
        cands = generator.join_candidates("drugs.drug_id")
        assert not any(c.startswith("drugs.") for c in cands)

    def test_join_candidates_only_join_eligible(self, generator, profile):
        for qc in ("drugs.drug_id", "cities.city"):
            for c in generator.join_candidates(qc):
                assert profile.columns[c].tags.join_discovery

    def test_join_recall_guarantee(self, generator, profile):
        # Recall oracle: every pair the exact scorer rates >= 0.3 must be in
        # the candidate set (on this small lake the probes are total).
        jd = JoinDiscovery(profile)
        eligible = [
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        ]
        for qc in eligible:
            cands = generator.join_candidates(qc)
            for oc in eligible:
                if oc == qc or (profile.columns[oc].table_name
                                == profile.columns[qc].table_name):
                    continue
                if jd.score(qc, oc) >= 0.3:
                    assert oc in cands, (qc, oc)

    def test_union_recall_guarantee(self, generator, profile):
        # Every column in the exact per-query top-candidate_k with a positive
        # ensemble score must appear in the union candidate set.
        ud = UnionDiscovery(profile)
        for qc in profile.columns:
            table = profile.columns[qc].table_name
            others = [
                oc for oc in profile.columns
                if profile.columns[oc].table_name != table
            ]
            scored = sorted(
                ((oc, ud.ensemble_score(qc, oc)) for oc in others),
                key=lambda kv: (-kv[1], kv[0]),
            )
            top = [oc for oc, s in scored[: ud.candidate_k] if s > 0]
            cands = generator.union_candidates(qc, k=ud.candidate_k)
            assert set(top) <= cands, qc

    def test_pkfk_candidates_contain_true_link(self, generator):
        assert "targets.drug_ref" in generator.pkfk_candidates("drugs.drug_id")

    def test_pkfk_candidates_only_pkfk_eligible(self, generator, profile):
        for c in generator.pkfk_candidates("drugs.drug_id"):
            assert profile.columns[c].tags.pkfk_discovery

    def test_numeric_probe_bridges_numeric_columns(self, generator):
        # 'readings.reading' and 'calibration.reading' overlap in range but
        # share no values-as-text probes; the interval probe must link them.
        cands = generator.union_candidates("readings.reading", k=5)
        assert "calibration.reading" in cands


# ------------------------------------------------------------ strategy knob


class TestStrategyKnob:
    def test_default_without_candidates_is_exact(self, profile):
        assert JoinDiscovery(profile).strategy == "exact"
        assert UnionDiscovery(profile).strategy == "exact"

    def test_default_with_candidates_is_indexed(self, profile, generator):
        assert JoinDiscovery(profile, candidates=generator).strategy == "indexed"

    def test_indexed_without_candidates_rejected(self, profile):
        with pytest.raises(ValueError):
            JoinDiscovery(profile, strategy="indexed")

    def test_unknown_strategy_rejected(self, profile, generator):
        with pytest.raises(ValueError):
            resolve_strategy("fuzzy", generator)


# -------------------------------------------------------- union memoization


class TestUnionMemoization:
    def test_pair_scores_computed_once_per_query(self, profile, monkeypatch):
        calls = []
        original = UnionDiscovery.column_scores_sketches

        def counting(self, sa, sb):
            calls.append((sa.de_id, sb.de_id))
            return original(self, sa, sb)

        monkeypatch.setattr(UnionDiscovery, "column_scores_sketches", counting)
        UnionDiscovery(profile).unionable_tables("drugs", k=5)
        assert calls, "expected column_scores_sketches to be exercised"
        assert len(calls) == len(set(calls)), "pair scored more than once"


# ------------------------------------------------- indexed vs exact parity


def _assert_ranked_parity(exact, indexed, context):
    assert [i for i, _ in exact] == [i for i, _ in indexed], context
    for (_, se), (_, si) in zip(exact, indexed):
        assert se == pytest.approx(si, abs=1e-9), context


@pytest.mark.slow
class TestIndexedExactParityStructuredLake:
    """Parity on the handcrafted lake: identical top-k ids and scores."""

    def test_join_parity(self, profile, generator):
        exact = JoinDiscovery(profile)
        indexed = JoinDiscovery(profile, candidates=generator)
        for qc in profile.columns:
            sketch = profile.columns[qc]
            if sketch.tags is None or not sketch.tags.join_discovery:
                continue
            _assert_ranked_parity(
                exact.joinable_columns(qc, k=10),
                indexed.joinable_columns(qc, k=10),
                qc,
            )

    def test_union_parity(self, profile, generator, candidate_lake):
        exact = UnionDiscovery(profile)
        indexed = UnionDiscovery(profile, candidates=generator)
        for table in candidate_lake.table_names:
            _assert_ranked_parity(
                exact.unionable_tables(table, k=5),
                indexed.unionable_tables(table, k=5),
                table,
            )

    def test_pkfk_parity(self, profile, generator, uniqueness):
        exact = PKFKDiscovery(profile, uniqueness).discover()
        indexed = PKFKDiscovery(
            profile, uniqueness, candidates=generator
        ).discover()
        as_tuples = lambda links: [
            (l.pk_column, l.fk_column, round(l.score, 9)) for l in links
        ]
        assert as_tuples(exact) == as_tuples(indexed)


@pytest.mark.slow
class TestIndexedExactParitySeedLake:
    """Parity on the tiny pharma seed lake through the fitted engine."""

    def test_join_parity(self, fitted_cmdl):
        profile = fitted_cmdl.profile
        exact = JoinDiscovery(profile)
        indexed = fitted_cmdl.engine.scorer("joinable", "indexed")
        assert indexed.strategy == "indexed"
        for qc in profile.columns:
            sketch = profile.columns[qc]
            if sketch.tags is None or not sketch.tags.join_discovery:
                continue
            _assert_ranked_parity(
                exact.joinable_columns(qc, k=10),
                indexed.joinable_columns(qc, k=10),
                qc,
            )

    def test_union_parity(self, fitted_cmdl):
        profile = fitted_cmdl.profile
        exact = UnionDiscovery(profile)
        indexed = fitted_cmdl.engine.scorer("unionable", "indexed")
        assert indexed.strategy == "indexed"
        for table in sorted(profile.table_columns):
            _assert_ranked_parity(
                exact.unionable_tables(table, k=5),
                indexed.unionable_tables(table, k=5),
                table,
            )

    def test_pkfk_parity(self, fitted_cmdl):
        profile = fitted_cmdl.profile
        # Requested explicitly: under the "auto" default the engine would
        # resolve exact at this pair count, and parity needs the probes.
        indexed_discovery = fitted_cmdl.engine.scorer("pkfk", "indexed")
        assert indexed_discovery.strategy == "indexed"
        exact = PKFKDiscovery(profile, indexed_discovery.uniqueness).discover()
        indexed = indexed_discovery.discover()
        as_tuples = lambda links: [
            (l.pk_column, l.fk_column, round(l.score, 9)) for l in links
        ]
        assert as_tuples(exact) == as_tuples(indexed)
