"""Tests for joinability, PK-FK, and unionability discovery."""

import pytest

from repro.core.joinability import JoinDiscovery
from repro.core.pkfk import PKFKDiscovery
from repro.core.profiler import Profiler
from repro.core.unionability import UNION_MEASURES, UnionDiscovery
from repro.relational.catalog import DataLake
from repro.relational.table import Table


@pytest.fixture(scope="module")
def structured_lake() -> DataLake:
    lake = DataLake("structured")
    lake.add_table(Table.from_dict("drugs", {
        "drug_id": [f"DB{i:05d}" for i in range(40)],
        "name": [f"compound{i}" for i in range(40)],
        "score": [f"{i * 0.5:.1f}" for i in range(40)],
    }))
    # FK table: drug_ref covers only the first 10 drugs (skewed containment).
    lake.add_table(Table.from_dict("targets", {
        "target_id": [f"T{i}" for i in range(40)],
        "drug_ref": [f"DB{i % 10:05d}" for i in range(40)],
    }))
    # Unionable variant of drugs (projection + rename).
    lake.add_table(Table.from_dict("drugs_copy", {
        "drug_key": [f"DB{i:05d}" for i in range(10, 30)],
        "title": [f"compound{i}" for i in range(10, 30)],
        "score": [f"{i * 0.5:.1f}" for i in range(10, 30)],
    }))
    # Unrelated table.
    lake.add_table(Table.from_dict("cities", {
        "city": [f"town{i}" for i in range(40)],
        "population": [str(1000 + i) for i in range(40)],
    }))
    return lake


@pytest.fixture(scope="module")
def profile(structured_lake):
    return Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(structured_lake)


@pytest.fixture(scope="module")
def uniqueness(structured_lake):
    return {c.qualified_name: c.uniqueness for c in structured_lake.columns}


class TestJoinDiscovery:
    def test_fk_found_from_pk(self, profile):
        jd = JoinDiscovery(profile)
        hits = jd.joinable_columns("drugs.drug_id", k=3)
        # Both the FK column and the projected copy are perfect containments.
        top = dict(hits)
        assert top["targets.drug_ref"] == pytest.approx(1.0)
        assert top["drugs_copy.drug_key"] == pytest.approx(1.0)

    def test_containment_is_max_direction(self, profile):
        jd = JoinDiscovery(profile)
        # drug_ref (10 distinct) fully contained in drug_id (40 distinct).
        assert jd.score("targets.drug_ref", "drugs.drug_id") == pytest.approx(1.0)
        assert jd.score("drugs.drug_id", "targets.drug_ref") == pytest.approx(1.0)

    def test_same_table_excluded(self, profile):
        jd = JoinDiscovery(profile)
        hits = jd.joinable_columns("drugs.drug_id", k=10)
        assert all(not c.startswith("drugs.") for c, _ in hits)

    def test_min_score_filters(self, profile):
        jd = JoinDiscovery(profile)
        hits = jd.joinable_columns("cities.city", k=10, min_score=0.5)
        assert hits == []

    def test_joinable_tables(self, profile):
        jd = JoinDiscovery(profile)
        tables = jd.joinable_tables("drugs", k=3)
        assert tables[0][0] in ("targets", "drugs_copy")

    def test_sketch_mode(self, profile):
        jd = JoinDiscovery(profile, use_exact_sets=False)
        hits = jd.joinable_columns("drugs.drug_id", k=3)
        assert hits[0][0] == "targets.drug_ref"


class TestPKFKDiscovery:
    def test_fk_link_found(self, profile, uniqueness):
        pkfk = PKFKDiscovery(profile, uniqueness)
        links = pkfk.discover()
        pairs = {(l.pk_column, l.fk_column) for l in links}
        assert ("drugs.drug_id", "targets.drug_ref") in pairs

    def test_low_uniqueness_pk_rejected(self, profile, uniqueness):
        loose = dict(uniqueness)
        loose["drugs.drug_id"] = 0.5  # pretend the key has many duplicates
        pkfk = PKFKDiscovery(profile, loose)
        pairs = {(l.pk_column, l.fk_column) for l in pkfk.discover()}
        assert ("drugs.drug_id", "targets.drug_ref") not in pairs

    def test_name_filter_blocks_coincidental(self, profile, uniqueness):
        pkfk = PKFKDiscovery(profile, uniqueness, name_threshold=0.99)
        pairs = {(l.pk_column, l.fk_column) for l in pkfk.discover()}
        assert ("drugs.drug_id", "targets.drug_ref") not in pairs

    def test_table_scope(self, profile, uniqueness):
        pkfk = PKFKDiscovery(profile, uniqueness)
        links = pkfk.discover(table_scope={"drugs", "cities"})
        tables = {profile.columns[l.fk_column].table_name for l in links}
        assert "targets" not in tables

    def test_scores_sorted(self, profile, uniqueness):
        links = PKFKDiscovery(profile, uniqueness).discover()
        scores = [l.score for l in links]
        assert scores == sorted(scores, reverse=True)


class TestUnionDiscovery:
    def test_union_variant_found(self, profile):
        ud = UnionDiscovery(profile)
        hits = ud.unionable_tables("drugs", k=3)
        assert hits[0][0] == "drugs_copy"

    def test_unrelated_ranked_lower(self, profile):
        ud = UnionDiscovery(profile)
        scores = dict(ud.unionable_tables("drugs", k=10))
        assert scores.get("drugs_copy", 0) > scores.get("cities", 0)

    def test_single_measure_variants(self, profile):
        ud = UnionDiscovery(profile)
        for measure in UNION_MEASURES:
            hits = ud.unionable_tables("drugs", k=3, measure=measure)
            assert isinstance(hits, list)

    def test_name_measure_sees_renames_partially(self, profile):
        ud = UnionDiscovery(profile)
        # 'score' column is shared verbatim -> name measure finds drugs_copy.
        hits = dict(ud.unionable_tables("drugs", k=5, measure="name"))
        assert "drugs_copy" in hits

    def test_containment_measure(self, profile):
        ud = UnionDiscovery(profile)
        hits = dict(ud.unionable_tables("drugs", k=5, measure="containment"))
        assert "drugs_copy" in hits

    def test_unknown_measure_rejected(self, profile):
        ud = UnionDiscovery(profile)
        with pytest.raises(ValueError):
            ud.single_measure_score("drugs.name", "drugs_copy.title", "vibes")

    def test_invalid_weights_rejected(self, profile):
        with pytest.raises(ValueError):
            UnionDiscovery(profile, weights={"sparkle": 1.0})

    def test_ensemble_is_weighted_mean(self, profile):
        ud = UnionDiscovery(profile, weights={"name": 1.0})
        only_name = ud.ensemble_score("drugs.name", "drugs_copy.title")
        direct = ud.single_measure_score("drugs.name", "drugs_copy.title", "name")
        assert only_name == pytest.approx(direct)

    def test_missing_table_empty(self, profile):
        assert UnionDiscovery(profile).unionable_tables("ghost", k=3) == []


class TestUnionEarlyTermination:
    """The alignment upper bound must never change top-k results."""

    def test_small_k_matches_prefix_of_full_ranking(self, profile):
        ud = UnionDiscovery(profile)
        for table in profile.table_columns:
            # k >= #tables: the floor never activates, nothing is pruned.
            full = ud.unionable_tables(table, k=50)
            for k in (1, 2):
                assert ud.unionable_tables(table, k=k) == full[:k]

    def test_alignment_prunes_below_floor(self, profile):
        ud = UnionDiscovery(profile)
        query_columns = profile.columns_of_table("drugs")
        score = ud._alignment_score(
            query_columns, "cities", ud.ensemble_score
        )
        assert score is not None
        # A floor above the table's best case makes the scan bail out.
        assert ud._alignment_score(
            query_columns, "cities", ud.ensemble_score, floor=1.1
        ) is None
        # A floor just below the true score keeps it.
        assert ud._alignment_score(
            query_columns, "cities", ud.ensemble_score, floor=score - 1e-9
        ) == pytest.approx(score)

    def test_k_nonpositive_returns_empty(self, profile):
        ud = UnionDiscovery(profile)
        assert ud.unionable_tables("drugs", k=0) == []
        assert ud.unionable_tables("drugs", k=-1) == []


class TestUnionProbeScoreCaps:
    """The per-query-column probe-score caps tighten the alignment bound
    (ROADMAP open item) without changing any top-k — asserted against the
    no-pruning oracle on all three seed lakes."""

    @staticmethod
    def _assert_topk_unchanged(profile):
        pruned = UnionDiscovery(profile)
        oracle = UnionDiscovery(profile, early_termination=False)
        for table in sorted(profile.table_columns):
            assert (
                pruned.unionable_tables(table, k=5)
                == oracle.unionable_tables(table, k=5)
            ), table

    def test_pharma_topk_unchanged(self, engine):
        self._assert_topk_unchanged(engine.profile)

    def test_ukopen_topk_unchanged(self, ukopen_engine):
        self._assert_topk_unchanged(ukopen_engine.profile)

    def test_mlopen_topk_unchanged(self, mlopen_engine):
        self._assert_topk_unchanged(mlopen_engine.profile)

    def test_caps_prune_before_any_scoring(self, profile):
        """Caps below the floor reject a table without filling a single
        matrix row (the tightened starting bound), where the cap-less bound
        would have had to score at least one row first."""
        ud = UnionDiscovery(profile)
        sketches = [
            profile.columns[cid] for cid in profile.columns_of_table("drugs")
        ]
        calls = []

        def counting_pair_score(qs, cc):
            calls.append((qs.de_id, cc))
            return ud.ensemble_score(qs.de_id, cc)

        low_caps = [0.05] * len(sketches)
        assert ud._alignment_score(
            sketches, "cities", counting_pair_score,
            floor=0.5, row_caps=low_caps,
        ) is None
        assert calls == [], "caps should reject without scoring any pair"
        # Without caps the same floor requires scoring a row to find out.
        assert ud._alignment_score(
            sketches, "cities", counting_pair_score, floor=0.5,
        ) is None
        assert calls, "the 1.0-per-row bound only tightens after scoring"

    def test_exact_candidate_pass_reports_sound_caps(self, profile):
        ud = UnionDiscovery(profile)
        sketches = [
            profile.columns[cid] for cid in profile.columns_of_table("drugs")
        ]
        _, caps = ud.candidate_hits_for(sketches)
        assert caps is not None  # exact strategy scored every local column
        for sketch in sketches:
            cap = caps[sketch.de_id]
            assert cap >= 0.0
            best = max(
                (
                    ud.ensemble_score(sketch.de_id, other)
                    for other, s in profile.columns.items()
                    if s.table_name != sketch.table_name
                ),
                default=0.0,
            )
            assert cap == pytest.approx(max(best, 0.0))
