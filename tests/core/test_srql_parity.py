"""SRQL parity: discover(Q...) equals the direct engine calls on all seed
lakes (Pharma, UK-Open, ML-Open), for every primitive, composition, and the
string front-end — the query layer adds planning, not different answers."""

import pytest

from repro.core.srql import Q, to_srql


@pytest.fixture(params=["pharma", "ukopen", "mlopen"])
def any_engine(request, engine, ukopen_engine, mlopen_engine):
    return {
        "pharma": engine,
        "ukopen": ukopen_engine,
        "mlopen": mlopen_engine,
    }[request.param]


def first_table(eng) -> str:
    return sorted(eng.profile.table_columns)[0]


def first_doc(eng) -> str:
    return sorted(eng.profile.documents)[0]


class TestPrimitiveParity:
    def test_content_search(self, any_engine):
        for mode in ("text", "table"):
            direct = any_engine.content_search("data survey", mode=mode, k=5)
            via = any_engine.discover(
                Q.content_search("data survey", mode=mode, k=5))
            assert via.items == direct.items
            assert via.operation == direct.operation

    def test_metadata_search(self, any_engine):
        direct = any_engine.metadata_search("drug", mode="table", k=5)
        via = any_engine.discover(Q.metadata_search("drug", mode="table", k=5))
        assert via.items == direct.items

    def test_cross_modal_solo(self, any_engine):
        doc = first_doc(any_engine)
        direct = any_engine.cross_modal_search(doc, top_n=3,
                                               representation="solo")
        via = any_engine.discover(
            Q.cross_modal(doc, top_n=3, representation="solo"))
        assert via.items == direct.items

    def test_cross_modal_free_text(self, any_engine):
        direct = any_engine.cross_modal_search("annual report data", top_n=3,
                                               representation="solo")
        via = any_engine.discover(
            Q.cross_modal("annual report data", top_n=3,
                          representation="solo"))
        assert via.items == direct.items

    def test_joinable(self, any_engine):
        table = first_table(any_engine)
        direct = any_engine.joinable(table, top_n=3)
        via = any_engine.discover(Q.joinable(table, top_n=3))
        assert via.items == direct.items

    def test_pkfk(self, any_engine):
        table = first_table(any_engine)
        direct = any_engine.pkfk(table, top_n=3)
        via = any_engine.discover(Q.pkfk(table, top_n=3))
        assert via.items == direct.items

    def test_unionable(self, any_engine):
        table = first_table(any_engine)
        direct = any_engine.unionable(table, top_n=3)
        via = any_engine.discover(Q.unionable(table, top_n=3))
        assert via.items == direct.items


class TestCrossModalJointParity:
    def test_joint_representation(self, engine, pharma_generated):
        """Joint-space parity on the lake with a trained joint model."""
        doc = pharma_generated.ground_truth("doc_to_table").queries[0]
        direct = engine.cross_modal_search(doc, top_n=3)
        via = engine.discover(Q.cross_modal(doc, top_n=3))
        assert via.items == direct.items


class TestCompositionParity:
    def test_intersect_and_unite(self, any_engine):
        table = first_table(any_engine)
        a = any_engine.joinable(table, top_n=5)
        b = any_engine.unionable(table, top_n=5)
        via_i = any_engine.discover(
            Q.joinable(table, top_n=5) & Q.unionable(table, top_n=5))
        via_u = any_engine.discover(
            Q.joinable(table, top_n=5) | Q.unionable(table, top_n=5))
        assert via_i.items == a.intersect(b).items
        assert via_u.items == a.unite(b).items

    def test_pipeline_equals_stepwise(self, any_engine):
        table = first_table(any_engine)
        step1 = any_engine.joinable(table, top_n=3)
        if not len(step1):
            pytest.skip("no joinable tables to pipeline from")
        step2 = any_engine.unionable(step1[1], top_n=2)
        via = any_engine.discover(
            Q.joinable(table, top_n=3).unionable(top_n=2))
        assert via.items == step2.items


class TestStringFrontEndParity:
    def test_string_form_gives_identical_results(self, any_engine):
        table = first_table(any_engine)
        queries = [
            Q.content_search("data survey", mode="table", k=5),
            Q.joinable(table, top_n=3),
            Q.pkfk(table, top_n=3),
            Q.joinable(table, top_n=5) & Q.unionable(table, top_n=5),
        ]
        for q in queries:
            via_q = any_engine.discover(q)
            via_str = any_engine.discover(to_srql(q))
            assert via_str.items == via_q.items


class TestBatchParity:
    def test_batch_equals_singles_on_mixed_workload(self, any_engine):
        tables = sorted(any_engine.profile.table_columns)[:3]
        workload = [Q.pkfk(t, top_n=3) for t in tables]
        workload += [Q.joinable(t, top_n=3) for t in tables]
        workload += [Q.unionable(tables[0], top_n=2),
                     Q.content_search("data", mode="table", k=5)]
        workload += workload[:3]  # repeats, as a service would see
        singles = [any_engine.discover(q) for q in workload]
        batch = any_engine.discover_batch(workload)
        assert [b.items for b in batch] == [s.items for s in singles]
