"""Tests for mini-batching, triplet generation, the model, and the trainer."""

import numpy as np
import pytest

from repro.core.joint.minibatch import MiniBatchGenerator
from repro.core.joint.model import JointRepresentationModel
from repro.core.joint.trainer import JointTrainer
from repro.core.joint.triplets import TripletGenerator
from repro.core.labeling import TrainingPair


def make_pairs(num_docs=10, num_cols=20, seed=0) -> list[TrainingPair]:
    """Planted structure: doc i is related to columns with j % num_docs == i."""
    pairs = []
    for i in range(num_docs):
        for j in range(num_cols):
            related = (j % num_docs) == i
            pairs.append(TrainingPair(f"d{i}", f"c{j}", 0.9 if related else 0.1))
    return pairs


def make_encodings(num_docs=10, num_cols=20, dim=16, seed=0):
    """Encodings where related pairs are *not* yet close (training must fix)."""
    rng = np.random.default_rng(seed)
    enc = {f"d{i}": rng.standard_normal(dim) for i in range(num_docs)}
    enc.update({f"c{j}": rng.standard_normal(dim) for j in range(num_cols)})
    return enc


class TestMiniBatchGenerator:
    def test_epoch_covers_all_docs(self):
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=0.3, seed=0)
        batches = gen.epoch()
        covered = {d for b in batches for d in b.doc_ids}
        assert covered == {f"d{i}" for i in range(10)}

    def test_batches_disjoint_in_docs(self):
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=0.3, seed=0)
        batches = gen.epoch()
        seen = []
        for b in batches:
            seen.extend(b.doc_ids)
        assert len(seen) == len(set(seen))

    def test_scores_looked_up(self):
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=1.0, seed=0)
        batch = gen.epoch()[0]
        i = batch.doc_ids.index("d0")
        j = batch.column_ids.index("c0")
        assert batch.scores[i, j] == 0.9

    def test_epochs_reshuffle(self):
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=0.3, seed=0)
        first = [b.doc_ids for b in gen.epoch()]
        second = [b.doc_ids for b in gen.epoch()]
        assert first != second

    def test_batch_fraction_sizes(self):
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=0.2, seed=0)
        assert gen.docs_per_batch == 2
        assert gen.columns_per_batch == 4

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            MiniBatchGenerator([], batch_fraction=0.1)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            MiniBatchGenerator(make_pairs(), batch_fraction=0.0)


class TestTripletGenerator:
    def test_one_triplet_per_doc_with_hard_sampling(self):
        enc = make_encodings()
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=1.0, seed=0)
        batch = gen.epoch()[0]
        tg = TripletGenerator(enc, positive_threshold=0.5, hard_sampling="average")
        triplets = tg.triplets(batch)
        assert len(triplets) == len(batch.doc_ids)

    def test_disabled_hard_sampling_blows_up_combinatorially(self):
        enc = make_encodings()
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=1.0, seed=0)
        batch = gen.epoch()[0]
        aggregated = TripletGenerator(enc, hard_sampling="average").triplets(batch)
        exploded = TripletGenerator(enc, hard_sampling="disabled").triplets(batch)
        assert len(exploded) > 5 * len(aggregated)

    def test_docs_without_both_sides_skipped(self):
        """Paper footnote 4: anchors need >= 1 positive and >= 1 negative."""
        pairs = [TrainingPair("d0", "c0", 0.9), TrainingPair("d0", "c1", 0.9),
                 TrainingPair("d1", "c0", 0.1), TrainingPair("d1", "c1", 0.1)]
        enc = {k: np.ones(4) for k in ("d0", "d1", "c0", "c1")}
        gen = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        triplets = TripletGenerator(enc).triplets(gen.epoch()[0])
        assert triplets == []

    def test_positive_aggregation_is_mean(self):
        pairs = [TrainingPair("d0", "c0", 0.9), TrainingPair("d0", "c1", 0.9),
                 TrainingPair("d0", "c2", 0.1)]
        enc = {"d0": np.zeros(2), "c0": np.array([1.0, 0.0]),
               "c1": np.array([0.0, 1.0]), "c2": np.array([5.0, 5.0])}
        gen = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        t = TripletGenerator(enc).triplets(gen.epoch()[0])[0]
        assert np.allclose(t.anchor, [0.0, 0.0])
        assert np.allclose(t.positive, [0.5, 0.5])
        assert np.allclose(t.negative, [5.0, 5.0])

    def test_hard_negatives_within_cutoff(self):
        pairs = [TrainingPair("d0", "c0", 0.9),
                 TrainingPair("d0", "near", 0.1),
                 TrainingPair("d0", "far", 0.1)]
        enc = {"d0": np.zeros(2), "c0": np.array([0.1, 0.0]),
               "near": np.array([1.0, 0.0]), "far": np.array([50.0, 0.0])}
        gen = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        t = TripletGenerator(enc, hard_sampling="average").triplets(gen.epoch()[0])[0]
        # Average distance = 25.5; only 'near' (1.0) falls inside the cutoff.
        assert np.allclose(t.negative, [1.0, 0.0])

    def test_median_cutoff_variant(self):
        enc = make_encodings()
        gen = MiniBatchGenerator(make_pairs(), batch_fraction=1.0, seed=0)
        batch = gen.epoch()[0]
        triplets = TripletGenerator(enc, hard_sampling="median").triplets(batch)
        assert triplets

    def test_embed_fn_changes_selection_space(self):
        pairs = [TrainingPair("d0", "c0", 0.9),
                 TrainingPair("d0", "n1", 0.1),
                 TrainingPair("d0", "n2", 0.1)]
        # In input space n1 is nearer; the embed flips the order.
        enc = {"d0": np.array([0.0, 0.0]), "c0": np.array([0.1, 0.0]),
               "n1": np.array([1.0, 0.0]), "n2": np.array([2.0, 0.0])}

        def flip(x):
            return -x[:, ::-1] * np.array([1.0, 3.0])

        gen = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        t_plain = TripletGenerator(enc).triplets(gen.epoch()[0])[0]
        gen2 = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        t_embed = TripletGenerator(enc).triplets(gen2.epoch()[0], embed_fn=flip)
        assert t_embed  # selection in the embedded space still yields a triplet

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TripletGenerator({}, hard_sampling="extreme")
        with pytest.raises(ValueError):
            TripletGenerator({}, positive_threshold=0.0)


class TestJointModel:
    def test_output_shape(self):
        model = JointRepresentationModel(in_dim=16, hidden=[12], out_dim=8, seed=0)
        out = model.embed(np.zeros((3, 16)))
        assert out.shape == (3, 8)

    def test_initial_space_preserves_structure(self):
        """At init the joint space is a JL projection: neighbours persist."""
        rng = np.random.default_rng(0)
        model = JointRepresentationModel(in_dim=32, hidden=[16], out_dim=16, seed=0)
        a = rng.standard_normal(32)
        near = a + 0.01 * rng.standard_normal(32)
        far = rng.standard_normal(32) * 5
        za, znear, zfar = model.embed(np.vstack([a, near, far]))
        assert np.linalg.norm(za - znear) < np.linalg.norm(za - zfar)

    def test_embed_all_preserves_keys(self):
        model = JointRepresentationModel(in_dim=4, hidden=[], out_dim=2, seed=0)
        out = model.embed_all({"a": np.zeros(4), "b": np.ones(4)})
        assert set(out) == {"a", "b"}
        assert out["a"].shape == (2,)

    def test_embed_all_empty(self):
        model = JointRepresentationModel(in_dim=4, hidden=[], out_dim=2, seed=0)
        assert model.embed_all({}) == {}


class TestJointTrainer:
    def test_training_reduces_loss(self):
        enc = make_encodings(num_docs=8, num_cols=16, dim=16)
        pairs = make_pairs(num_docs=8, num_cols=16)
        batches = MiniBatchGenerator(pairs, batch_fraction=0.5, seed=0)
        tg = TripletGenerator(enc)
        model = JointRepresentationModel(in_dim=16, hidden=[12], out_dim=8, seed=0)
        trainer = JointTrainer(model, margin=0.2, lr=5e-3, max_epochs=40)
        result = trainer.train(batches, tg)
        assert result.epochs >= 1
        assert result.loss_history[-1] <= result.loss_history[0] + 1e-9

    def test_convergence_stops_early(self):
        enc = {f"d{i}": np.zeros(4) for i in range(4)}
        enc.update({f"c{j}": np.ones(4) for j in range(8)})
        pairs = [TrainingPair(f"d{i}", f"c{j}", 0.9 if j % 2 else 0.1)
                 for i in range(4) for j in range(8)]
        batches = MiniBatchGenerator(pairs, batch_fraction=1.0, seed=0)
        model = JointRepresentationModel(in_dim=4, hidden=[], out_dim=2, seed=0)
        trainer = JointTrainer(model, max_epochs=300, patience=3, tol=1e-3)
        result = trainer.train(batches, TripletGenerator(enc))
        assert result.epochs < 300

    def test_error_percent_bounded(self):
        enc = make_encodings(num_docs=6, num_cols=12, dim=8)
        pairs = make_pairs(num_docs=6, num_cols=12)
        batches = MiniBatchGenerator(pairs, batch_fraction=0.5, seed=0)
        model = JointRepresentationModel(in_dim=8, hidden=[], out_dim=4, seed=0)
        trainer = JointTrainer(model, max_epochs=5)
        result = trainer.train(batches, TripletGenerator(enc))
        assert 0.0 <= result.error_percent <= 100.0

    def test_invalid_params(self):
        model = JointRepresentationModel(in_dim=4, hidden=[], out_dim=2)
        with pytest.raises(ValueError):
            JointTrainer(model, max_epochs=0)
