"""Sharded-vs-monolithic parity, mutation routing, and rebalance tests.

The acceptance bar of the sharded-lake architecture: a
:class:`~repro.core.sharding.ShardedLakeSession` in global-stats mode must
return *identical* top-k results to a monolithic session — for all six SRQL
primitives, on all three seed lakes, at 1/2/4 shards — before and after
interleaved add/remove/update mutations. Both sides run the documented
parity configuration (no joint model, the corpus-independent hashing
embedder); ``global_stats=True`` merges BM25/df corpus statistics across
shards, which is what makes keyword scores merge-exact (see the sharding
module docs for the trade-off).
"""

from __future__ import annotations

import pytest

from repro.core.session import LakeSession, open_lake
from repro.core.sharding import ShardedLakeSession, ShardRouter
from repro.core.srql import Q
from repro.core.system import CMDLConfig
from repro.embed.hashing_embedder import HashingEmbedder
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table

SHARD_COUNTS = (1, 2, 4)


def _config() -> CMDLConfig:
    return CMDLConfig(use_joint=False, embedder=HashingEmbedder(seed=0))


def _copy_lake(lake: DataLake) -> DataLake:
    """A fresh DataLake over the same Table/Document objects (each session
    must own its mutable catalog)."""
    fresh = DataLake(name=lake.name)
    for table in lake.tables:
        fresh.add_table(table)
    for document in lake.documents:
        fresh.add_document(document)
    return fresh


def _workload(profile) -> list:
    """All six primitives over a deterministic slice of the lake."""
    tables = sorted(profile.table_columns)[:6]
    docs = sorted(profile.documents)[:3]
    queries = [
        Q.content_search("rate change", k=5),
        Q.content_search("name", mode="table", k=5),
        Q.metadata_search("report", k=5),
        Q.metadata_search("id", mode="table", k=5),
        Q.cross_modal("compound formulation trial", top_n=3,
                      representation="solo"),
    ]
    queries += [
        Q.cross_modal(doc, top_n=3, representation="solo") for doc in docs
    ]
    for table in tables:
        queries += [
            Q.joinable(table, top_n=3),
            Q.unionable(table, top_n=3),
            Q.pkfk(table, top_n=3),
        ]
    return queries


def _mutate(session) -> None:
    """The interleaved mutation script, identical on every session."""
    tables = sorted(
        session.table_names if isinstance(session, ShardedLakeSession)
        else session.lake.table_names
    )
    docs = sorted(
        session.document_ids if isinstance(session, ShardedLakeSession)
        else [d.doc_id for d in session.lake.documents]
    )
    session.add_table(Table.from_dict("parity_extra", {
        "extra_id": ["X1", "X2", "X3"],
        "label": ["alpha", "beta", "gamma"],
    }))
    session.add_documents([
        Document(doc_id="doc:parity0", title="Parity report",
                 text="A fresh report about compound rates and alpha labels."),
        Document(doc_id="doc:parity1", title="Second parity report",
                 text="Beta labels appear in the rate change discussion."),
    ])
    session.remove(docs[0])
    session.remove(tables[-1])
    # Shrink an existing table in place (schema kept, half the rows).
    target = tables[0]
    if isinstance(session, ShardedLakeSession):
        owner = session.shards[session.shard_of(target)]
        table = owner.lake.table(target)
    else:
        table = session.lake.table(target)
    keep = list(range(max(1, table.num_rows // 2)))
    session.update_table(table.select_rows(keep, target))


def _assert_parity(mono, sharded, context: str) -> None:
    for query in _workload(mono.profile):
        expected = mono.discover(query)
        got = sharded.discover(query)
        assert got.items == expected.items, (
            f"{context}: sharded diverged from monolithic on {query!r}\n"
            f"  mono={expected.items}\n  shard={got.items}"
        )


def _parity_case(lake: DataLake, shards: int) -> None:
    mono = open_lake(_copy_lake(lake), _config())
    sharded = open_lake(
        _copy_lake(lake), _config(), shards=shards, global_stats=True
    )
    _assert_parity(mono, sharded, f"{lake.name} shards={shards} (cold)")
    _mutate(mono)
    _mutate(sharded)
    assert sharded.generation >= 1
    _assert_parity(mono, sharded, f"{lake.name} shards={shards} (mutated)")


class TestShardedParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_pharma(self, pharma_generated, shards):
        _parity_case(pharma_generated.lake, shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_ukopen(self, ukopen_generated, shards):
        _parity_case(ukopen_generated.lake, shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_mlopen(self, mlopen_generated, shards):
        _parity_case(mlopen_generated.lake, shards)


@pytest.mark.slow
class TestShardedParitySlow:
    """Heavier cross-checks: batch execution, threaded scatter, and the
    structured trio without global statistics."""

    def test_batch_matches_singles_and_reports_shards(self, ukopen_generated):
        lake = ukopen_generated.lake
        mono = open_lake(_copy_lake(lake), _config())
        sharded = open_lake(
            _copy_lake(lake), _config(), shards=4, global_stats=True
        )
        workload = _workload(mono.profile)
        batch = sharded.discover_batch(workload)
        singles = [mono.discover(q) for q in workload]
        assert [b.items for b in batch] == [s.items for s in singles]
        stats = sharded.last_batch_stats
        assert stats.generation == sharded.generation
        assert set(stats.shard_generations) == {0, 1, 2, 3}
        assert set(stats.shard_seconds) == {0, 1, 2, 3}
        assert stats.pkfk_sweeps == 1  # one lake-wide sweep fed every query

    def test_threaded_scatter_matches_serial(self, pharma_generated):
        lake = pharma_generated.lake
        serial = open_lake(
            _copy_lake(lake), _config(), shards=2, global_stats=True,
            fit_workers=1,
        )
        with open_lake(
            _copy_lake(lake), _config(), shards=2, global_stats=True,
            fit_workers=2,
        ) as threaded:
            assert threaded._pool is not None
            for query in _workload(serial.profile):
                assert (
                    threaded.discover(query).items
                    == serial.discover(query).items
                )

    def test_structured_ops_exact_without_global_stats(self, mlopen_generated):
        """Join/union/PK-FK scores are pure pair functions, so the
        structured trio merges exactly even with shard-local corpus stats
        (only keyword/cross-modal scores need the global-stats opt-in)."""
        lake = mlopen_generated.lake
        mono = open_lake(_copy_lake(lake), _config())
        sharded = open_lake(_copy_lake(lake), _config(), shards=4)
        for table in sorted(mono.profile.table_columns)[:6]:
            for op in (Q.joinable, Q.unionable, Q.pkfk):
                query = op(table, top_n=3)
                assert (
                    sharded.discover(query).items
                    == mono.discover(query).items
                ), f"{op.__name__}({table!r})"


# ------------------------------------------------------------------ router


class TestShardRouter:
    def test_deterministic_and_total(self, pharma_generated):
        lake = pharma_generated.lake
        router = ShardRouter(4)
        again = ShardRouter(4)
        names = lake.table_names + [d.doc_id for d in lake.documents]
        assert [router.shard_of(n) for n in names] == [
            again.shard_of(n) for n in names
        ]
        assert all(0 <= router.shard_of(n) < 4 for n in names)

    def test_partition_is_disjoint_and_complete(self, pharma_generated):
        lake = pharma_generated.lake
        sublakes = ShardRouter(3).partition(lake)
        tables = [t for sub in sublakes for t in sub.table_names]
        docs = [d.doc_id for sub in sublakes for d in sub.documents]
        assert sorted(tables) == sorted(lake.table_names)
        assert sorted(docs) == sorted(d.doc_id for d in lake.documents)

    def test_explicit_assignment_wins(self):
        router = ShardRouter(4)
        hashed = router.shard_of("drugs")
        router.assign("drugs", (hashed + 1) % 4)
        assert router.shard_of("drugs") == (hashed + 1) % 4

    def test_validation(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardRouter(0)
        with pytest.raises(ValueError, match="shard must be in"):
            ShardRouter(2).assign("drugs", 2)
        with pytest.raises(ValueError, match="shards=3 disagrees"):
            ShardedLakeSession(DataLake(), shards=3, router=ShardRouter(2))
        with pytest.raises(ValueError, match="shards=N or an explicit"):
            ShardedLakeSession(DataLake())
        # Rejected up front — before any shard fit or pool construction.
        with pytest.raises(ValueError, match="auto_refresh_threshold"):
            ShardedLakeSession(DataLake(), shards=2, auto_refresh_threshold=2.0)


# -------------------------------------------------------------- mutations


@pytest.fixture()
def toy_sharded(toy_lake) -> ShardedLakeSession:
    return open_lake(_copy_lake(toy_lake), _config(), shards=3,
                     global_stats=True)


class TestMutationRouting:
    def test_add_table_touches_only_owner(self, toy_sharded):
        session = toy_sharded
        table = Table.from_dict("capitals", {
            "city": ["london", "madrid"], "mayor": ["sadiq", "jose"],
        })
        owner = session.shard_of("capitals")
        before = session.generations
        session.add_table(table)
        after = session.generations
        assert after[owner] == before[owner] + 1
        assert all(
            after[i] == before[i] for i in after if i != owner
        ), "a table add must never touch sibling shards"
        assert "capitals" in session.shards[owner].lake.table_names

    def test_remove_and_update_route_to_owner(self, toy_sharded):
        session = toy_sharded
        owner = session.shard_of("drugs")
        updated = session.shards[owner].lake.table("drugs").select_rows(
            [0, 1], "drugs"
        )
        session.update_table(updated)
        assert session.shards[owner].lake.table("drugs").num_rows == 2
        session.remove("drugs")
        assert "drugs" not in session.table_names

    def test_unknown_names_raise(self, toy_sharded):
        with pytest.raises(KeyError, match="no table or document"):
            toy_sharded.remove("nope")
        with pytest.raises(KeyError, match="no table 'nope'"):
            toy_sharded.update_table(Table.from_dict("nope", {"a": ["1"]}))

    def test_joint_representation_rejected(self, toy_sharded):
        with pytest.raises(RuntimeError, match="not supported on sharded"):
            toy_sharded.discover(
                Q.cross_modal("doc:aspirin", top_n=2, representation="joint")
            )

    def test_document_mutations_keep_global_filter_parity(self, toy_lake):
        """Document churn under global_stats must keep bags byte-identical
        to a monolithic session applying the same churn (the df filter is
        corpus-wide, so siblings re-sync when it shifts)."""
        mono = open_lake(_copy_lake(toy_lake), _config())
        sharded = open_lake(_copy_lake(toy_lake), _config(), shards=3,
                            global_stats=True)
        repeated = [
            Document(
                doc_id=f"doc:flood{i}",
                title=f"Flood {i}",
                text="population growth population growth in london berlin "
                     "paris madrid population",
            )
            for i in range(6)
        ]
        for session in (mono, sharded):
            session.add_documents(repeated)
            session.remove("doc:city")
        mono_bags = {
            doc_id: sketch.content_bow.terms
            for doc_id, sketch in mono.profile.documents.items()
        }
        sharded_bags = {
            doc_id: sketch.content_bow.terms
            for shard in sharded.shards
            for doc_id, sketch in shard.profile.documents.items()
        }
        assert sharded_bags == mono_bags
        for query in (
            Q.content_search("population growth", k=5),
            Q.metadata_search("flood", k=5),
        ):
            assert sharded.discover(query).items == mono.discover(query).items


# -------------------------------------------------------------- rebalance


class TestRebalance:
    def test_moves_update_routing_and_preserve_results(self, toy_lake):
        mono = open_lake(_copy_lake(toy_lake), _config())
        session = open_lake(_copy_lake(toy_lake), _config(), shards=3,
                            global_stats=True)
        workload = [
            Q.joinable("drugs", top_n=3),
            Q.unionable("drugs", top_n=3),
            Q.pkfk("drugs", top_n=3),
            Q.content_search("cox inflammation", k=5),
        ]
        expected = [mono.discover(q).items for q in workload]
        names = session.table_names + session.document_ids
        moved = session.rebalance({name: 0 for name in names})
        assert moved == sum(
            1 for name in names
            if ShardRouter(3).shard_of(name) != 0
        )
        assert all(session.shard_of(name) == 0 for name in names)
        assert session.shards[0].lake.num_tables == len(session.table_names)
        assert [session.discover(q).items for q in workload] == expected

    def test_already_home_assignment_moves_nothing(self, toy_sharded):
        session = toy_sharded
        owner = session.shard_of("drugs")
        before = session.generations
        assert session.rebalance({"drugs": owner}) == 0
        assert session.generations == before

    def test_rebalanced_entry_keeps_routing_for_mutations(self, toy_sharded):
        session = toy_sharded
        target = (session.shard_of("drugs") + 1) % session.num_shards
        session.rebalance({"drugs": target})
        updated = session.shards[target].lake.table("drugs").select_rows(
            [0], "drugs"
        )
        session.update_table(updated)  # must follow the new assignment
        assert session.shards[target].lake.table("drugs").num_rows == 1


# ------------------------------------------------------------------ drift


class TestShardedDrift:
    def test_drift_starts_at_zero_and_rises(self, toy_sharded):
        assert toy_sharded.drift() == 0.0
        toy_sharded.add_table(Table.from_dict("neologisms", {
            "blarfle": ["wuggish", "snorfling", "quibblet"],
        }))
        assert toy_sharded.drift() > 0.0

    def test_auto_refresh_is_per_shard(self, toy_lake):
        session = open_lake(
            _copy_lake(toy_lake), _config(), shards=3,
            auto_refresh_threshold=0.1,
        )
        owner = session.shard_of("neologisms")
        session.add_table(Table.from_dict("neologisms", {
            "blarfle": ["wuggish", "snorfling", "quibblet"],
        }))
        # The owning shard crossed the drift bound and refreshed itself
        # (mutation counter reset); siblings never noticed.
        assert session.shards[owner].mutations == 0
        assert session.shards[owner].drift() == 0.0
        assert all(
            shard.mutations == 0 for i, shard in enumerate(session.shards)
            if i != owner
        )
        assert all(
            session.generations[i] == 0
            for i in session.generations if i != owner
        )
