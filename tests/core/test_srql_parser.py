"""SRQL string front-end: parsing, serialisation, and round-trip parity.

The exhaustive round-trip suite (every query shape expressible via ``Q``
serialises with ``to_srql`` and parses back to an equal AST) is marked
``slow`` alongside the other parity sweeps; a fast smoke subset runs in
tier 1.
"""

import pytest

from repro.core.srql import (
    ContentSearch,
    CrossModal,
    Intersect,
    Joinable,
    MetadataSearch,
    PKFK,
    Q,
    SRQLSyntaxError,
    Then,
    Top,
    Unionable,
    Unite,
    parse_srql,
    to_srql,
)
from repro.core.srql.ast import op_binder


class TestParsing:
    def test_bare_expression(self):
        assert parse_srql("pkfk('drugs')") == PKFK("drugs")

    def test_full_prologue(self):
        node = parse_srql(
            "SELECT * FROM lake WHERE content_search('enzyme', mode='table', k=5)"
        )
        assert node == ContentSearch("enzyme", mode="table", k=5)

    def test_keywords_are_case_insensitive(self):
        node = parse_srql("select * from lake where pkfk('drugs') top 1")
        assert node == Top(PKFK("drugs"), 1)

    def test_paper_spelling_cross_modal(self):
        node = parse_srql("crossModal_search('doc:1', top_n=5)")
        assert node == CrossModal("doc:1", top_n=5)

    def test_and_or_left_associative(self):
        node = parse_srql("joinable('a') AND unionable('a') OR pkfk('a')")
        assert node == Unite(
            Intersect(Joinable("a"), Unionable("a")), PKFK("a"))

    def test_parentheses_group(self):
        node = parse_srql("joinable('a') AND (unionable('a') OR pkfk('a'))")
        assert node == Intersect(
            Joinable("a"), Unite(Unionable("a"), PKFK("a")))

    def test_then_builds_standard_binder(self):
        node = parse_srql(
            "content_search('synthase', k=3) THEN crossModal_search(top_n=3) "
            "THEN pkfk(top_n=2) AT 2"
        )
        assert node == Then(
            Then(ContentSearch("synthase", k=3),
                 op_binder("cross_modal", top_n=3)),
            op_binder("pkfk", top_n=2),
            rank=2,
        )

    def test_top_after_then(self):
        node = parse_srql("content_search('x') THEN pkfk() TOP 2")
        assert node == Top(
            Then(ContentSearch("x"), op_binder("pkfk")), 2)

    def test_top_before_then_via_position(self):
        node = parse_srql("content_search('x') TOP 2 THEN pkfk()")
        assert node == Then(
            Top(ContentSearch("x"), 2), op_binder("pkfk"))

    def test_escaped_quotes_in_value(self):
        node = parse_srql(r"content_search('o\'neill\'s data')")
        assert node == ContentSearch("o'neill's data")


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "pkfk('drugs'",                  # unbalanced paren
        "pkfk()",                        # missing value
        "pkfk('a') AND",                 # dangling operator
        "teleport('a')",                 # unknown operator
        "pkfk('a') THEN pkfk('b')",      # THEN ops take no value
        "pkfk('a') TOP",                 # TOP without integer
        "pkfk('a') TOP 1.5",             # TOP with non-integer
        "pkfk('a', depth=2)",            # unknown parameter
        "pkfk('a') pkfk('b')",           # missing combinator
        "SELECT * FROM lake",            # prologue without WHERE clause
        "pkfk('a') @ 2",                 # stray character
    ])
    def test_rejected(self, bad):
        with pytest.raises((SRQLSyntaxError, ValueError)):
            parse_srql(bad)


class TestSerialisation:
    def test_emits_prologue_by_default(self):
        text = to_srql(Q.pkfk("drugs"))
        assert text.startswith("SELECT * FROM lake WHERE ")

    def test_opaque_binder_has_no_string_form(self):
        q = Q.content_search("x").then(lambda hit: Q.pkfk(hit))
        with pytest.raises(ValueError, match="opaque python binder"):
            to_srql(q)

    def test_escapes_quotes(self):
        text = to_srql(Q.content_search("o'neill"), prologue=False)
        assert parse_srql(text) == ContentSearch("o'neill")


#: Every query shape expressible via the builder (the acceptance-criterion
#: catalogue): all six primitives, every combinator, and nested mixes.
ROUND_TRIP_QUERIES = [
    Q.content_search("thymidylate synthase"),
    Q.content_search("enzyme", mode="table", k=5),
    Q.metadata_search("drug", mode="table", k=7),
    Q.metadata_search("survey"),
    Q.cross_modal("doc:42", top_n=4, representation="solo"),
    Q.cross_modal("free text query", top_n=3),
    Q.joinable("drugs", top_n=4),
    Q.pkfk("drugs"),
    Q.unionable("targets", top_n=6),
    Q.joinable("drugs") & Q.unionable("drugs"),
    Q.pkfk("drugs") | Q.joinable("drugs", top_n=5),
    (Q.joinable("a") & Q.unionable("b")) | Q.pkfk("c"),
    Q.joinable("a") & (Q.unionable("b") | Q.pkfk("c")),
    Q.pkfk("drugs", top_n=5).top(2),
    (Q.joinable("a") & Q.unionable("a")).top(3),
    Q.content_search("synthase", k=3).cross_modal(top_n=3),
    Q.content_search("synthase").cross_modal(top_n=3).pkfk(top_n=2),
    Q.content_search("synthase").cross_modal(rank=2).unionable(top_n=4),
    Q.content_search("synthase").joinable(top_n=3, rank=3).top(1),
    Q.metadata_search("drug", mode="table").pkfk(top_n=2).top(2),
    (Q.content_search("a") & Q.metadata_search("b")).cross_modal(top_n=2),
    Q.content_search("x").cross_modal().pkfk().top(1),
    Q.cross_modal("doc:1", top_n=3).unionable(top_n=2)
      & Q.pkfk("drugs", top_n=3),
]


class TestRoundTripSmoke:
    def test_primitive_and_pipeline(self):
        for q in ROUND_TRIP_QUERIES[:3] + ROUND_TRIP_QUERIES[-3:]:
            assert parse_srql(to_srql(q)) == q.ast


@pytest.mark.slow
class TestRoundTripExhaustive:
    """Acceptance: every Q-expressible query has a string form that parses
    back to the same AST (both with and without the SELECT prologue)."""

    @pytest.mark.parametrize(
        "q", ROUND_TRIP_QUERIES,
        ids=[f"q{i}" for i in range(len(ROUND_TRIP_QUERIES))],
    )
    def test_round_trip(self, q):
        assert parse_srql(to_srql(q)) == q.ast
        assert parse_srql(to_srql(q, prologue=False)) == q.ast

    @pytest.mark.parametrize(
        "q", ROUND_TRIP_QUERIES,
        ids=[f"q{i}" for i in range(len(ROUND_TRIP_QUERIES))],
    )
    def test_round_trip_is_stable(self, q):
        """Serialise -> parse -> serialise is a fixed point."""
        text = to_srql(q)
        assert to_srql(parse_srql(text)) == text
