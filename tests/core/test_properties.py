"""Property-based tests on core discovery invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discovery import DiscoveryResultSet
from repro.core.profiler import Profiler
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table

values = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
columns = st.lists(values, min_size=3, max_size=12)


def lake_from_columns(cols: dict[str, list[str]]) -> DataLake:
    lake = DataLake("prop")
    for i, (name, vals) in enumerate(cols.items()):
        lake.add_table(Table.from_dict(f"t{i}", {name: vals}))
    lake.add_document(Document("d0", "title", "some text about " + " ".join(
        v for vals in cols.values() for v in vals[:2])))
    return lake


class TestJoinScoreProperties:
    @settings(max_examples=15, deadline=None)
    @given(columns, columns)
    def test_join_score_symmetric_and_bounded(self, a, b):
        from repro.core.joinability import JoinDiscovery

        lake = lake_from_columns({"col_a": a, "col_b": b})
        profile = Profiler(embedding_dim=8, num_hashes=32, seed=0).profile(lake)
        jd = JoinDiscovery(profile)
        s_ab = jd.score("t0.col_a", "t1.col_b")
        s_ba = jd.score("t1.col_b", "t0.col_a")
        assert s_ab == pytest.approx(s_ba)
        assert 0.0 <= s_ab <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(columns)
    def test_identical_columns_perfect_join(self, a):
        from repro.core.joinability import JoinDiscovery

        lake = lake_from_columns({"col_a": a, "col_b": list(a)})
        profile = Profiler(embedding_dim=8, num_hashes=32, seed=0).profile(lake)
        jd = JoinDiscovery(profile)
        assert jd.score("t0.col_a", "t1.col_b") == pytest.approx(1.0)


class TestUnionScoreProperties:
    @settings(max_examples=10, deadline=None)
    @given(columns, columns)
    def test_ensemble_bounded(self, a, b):
        from repro.core.unionability import UnionDiscovery

        lake = lake_from_columns({"col_a": a, "col_b": b})
        profile = Profiler(embedding_dim=8, num_hashes=32, seed=0).profile(lake)
        ud = UnionDiscovery(profile)
        score = ud.ensemble_score("t0.col_a", "t1.col_b")
        assert -1.0 <= score <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(columns)
    def test_self_union_is_top(self, a):
        from repro.core.unionability import UnionDiscovery

        lake = lake_from_columns({"col_a": a, "col_a2": list(a),
                                  "zzz": ["qqq"] * len(a)})
        profile = Profiler(embedding_dim=8, num_hashes=32, seed=0).profile(lake)
        ud = UnionDiscovery(profile)
        hits = ud.unionable_tables("t0", k=3)
        assert hits and hits[0][0] == "t1"


class TestDRSAlgebra:
    items = st.lists(
        st.tuples(st.text(alphabet="abc", min_size=1, max_size=2),
                  st.floats(min_value=0.01, max_value=10)),
        max_size=6, unique_by=lambda kv: kv[0],
    )

    @given(items, items)
    def test_intersect_subset_of_unite(self, a, b):
        da = DiscoveryResultSet(a, operation="a")
        db = DiscoveryResultSet(b, operation="b")
        inter = set(da.intersect(db).ids())
        union = set(da.unite(db).ids())
        assert inter <= union

    @given(items, items)
    def test_unite_commutative_in_ids(self, a, b):
        da = DiscoveryResultSet(a, operation="a")
        db = DiscoveryResultSet(b, operation="b")
        assert set(da.unite(db).ids()) == set(db.unite(da).ids())

    @given(items)
    def test_self_intersect_identity_ids(self, a):
        da = DiscoveryResultSet(a, operation="a")
        assert set(da.intersect(da).ids()) == set(da.ids())


class TestProfilerInvariants:
    @settings(max_examples=10, deadline=None)
    @given(columns)
    def test_encoding_dimension_fixed(self, a):
        lake = lake_from_columns({"col_a": a})
        profile = Profiler(embedding_dim=16, num_hashes=32, seed=0).profile(lake)
        for sketch in list(profile.columns.values()) + list(
                profile.documents.values()):
            assert sketch.encoding.shape == (32,)
            assert np.isfinite(sketch.encoding).all()

    @settings(max_examples=10, deadline=None)
    @given(columns)
    def test_value_set_matches_column(self, a):
        lake = lake_from_columns({"col_a": a})
        profile = Profiler(embedding_dim=8, num_hashes=32, seed=0).profile(lake)
        sketch = profile.columns["t0.col_a"]
        assert sketch.value_set == frozenset(
            lake.column("t0.col_a").distinct_values)
