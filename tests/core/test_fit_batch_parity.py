"""Batch == per-item parity for the vectorised fit pipeline.

The batched cold fit (``CMDLConfig.fit_mode="batched"``, the default) must
produce *byte-identical* output to driving the whole fit through the
per-item delta routines (``fit_mode="legacy"``): every bag, signature,
embedding, value set, and index structure. These tests pin that contract on
all three seed lakes plus the handcrafted edge cases (empty sets,
all-missing columns, duplicate-heavy values), and pin the fit output itself
against a recorded fingerprint so silent drift in either path fails loudly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.ann.rpforest import RPForestIndex
from repro.core.indexes import IndexCatalog
from repro.core.profiler import Profiler
from repro.core.system import CMDL, CMDLConfig
from repro.embed.blended import BlendedEmbedder
from repro.embed.hashing_embedder import HashingEmbedder
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table
from repro.search.engine import SearchEngine
from repro.sketch.lsh import LSHIndex
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash, band_hashes_batch


def assert_sketch_equal(a, b) -> None:
    assert a.de_id == b.de_id and a.kind == b.kind
    assert a.content_bow.terms == b.content_bow.terms
    assert a.metadata_bow.terms == b.metadata_bow.terms
    assert np.array_equal(a.signature.values, b.signature.values)
    assert a.signature.set_size == b.signature.set_size
    assert (a.value_signature is None) == (b.value_signature is None)
    if a.value_signature is not None:
        assert np.array_equal(a.value_signature.values, b.value_signature.values)
        assert a.value_signature.set_size == b.value_signature.set_size
    assert np.array_equal(a.content_embedding, b.content_embedding)
    assert np.array_equal(a.metadata_embedding, b.metadata_embedding)
    assert a.value_set == b.value_set
    assert a.numeric == b.numeric
    assert a.tags == b.tags
    assert a.table_name == b.table_name and a.column_name == b.column_name


def assert_profiles_equal(a, b) -> None:
    assert set(a.documents) == set(b.documents)
    assert set(a.columns) == set(b.columns)
    assert a.table_columns == b.table_columns
    for de_id in a.documents:
        assert_sketch_equal(a.documents[de_id], b.documents[de_id])
    for de_id in a.columns:
        assert_sketch_equal(a.columns[de_id], b.columns[de_id])


@pytest.fixture(scope="module")
def pharma_lake_m(pharma_generated):
    return pharma_generated.lake


@pytest.fixture(scope="module")
def ukopen_lake_m(ukopen_generated):
    return ukopen_generated.lake


@pytest.fixture(scope="module")
def mlopen_lake_m(mlopen_generated):
    return mlopen_generated.lake


@pytest.fixture(scope="module")
def pin_lake() -> DataLake:
    """Handcrafted, generator-independent lake for the pinned fingerprint."""
    lake = DataLake(name="pin")
    lake.add_table(Table.from_dict(
        "drugs",
        {
            "drug_id": ["D1", "D2", "D3", "D4"],
            "name": ["aspirin", "ibuprofen", "codeine", "morphine"],
            "year": ["1999", "2001", "2005", "2010"],
        },
    ))
    lake.add_table(Table.from_dict(
        "targets",
        {
            "target_id": ["T1", "T2", "T3"],
            "drug_ref": ["D1", "D2", "D2"],
            "protein": ["cox synthase", "cox reductase", "mu receptor"],
        },
    ))
    lake.add_document(Document(
        doc_id="doc:aspirin",
        title="Aspirin and cox synthase",
        text="Aspirin inhibits cox synthase and reduces inflammation.",
    ))
    lake.add_document(Document(
        doc_id="doc:ibuprofen",
        title="Ibuprofen study",
        text="Ibuprofen targets cox reductase in chronic inflammation.",
    ))
    return lake


def edge_case_lake() -> DataLake:
    """Empty vocab, all-missing columns, duplicate-heavy values, empty doc."""
    lake = DataLake(name="edge")
    lake.add_table(Table.from_dict(
        "weird",
        {
            "all_missing": ["", "N/A", "null", "", ""],
            "numbers": ["1.5", "2.5", "", "4.0", "1.5"],
            "empty_name": ["only", "two", "vals", "here", "vals"],
        },
    ))
    lake.add_table(Table.from_dict(
        "dupes", {"dup_heavy": ["x"] * 40 + ["y"], "tail": [""] * 40 + ["z"]}
    ))
    lake.add_table(Table.from_dict("lonely", {"single": ["v"] * 3}))
    lake.add_document(Document(doc_id="doc:empty", title="", text=""))
    lake.add_document(Document(
        doc_id="doc:dup", title="dup dup", text="alpha alpha alpha beta. " * 20
    ))
    return lake


@pytest.fixture(scope="module")
def edge_lake():
    return edge_case_lake()


class TestProfileParity:
    @pytest.mark.parametrize("lake_fixture", [
        "pharma_lake_m", "ukopen_lake_m", "mlopen_lake_m",
    ])
    def test_seed_lake_profiles_identical(self, lake_fixture, request):
        lake = request.getfixturevalue(lake_fixture)
        batched = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(lake)
        legacy = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(
            lake, batched=False
        )
        assert_profiles_equal(batched, legacy)

    def test_edge_lake_profiles_identical(self, edge_lake):
        # The edge lake's PPMI matrix is tiny and degenerate, where scipy's
        # truncated SVD is not refit-deterministic (a pre-existing property
        # that test_incremental_parity sidesteps the same way) — so both
        # paths share one trained distributional model; subword tables,
        # blending, sketching, and pooling still run fresh per path.
        from repro.embed.ppmi import PPMIEmbedder

        corpora = Profiler(seed=0)._training_corpora(edge_lake)
        distributional = PPMIEmbedder(dim=24, seed=0).fit(corpora)

        def profiler():
            return Profiler(
                embedding_dim=24,
                num_hashes=64,
                embedder=BlendedEmbedder(
                    dim=24, distributional=distributional, seed=0
                ),
                seed=0,
            )

        assert_profiles_equal(
            profiler().profile(edge_lake),
            profiler().profile(edge_lake, batched=False),
        )

    def test_explicit_embedder_profiles_identical(self, edge_lake):
        def profiler():
            return Profiler(
                embedding_dim=16,
                num_hashes=32,
                embedder=HashingEmbedder(dim=16, seed=0),
                seed=0,
            )

        assert_profiles_equal(
            profiler().profile(edge_lake),
            profiler().profile(edge_lake, batched=False),
        )

    def test_fit_stats_populated(self, edge_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, embedding_dim=16))
        cmdl.fit(edge_lake)
        stats = cmdl.fit_stats.as_dict()
        assert stats["total_seconds"] > 0
        assert all(v >= 0 for v in stats.values())
        assert cmdl.fit_stats.summary().startswith("profile=")

    def test_bad_fit_mode_rejected(self, edge_lake):
        with pytest.raises(ValueError, match="fit_mode"):
            CMDL(CMDLConfig(fit_mode="bogus")).fit(edge_lake)


class TestIndexStateParity:
    @pytest.fixture(scope="class")
    def profile_pair(self, pharma_lake_m):
        profile = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(
            pharma_lake_m
        )
        bulk = IndexCatalog(profile, seed=0, bulk=True)
        incremental = IndexCatalog(profile, seed=0, bulk=False)
        return bulk, incremental

    def test_keyword_engines_identical(self, profile_pair):
        bulk, incremental = profile_pair
        for name in ("doc_content", "doc_metadata", "column_content",
                     "column_metadata", "column_schema", "column_schema_ngrams"):
            a = getattr(bulk, name).index
            b = getattr(incremental, name).index
            assert a._postings == b._postings, name
            assert a._doc_lengths == b._doc_lengths, name
            assert a._df == b._df and a._collection_tf == b._collection_tf, name

    def test_ann_forests_identical(self, profile_pair):
        bulk, incremental = profile_pair
        for name in ("doc_solo", "column_solo", "column_semantic"):
            a, b = getattr(bulk, name), getattr(incremental, name)
            assert a._keys == b._keys, name
            assert np.array_equal(a._matrix, b._matrix), name

    def test_ensembles_identical(self, profile_pair):
        bulk, incremental = profile_pair
        for name in ("column_containment", "value_containment"):
            a, b = getattr(bulk, name), getattr(incremental, name)
            assert [p.keys() for p in a._partitions] == [
                p.keys() for p in b._partitions
            ], name
            assert a._partition_upper == b._partition_upper, name

    def test_interval_index_identical(self, profile_pair):
        bulk, incremental = profile_pair
        assert bulk.column_numeric._keys == incremental.column_numeric._keys


class TestBulkBuilders:
    def test_search_engine_bulk_matches_adds(self):
        bags = [("a", ["x", "y", "x"]), ("b", ["y"]), ("c", [])]
        bulk, single = SearchEngine(), SearchEngine()
        bulk.build_bulk(bags)
        for key, terms in bags:
            single.add(key, terms)
        assert bulk.index._postings == single.index._postings
        assert bulk.index._doc_lengths == single.index._doc_lengths
        assert bulk.search(["x", "y"]) == single.search(["x", "y"])

    def test_search_engine_bulk_on_nonempty_index(self):
        engine = SearchEngine()
        engine.add("a", ["x"])
        engine.build_bulk([("b", ["y"])])
        assert "a" in engine and "b" in engine
        with pytest.raises(ValueError):
            engine.build_bulk([("b", ["z"])])

    def test_lshensemble_bulk_matches_adds(self):
        mh = MinHash(num_hashes=64, seed=0)
        entries = [(f"k{i}", mh.signature({f"v{j}" for j in range(i + 1)}))
                   for i in range(12)]
        bulk = LSHEnsemble(num_partitions=4).build_bulk(entries)
        single = LSHEnsemble(num_partitions=4)
        for key, sig in entries:
            single.add(key, sig)
        single.build()
        assert [p.keys() for p in bulk._partitions] == [
            p.keys() for p in single._partitions
        ]
        probe = mh.signature({"v0", "v1"})
        assert bulk.query(probe, k=3) == single.query(probe, k=3)

    def test_lshensemble_bulk_rejects_built(self):
        ensemble = LSHEnsemble().build()
        with pytest.raises(RuntimeError):
            ensemble.build_bulk([])

    def test_rpforest_bulk_matches_adds(self):
        rng = np.random.default_rng(0)
        entries = [(f"p{i}", rng.standard_normal(8)) for i in range(30)]
        bulk = RPForestIndex(dim=8, seed=0).build_bulk(entries)
        single = RPForestIndex(dim=8, seed=0)
        for key, vec in entries:
            single.add(key, vec)
        single.build()
        assert bulk._keys == single._keys
        assert np.array_equal(bulk._matrix, single._matrix)
        q = rng.standard_normal(8)
        assert bulk.query(q, k=5) == single.query(q, k=5)

    def test_rpforest_bulk_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            RPForestIndex(dim=4).build_bulk([("k", np.zeros(3))])


class TestEmbeddingBatchParity:
    WORDS = ["alpha", "beta", "alphabet", "gamma", "a", "synthase", "alpha"]

    def test_hashing_embedder_batch_equals_single(self):
        batch = HashingEmbedder(dim=32, seed=0).embed_words(self.WORDS)
        single_embedder = HashingEmbedder(dim=32, seed=0)
        singles = np.vstack([single_embedder.embed_word(w) for w in self.WORDS])
        assert np.array_equal(batch, singles)

    def test_hashing_embedder_split_invariant(self):
        whole = HashingEmbedder(dim=16, seed=1).embed_words(self.WORDS)
        split_embedder = HashingEmbedder(dim=16, seed=1)
        parts = [split_embedder.embed_words(self.WORDS[:3]),
                 split_embedder.embed_words(self.WORDS[3:])]
        assert np.array_equal(whole, np.vstack(parts))

    def test_blended_batch_equals_single(self):
        from repro.embed.ppmi import PPMIEmbedder

        dist = PPMIEmbedder(dim=16, min_count=1, seed=0).fit(
            [["alpha", "beta"], ["alpha", "gamma"]] * 4
        )
        batch = BlendedEmbedder(dim=16, distributional=dist, seed=0).embed_words(
            self.WORDS
        )
        single_embedder = BlendedEmbedder(dim=16, distributional=dist, seed=0)
        singles = np.vstack([single_embedder.embed_word(w) for w in self.WORDS])
        assert np.array_equal(batch, singles)

    def test_async_training_equals_sequential(self):
        from repro.embed.blended import LakeEmbedderTraining, build_lake_embedder

        corpora = [["drug", "enzyme", "target"], ["drug", "protein"]] * 5
        sequential = build_lake_embedder(corpora, dim=16, seed=0)
        training = LakeEmbedderTraining(corpora, dim=16, seed=0)
        training.subword.embed_words(["drug", "protein", "novel"])
        overlapped = training.result()
        for word in ["drug", "enzyme", "novel", "unseen-word"]:
            assert np.array_equal(
                sequential.embed_word(word), overlapped.embed_word(word)
            )


class TestEndToEndParity:
    def test_discovery_identical_across_fit_modes(self, pharma_lake_m):
        from repro.core.srql import Q

        batched = CMDL(CMDLConfig(use_joint=False, seed=0))
        batched.fit(pharma_lake_m)
        legacy = CMDL(CMDLConfig(use_joint=False, seed=0, fit_mode="legacy"))
        legacy.fit(pharma_lake_m)
        assert_profiles_equal(batched.profile, legacy.profile)
        tables = sorted(batched.profile.table_columns)[:4]
        for table in tables:
            for query in (Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3),
                          Q.unionable(table, top_n=3)):
                assert (batched.engine.discover(query).items
                        == legacy.engine.discover(query).items)


def fit_output_fingerprint(cmdl: CMDL, values_only: bool = False) -> str:
    """Canonical digest of a fitted profile.

    ``values_only`` restricts the digest to value-semantics outputs (bags,
    value sets, minhash signatures), which are independent of the embedding
    scheme; the full digest also covers both solo embeddings byte-for-byte.
    """
    digest = hashlib.blake2b(digest_size=16)
    profile = cmdl.profile
    for de_id in sorted(list(profile.documents) + list(profile.columns)):
        sketch = profile.sketch(de_id)
        digest.update(de_id.encode())
        for term, count in sorted(sketch.content_bow.terms.items()):
            digest.update(f"{term}:{count};".encode())
        for term, count in sorted(sketch.metadata_bow.terms.items()):
            digest.update(f"{term}:{count};".encode())
        for value in sorted(sketch.value_set):
            digest.update(value.encode())
        digest.update(sketch.signature.values.tobytes())
        if sketch.value_signature is not None:
            digest.update(sketch.value_signature.values.tobytes())
        if not values_only:
            digest.update(np.ascontiguousarray(sketch.content_embedding).tobytes())
            digest.update(np.ascontiguousarray(sketch.metadata_embedding).tobytes())
    return digest.hexdigest()


class TestPinnedFitFingerprint:
    """Guard against silent drift of the cold-fit output.

    The value-semantics digest (bags + value sets + minhash signatures) is
    invariant under this PR — VALUES_DIGEST was computed by running the
    *pre-refactor* fit (commit 8b8a6f3) over the same lake and matches the
    batched pipeline exactly. The full digest additionally pins the solo
    embeddings as produced by the vectorised bucket-table scheme this PR
    introduced (re-pin deliberately if the scheme ever changes).
    """

    VALUES_DIGEST = "ff807ae64a1c306a22645ebb604032b4"
    FULL_DIGEST = "12ba180d4fc127669216b0930cdaefdd"

    @pytest.fixture(scope="class")
    def fitted(self, pin_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0))
        cmdl.fit(pin_lake)
        return cmdl

    def test_value_semantics_fingerprint_unchanged(self, fitted):
        assert fit_output_fingerprint(fitted, values_only=True) == self.VALUES_DIGEST

    def test_full_fingerprint_unchanged(self, fitted):
        assert fit_output_fingerprint(fitted) == self.FULL_DIGEST

    def test_legacy_mode_same_fingerprint(self, pin_lake, fitted):
        legacy = CMDL(CMDLConfig(use_joint=False, seed=0, fit_mode="legacy"))
        legacy.fit(pin_lake)
        assert fit_output_fingerprint(legacy) == fit_output_fingerprint(fitted)


class TestReviewFixRegressions:
    def test_rpforest_bulk_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate"):
            RPForestIndex(dim=3).build_bulk(
                [("k", np.ones(3)), ("k", np.zeros(3))]
            )

    def test_fingerprint_cache_bounded(self, monkeypatch):
        from repro.sketch.fingerprints import FingerprintCache

        monkeypatch.setattr(FingerprintCache, "MAX_ENTRIES", 2)
        cache = FingerprintCache()
        values = cache.fingerprints(["a", "b", "c", "d"])
        assert len(cache) == 2  # retention capped ...
        assert cache.fingerprint("d") == int(values[3])  # ... values still exact

    def test_bucket_table_grows_without_stale_rows(self):
        embedder = HashingEmbedder(dim=8, seed=0)
        first = embedder.embed_word("alpha").copy()
        # Force many incremental materialisations past several growths.
        for i in range(200):
            embedder.embed_word(f"w{i}")
        assert np.array_equal(embedder.embed_word("alpha"), first)
        fresh = HashingEmbedder(dim=8, seed=0)
        for i in range(200):
            assert np.array_equal(
                embedder.embed_word(f"w{i}"), fresh.embed_word(f"w{i}")
            )


class TestColumnarBandKernel:
    """The one-slab band kernel must match the per-signature band hashes."""

    @staticmethod
    def _signatures():
        mh = MinHash(num_hashes=64, seed=0)
        rng = np.random.default_rng(7)
        sigs = []
        for _ in range(40):
            size = int(rng.integers(1, 30))
            values = rng.integers(0, 500, size=size).tolist()
            sigs.append(mh.signature({f"v{v}" for v in values}))
        return sigs

    def test_batch_matches_per_signature(self):
        # Two independent signature lists over the same sets: one hashed
        # through the columnar kernel, one via the per-signature path, so
        # memo seeding on the batched list cannot mask a kernel mismatch.
        matrix = band_hashes_batch(self._signatures(), 16)
        expected = [s.band_hashes(16) for s in self._signatures()]
        assert matrix.shape == (40, 16)
        for row, exp in zip(matrix, expected):
            assert [int(h) for h in row] == exp

    def test_batch_seeds_per_signature_memo(self):
        sig = MinHash(num_hashes=32, seed=0).signature({"a", "b", "c"})
        matrix = band_hashes_batch([sig], 8)
        assert sig._band_memo[8] == [int(h) for h in matrix[0]]
        # The later per-key probe is a dict lookup, not a recompute.
        assert sig.band_hashes(8) is sig._band_memo[8]

    def test_band_hashes_memoised(self):
        sig = MinHash(num_hashes=32, seed=0).signature({"x", "y"})
        first = sig.band_hashes(8)
        assert sig.band_hashes(8) is first
        # Distinct band counts memoise independently.
        assert sig.band_hashes(4) is not first

    def test_lsh_index_bulk_matches_adds(self):
        mh = MinHash(num_hashes=64, seed=0)
        entries = [
            (f"k{i}", mh.signature({f"v{j}" for j in range(i + 1)}))
            for i in range(15)
        ]
        bulk = LSHIndex(num_bands=16).build_bulk(entries)
        single = LSHIndex(num_bands=16)
        for key, sig in entries:
            single.add(key, sig)
        assert [dict(b) for b in bulk._buckets] == [
            dict(b) for b in single._buckets
        ]
        probe = mh.signature({"v0", "v1", "v2"})
        assert bulk.query(probe, k=5) == single.query(probe, k=5)


class TestForestBackendParity:
    """Array-backed planting must equal the recursive ``_Node`` oracle.

    Identical *query output* — same keys, same order — not just overlapping
    candidate sets: both backends plant bit-identical trees from the
    position-keyed per-node RNG, so every walk visits the same leaves.
    """

    @staticmethod
    def _pair(entries, dim, **kw):
        array = RPForestIndex(dim=dim, backend="array", **kw).build_bulk(entries)
        nodes = RPForestIndex(dim=dim, backend="nodes", **kw).build_bulk(entries)
        return array, nodes

    def test_random_points_identical(self):
        rng = np.random.default_rng(3)
        vecs = rng.standard_normal((300, 12))
        vecs[5] = vecs[17]  # duplicate rows force the degenerate-plane path
        vecs[40] = 0.0
        entries = [(f"p{i}", v) for i, v in enumerate(vecs)]
        array, nodes = self._pair(
            entries, dim=12, num_trees=6, leaf_size=8, seed=0
        )
        queries = [rng.standard_normal(12) for _ in range(20)]
        queries += [np.zeros(12), vecs[5]]
        for q in queries:
            for k in (1, 5, 20):
                assert array.query(q, k=k) == nodes.query(q, k=k)

    @pytest.mark.parametrize("lake_fixture", [
        "pharma_lake_m", "ukopen_lake_m", "mlopen_lake_m",
    ])
    def test_seed_lakes_identical(self, lake_fixture, request):
        lake = request.getfixturevalue(lake_fixture)
        profile = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(lake)
        sketches = {**profile.documents, **profile.columns}
        entries = [(de_id, s.encoding) for de_id, s in sorted(sketches.items())]
        dim = entries[0][1].shape[0]
        array, nodes = self._pair(entries, dim=dim, seed=0)
        for de_id, vec in entries:
            assert array.query(vec, k=10) == nodes.query(vec, k=10), de_id

    def test_mutation_keeps_backends_aligned(self):
        rng = np.random.default_rng(11)
        entries = [(f"p{i}", rng.standard_normal(8)) for i in range(80)]
        array, nodes = self._pair(
            entries, dim=8, num_trees=4, leaf_size=4, seed=2
        )
        extra = rng.standard_normal(8)
        for index in (array, nodes):
            index.insert("extra", extra)
            index.delete("p3")
        for q in (rng.standard_normal(8), extra):
            assert array.query(q, k=8) == nodes.query(q, k=8)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RPForestIndex(dim=4, backend="bogus")


class TestParallelEmbedParity:
    """The pooled embed stage must be byte-identical to the sequential one."""

    def test_workers_match_sequential_default_embedder(self, pin_lake):
        base = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(pin_lake)
        pooled = Profiler(
            embedding_dim=24, num_hashes=64, seed=0, workers=4
        ).profile(pin_lake)
        assert_profiles_equal(base, pooled)

    def test_workers_match_sequential_explicit_embedder(self, edge_lake):
        def profiler(workers):
            return Profiler(
                embedding_dim=16,
                num_hashes=32,
                embedder=HashingEmbedder(dim=16, seed=0),
                seed=0,
                workers=workers,
            )

        assert_profiles_equal(
            profiler(1).profile(edge_lake), profiler(4).profile(edge_lake)
        )

    def test_fit_workers_knob_keeps_pinned_fingerprint(self, pin_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0, fit_workers=3))
        cmdl.fit(pin_lake)
        assert fit_output_fingerprint(cmdl) == TestPinnedFitFingerprint.FULL_DIGEST

    def test_index_breakdown_recorded(self, pin_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0))
        cmdl.fit(pin_lake)
        breakdown = cmdl.fit_stats.index_breakdown
        assert set(breakdown) == {
            "keyword", "value_containment", "schema", "numeric", "semantic"
        }
        assert all(v >= 0 for v in breakdown.values())
        # as_dict() stays flat-scalar for the benchmark emitters.
        assert "index_breakdown" not in cmdl.fit_stats.as_dict()

    def test_embed_breakdown_recorded(self, pin_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0))
        cmdl.fit(pin_lake)
        breakdown = cmdl.fit_stats.embed_breakdown
        assert set(breakdown) == {
            "grams", "route", "draw", "pool", "train_overlap"
        }
        assert all(v >= 0 for v in breakdown.values())
        # The default embedder runs the slab kernel, so some sub-stage accrues.
        assert sum(breakdown.values()) > 0
        assert "embed_breakdown" not in cmdl.fit_stats.as_dict()


class TestProcessEmbedBackend:
    """The process warm-up backend is a scheduling change only: identical
    bytes at any worker count, graceful thread fallback when it can't run."""

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_worker_counts_keep_pinned_fingerprint(self, pin_lake, workers):
        cmdl = CMDL(CMDLConfig(
            use_joint=False, seed=0,
            fit_workers=workers, fit_embed_backend="process",
        ))
        cmdl.fit(pin_lake)
        assert fit_output_fingerprint(cmdl) == TestPinnedFitFingerprint.FULL_DIGEST

    def test_explicit_embedder_matches_thread_backend(self, edge_lake):
        def profiler(backend):
            return Profiler(
                embedding_dim=16,
                num_hashes=32,
                embedder=HashingEmbedder(dim=16, seed=0),
                seed=0,
                workers=2,
                embed_backend=backend,
            )

        process = profiler("process").profile(edge_lake)
        thread = profiler("thread").profile(edge_lake)
        assert_profiles_equal(process, thread)

    def test_unpicklable_embedder_falls_back_with_warning(self, edge_lake):
        embedder = HashingEmbedder(dim=16, seed=0)
        embedder._unpicklable = lambda: None  # lambdas don't pickle
        profiler = Profiler(
            embedding_dim=16, num_hashes=32, embedder=embedder,
            seed=0, workers=2, embed_backend="process",
        )
        profile = profiler.profile(edge_lake)
        assert any(
            "falling back to threads" in note
            for note in profile.fit_stats.warnings
        )
        base = Profiler(
            embedding_dim=16, num_hashes=32,
            embedder=HashingEmbedder(dim=16, seed=0), seed=0,
        ).profile(edge_lake)
        assert_profiles_equal(base, profile)

    def test_protocol_check_names_the_gap(self):
        from repro.core.profiler import _process_warmable

        class NoProtocol:
            pass

        sink: list[str] = []
        assert not _process_warmable(NoProtocol(), sink)
        assert "cache-fill protocol" in sink[0]

    def test_clean_fit_has_no_warnings(self, pin_lake):
        cmdl = CMDL(CMDLConfig(use_joint=False, seed=0, fit_workers=2))
        cmdl.fit(pin_lake)
        assert cmdl.fit_stats.warnings == []

    def test_bad_backend_rejected(self, edge_lake):
        with pytest.raises(ValueError, match="embed_backend"):
            Profiler(embed_backend="bogus")
        with pytest.raises(ValueError, match="fit_embed_backend"):
            CMDL(CMDLConfig(fit_embed_backend="bogus")).fit(edge_lake)
