"""Tests for the EKG builder."""

import pytest

from repro.core.ekg import EKG, EKGBuilder
from repro.core.joinability import JoinDiscovery
from repro.core.pkfk import PKFKDiscovery
from repro.core.profiler import Profiler
from repro.core.relationships import NodeKind, RelationType, Relationship
from repro.core.unionability import UnionDiscovery


@pytest.fixture(scope="module")
def toy_profile_module(request):
    toy_lake = request.getfixturevalue("toy_lake")
    return Profiler(embedding_dim=16, num_hashes=64, seed=0).profile(toy_lake)


@pytest.fixture()
def built(toy_lake):
    profile = Profiler(embedding_dim=16, num_hashes=64, seed=0).profile(toy_lake)
    uniqueness = {c.qualified_name: c.uniqueness for c in toy_lake.columns}
    builder = EKGBuilder(profile, top_k=3, threshold=0.3)
    ekg = builder.build(
        join_discovery=JoinDiscovery(profile),
        pkfk_links=PKFKDiscovery(profile, uniqueness).discover(),
        union_discovery=UnionDiscovery(profile),
        doc_column_links={"doc:aspirin": [("drugs.name", 0.9)]},
    )
    return profile, ekg


class TestRelationship:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Relationship("a", "b", RelationType.PKFK, -0.1)


class TestEKGStructure:
    def test_all_node_kinds_present(self, built):
        profile, ekg = built
        kinds = {d["kind"] for _, d in ekg.graph.nodes(data=True)}
        assert kinds == {k.value for k in NodeKind}

    def test_node_counts(self, built):
        profile, ekg = built
        expected = (
            len(profile.documents) + len(profile.columns)
            + len(profile.table_columns)
        )
        assert ekg.num_nodes == expected

    def test_structural_column_table_edges(self, built):
        _, ekg = built
        neighbors = [t for t, _, _ in ekg.neighbors("drugs.name")]
        assert "drugs" in neighbors

    def test_doc_column_edges_bidirectional(self, built):
        _, ekg = built
        fwd = ekg.neighbors("doc:aspirin", RelationType.DOC_COLUMN_JOINT)
        bwd = ekg.neighbors("drugs.name", RelationType.DOC_COLUMN_JOINT)
        assert ("drugs.name", RelationType.DOC_COLUMN_JOINT.value, 0.9) in fwd
        assert any(t == "doc:aspirin" for t, _, _ in bwd)

    def test_pkfk_edges_at_table_level(self, built):
        _, ekg = built
        pkfk_edges = ekg.neighbors("drugs", RelationType.PKFK)
        assert any(t == "targets" for t, _, _ in pkfk_edges)

    def test_neighbors_sorted_by_weight(self, built):
        _, ekg = built
        for node in list(ekg.graph.nodes)[:10]:
            weights = [w for _, _, w in ekg.neighbors(node)]
            assert weights == sorted(weights, reverse=True)

    def test_neighbors_of_missing_node(self, built):
        _, ekg = built
        assert ekg.neighbors("ghost") == []

    def test_combined_strength(self, built):
        _, ekg = built
        assert ekg.combined_strength("doc:aspirin", "drugs.name") > 0
        assert ekg.combined_strength("doc:aspirin", "cities.city") == 0.0
        assert ekg.combined_strength("ghost", "x") == 0.0


class TestEKGBuilderOptions:
    def test_empty_build(self, toy_lake):
        profile = Profiler(embedding_dim=16, num_hashes=64, seed=0).profile(toy_lake)
        ekg = EKGBuilder(profile).build()
        assert ekg.num_nodes > 0
        # Only structural edges exist.
        rel_types = {d["rel_type"] for _, _, d in ekg.graph.edges(data=True)}
        assert rel_types <= {RelationType.NAME_SIMILARITY.value}

    def test_invalid_top_k(self, toy_lake):
        profile = Profiler(embedding_dim=16, num_hashes=64, seed=0).profile(toy_lake)
        with pytest.raises(ValueError):
            EKGBuilder(profile, top_k=0)

    def test_standalone_ekg(self):
        ekg = EKG()
        ekg.add_node("a", NodeKind.TABLE)
        ekg.add_node("b", NodeKind.TABLE)
        ekg.add_edge("a", "b", RelationType.UNIONABLE, 0.7)
        assert ekg.num_edges == 1
        assert ekg.neighbors("a", RelationType.UNIONABLE) == [
            ("b", "unionable", 0.7)
        ]
