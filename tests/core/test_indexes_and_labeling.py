"""Tests for the index catalog and the training dataset generator."""

import numpy as np
import pytest

from repro.core.indexes import IndexCatalog
from repro.core.labeling import TrainingDatasetGenerator
from repro.core.profiler import Profiler
from repro.weaklabel.lf import LabelingFunction


@pytest.fixture()
def profiled(toy_lake):
    profile = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(toy_lake)
    indexes = IndexCatalog(profile, num_partitions=2, num_bands=8,
                           num_trees=4, seed=0)
    return profile, indexes


class TestIndexCatalog:
    def test_document_engines_populated(self, profiled):
        profile, indexes = profiled
        assert len(indexes.doc_content) == len(profile.documents)
        assert len(indexes.doc_metadata) == len(profile.documents)

    def test_column_engines_limited_to_text_columns(self, profiled):
        profile, indexes = profiled
        n_text = len(profile.text_discovery_columns())
        assert len(indexes.column_content) == n_text
        assert len(indexes.column_containment) == n_text

    def test_solo_ann_queryable(self, profiled):
        profile, indexes = profiled
        doc = profile.documents["doc:aspirin"]
        hits = indexes.column_solo.query(doc.encoding, k=3)
        assert hits
        assert all(h in profile.columns for h, _ in hits)

    def test_doc_keyword_search(self, profiled):
        _, indexes = profiled
        hits = indexes.doc_content.search(["aspirin"], k=2)
        assert hits[0][0] == "doc:aspirin"

    def test_no_joint_initially(self, profiled):
        _, indexes = profiled
        assert not indexes.has_joint

    def test_index_joint_embeddings(self, profiled):
        profile, indexes = profiled
        docs = {d: np.ones(8) for d in profile.documents}
        cols = {c: np.ones(8) for c in profile.text_discovery_columns()}
        indexes.index_joint_embeddings(docs, cols)
        assert indexes.has_joint
        assert indexes.column_joint.query(np.ones(8), k=1)

    def test_joint_dim_mismatch_rejected(self, profiled):
        profile, indexes = profiled
        docs = {d: np.ones(8) for d in profile.documents}
        cols = {c: np.ones(9) for c in profile.text_discovery_columns()}
        with pytest.raises(ValueError, match="dims"):
            indexes.index_joint_embeddings(docs, cols)


class TestTrainingDatasetGenerator:
    def test_dataset_covers_sample(self, profiled):
        profile, indexes = profiled
        gen = TrainingDatasetGenerator(profile, indexes, sample_fraction=1.0,
                                       top_k=3, seed=0)
        dataset, report = gen.generate()
        assert report.sampled_docs == len(profile.documents)
        assert report.candidate_pairs == len(dataset)
        assert report.positive_pairs > 0

    def test_relatedness_bounded(self, profiled):
        profile, indexes = profiled
        gen = TrainingDatasetGenerator(profile, indexes, sample_fraction=1.0,
                                       seed=0)
        dataset, _ = gen.generate()
        assert all(0.0 <= p.relatedness <= 1.0 for p in dataset)

    def test_related_pair_scored_higher(self, profiled):
        profile, indexes = profiled
        gen = TrainingDatasetGenerator(profile, indexes, sample_fraction=1.0,
                                       top_k=3, seed=0)
        dataset, _ = gen.generate()
        scores = {(p.doc_id, p.column_id): p.relatedness for p in dataset}
        related = scores[("doc:aspirin", "drugs.name")]
        unrelated = scores[("doc:aspirin", "cities.city")]
        assert related > unrelated

    def test_gold_pruning_disables_weak_lf(self, profiled):
        profile, indexes = profiled
        cols = profile.text_discovery_columns()
        gold = [("doc:aspirin", "drugs.name", 1),
                ("doc:aspirin", "cities.city", 0),
                ("doc:ibuprofen", "targets.protein", 1),
                ("doc:city", "cities.city", 1),
                ("doc:city", "drugs.name", 0)]
        gen = TrainingDatasetGenerator(profile, indexes, sample_fraction=1.0,
                                       top_k=2, seed=0)
        _, report = gen.generate(gold_pairs=gold)
        assert set(report.lf_accuracies) == {
            "semantic", "syntactic", "content_keyword", "metadata_keyword",
        }

    def test_extra_lf_plugs_in(self, profiled):
        profile, indexes = profiled
        seen = []

        def lexicon_lf(pair):
            seen.append(pair)
            doc_id, col_id = pair
            return 1 if "drug" in col_id else 0

        gen = TrainingDatasetGenerator(
            profile, indexes, sample_fraction=1.0, seed=0,
            extra_lfs=[LabelingFunction("lexicon", lexicon_lf)],
        )
        _, report = gen.generate()
        assert seen  # the custom LF was actually consulted
        assert "lexicon" in report.generative_accuracies

    def test_invalid_params(self, profiled):
        profile, indexes = profiled
        with pytest.raises(ValueError):
            TrainingDatasetGenerator(profile, indexes, sample_fraction=0.0)
        with pytest.raises(ValueError):
            TrainingDatasetGenerator(profile, indexes, top_k=0)

    def test_probe_cache_reused(self, profiled):
        profile, indexes = profiled
        gen = TrainingDatasetGenerator(profile, indexes, sample_fraction=1.0,
                                       seed=0)
        gen.generate()
        first = dict(gen._probe_cache)
        gen.generate()
        assert set(gen._probe_cache) == set(first)
