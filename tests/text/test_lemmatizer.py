"""Tests for repro.text.lemmatizer."""

from hypothesis import given, strategies as st

from repro.text.lemmatizer import lemmatize


class TestRegularPlurals:
    def test_simple_s(self):
        assert lemmatize("enzymes") == "enzyme"
        assert lemmatize("drugs") == "drug"

    def test_ies(self):
        assert lemmatize("studies") == "study"
        assert lemmatize("cities") == "city"

    def test_sses(self):
        assert lemmatize("classes") == "class"

    def test_ches_shes(self):
        assert lemmatize("branches") == "branch"
        assert lemmatize("dishes") == "dish"

    def test_xes(self):
        assert lemmatize("boxes") == "box"


class TestNonPlurals:
    def test_is_final(self):
        assert lemmatize("synthesis") == "synthesis"
        assert lemmatize("analysis") == "analysis"

    def test_us_final(self):
        assert lemmatize("virus") == "virus"
        assert lemmatize("status") == "status"

    def test_ss_final(self):
        assert lemmatize("glass") == "glass"

    def test_short_words_untouched(self):
        assert lemmatize("gas") == "gas"
        assert lemmatize("bus") == "bus"

    def test_singular_untouched(self):
        assert lemmatize("enzyme") == "enzyme"


class TestIrregulars:
    def test_irregular_table(self):
        assert lemmatize("children") == "child"
        assert lemmatize("mice") == "mouse"
        assert lemmatize("analyses") == "analysis"
        assert lemmatize("criteria") == "criterion"
        assert lemmatize("matrices") == "matrix"


class TestProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_idempotent_on_output(self, word):
        once = lemmatize(word)
        assert lemmatize(once) == lemmatize(lemmatize(once))

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4, max_size=15))
    def test_output_not_longer(self, word):
        assert len(lemmatize(word)) <= len(word) + 1  # ves->fe can add one

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    def test_never_empty(self, word):
        assert lemmatize(word)
