"""Tests for repro.text.tokenizer."""

from hypothesis import given, strategies as st

from repro.text.tokenizer import sentences, split_identifier, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Pemetrexed inhibits synthase.") == [
            "pemetrexed", "inhibits", "synthase",
        ]

    def test_keeps_numbers(self):
        assert tokenize("value 12.5 units") == ["value", "12.5", "units"]

    def test_hyphenated_words(self):
        assert "drug-drug" in tokenize("drug-drug interaction")

    def test_apostrophes(self):
        assert tokenize("don't stop") == ["don't", "stop"]

    def test_no_lowercase_option(self):
        assert tokenize("Aspirin", lowercase=False) == ["Aspirin"]

    def test_empty(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! ... ???") == []

    def test_alphanumeric_codes(self):
        assert tokenize("DB00642 and BE0000324") == ["db00642", "and", "be0000324"]

    @given(st.text())
    def test_never_raises(self, s):
        tokens = tokenize(s)
        assert isinstance(tokens, list)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
                   min_size=1))
    def test_ascii_letters_yield_tokens(self, s):
        assert tokenize(s)


class TestSentences:
    def test_splits_on_period(self):
        out = sentences("First sentence. Second one.")
        assert len(out) == 2

    def test_question_exclamation(self):
        out = sentences("Really? Yes! Indeed.")
        assert len(out) == 3

    def test_single_sentence(self):
        assert sentences("No terminal punctuation here") == [
            "No terminal punctuation here"
        ]

    def test_empty(self):
        assert sentences("") == []

    def test_strips_whitespace(self):
        out = sentences("A.   B.")
        assert out[1] == "B."


class TestSplitIdentifier:
    def test_snake_case(self):
        assert split_identifier("Enzyme_Targets") == ["enzyme", "targets"]

    def test_camel_case(self):
        assert split_identifier("drugKey") == ["drug", "key"]

    def test_pascal_with_acronym(self):
        assert split_identifier("HTTPServer") == ["http", "server"]

    def test_kebab_and_dots(self):
        assert split_identifier("drug-bank.csv") == ["drug", "bank", "csv"]

    def test_whitespace(self):
        assert split_identifier("  drug  name ") == ["drug", "name"]

    def test_empty(self):
        assert split_identifier("") == []

    def test_single_word(self):
        assert split_identifier("drugs") == ["drugs"]
