"""Tests for set/string similarity measures."""

from hypothesis import given, strategies as st

from repro.text.similarity import (
    jaccard,
    jaccard_containment,
    jaro,
    jaro_winkler,
    name_similarity,
)

sets = st.sets(st.text(alphabet="abcde", min_size=1, max_size=3), max_size=12)
words = st.text(alphabet="abcdefghij", max_size=12)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_known_value(self):
        assert jaccard({"a", "b", "c"}, {"b", "c", "d"}) == 0.5

    @given(sets, sets)
    def test_symmetric(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    def test_accepts_lists(self):
        assert jaccard(["a", "a", "b"], ["a", "b"]) == 1.0


class TestContainment:
    def test_subset_is_one(self):
        assert jaccard_containment({"a", "b"}, {"a", "b", "c", "d"}) == 1.0

    def test_asymmetric(self):
        a, b = {"a", "b"}, {"a", "b", "c", "d"}
        assert jaccard_containment(a, b) == 1.0
        assert jaccard_containment(b, a) == 0.5

    def test_empty_query(self):
        assert jaccard_containment(set(), {"a"}) == 0.0

    def test_skew_robustness_vs_jaccard(self):
        # The paper's motivating case: a small set fully inside a huge one.
        small = {f"x{i}" for i in range(5)}
        huge = {f"x{i}" for i in range(500)}
        assert jaccard_containment(small, huge) == 1.0
        assert jaccard(small, huge) == 0.01

    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard_containment(a, b) <= 1.0

    @given(sets)
    def test_self_containment(self, a):
        expected = 1.0 if a else 0.0
        assert jaccard_containment(a, a) == expected


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_example(self):
        assert abs(jaro("martha", "marhta") - 0.9444) < 1e-3

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("", "") == 1.0

    def test_no_overlap(self):
        assert jaro("abc", "xyz") == 0.0

    @given(words, words)
    def test_bounded(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(words, words)
    def test_symmetric(self, a, b):
        assert abs(jaro(a, b) - jaro(b, a)) < 1e-12


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("drugbank", "drugbase") > jaro("drugbank", "drugbase")

    def test_identical(self):
        assert jaro_winkler("same", "same") == 1.0

    @given(words, words)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(words, words)
    def test_bounded(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-12


class TestNameSimilarity:
    def test_same_identifier_different_convention(self):
        assert name_similarity("drug_id", "DrugId") > 0.9

    def test_partial_token_overlap(self):
        s = name_similarity("drug_id", "drug_key")
        assert 0.3 < s < 1.0

    def test_unrelated(self):
        assert name_similarity("population", "drug_id") < 0.5

    def test_identical(self):
        assert name_similarity("enzyme_targets", "enzyme_targets") == 1.0
