"""Tests for the POS heuristics and stop words."""

from repro.text.pos import is_probable_noun
from repro.text.stopwords import STOPWORDS, is_stopword


class TestStopwords:
    def test_common_function_words(self):
        for w in ("the", "and", "of", "with", "is", "was"):
            assert is_stopword(w)

    def test_content_words_kept(self):
        for w in ("drug", "enzyme", "population", "synthase"):
            assert not is_stopword(w)

    def test_numbers_words(self):
        assert is_stopword("one")
        assert is_stopword("ten")

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)

    def test_contractions(self):
        assert is_stopword("don't")


class TestNounHeuristic:
    def test_domain_nouns_pass(self):
        for w in ("drug", "enzyme", "synthase", "reductase", "interaction",
                  "pemetrexed", "population", "hospital"):
            assert is_probable_noun(w), w

    def test_verbs_rejected(self):
        for w in ("inhibits", "increase", "targeting", "developing",
                  "showed", "causes"):
            assert not is_probable_noun(w), w

    def test_adverbs_rejected(self):
        for w in ("rapidly", "severely", "locally"):
            assert not is_probable_noun(w), w

    def test_adjectives_rejected(self):
        for w in ("active", "dangerous", "useful", "possible", "largest"):
            assert not is_probable_noun(w), w

    def test_numbers_rejected(self):
        assert not is_probable_noun("123")
        assert not is_probable_noun("12.5")

    def test_empty_rejected(self):
        assert not is_probable_noun("")

    def test_ed_final_domain_terms_kept(self):
        # Drug names ending in -ed must survive (pemetrexed, raltitrexed).
        assert is_probable_noun("pemetrexed")
        assert is_probable_noun("raltitrexed")

    def test_ated_participles_rejected(self):
        assert not is_probable_noun("associated")
        assert not is_probable_noun("elevated")

    def test_noun_suffixes_override(self):
        for w in ("information", "statement", "activity", "distance"):
            assert is_probable_noun(w), w
