"""Tests for the document -> BoW pipeline."""

import pytest

from repro.text.pipeline import BagOfWords, DocumentPipeline


class TestBagOfWords:
    def test_vocabulary_and_total(self):
        from collections import Counter

        bow = BagOfWords(Counter({"drug": 2, "enzyme": 1}))
        assert bow.vocabulary == {"drug", "enzyme"}
        assert bow.total == 3
        assert len(bow) == 2
        assert "drug" in bow

    def test_top_orders_by_frequency_then_alpha(self):
        from collections import Counter

        bow = BagOfWords(Counter({"b": 2, "a": 2, "c": 5}))
        assert bow.top(2) == ["c", "a"]

    def test_empty(self):
        bow = BagOfWords()
        assert bow.total == 0
        assert bow.top(3) == []


class TestDocumentPipeline:
    def test_keeps_nouns_only(self):
        p = DocumentPipeline()
        bow = p.transform("Pemetrexed strongly inhibits thymidylate synthase.")
        assert "synthase" in bow
        assert "pemetrexed" in bow
        assert "inhibits" not in bow
        assert "strongly" not in bow

    def test_removes_stopwords(self):
        p = DocumentPipeline()
        bow = p.transform("The drug and the enzyme.")
        assert "the" not in bow
        assert "and" not in bow

    def test_lemmatizes(self):
        p = DocumentPipeline()
        bow = p.transform("Enzymes and drugs as interactions.")
        assert "enzyme" in bow
        assert "interaction" in bow

    def test_common_term_filtering(self):
        docs = [f"The protein binds ligand number {i}." for i in range(10)]
        p = DocumentPipeline(max_doc_frequency=0.5)
        p.fit(docs)
        bow = p.transform(docs[0])
        # 'protein' and 'ligand' occur in every doc -> filtered.
        assert "protein" not in bow
        assert "ligand" not in bow

    def test_rare_terms_survive_filtering(self):
        docs = ["The unique pemetrexed case."] + [
            f"Common protein study {i}." for i in range(9)
        ]
        p = DocumentPipeline(max_doc_frequency=0.5)
        p.fit(docs)
        assert "pemetrexed" in p.transform(docs[0])

    def test_fit_transform(self):
        p = DocumentPipeline()
        bows = p.fit_transform(["An enzyme.", "A drug."])
        assert len(bows) == 2

    def test_invalid_max_doc_frequency(self):
        with pytest.raises(ValueError):
            DocumentPipeline(max_doc_frequency=0.0)
        with pytest.raises(ValueError):
            DocumentPipeline(max_doc_frequency=1.5)

    def test_without_pos_filter(self):
        p = DocumentPipeline(keep_pos_nouns=False)
        bow = p.transform("Pemetrexed strongly inhibits synthase")
        # Verbs/adverbs survive (lemmatised), unlike with the noun filter.
        assert "inhibit" in bow
        assert "strongly" in bow

    def test_short_lemmas_dropped(self):
        p = DocumentPipeline()
        bow = p.transform("a b c enzyme")
        assert all(len(t) >= 2 for t in bow.vocabulary)

    def test_unfit_pipeline_transform_ok(self):
        # No fit() -> no common-term filtering, but transform still works.
        p = DocumentPipeline()
        assert "enzyme" in p.transform("enzyme")
