"""Tests for pooling and the blended embedder."""

import numpy as np
import pytest

from repro.embed.blended import BlendedEmbedder, build_lake_embedder
from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.pooling import POOLERS, max_pool, mean_pool, min_pool
from repro.embed.ppmi import PPMIEmbedder


class TestPooling:
    def test_mean_pool_unit_norm(self):
        m = np.random.default_rng(0).standard_normal((5, 8))
        v = mean_pool(m)
        assert v.shape == (8,)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_matrix_uses_hint(self):
        assert mean_pool(np.zeros((0, 0)), dim_hint=16).shape == (16,)

    def test_single_row(self):
        m = np.ones((1, 4))
        v = mean_pool(m)
        assert np.allclose(v, 0.5)

    def test_max_pool_takes_extremes(self):
        m = np.array([[1.0, -5.0], [0.0, 3.0]])
        v = max_pool(m)
        expected = np.array([1.0, 3.0])
        assert np.allclose(v, expected / np.linalg.norm(expected))

    def test_min_pool_takes_extremes(self):
        m = np.array([[1.0, -5.0], [0.0, 3.0]])
        v = min_pool(m)
        expected = np.array([0.0, -5.0])
        assert np.allclose(v, expected / np.linalg.norm(expected))

    def test_registry(self):
        assert set(POOLERS) == {"mean", "max", "min"}

    def test_mean_less_biased_than_max(self):
        """Footnote 3's rationale: mean pooling represents the whole set."""
        rng = np.random.default_rng(1)
        cluster = rng.standard_normal((20, 8)) * 0.1 + 1.0
        outlier = rng.standard_normal((1, 8)) * 10
        both = np.vstack([cluster, outlier])
        mean_shift = np.linalg.norm(mean_pool(both) - mean_pool(cluster))
        max_shift = np.linalg.norm(max_pool(both) - max_pool(cluster))
        assert mean_shift < max_shift


class TestBlendedEmbedder:
    def test_oov_falls_back_to_subword(self):
        dist = PPMIEmbedder(dim=16, min_count=1).fit([["known", "word"]] * 3)
        blended = BlendedEmbedder(dim=16, distributional=dist, seed=0)
        sub_only = blended.subword.embed_word("neverseen")
        assert np.allclose(blended.embed_word("neverseen"), sub_only)

    def test_known_word_uses_both(self):
        dist = PPMIEmbedder(dim=16, min_count=1).fit([["known", "word"]] * 3)
        blended = BlendedEmbedder(dim=16, distributional=dist, seed=0)
        v = blended.embed_word("known")
        assert not np.allclose(v, blended.subword.embed_word("known"))
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-9)

    def test_no_distributional_model(self):
        blended = BlendedEmbedder(dim=16, seed=0)
        v = blended.embed_word("anything")
        assert v.shape == (16,)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            BlendedEmbedder(subword_weight=1.5)

    def test_embed_words_matrix(self):
        blended = BlendedEmbedder(dim=8, seed=0)
        assert blended.embed_words(["a", "b"]).shape == (2, 8)
        assert blended.embed_words([]).shape == (0, 8)

    def test_similarity_bounds(self):
        blended = BlendedEmbedder(dim=16, seed=0)
        assert -1.0 <= blended.similarity("drug", "city") <= 1.0


class TestBuildLakeEmbedder:
    def test_trains_distributional_part(self):
        corpora = [["drug", "enzyme"], ["drug", "protein"]] * 5
        e = build_lake_embedder(corpora, dim=16, seed=0)
        assert e.distributional.is_fitted
        assert "drug" in e.distributional

    def test_provides_vector_for_any_word(self):
        e = build_lake_embedder([["a", "b"]] * 3, dim=8, seed=0)
        assert e.embed_word("completely-novel").shape == (8,)
