"""Tests for the subword-hashing embedder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embed.hashing_embedder import HashingEmbedder

words = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=12)


@pytest.fixture(scope="module")
def embedder() -> HashingEmbedder:
    return HashingEmbedder(dim=64, seed=0)


class TestEmbedWord:
    def test_shape_and_norm(self, embedder):
        v = embedder.embed_word("drug")
        assert v.shape == (64,)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_deterministic(self, embedder):
        assert (embedder.embed_word("drug") == embedder.embed_word("drug")).all()

    def test_case_insensitive(self, embedder):
        assert (embedder.embed_word("Drug") == embedder.embed_word("drug")).all()

    def test_morphological_similarity(self, embedder):
        # Shared subwords -> higher similarity than unrelated words.
        related = embedder.similarity("reductase", "synthase")  # share '-ase'
        inflected = embedder.similarity("school", "schools")
        unrelated = embedder.similarity("school", "enzyme")
        assert inflected > unrelated
        assert related > unrelated

    def test_seed_changes_space(self):
        e1 = HashingEmbedder(dim=32, seed=1)
        e2 = HashingEmbedder(dim=32, seed=2)
        assert not np.allclose(e1.embed_word("drug"), e2.embed_word("drug"))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashingEmbedder(min_n=4, max_n=3)

    @settings(max_examples=30, deadline=None)
    @given(words)
    def test_unit_norm_property(self, word):
        e = HashingEmbedder(dim=32)
        assert np.linalg.norm(e.embed_word(word)) == pytest.approx(1.0, abs=1e-9)


class TestEmbedWords:
    def test_matrix_shape(self, embedder):
        m = embedder.embed_words(["a", "b", "c"])
        assert m.shape == (3, 64)

    def test_empty(self, embedder):
        assert embedder.embed_words([]).shape == (0, 64)

    def test_cache_consistency(self, embedder):
        first = embedder.embed_word("cachetest").copy()
        again = embedder.embed_word("cachetest")
        assert (first == again).all()


class TestSimilarity:
    def test_self_similarity(self, embedder):
        assert embedder.similarity("drug", "drug") == pytest.approx(1.0)

    def test_bounded(self, embedder):
        for a, b in [("drug", "city"), ("enzyme", "protein")]:
            assert -1.0 <= embedder.similarity(a, b) <= 1.0
