"""Tests for the subword-hashing embedder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embed.hashing_embedder import HashingEmbedder

words = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=12)


@pytest.fixture(scope="module")
def embedder() -> HashingEmbedder:
    return HashingEmbedder(dim=64, seed=0)


class TestEmbedWord:
    def test_shape_and_norm(self, embedder):
        v = embedder.embed_word("drug")
        assert v.shape == (64,)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_deterministic(self, embedder):
        assert (embedder.embed_word("drug") == embedder.embed_word("drug")).all()

    def test_case_insensitive(self, embedder):
        assert (embedder.embed_word("Drug") == embedder.embed_word("drug")).all()

    def test_morphological_similarity(self, embedder):
        # Shared subwords -> higher similarity than unrelated words.
        related = embedder.similarity("reductase", "synthase")  # share '-ase'
        inflected = embedder.similarity("school", "schools")
        unrelated = embedder.similarity("school", "enzyme")
        assert inflected > unrelated
        assert related > unrelated

    def test_seed_changes_space(self):
        e1 = HashingEmbedder(dim=32, seed=1)
        e2 = HashingEmbedder(dim=32, seed=2)
        assert not np.allclose(e1.embed_word("drug"), e2.embed_word("drug"))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)
        with pytest.raises(ValueError):
            HashingEmbedder(min_n=4, max_n=3)

    @settings(max_examples=30, deadline=None)
    @given(words)
    def test_unit_norm_property(self, word):
        e = HashingEmbedder(dim=32)
        assert np.linalg.norm(e.embed_word(word)) == pytest.approx(1.0, abs=1e-9)


class TestEmbedWords:
    def test_matrix_shape(self, embedder):
        m = embedder.embed_words(["a", "b", "c"])
        assert m.shape == (3, 64)

    def test_empty(self, embedder):
        assert embedder.embed_words([]).shape == (0, 64)

    def test_cache_consistency(self, embedder):
        first = embedder.embed_word("cachetest").copy()
        again = embedder.embed_word("cachetest")
        assert (first == again).all()


class TestSimilarity:
    def test_self_similarity(self, embedder):
        assert embedder.similarity("drug", "drug") == pytest.approx(1.0)

    def test_bounded(self, embedder):
        for a, b in [("drug", "city"), ("enzyme", "protein")]:
            assert -1.0 <= embedder.similarity(a, b) <= 1.0


class TestGramSlabKernel:
    """Each stage of the columnar embed kernel against its per-word oracle."""

    WORDS = ["alpha", "beta", "alphabet", "a", "ab", "synthase", "reductase"]

    def test_gram_slab_matches_ngrams(self):
        e = HashingEmbedder(dim=8, seed=0)
        counts, slab = e._gram_slab(self.WORDS)
        expected = [e._ngrams(w) for w in self.WORDS]
        assert counts == [len(grams) for grams in expected]
        assert slab == [g for grams in expected for g in grams]

    def test_scalar_route_matches_list_route(self):
        grams = HashingEmbedder(dim=8, seed=2)._ngrams("synthase")
        scalar = HashingEmbedder(dim=8, seed=2)
        listed = HashingEmbedder(dim=8, seed=2)
        assert [scalar._bucket_of(g) for g in grams] == listed._buckets_of(grams)
        # The memo serves repeat routes on both paths.
        assert scalar._gram_bucket == listed._gram_bucket

    def test_route_slab_rows_match_bucket_vectors(self):
        e = HashingEmbedder(dim=8, seed=1)
        _, slab = e._gram_slab(self.WORDS)
        row_ids = e._route_slab(slab)
        fresh = HashingEmbedder(dim=8, seed=1)
        for gram, row in zip(slab, row_ids):
            assert np.array_equal(e._table[row], fresh._bucket_vector(gram)), gram

    def test_chunked_pooling_invariant(self, monkeypatch):
        vocab = [f"word{i}" for i in range(50)] + self.WORDS
        whole = HashingEmbedder(dim=16, seed=0).embed_words(vocab)
        monkeypatch.setattr(HashingEmbedder, "_POOL_CHUNK_WORDS", 3)
        chunked = HashingEmbedder(dim=16, seed=0).embed_words(vocab)
        assert np.array_equal(whole, chunked)

    def test_batch_matches_per_word(self):
        batch = HashingEmbedder(dim=16, seed=0).embed_words(self.WORDS)
        oracle = HashingEmbedder(dim=16, seed=0)
        singles = np.vstack([oracle.embed_word(w) for w in self.WORDS])
        assert np.array_equal(batch, singles)

    def test_kernel_seconds_accrue(self):
        e = HashingEmbedder(dim=8, seed=0)
        e.embed_words(["alpha", "beta"])
        assert set(e.kernel_seconds) == {"grams", "route", "draw", "pool"}
        assert all(v >= 0 for v in e.kernel_seconds.values())
        assert sum(e.kernel_seconds.values()) > 0


class TestCacheFills:
    """The process-backend warm protocol: fills must merge byte-identically."""

    def test_fills_roundtrip_byte_identical(self):
        worker = HashingEmbedder(dim=16, seed=4)
        fills = worker.cache_fills(["Alpha", "beta", "gamma"])
        parent = HashingEmbedder(dim=16, seed=4)
        parent.merge_cache_fills(fills)
        fresh = HashingEmbedder(dim=16, seed=4)
        for word in ("alpha", "beta", "gamma"):
            assert word in parent._cache
            assert np.array_equal(parent.embed_word(word), fresh.embed_word(word))

    def test_merge_keeps_existing_entries(self):
        parent = HashingEmbedder(dim=16, seed=4)
        first = parent.embed_word("alpha")
        fills = HashingEmbedder(dim=16, seed=4).cache_fills(["alpha", "beta"])
        parent.merge_cache_fills(fills)
        assert parent._cache["alpha"] is first  # setdefault, not overwrite

    def test_kernel_seconds_ride_along(self):
        worker = HashingEmbedder(dim=16, seed=0)
        fills = worker.cache_fills(["alpha", "beta"])
        parent = HashingEmbedder(dim=16, seed=0)
        parent.merge_cache_fills(fills)
        assert sum(parent.kernel_seconds.values()) >= sum(
            fills["kernel_seconds"].values()
        )

    def test_pickle_roundtrip_same_vectors(self):
        import pickle

        e = HashingEmbedder(dim=8, seed=0)
        e.embed_word("alpha")
        clone = pickle.loads(pickle.dumps(e))
        assert np.array_equal(clone.embed_word("alpha"), e.embed_word("alpha"))
        assert np.array_equal(clone.embed_word("beta"), e.embed_word("beta"))
