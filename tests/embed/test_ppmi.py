"""Tests for the PPMI-SVD corpus embedder."""

import numpy as np
import pytest

from repro.embed.ppmi import PPMIEmbedder


@pytest.fixture(scope="module")
def corpus() -> list[list[str]]:
    # Two topical clusters: pharma words co-occur, geo words co-occur.
    pharma = [["drug", "enzyme", "inhibitor", "protein"] for _ in range(20)]
    geo = [["city", "population", "region", "district"] for _ in range(20)]
    return pharma + geo


@pytest.fixture(scope="module")
def fitted(corpus) -> PPMIEmbedder:
    return PPMIEmbedder(dim=16, window=3, min_count=2, seed=0).fit(corpus)


class TestFit:
    def test_vocabulary_built(self, fitted):
        assert "drug" in fitted
        assert "city" in fitted

    def test_min_count_respected(self, corpus):
        e = PPMIEmbedder(dim=8, min_count=50).fit(corpus)
        assert "drug" not in e

    def test_empty_corpus(self):
        e = PPMIEmbedder(dim=8).fit([])
        assert e.is_fitted
        assert (e.embed_word("anything") == 0).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PPMIEmbedder(dim=0)
        with pytest.raises(ValueError):
            PPMIEmbedder(window=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            PPMIEmbedder().embed_word("x")


class TestSemantics:
    def test_cluster_similarity(self, fitted):
        same = fitted.similarity("drug", "enzyme")
        cross = fitted.similarity("drug", "city")
        assert same > cross

    def test_oov_is_zero_vector(self, fitted):
        assert (fitted.embed_word("neverseen") == 0).all()

    def test_oov_similarity_zero(self, fitted):
        assert fitted.similarity("neverseen", "drug") == 0.0

    def test_vectors_unit_norm(self, fitted):
        v = fitted.embed_word("drug")
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-6)

    def test_deterministic(self, corpus):
        a = PPMIEmbedder(dim=16, seed=0).fit(corpus).embed_word("drug")
        b = PPMIEmbedder(dim=16, seed=0).fit(corpus).embed_word("drug")
        assert np.allclose(a, b)

    def test_dim_larger_than_vocab_ok(self):
        e = PPMIEmbedder(dim=100, min_count=1).fit([["a", "b"], ["a", "b"]])
        assert e.embed_word("a").shape == (100,)
