"""Tests for the Aurum and D3L baseline systems."""

import pytest

from repro.baselines.aurum import AurumBaseline
from repro.baselines.d3l import D3LBaseline, format_pattern
from repro.core.profiler import Profiler
from repro.relational.catalog import DataLake
from repro.relational.table import Table


@pytest.fixture(scope="module")
def skewed_lake() -> DataLake:
    """PK of 100 values; FK covering only 10 - the containment-vs-Jaccard gap."""
    lake = DataLake("skewed")
    lake.add_table(Table.from_dict("drugs", {
        "drug_id": [f"DB{i:05d}" for i in range(100)],
        "name": [f"compound{i}" for i in range(100)],
    }))
    lake.add_table(Table.from_dict("targets", {
        "target_id": [f"T{i}" for i in range(50)],
        "drug_ref": [f"DB{i % 10:05d}" for i in range(50)],
    }))
    lake.add_table(Table.from_dict("balanced", {
        "drug_key": [f"DB{i:05d}" for i in range(100)],
        "status": [("active" if i % 2 else "retired") for i in range(100)],
    }))
    return lake


@pytest.fixture(scope="module")
def profile(skewed_lake):
    return Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(skewed_lake)


@pytest.fixture(scope="module")
def uniqueness(skewed_lake):
    return {c.qualified_name: c.uniqueness for c in skewed_lake.columns}


class TestAurumJoins:
    def test_balanced_join_found(self, profile, uniqueness):
        aurum = AurumBaseline(profile, uniqueness)
        hits = dict(aurum.joinable_columns("drugs.drug_id", k=5))
        assert hits.get("balanced.drug_key", 0) == pytest.approx(1.0)

    def test_skewed_join_underscored(self, profile, uniqueness):
        """Aurum's Jaccard similarity collapses on skewed cardinalities."""
        aurum = AurumBaseline(profile, uniqueness)
        hits = dict(aurum.joinable_columns("drugs.drug_id", k=5))
        assert hits.get("targets.drug_ref", 0.0) <= 0.15

    def test_cmdl_containment_not_fooled(self, profile):
        """Contrast: CMDL's containment scores the same pair at 1.0."""
        from repro.core.joinability import JoinDiscovery

        jd = JoinDiscovery(profile)
        assert jd.score("drugs.drug_id", "targets.drug_ref") == pytest.approx(1.0)


class TestAurumPKFK:
    def test_balanced_fk_found(self, profile, uniqueness):
        aurum = AurumBaseline(profile, uniqueness)
        pairs = {(l.pk_column, l.fk_column) for l in aurum.discover_pkfk()}
        assert ("drugs.drug_id", "balanced.drug_key") in pairs

    def test_skewed_fk_missed(self, profile, uniqueness):
        """The recall gap of Table 4: Jaccard misses partial-coverage FKs."""
        aurum = AurumBaseline(profile, uniqueness)
        pairs = {(l.pk_column, l.fk_column) for l in aurum.discover_pkfk()}
        assert ("drugs.drug_id", "targets.drug_ref") not in pairs

    def test_cmdl_finds_skewed_fk(self, profile, uniqueness):
        from repro.core.pkfk import PKFKDiscovery

        cmdl = PKFKDiscovery(profile, uniqueness)
        pairs = {(l.pk_column, l.fk_column) for l in cmdl.discover()}
        assert ("drugs.drug_id", "targets.drug_ref") in pairs

    def test_table_scope(self, profile, uniqueness):
        aurum = AurumBaseline(profile, uniqueness)
        links = aurum.discover_pkfk(table_scope={"drugs", "balanced"})
        tables = {profile.columns[l.fk_column].table_name for l in links}
        assert "targets" not in tables


class TestAurumUnion:
    def test_max_combination(self, profile, uniqueness):
        aurum = AurumBaseline(profile, uniqueness)
        hits = aurum.unionable_tables("drugs", k=3)
        assert hits
        assert all(0 <= s <= 1.0 + 1e-9 for _, s in hits)


class TestFormatPattern:
    def test_id_pattern(self):
        assert format_pattern("DB00642") == "a9"

    def test_float_pattern(self):
        assert format_pattern("12.5") == "9.9"

    def test_word_pattern(self):
        assert format_pattern("aspirin") == "a"

    def test_mixed(self):
        assert format_pattern("3-Jun-2023") == "9-a-9"


class TestD3L:
    def test_signal_similarities_complete(self, profile):
        d3l = D3LBaseline(profile)
        sims = d3l.signal_similarities("drugs.drug_id", "balanced.drug_key")
        assert set(sims) == set(D3LBaseline.SIGNALS)
        assert sims["value"] == pytest.approx(1.0)
        assert sims["format"] == pytest.approx(1.0)

    def test_combined_distance_bounds(self, profile):
        d3l = D3LBaseline(profile)
        d = d3l.combined_distance("drugs.drug_id", "balanced.drug_key")
        assert 0.0 <= d <= 1.0 + 1e-9

    def test_identical_columns_near_zero_distance(self, profile):
        d3l = D3LBaseline(profile)
        d_same = d3l.combined_distance("drugs.drug_id", "balanced.drug_key")
        d_diff = d3l.combined_distance("drugs.drug_id", "balanced.status")
        assert d_same < d_diff

    def test_join_prefers_value_overlap(self, profile):
        d3l = D3LBaseline(profile)
        hits = dict(d3l.joinable_columns("drugs.drug_id", k=5))
        assert hits.get("balanced.drug_key", 0) > hits.get("targets.drug_ref", 0)

    def test_union_ranks_schema_twin_first(self, profile):
        d3l = D3LBaseline(profile)
        hits = d3l.unionable_tables("drugs", k=3)
        assert hits[0][0] == "balanced"

    def test_invalid_weights(self, profile):
        with pytest.raises(ValueError):
            D3LBaseline(profile, weights={"smell": 1.0})

    def test_custom_weights_change_ranking(self, profile):
        full = D3LBaseline(profile)
        name_only = D3LBaseline(profile, weights={"name": 1.0})
        d_full = full.combined_distance("drugs.drug_id", "targets.drug_ref")
        d_name = name_only.combined_distance("drugs.drug_id", "targets.drug_ref")
        assert d_full != d_name
