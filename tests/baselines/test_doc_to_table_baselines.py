"""Tests for the elastic, containment, and entity-matching baselines."""

import pytest

from repro.baselines.containment import ContainmentSearchBaseline
from repro.baselines.elastic import ELASTIC_MODES, ElasticSearchBaseline
from repro.baselines.entity_matching import (
    EntityExtractor,
    EntityMatchingBaseline,
    JaroBudgetExceeded,
)
from repro.baselines.cmdl_adapter import CMDLDocToTable
from repro.core.indexes import IndexCatalog
from repro.core.profiler import Profiler


@pytest.fixture()
def setup(toy_lake):
    profile = Profiler(embedding_dim=24, num_hashes=64, seed=0).profile(toy_lake)
    indexes = IndexCatalog(profile, num_partitions=2, num_bands=8,
                           num_trees=4, seed=0)
    return toy_lake, profile, indexes


class TestElastic:
    def test_all_modes_construct(self, setup):
        _, profile, _ = setup
        for mode in ELASTIC_MODES:
            baseline = ElasticSearchBaseline(profile, mode)
            assert baseline.name == f"elastic_{mode}"

    def test_bm25_finds_related_table(self, setup):
        _, profile, _ = setup
        baseline = ElasticSearchBaseline(profile, "bm25")
        tables = baseline.rank_tables("doc:aspirin", k=3)
        assert tables
        assert tables[0][0] in ("drugs", "targets")

    def test_unknown_mode_rejected(self, setup):
        _, profile, _ = setup
        with pytest.raises(ValueError):
            ElasticSearchBaseline(profile, "bm42")

    def test_city_doc_finds_cities(self, setup):
        _, profile, _ = setup
        baseline = ElasticSearchBaseline(profile, "bm25_content")
        tables = baseline.rank_tables("doc:city", k=2)
        assert tables[0][0] == "cities"


class TestContainment:
    def test_rank_tables(self, setup):
        _, profile, indexes = setup
        baseline = ContainmentSearchBaseline(profile, indexes)
        tables = baseline.rank_tables("doc:aspirin", k=3)
        assert tables

    def test_scores_quantised(self, setup):
        _, profile, indexes = setup
        baseline = ContainmentSearchBaseline(profile, indexes,
                                             num_threshold_buckets=4)
        tables = baseline.rank_tables("doc:aspirin", k=5)
        for _, score in tables:
            assert score == pytest.approx(round(score * 4) / 4, abs=1e-9)


class TestEntityExtractor:
    def test_capitalised_spans(self):
        entities = EntityExtractor().extract(
            "Aspirin inhibits Cox Synthase in trials.")
        assert "Aspirin" in entities
        assert "Cox Synthase" in entities

    def test_codes(self):
        entities = EntityExtractor().extract("See DB00642 for details")
        assert "DB00642" in entities

    def test_domain_lexicon(self):
        ex = EntityExtractor(lexicon={"thymidylate synthase"})
        entities = ex.extract("it binds thymidylate synthase tightly")
        assert "thymidylate synthase" in entities

    def test_short_spans_dropped(self):
        assert "It" not in EntityExtractor().extract("It works")


class TestEntityMatching:
    def test_generic_jaccard(self, setup):
        lake, profile, _ = setup
        baseline = EntityMatchingBaseline(profile, lake, matcher="jaccard")
        tables = baseline.rank_tables("doc:aspirin", k=3)
        assert isinstance(tables, list)

    def test_domain_beats_generic_on_pharma(self, setup):
        lake, profile, _ = setup
        lexicon = {"aspirin", "ibuprofen", "cox synthase"}
        domain = EntityMatchingBaseline(profile, lake, matcher="jaccard",
                                        extractor="domain", lexicon=lexicon)
        tables = dict(domain.rank_tables("doc:aspirin", k=5))
        assert "drugs" in tables or "targets" in tables

    def test_domain_requires_lexicon(self, setup):
        lake, profile, _ = setup
        with pytest.raises(ValueError, match="lexicon"):
            EntityMatchingBaseline(profile, lake, extractor="domain")

    def test_jaro_budget_exceeded(self, setup):
        lake, profile, _ = setup
        baseline = EntityMatchingBaseline(profile, lake, matcher="jaro",
                                          max_pairs_budget=2)
        with pytest.raises(JaroBudgetExceeded):
            baseline.rank_tables("doc:aspirin", k=3)

    def test_jaro_within_budget(self, setup):
        lake, profile, _ = setup
        baseline = EntityMatchingBaseline(profile, lake, matcher="jaro",
                                          match_threshold=0.8)
        tables = baseline.rank_tables("doc:aspirin", k=3)
        assert isinstance(tables, list)

    def test_invalid_matcher(self, setup):
        lake, profile, _ = setup
        with pytest.raises(ValueError):
            EntityMatchingBaseline(profile, lake, matcher="levenshtein")

    def test_no_entities_empty_result(self, setup):
        lake, profile, _ = setup
        baseline = EntityMatchingBaseline(profile, lake)
        # doc with no caps beyond sentence starts of stop-ish words: build one
        # by querying a doc whose extractor output may be empty is fragile;
        # instead check the contract directly.
        baseline._documents["doc:lower"] = "nothing capitalised here at all"
        assert baseline.rank_tables("doc:lower", k=3) == []


class TestCMDLAdapter:
    def test_wraps_engine(self, engine, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        adapter = CMDLDocToTable(engine, "joint")
        tables = adapter.rank_tables(gt.queries[0], k=3)
        assert tables
        assert adapter.name == "cmdl_joint"

    def test_invalid_representation(self, engine):
        with pytest.raises(ValueError):
            CMDLDocToTable(engine, "psychic")

    def test_custom_label(self, engine):
        adapter = CMDLDocToTable(engine, "solo", label="cmdl_gold")
        assert adapter.name == "cmdl_gold"
