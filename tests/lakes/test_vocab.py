"""Tests for domain vocabularies."""

import pytest

from repro.lakes.vocab import (
    DEPARTMENT_TOPICS,
    GOVT_METRIC_SYNONYMS,
    DomainVocabulary,
    govt_vocabulary,
    ml_vocabulary,
    pharma_vocabulary,
)
from repro.utils.rng import ensure_rng


class TestPharmaVocabulary:
    def test_pool_sizes(self):
        v = pharma_vocabulary(num_drugs=50, num_enzymes=30, seed=0)
        assert len(v.pool("drug")) == 50
        assert len(v.pool("enzyme")) == 30
        assert len(v.pool("gene")) == 30

    def test_names_unique(self):
        v = pharma_vocabulary(num_drugs=300, num_enzymes=100, seed=0)
        assert len(set(v.pool("drug"))) == 300
        assert len(set(v.pool("enzyme"))) == 100

    def test_deterministic(self):
        a = pharma_vocabulary(seed=3).pool("drug")
        b = pharma_vocabulary(seed=3).pool("drug")
        assert a == b

    def test_enzymes_look_like_enzymes(self):
        v = pharma_vocabulary(num_enzymes=40, seed=0)
        kinds = ("ase",)
        assert all(e.lower().endswith(kinds) or " " in e for e in v.pool("enzyme"))

    def test_missing_pool_raises(self):
        v = pharma_vocabulary(seed=0)
        with pytest.raises(KeyError, match="no pool"):
            v.pool("spaceships")


class TestGovtVocabulary:
    def test_places_capitalised_unique(self):
        v = govt_vocabulary(num_places=150, seed=0)
        places = v.pool("place")
        assert len(set(places)) == 150
        assert all(p[0].isupper() for p in places)

    def test_every_department_has_topics(self):
        v = govt_vocabulary(seed=0)
        for dept in v.pool("department"):
            assert dept in DEPARTMENT_TOPICS
            assert len(DEPARTMENT_TOPICS[dept]) >= 8

    def test_every_metric_has_synonym(self):
        v = govt_vocabulary(seed=0)
        for metric in v.pool("metric"):
            assert metric in GOVT_METRIC_SYNONYMS
            # Synonym differs from the metric (the semantic gap is real).
            assert GOVT_METRIC_SYNONYMS[metric] != metric


class TestMLVocabulary:
    def test_pools_present(self):
        v = ml_vocabulary(seed=0)
        for pool in ("theme", "feature", "title", "review_adjective",
                     "review_noun"):
            assert v.pool(pool)


class TestSample:
    def test_sample_within_pool(self):
        v = DomainVocabulary("x", {"w": ["a", "b", "c"]})
        picks = v.sample("w", 2, ensure_rng(0))
        assert set(picks) <= {"a", "b", "c"}

    def test_sample_with_replacement_when_large(self):
        v = DomainVocabulary("x", {"w": ["a"]})
        assert v.sample("w", 5, ensure_rng(0)) == ["a"] * 5
