"""Tests for the three lake generators (shape, ground truth, determinism)."""

import pytest

from repro.lakes.mlopen import MLOpenLakeConfig, generate_mlopen_lake
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.ukopen import UKOpenLakeConfig, generate_ukopen_lake


class TestPharmaLake:
    def test_collections_partition_base_tables(self, pharma_generated):
        gen = pharma_generated
        names = set(gen.lake.table_names)
        for coll in ("drugbank", "chembl", "chebi", "drugbank_synthetic"):
            assert set(gen.tables_in(coll)) <= names

    def test_document_counts(self, pharma_generated):
        gen = pharma_generated
        assert gen.lake.num_documents == 48  # 40 linked + 8 noise

    def test_noise_docs_not_in_ground_truth(self, pharma_generated):
        gt = pharma_generated.ground_truth("doc_to_table")
        assert not any(q.startswith("pubmed:noise") for q in gt.queries)

    def test_doc_gt_links_point_to_real_tables(self, pharma_generated):
        gen = pharma_generated
        gt = gen.ground_truth("doc_to_table")
        names = set(gen.lake.table_names)
        for q in gt.queries:
            assert gt.relevant(q) <= names

    def test_fk_contained_in_pk(self, pharma_generated):
        lake = pharma_generated.lake
        fk = lake.column("enzyme_targets.drug_key").distinct_values
        pk = lake.column("drugs.drug_id").distinct_values
        assert fk <= pk

    def test_fk_skew_exists(self, pharma_generated):
        """FK columns cover only part of the PK domain (the mQCR knob)."""
        lake = pharma_generated.lake
        fk = lake.column("enzyme_targets.drug_key").distinct_values
        pk = lake.column("drugs.drug_id").distinct_values
        assert len(fk) < len(pk)

    def test_duplicate_keys_planted(self, pharma_generated):
        drugs = pharma_generated.lake.column("drugs.drug_id")
        assert drugs.uniqueness < 1.0  # the paper's DrugBank duplicates

    def test_pkfk_ground_truth_per_database(self, pharma_generated):
        for db in ("drugbank", "chembl", "chebi"):
            gt = pharma_generated.ground_truth(f"pkfk:{db}")
            assert gt.num_queries >= 1

    def test_chebi_keys_numeric(self, pharma_generated):
        lake = pharma_generated.lake
        assert lake.column("chebi_compounds.id").dtype.is_numeric
        assert lake.column("chebi_relations.init_id").dtype.is_numeric

    def test_deterministic(self):
        cfg = PharmaLakeConfig(num_drugs=20, num_enzymes=10, num_documents=10,
                               noise_documents=2, interactions_rows=20,
                               targets_rows=20, chembl_compounds=15,
                               chebi_compounds=10, seed=5)
        a = generate_pharma_lake(cfg)
        b = generate_pharma_lake(cfg)
        assert a.lake.table_names == b.lake.table_names
        assert a.lake.table("drugs").rows() == b.lake.table("drugs").rows()
        assert [d.text for d in a.lake.documents] == [d.text for d in b.lake.documents]


class TestUKOpenLake:
    def test_family_structure(self, ukopen_generated):
        gen = ukopen_generated
        assert gen.lake.num_tables == 15  # 5 families x 3

    def test_union_gt_families(self, ukopen_generated):
        gt = ukopen_generated.ground_truth("union")
        for q in gt.queries:
            assert len(gt.relevant(q)) == 2  # family of 3 minus self

    def test_docs_have_table_links(self, ukopen_generated):
        gt = ukopen_generated.ground_truth("doc_to_table")
        assert gt.num_queries > 0
        assert gt.average_answer_size() == pytest.approx(3.0)

    def test_join_gt_is_noisy_subset(self, ukopen_generated):
        """Manual annotation keeps only part of the exact joins."""
        from repro.lakes.groundtruth import brute_force_joinable_columns

        exact = brute_force_joinable_columns(ukopen_generated.lake,
                                             containment_threshold=0.5)
        noisy = ukopen_generated.ground_truth("syntactic_join")
        exact_links = {(q, a) for q in exact.queries for a in exact.relevant(q)}
        noisy_links = {(q, a) for q in noisy.queries for a in noisy.relevant(q)}
        assert noisy_links != exact_links

    def test_programme_column_present(self, ukopen_generated):
        table = ukopen_generated.lake.tables[0]
        assert "programme" in table


class TestMLOpenLake:
    def test_collection_sizes(self, mlopen_generated):
        gen = mlopen_generated
        assert len(gen.tables_in("ss")) == 6
        assert len(gen.tables_in("ms")) == 8
        # LS includes the ls_catalog sibling table (the 2C-LS distractor).
        assert len(gen.tables_in("ls")) == 7
        assert "ls_catalog" in gen.tables_in("ls")

    def test_numeric_fraction_increases_with_scale(self, mlopen_generated):
        gen = mlopen_generated

        def frac(coll):
            cols = [c for name in gen.tables_in(coll)
                    for c in gen.lake.table(name).columns]
            return sum(1 for c in cols if c.dtype.is_numeric) / len(cols)

        assert frac("ss") < frac("ls")

    def test_ls_key_skew(self, mlopen_generated):
        """LS pairs tables with very different key cardinalities."""
        gen = mlopen_generated
        ls_key_cards = [
            gen.lake.table(name).columns[0].cardinality
            for name in gen.tables_in("ls")
        ]
        assert max(ls_key_cards) > 2 * min(ls_key_cards)

    def test_reviews_linked_to_theme_tables(self, mlopen_generated):
        gt = mlopen_generated.ground_truth("doc_to_table")
        assert gt.num_queries > 0

    def test_join_gt_per_collection(self, mlopen_generated):
        for coll in ("ss", "ms", "ls"):
            gt = mlopen_generated.ground_truth(f"syntactic_join:{coll}")
            scope = set(mlopen_generated.tables_in(coll))
            for q in gt.queries:
                assert q.split(".")[0] in scope
