"""Tests for unionable-table synthesis."""

import pytest

from repro.lakes.synthesis import derive_unionable_tables
from repro.relational.table import Table


@pytest.fixture()
def base_tables() -> list[Table]:
    return [
        Table.from_dict("drugs", {
            "drug_id": [f"D{i}" for i in range(20)],
            "name": [f"drug{i}" for i in range(20)],
            "description": [f"text {i}" for i in range(20)],
        }),
        Table.from_dict("places", {
            "place": [f"P{i}" for i in range(20)],
            "value": [str(i) for i in range(20)],
        }),
    ]


class TestDerivation:
    def test_counts(self, base_tables):
        derived, gt = derive_unionable_tables(base_tables, derived_per_base=3, seed=0)
        assert len(derived) == 6

    def test_rows_subset_of_base(self, base_tables):
        derived, _ = derive_unionable_tables(base_tables, derived_per_base=2, seed=0)
        base_ids = set(base_tables[0].column("drug_id").values)
        for t in derived:
            if not t.name.startswith("syn_drugs"):
                continue
            for col in t.columns:
                if "drug" in col.name or "id" in col.name:
                    assert set(col.values) <= base_ids

    def test_names_prefixed(self, base_tables):
        derived, _ = derive_unionable_tables(base_tables, name_prefix="foo", seed=0)
        assert all(t.name.startswith("foo_") for t in derived)

    def test_row_fraction_respected(self, base_tables):
        derived, _ = derive_unionable_tables(
            base_tables, derived_per_base=5, min_row_fraction=0.5, seed=0)
        assert all(t.num_rows >= 10 for t in derived)

    def test_invalid_count(self, base_tables):
        with pytest.raises(ValueError):
            derive_unionable_tables(base_tables, derived_per_base=0)

    def test_deterministic(self, base_tables):
        d1, _ = derive_unionable_tables(base_tables, seed=4)
        d2, _ = derive_unionable_tables(base_tables, seed=4)
        assert [t.name for t in d1] == [t.name for t in d2]
        assert d1[0].rows() == d2[0].rows()


class TestUnionGroundTruth:
    def test_family_is_clique(self, base_tables):
        _, gt = derive_unionable_tables(base_tables, derived_per_base=2, seed=0)
        family = {"drugs", "syn_drugs_0", "syn_drugs_1"}
        for member in family:
            assert gt.relevant(member) == family - {member}

    def test_cross_family_not_unionable(self, base_tables):
        _, gt = derive_unionable_tables(base_tables, derived_per_base=2, seed=0)
        assert "places" not in gt.relevant("drugs")
        assert not gt.relevant("drugs") & gt.relevant("places")

    def test_renaming_keeps_some_schema_signal(self, base_tables):
        derived, _ = derive_unionable_tables(
            base_tables, derived_per_base=4, rename_probability=0.5, seed=1)
        renamed = [
            t for t in derived
            if set(t.column_names) - {"drug_id", "name", "description",
                                      "place", "value"}
        ]
        assert renamed  # some tables actually got synonym-renamed columns
