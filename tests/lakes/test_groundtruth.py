"""Tests for ground-truth containers and brute-force generators."""

import numpy as np
import pytest

from repro.lakes.groundtruth import (
    GroundTruth,
    brute_force_joinable_columns,
    noisy_manual_annotation,
    pkfk_ground_truth_from_schema,
)
from repro.relational.catalog import DataLake
from repro.relational.table import Table


class TestGroundTruth:
    def test_add_and_relevant(self):
        gt = GroundTruth(task="t")
        gt.add("q1", "a1")
        gt.add("q1", "a2")
        assert gt.relevant("q1") == {"a1", "a2"}
        assert gt.relevant("missing") == set()

    def test_queries_sorted_and_nonempty(self):
        gt = GroundTruth(task="t")
        gt.add("b", "x")
        gt.add("a", "y")
        gt.answers["empty"] = set()
        assert gt.queries == ["a", "b"]
        assert gt.num_queries == 2

    def test_average_answer_size(self):
        gt = GroundTruth(task="t")
        gt.add("q1", "a")
        gt.add("q2", "a")
        gt.add("q2", "b")
        assert gt.average_answer_size() == 1.5

    def test_merge(self):
        a = GroundTruth(task="t")
        a.add("q", "x")
        b = GroundTruth(task="t")
        b.add("q", "y")
        b.add("r", "z")
        a.merge(b)
        assert a.relevant("q") == {"x", "y"}
        assert a.relevant("r") == {"z"}

    def test_mqcr(self):
        gt = GroundTruth(task="t")
        gt.add("q", "a")
        gt.query_cardinality["q"] = 5
        gt.answer_cardinality["a"] = 100
        assert gt.mqcr() == pytest.approx(0.05)

    def test_mqcr_clamped_at_one(self):
        gt = GroundTruth(task="t")
        gt.add("q", "a")
        gt.query_cardinality["q"] = 100
        gt.answer_cardinality["a"] = 5
        assert gt.mqcr() == 1.0

    def test_mqcr_empty(self):
        assert GroundTruth(task="t").mqcr() == 0.0


@pytest.fixture()
def join_lake() -> DataLake:
    lake = DataLake("join")
    lake.add_table(Table.from_dict("pk", {"id": [f"K{i}" for i in range(20)]}))
    lake.add_table(Table.from_dict(
        "fk", {"ref": [f"K{i % 5}" for i in range(20)]}
    ))
    lake.add_table(Table.from_dict(
        "unrelated", {"name": [f"x{i}" for i in range(20)]}
    ))
    return lake


class TestBruteForceJoins:
    def test_containment_pair_found(self, join_lake):
        gt = brute_force_joinable_columns(join_lake, containment_threshold=0.5)
        assert "fk.ref" in gt.relevant("pk.id")
        assert "pk.id" in gt.relevant("fk.ref")

    def test_unrelated_excluded(self, join_lake):
        gt = brute_force_joinable_columns(join_lake)
        assert "unrelated.name" not in gt.relevant("pk.id")

    def test_table_scope(self, join_lake):
        gt = brute_force_joinable_columns(join_lake, table_names=["pk", "unrelated"])
        assert gt.relevant("pk.id") == set()

    def test_cardinalities_recorded(self, join_lake):
        gt = brute_force_joinable_columns(join_lake)
        assert gt.query_cardinality["pk.id"] == 20
        assert gt.query_cardinality["fk.ref"] == 5


class TestSchemaPKFK:
    def test_pairs_recorded(self):
        gt = pkfk_ground_truth_from_schema([("a.id", "b.ref"), ("a.id", "c.ref")])
        assert gt.relevant("a.id") == {"b.ref", "c.ref"}


class TestNoisyAnnotation:
    def test_miss_rate_drops_links(self):
        gt = GroundTruth(task="t")
        for i in range(200):
            gt.add(f"q{i}", "a")
        rng = np.random.default_rng(0)
        noisy = noisy_manual_annotation(gt, rng, miss_rate=0.5)
        kept = sum(1 for q in gt.answers if noisy.relevant(q))
        assert 60 < kept < 140

    def test_spurious_added(self):
        gt = GroundTruth(task="t")
        gt.add("q", "a")
        rng = np.random.default_rng(0)
        noisy = noisy_manual_annotation(
            gt, rng, miss_rate=0.0,
            spurious={"q": ["b", "c", "d"]}, spurious_rate=1.0,
        )
        assert noisy.relevant("q") == {"a", "b", "c", "d"}

    def test_invalid_rates(self):
        gt = GroundTruth(task="t")
        with pytest.raises(ValueError):
            noisy_manual_annotation(gt, np.random.default_rng(0), miss_rate=1.0)
