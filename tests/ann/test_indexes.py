"""Tests for the exact and random-projection-forest ANN indexes."""

import numpy as np
import pytest

from repro.ann.exact import ExactIndex
from repro.ann.rpforest import RPForestIndex


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(0).standard_normal((200, 16))


@pytest.fixture(scope="module")
def exact(points) -> ExactIndex:
    idx = ExactIndex(dim=16)
    for i, v in enumerate(points):
        idx.add(f"p{i}", v)
    return idx.build()


@pytest.fixture(scope="module")
def forest(points) -> RPForestIndex:
    idx = RPForestIndex(dim=16, num_trees=8, leaf_size=8, seed=0)
    for i, v in enumerate(points):
        idx.add(f"p{i}", v)
    return idx.build()


class TestExactIndex:
    def test_self_is_nearest(self, exact, points):
        assert exact.query(points[17], k=1)[0][0] == "p17"

    def test_scores_descending(self, exact, points):
        result = exact.query(points[0], k=10)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)

    def test_exclude(self, exact, points):
        result = exact.query(points[3], k=5, exclude={"p3"})
        assert all(k != "p3" for k, _ in result)

    def test_k_larger_than_index(self):
        idx = ExactIndex(dim=2)
        idx.add("a", np.array([1.0, 0.0]))
        assert len(idx.query(np.array([1.0, 0.0]), k=10)) == 1

    def test_empty_index(self):
        assert ExactIndex(dim=4).query(np.zeros(4), k=3) == []

    def test_dim_mismatch_rejected(self):
        idx = ExactIndex(dim=4)
        with pytest.raises(ValueError, match="dim"):
            idx.add("a", np.zeros(5))

    def test_zero_vector_handled(self):
        idx = ExactIndex(dim=3)
        idx.add("z", np.zeros(3))
        idx.add("a", np.array([1.0, 0, 0]))
        result = idx.query(np.array([1.0, 0, 0]), k=2)
        assert result[0][0] == "a"


class TestRPForest:
    def test_self_is_nearest(self, forest, points):
        assert forest.query(points[42], k=1)[0][0] == "p42"

    def test_recall_against_exact(self, forest, exact, points):
        """The forest must recover most of the exact top-10."""
        recalls = []
        for i in range(0, 50, 5):
            true_top = {k for k, _ in exact.query(points[i], k=10)}
            approx_top = {k for k, _ in forest.query(points[i], k=10)}
            recalls.append(len(true_top & approx_top) / 10)
        assert np.mean(recalls) > 0.8

    def test_search_k_improves_recall(self, points, exact):
        idx = RPForestIndex(dim=16, num_trees=2, leaf_size=4, seed=1)
        for i, v in enumerate(points):
            idx.add(f"p{i}", v)
        idx.build()
        q = points[7]
        true_top = {k for k, _ in exact.query(q, k=10)}
        small = {k for k, _ in idx.query(q, k=10, search_k=10)}
        large = {k for k, _ in idx.query(q, k=10, search_k=200)}
        assert len(large & true_top) >= len(small & true_top)

    def test_exclude(self, forest, points):
        result = forest.query(points[3], k=5, exclude={"p3"})
        assert all(k != "p3" for k, _ in result)

    def test_empty_index(self):
        idx = RPForestIndex(dim=4)
        assert idx.build().query(np.zeros(4), k=3) == []

    def test_auto_build_on_query(self, points):
        idx = RPForestIndex(dim=16, seed=0)
        for i, v in enumerate(points[:20]):
            idx.add(f"p{i}", v)
        assert idx.query(points[0], k=1)[0][0] == "p0"

    def test_add_invalidates_build(self, points):
        idx = RPForestIndex(dim=16, seed=0)
        for i, v in enumerate(points[:10]):
            idx.add(f"p{i}", v)
        idx.build()
        idx.add("new", points[11])
        assert "new" in [k for k, _ in idx.query(points[11], k=1)]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RPForestIndex(dim=0)
        with pytest.raises(ValueError):
            RPForestIndex(dim=4, num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(dim=4, leaf_size=1)

    def test_dim_mismatch_rejected(self):
        idx = RPForestIndex(dim=4)
        with pytest.raises(ValueError, match="dim"):
            idx.add("a", np.zeros(3))

    def test_duplicate_points_ok(self):
        idx = RPForestIndex(dim=4, num_trees=4, leaf_size=2, seed=0)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        for i in range(20):
            idx.add(f"dup{i}", v)
        idx.build()
        assert len(idx.query(v, k=5)) == 5

    def test_deterministic_given_seed(self, points):
        def build():
            idx = RPForestIndex(dim=16, num_trees=4, seed=5)
            for i, v in enumerate(points[:50]):
                idx.add(f"p{i}", v)
            return idx.build().query(points[3], k=5)

        assert build() == build()
