"""Tests for the exact and random-projection-forest ANN indexes."""

import numpy as np
import pytest

from repro.ann.exact import ExactIndex
from repro.ann.rpforest import RPForestIndex


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(0).standard_normal((200, 16))


@pytest.fixture(scope="module")
def exact(points) -> ExactIndex:
    idx = ExactIndex(dim=16)
    for i, v in enumerate(points):
        idx.add(f"p{i}", v)
    return idx.build()


@pytest.fixture(scope="module")
def forest(points) -> RPForestIndex:
    idx = RPForestIndex(dim=16, num_trees=8, leaf_size=8, seed=0)
    for i, v in enumerate(points):
        idx.add(f"p{i}", v)
    return idx.build()


class TestExactIndex:
    def test_self_is_nearest(self, exact, points):
        assert exact.query(points[17], k=1)[0][0] == "p17"

    def test_scores_descending(self, exact, points):
        result = exact.query(points[0], k=10)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)

    def test_exclude(self, exact, points):
        result = exact.query(points[3], k=5, exclude={"p3"})
        assert all(k != "p3" for k, _ in result)

    def test_k_larger_than_index(self):
        idx = ExactIndex(dim=2)
        idx.add("a", np.array([1.0, 0.0]))
        assert len(idx.query(np.array([1.0, 0.0]), k=10)) == 1

    def test_empty_index(self):
        assert ExactIndex(dim=4).query(np.zeros(4), k=3) == []

    def test_dim_mismatch_rejected(self):
        idx = ExactIndex(dim=4)
        with pytest.raises(ValueError, match="dim"):
            idx.add("a", np.zeros(5))

    def test_zero_vector_handled(self):
        idx = ExactIndex(dim=3)
        idx.add("z", np.zeros(3))
        idx.add("a", np.array([1.0, 0, 0]))
        result = idx.query(np.array([1.0, 0, 0]), k=2)
        assert result[0][0] == "a"


class TestRPForest:
    def test_self_is_nearest(self, forest, points):
        assert forest.query(points[42], k=1)[0][0] == "p42"

    def test_recall_against_exact(self, forest, exact, points):
        """The forest must recover most of the exact top-10."""
        recalls = []
        for i in range(0, 50, 5):
            true_top = {k for k, _ in exact.query(points[i], k=10)}
            approx_top = {k for k, _ in forest.query(points[i], k=10)}
            recalls.append(len(true_top & approx_top) / 10)
        assert np.mean(recalls) > 0.8

    def test_search_k_improves_recall(self, points, exact):
        idx = RPForestIndex(dim=16, num_trees=2, leaf_size=4, seed=1)
        for i, v in enumerate(points):
            idx.add(f"p{i}", v)
        idx.build()
        q = points[7]
        true_top = {k for k, _ in exact.query(q, k=10)}
        small = {k for k, _ in idx.query(q, k=10, search_k=10)}
        large = {k for k, _ in idx.query(q, k=10, search_k=200)}
        assert len(large & true_top) >= len(small & true_top)

    def test_exclude(self, forest, points):
        result = forest.query(points[3], k=5, exclude={"p3"})
        assert all(k != "p3" for k, _ in result)

    def test_empty_index(self):
        idx = RPForestIndex(dim=4)
        assert idx.build().query(np.zeros(4), k=3) == []

    def test_auto_build_on_query(self, points):
        idx = RPForestIndex(dim=16, seed=0)
        for i, v in enumerate(points[:20]):
            idx.add(f"p{i}", v)
        assert idx.query(points[0], k=1)[0][0] == "p0"

    def test_add_invalidates_build(self, points):
        idx = RPForestIndex(dim=16, seed=0)
        for i, v in enumerate(points[:10]):
            idx.add(f"p{i}", v)
        idx.build()
        idx.add("new", points[11])
        assert "new" in [k for k, _ in idx.query(points[11], k=1)]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RPForestIndex(dim=0)
        with pytest.raises(ValueError):
            RPForestIndex(dim=4, num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(dim=4, leaf_size=1)

    def test_dim_mismatch_rejected(self):
        idx = RPForestIndex(dim=4)
        with pytest.raises(ValueError, match="dim"):
            idx.add("a", np.zeros(3))

    def test_duplicate_points_ok(self):
        idx = RPForestIndex(dim=4, num_trees=4, leaf_size=2, seed=0)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        for i in range(20):
            idx.add(f"dup{i}", v)
        idx.build()
        assert len(idx.query(v, k=5)) == 5

    def test_deterministic_given_seed(self, points):
        def build():
            idx = RPForestIndex(dim=16, num_trees=4, seed=5)
            for i, v in enumerate(points[:50]):
                idx.add(f"p{i}", v)
            return idx.build().query(points[3], k=5)

        assert build() == build()


class TestRPForestMutation:
    def _built(self, points, n=80):
        idx = RPForestIndex(dim=16, num_trees=4, leaf_size=8, seed=0)
        for i, v in enumerate(points[:n]):
            idx.add(f"p{i}", v)
        return idx.build()

    def test_insert_found_without_replant(self, points):
        idx = self._built(points)
        idx.insert("fresh", points[100])
        # The fresh point is scanned exactly: it must be its own nearest hit.
        assert idx.query(points[100], k=1)[0][0] == "fresh"
        assert len(idx) == 81

    def test_insert_duplicate_rejected(self, points):
        idx = self._built(points)
        with pytest.raises(ValueError, match="duplicate"):
            idx.insert("p0", points[0])

    def test_delete_tombstones(self, points):
        idx = self._built(points)
        idx.delete("p7")
        assert "p7" not in idx
        assert len(idx) == 79
        assert all(k != "p7" for k, _ in idx.query(points[7], k=10))

    def test_delete_missing_raises(self, points):
        idx = self._built(points)
        with pytest.raises(KeyError, match="no ANN entry"):
            idx.delete("ghost")

    def test_replant_past_churn_bar(self, points):
        idx = self._built(points, n=20)
        for i in range(40, 47):
            idx.insert(f"f{i}", points[i])
        # Fresh inserts exceeded 25% of the forest: trees were re-planted.
        assert idx._fresh == set()
        assert len(idx) == 27
        assert idx.query(points[44], k=1)[0][0] == "f44"

    def test_reinsert_after_delete(self, points):
        idx = self._built(points, n=20)
        idx.delete("p3")
        idx.insert("p3", points[50])
        assert idx.query(points[50], k=1)[0][0] == "p3"


class TestIntervalRemove:
    def test_remove_then_query(self):
        from repro.ann.intervals import IntervalIndex
        from repro.relational.stats import numeric_stats

        idx = IntervalIndex()
        idx.add("a", numeric_stats([0.0, 1.0, 2.0]))
        idx.add("b", numeric_stats([100.0, 101.0]))
        idx.build()
        idx.remove("a")
        assert "a" not in idx
        assert len(idx) == 1
        hits = idx.query(numeric_stats([0.5, 1.5]))
        assert "a" not in hits

    def test_remove_missing_raises(self):
        from repro.ann.intervals import IntervalIndex

        with pytest.raises(KeyError, match="no interval entry"):
            IntervalIndex().remove("ghost")


class TestFreshDoesNotStarveBudget:
    def test_planted_points_found_with_large_fresh_set(self, points):
        """Fresh points are scanned ON TOP of the tree budget: a big fresh
        set must not evict planted points from the candidate pool."""
        idx = RPForestIndex(dim=16, num_trees=4, leaf_size=8, seed=0)
        for i, v in enumerate(points[:80]):
            idx.add(f"p{i}", v)
        idx.build()
        # 17 fresh inserts: above the k=1 budget (16), below the replant bar.
        for i in range(100, 117):
            idx.insert(f"f{i}", points[i])
        assert idx._fresh  # replant did not fire; fresh path is live
        # An exact planted vector must still be its own nearest neighbour.
        assert idx.query(points[5], k=1)[0][0] == "p5"
        # And an exact fresh vector must be too.
        assert idx.query(points[105], k=1)[0][0] == "f105"
