"""Tests for the generative label model (Dawid-Skene EM)."""

import numpy as np
import pytest

from repro.weaklabel.generative import GenerativeLabelModel
from repro.weaklabel.lf import ABSTAIN


def make_votes(truth: np.ndarray, accuracies: list[float],
               abstain_rates: list[float], seed: int = 0) -> np.ndarray:
    """Simulate LF votes with given per-LF accuracy and abstain rate."""
    rng = np.random.default_rng(seed)
    n, m = len(truth), len(accuracies)
    votes = np.full((n, m), ABSTAIN, dtype=int)
    for j, (acc, ab) in enumerate(zip(accuracies, abstain_rates)):
        for i in range(n):
            if rng.random() < ab:
                continue
            votes[i, j] = truth[i] if rng.random() < acc else 1 - truth[i]
    return votes


@pytest.fixture(scope="module")
def scenario():
    """Five LFs: enough redundancy for the accuracies to be identifiable.

    With very few LFs (e.g. the paper's four) the likelihood surface is
    nearly flat between parameter modes — which is precisely why CMDL adds
    the gold-label pruning phase (§4.1). These tests use five so EM's
    estimates are pinned down.
    """
    rng = np.random.default_rng(1)
    truth = rng.integers(0, 2, size=600)
    votes = make_votes(truth, [0.92, 0.85, 0.75, 0.65, 0.55],
                       [0.1, 0.1, 0.2, 0.1, 0.1])
    return truth, votes


class TestFit:
    def test_accuracy_ordering_recovered(self, scenario):
        truth, votes = scenario
        model = GenerativeLabelModel(seed=0).fit(votes)
        acc = model.lf_accuracies
        assert acc[0] > acc[2] > acc[4]

    def test_accuracy_estimates_close(self, scenario):
        truth, votes = scenario
        model = GenerativeLabelModel(seed=0).fit(votes)
        assert abs(model.lf_accuracies[0] - 0.92) < 0.08
        assert abs(model.lf_accuracies[2] - 0.75) < 0.08

    def test_prior_estimated(self, scenario):
        _, votes = scenario
        model = GenerativeLabelModel(seed=0).fit(votes)
        assert 0.3 < model.class_prior < 0.7

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            GenerativeLabelModel().fit(np.zeros(5))

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError):
            GenerativeLabelModel(max_iter=0)

    def test_polarity_guard(self):
        """Mostly-adversarial LFs must not flip the label convention."""
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 2, size=400)
        votes = make_votes(truth, [0.8, 0.7, 0.65], [0.0, 0.0, 0.0])
        model = GenerativeLabelModel(seed=0).fit(votes)
        assert model.lf_accuracies.mean() >= 0.5


class TestPredict:
    def test_probabilities_bounded(self, scenario):
        _, votes = scenario
        probs = GenerativeLabelModel(seed=0).fit_predict_proba(votes)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_labels_match_truth(self, scenario):
        truth, votes = scenario
        probs = GenerativeLabelModel(seed=0).fit_predict_proba(votes)
        predicted = (probs > 0.5).astype(int)
        accuracy = (predicted == truth).mean()
        assert accuracy > 0.85

    def test_better_than_single_best_lf(self, scenario):
        """Combining weak LFs must beat the best one alone (Snorkel's point)."""
        truth, votes = scenario
        probs = GenerativeLabelModel(seed=0).fit_predict_proba(votes)
        combined = ((probs > 0.5).astype(int) == truth).mean()
        voted = votes[:, 0] != ABSTAIN
        best_alone = (votes[voted, 0] == truth[voted]).mean() * voted.mean() + \
            0.5 * (1 - voted.mean())
        assert combined >= best_alone - 0.02

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GenerativeLabelModel().predict_proba(np.zeros((2, 2), dtype=int))

    def test_all_abstain_row(self):
        votes = np.array([[ABSTAIN, ABSTAIN], [1, 1], [0, 0]])
        probs = GenerativeLabelModel(seed=0).fit_predict_proba(votes)
        # The abstain-only row falls back near the class prior.
        assert 0.0 <= probs[0] <= 1.0
