"""Tests for the labeling-function abstraction."""

import numpy as np
import pytest

from repro.weaklabel.lf import ABSTAIN, LabelingFunction, apply_labeling_functions


class TestLabelingFunction:
    def test_basic_vote(self):
        lf = LabelingFunction("even", lambda x: int(x % 2 == 0))
        assert lf(2) == 1
        assert lf(3) == 0

    def test_disabled_lf_abstains(self):
        lf = LabelingFunction("x", lambda x: 1)
        lf.enabled = False
        assert lf(0) == ABSTAIN

    def test_invalid_vote_rejected(self):
        lf = LabelingFunction("bad", lambda x: 7)
        with pytest.raises(ValueError, match="returned"):
            lf(0)

    def test_abstain_allowed(self):
        lf = LabelingFunction("maybe", lambda x: ABSTAIN)
        assert lf(0) == ABSTAIN

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            LabelingFunction("", lambda x: 1)

    def test_repr_shows_state(self):
        lf = LabelingFunction("x", lambda p: 1)
        assert "on" in repr(lf)
        lf.enabled = False
        assert "off" in repr(lf)


class TestApplyLabelingFunctions:
    def test_matrix_shape(self):
        lfs = [LabelingFunction("a", lambda x: 1),
               LabelingFunction("b", lambda x: 0)]
        votes = apply_labeling_functions(lfs, [1, 2, 3])
        assert votes.shape == (3, 2)
        assert (votes[:, 0] == 1).all()
        assert (votes[:, 1] == 0).all()

    def test_empty_lfs_rejected(self):
        with pytest.raises(ValueError):
            apply_labeling_functions([], [1])

    def test_abstain_encoded(self):
        lfs = [LabelingFunction("a", lambda x: ABSTAIN)]
        votes = apply_labeling_functions(lfs, [1])
        assert votes[0, 0] == ABSTAIN

    def test_dtype_int(self):
        lfs = [LabelingFunction("a", lambda x: 1)]
        assert apply_labeling_functions(lfs, [0]).dtype == np.dtype(int)
