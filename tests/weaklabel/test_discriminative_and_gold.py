"""Tests for the discriminative model and gold-label LF pruning."""

import numpy as np
import pytest

from repro.weaklabel.discriminative import LogisticRegression
from repro.weaklabel.gold import lf_accuracies_on_gold, prune_labeling_functions
from repro.weaklabel.lf import ABSTAIN, LabelingFunction


@pytest.fixture()
def separable():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((300, 4))
    w = np.array([2.0, -1.0, 0.5, 0.0])
    y = (x @ w > 0).astype(float)
    return x, y


class TestLogisticRegression:
    def test_fits_separable_data(self, separable):
        x, y = separable
        model = LogisticRegression(seed=0).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_soft_targets_accepted(self, separable):
        x, y = separable
        soft = np.clip(y * 0.9 + 0.05, 0, 1)
        model = LogisticRegression(seed=0).fit(x, soft)
        assert ((model.predict_proba(x) > 0.5) == y.astype(bool)).mean() > 0.9

    def test_probabilities_bounded(self, separable):
        x, y = separable
        probs = LogisticRegression(seed=0).fit(x, y).predict_proba(x)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)

    def test_l2_shrinks_weights(self, separable):
        x, y = separable
        loose = LogisticRegression(l2=1e-6, seed=0).fit(x, y)
        tight = LogisticRegression(l2=1.0, seed=0).fit(x, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)


def make_lfs():
    good = LabelingFunction("good", lambda p: p % 2)          # perfect
    noisy = LabelingFunction("noisy", lambda p: (p % 2) if p % 3 else 1 - (p % 2))
    bad = LabelingFunction("bad", lambda p: 1 - (p % 2))      # inverted
    quiet = LabelingFunction("quiet", lambda p: ABSTAIN)      # always abstains
    return good, noisy, bad, quiet


class TestGoldAccuracies:
    def test_measured_accuracies(self):
        good, noisy, bad, quiet = make_lfs()
        points = list(range(100))
        labels = [p % 2 for p in points]
        acc = lf_accuracies_on_gold([good, noisy, bad, quiet], points, labels)
        assert acc["good"] == 1.0
        assert 0.6 < acc["noisy"] < 0.72
        assert acc["bad"] == 0.0
        assert acc["quiet"] == 0.0

    def test_length_mismatch_rejected(self):
        good, *_ = make_lfs()
        with pytest.raises(ValueError):
            lf_accuracies_on_gold([good], [1, 2], [1])


class TestPruning:
    def test_weak_lfs_disabled(self):
        good, noisy, bad, quiet = make_lfs()
        points = list(range(100))
        labels = [p % 2 for p in points]
        prune_labeling_functions([good, noisy, bad, quiet], points, labels,
                                 relative_threshold=0.5)
        assert good.enabled
        assert noisy.enabled           # 0.66 >= 0.5 * 1.0
        assert not bad.enabled
        assert not quiet.enabled

    def test_best_always_survives(self):
        _, _, bad, _ = make_lfs()
        points = list(range(20))
        labels = [p % 2 for p in points]
        prune_labeling_functions([bad], points, labels)
        # 'bad' is the only (hence best) LF with accuracy 0 -> all stay on.
        assert bad.enabled

    def test_threshold_validation(self):
        good, *_ = make_lfs()
        with pytest.raises(ValueError):
            prune_labeling_functions([good], [0], [0], relative_threshold=0.0)

    def test_disabled_lf_abstains_afterwards(self):
        good, noisy, bad, quiet = make_lfs()
        points = list(range(100))
        labels = [p % 2 for p in points]
        prune_labeling_functions([good, bad], points, labels)
        assert bad(3) == ABSTAIN
