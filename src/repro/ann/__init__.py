"""Approximate-nearest-neighbour substrate (Annoy stand-in).

CMDL indexes solo and joint embeddings with Annoy's random-projection
space-partitioning trees (paper §3). :class:`RPForestIndex` reimplements the
same scheme: a forest of trees, each recursively splitting points by the
sign of a random hyperplane through two sampled points; queries descend all
trees with a priority queue and candidates are re-ranked exactly by cosine
similarity. :class:`ExactIndex` is the brute-force reference used in tests
to bound the forest's recall. :class:`IntervalIndex` is the 1-d numeric
range index used by the candidate-generation layer.
"""

from repro.ann.rpforest import RPForestIndex
from repro.ann.exact import ExactIndex
from repro.ann.intervals import IntervalIndex

__all__ = ["RPForestIndex", "ExactIndex", "IntervalIndex"]
