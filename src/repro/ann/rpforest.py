"""Random-projection tree forest (Annoy-style approximate NN index).

Each tree recursively partitions the points: at a node, two distinct points
are sampled and the splitting hyperplane is the perpendicular bisector of
the segment between them (Annoy's "two means" split in its simplest form).
Leaves hold at most ``leaf_size`` points. A query descends every tree with a
shared max-heap prioritised by margin distance, collecting at least
``search_k`` candidates, which are then re-ranked exactly by cosine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class _Node:
    """Internal split node or leaf of one RP tree."""

    # Leaf: indexes is set, normal/offset/children are None.
    indexes: list[int] | None = None
    normal: np.ndarray | None = None
    offset: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.indexes is not None


class RPForestIndex:
    """Forest of random-projection trees with exact candidate re-ranking.

    Supports delta maintenance: :meth:`insert` keeps new points in a "fresh"
    set that every query scans exactly (no recall loss) until they exceed
    :attr:`REPLANT_FRACTION` of the forest, at which point the trees are
    re-planted; :meth:`delete` tombstones a key (filtered at query time) and
    compacts once tombstones pass the same fraction.
    """

    #: Fresh-insert / tombstone fraction that triggers a tree re-plant.
    REPLANT_FRACTION = 0.25

    def __init__(
        self,
        dim: int,
        num_trees: int = 8,
        leaf_size: int = 16,
        seed: int = 0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_trees <= 0 or leaf_size <= 1:
            raise ValueError("num_trees must be >=1 and leaf_size >= 2")
        self.dim = dim
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.seed = seed
        self._keys: list[str] = []
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None
        self._trees: list[_Node] = []
        #: Live key -> row index (tombstoned rows have no entry here).
        self._key_pos: dict[str, int] = {}
        self._fresh: set[int] = set()
        self._deleted_idx: set[int] = set()

    # -------------------------------------------------------------- build

    def add(self, key: str, vector: np.ndarray) -> None:
        if len(vector) != self.dim:
            raise ValueError(f"vector has dim {len(vector)}, index expects {self.dim}")
        norm = np.linalg.norm(vector)
        self._keys.append(key)
        self._rows.append(vector / norm if norm > 0 else np.asarray(vector, dtype=float))
        self._key_pos[key] = len(self._keys) - 1
        self._matrix = None
        self._trees = []

    def build_bulk(self, entries: list[tuple[str, np.ndarray]]) -> "RPForestIndex":
        """Add a whole ``(key, vector)`` batch and plant the forest once.

        Row normalisation matches :meth:`add` exactly (same per-row norm),
        so the planted forest is identical to per-item adds followed by
        :meth:`build` — without invalidating the matrix/trees per point.
        """
        for key, vector in entries:
            if key in self._key_pos:
                raise ValueError(f"duplicate ANN key {key!r}")
            if len(vector) != self.dim:
                raise ValueError(
                    f"vector has dim {len(vector)}, index expects {self.dim}"
                )
            norm = np.linalg.norm(vector)
            self._keys.append(key)
            self._rows.append(
                vector / norm if norm > 0 else np.asarray(vector, dtype=float)
            )
            self._key_pos[key] = len(self._keys) - 1
        return self.build()

    def build(self) -> "RPForestIndex":
        """(Re)build the forest over all live points."""
        if self._deleted_idx:
            live = [
                (k, r) for i, (k, r) in enumerate(zip(self._keys, self._rows))
                if i not in self._deleted_idx
            ]
            self._keys = [k for k, _ in live]
            self._rows = [r for _, r in live]
            self._key_pos = {k: i for i, k in enumerate(self._keys)}
            self._deleted_idx = set()
        self._fresh = set()
        if not self._rows:
            self._matrix = np.zeros((0, self.dim))
            self._trees = []
            return self
        self._matrix = np.vstack(self._rows)
        rng = ensure_rng(self.seed)
        all_indexes = list(range(len(self._keys)))
        self._trees = [
            self._build_node(all_indexes, rng, depth=0) for _ in range(self.num_trees)
        ]
        return self

    # ----------------------------------------------------------- mutation

    def __contains__(self, key: str) -> bool:
        return key in self._key_pos

    def insert(self, key: str, vector: np.ndarray) -> None:
        """Add one point to a built forest (delta path).

        The point joins the fresh set, which queries scan exactly alongside
        the tree candidates — zero recall loss — until fresh points exceed
        :attr:`REPLANT_FRACTION` of the forest and the trees are re-planted.
        (On an unbuilt forest this is just :meth:`add`; a previously
        tombstoned key re-enters as a new row, no rebuild needed.)
        """
        if key in self._key_pos:
            raise ValueError(f"duplicate ANN key {key!r}")
        if self._matrix is None:
            self.add(key, vector)
            return
        if len(vector) != self.dim:
            raise ValueError(f"vector has dim {len(vector)}, index expects {self.dim}")
        norm = np.linalg.norm(vector)
        row = vector / norm if norm > 0 else np.asarray(vector, dtype=float)
        self._keys.append(key)
        self._rows.append(row)
        self._key_pos[key] = len(self._keys) - 1
        # The matrix is NOT extended per insert (that would copy O(n*d) per
        # point): fresh rows are scored straight from _rows until the next
        # re-plant folds them in.
        self._fresh.add(len(self._keys) - 1)
        self._maybe_replant()

    def delete(self, key: str) -> None:
        """Tombstone one point; compacts/re-plants past the churn bar."""
        idx = self._key_pos.pop(key, None)
        if idx is None:
            raise KeyError(f"no ANN entry for key {key!r}")
        self._deleted_idx.add(idx)
        self._fresh.discard(idx)
        self._maybe_replant()

    def _maybe_replant(self) -> None:
        live = max(len(self), 1)
        if (
            len(self._fresh) > self.REPLANT_FRACTION * live
            or len(self._deleted_idx) > self.REPLANT_FRACTION * live
        ):
            self.build()

    def _build_node(self, indexes: list[int], rng, depth: int) -> _Node:
        if len(indexes) <= self.leaf_size or depth > 32:
            return _Node(indexes=list(indexes))
        # Sample two distinct points; hyperplane = perpendicular bisector.
        i, j = rng.choice(len(indexes), size=2, replace=False)
        p, q = self._matrix[indexes[i]], self._matrix[indexes[j]]
        normal = p - q
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            # Identical sample points: random hyperplane through the origin.
            normal = rng.standard_normal(self.dim)
            norm = np.linalg.norm(normal)
        normal = normal / norm
        midpoint = (p + q) / 2.0
        offset = float(normal @ midpoint)
        projections = self._matrix[indexes] @ normal - offset
        left_idx = [ix for ix, s in zip(indexes, projections) if s <= 0]
        right_idx = [ix for ix, s in zip(indexes, projections) if s > 0]
        if not left_idx or not right_idx:
            return _Node(indexes=list(indexes))
        return _Node(
            normal=normal,
            offset=offset,
            left=self._build_node(left_idx, rng, depth + 1),
            right=self._build_node(right_idx, rng, depth + 1),
        )

    def __len__(self) -> int:
        return len(self._keys) - len(self._deleted_idx)

    # -------------------------------------------------------------- query

    def query(
        self,
        vector: np.ndarray,
        k: int = 10,
        search_k: int | None = None,
        exclude: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k keys by cosine similarity with approximate candidate search.

        ``search_k`` is the candidate budget (default: ``k * num_trees * 4``,
        matching Annoy's rule of thumb); higher values trade speed for recall.
        """
        if self._matrix is None or (not self._trees and self._rows):
            self.build()
        if self._matrix.shape[0] == 0:
            return []
        exclude = exclude or set()
        norm = np.linalg.norm(vector)
        q = vector / norm if norm > 0 else np.asarray(vector, dtype=float)
        budget = search_k if search_k is not None else max(k * self.num_trees * 4, k)

        candidates: set[int] = set()
        # Shared priority queue over (negative margin, tiebreak, node): explore
        # the most promising branch across all trees first, like Annoy.
        heap: list[tuple[float, int, _Node]] = []
        counter = 0
        for tree in self._trees:
            heapq.heappush(heap, (-np.inf, counter, tree))
            counter += 1
        while heap and len(candidates) < budget:
            _, _, node = heapq.heappop(heap)
            while not node.is_leaf:
                margin = float(node.normal @ q - node.offset)
                near, far = (node.left, node.right) if margin <= 0 else (node.right, node.left)
                heapq.heappush(heap, (-abs(margin), counter, far))
                counter += 1
                node = near
            candidates.update(node.indexes)
        # Fresh (not-yet-planted) points are always scanned exactly, ON TOP
        # of the tree budget (they must not starve the tree walk), so
        # incremental inserts lose no recall between re-plants.
        candidates.update(self._fresh)

        scored = []
        planted = self._matrix.shape[0]
        for idx in candidates:
            if idx in self._deleted_idx:
                continue
            key = self._keys[idx]
            if key in exclude:
                continue
            row = self._matrix[idx] if idx < planted else self._rows[idx]
            scored.append((key, float(row @ q)))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]
