"""Random-projection tree forest (Annoy-style approximate NN index).

Each tree recursively partitions the points: at a node, two distinct points
are sampled and the splitting hyperplane is the perpendicular bisector of
the segment between them (Annoy's "two means" split in its simplest form).
Leaves hold at most ``leaf_size`` points. A query descends every tree with a
shared max-heap prioritised by margin distance, collecting at least
``search_k`` candidates, which are then re-ranked exactly by cosine.

Two planting backends share one split rule:

* ``"array"`` (default) — level-synchronous planting into flat CSR-style
  node arrays (children / plane / offset / leaf spans); queries walk the
  arrays with no object graph in the hot path.
* ``"nodes"`` — the recursive ``_Node`` builder, kept as the parity oracle.

Every node draws its randomness from its *position* — a splitmix64-style
hash of ``(seed, tree, heap-path)``, no per-node Generator construction in
the hot path — and both backends project candidate rows with
the same ``matrix[idx] @ normal`` GEMV expression, so the two plant
bit-identical trees and answer queries with identical keys in identical
order. (A stacked GEMM over a whole level is NOT bitwise equal to per-plane
GEMV on this BLAS; reassociating the reduction could flip the side of a
point sitting on a split boundary, which is why projections stay per-node.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

_MASK64 = (1 << 64) - 1
#: splitmix64 stream increment (golden-ratio gamma).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """splitmix64 finaliser: avalanche one 64-bit word."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass
class _Node:
    """Internal split node or leaf of one RP tree (``"nodes"`` backend)."""

    # Leaf: indexes is set, normal/offset/children are None.
    indexes: list[int] | None = None
    normal: np.ndarray | None = None
    offset: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.indexes is not None


class RPForestIndex:
    """Forest of random-projection trees with exact candidate re-ranking.

    Supports delta maintenance: :meth:`insert` keeps new points in a "fresh"
    set that every query scans exactly (no recall loss) until they exceed
    :attr:`REPLANT_FRACTION` of the forest, at which point the trees are
    re-planted; :meth:`delete` tombstones a key (filtered at query time) and
    compacts once tombstones pass the same fraction.
    """

    #: Fresh-insert / tombstone fraction that triggers a tree re-plant.
    REPLANT_FRACTION = 0.25

    #: Depth past which a node becomes a leaf regardless of size (guards
    #: against adversarial point sets that refuse to split).
    MAX_DEPTH = 32

    def __init__(
        self,
        dim: int,
        num_trees: int = 8,
        leaf_size: int = 16,
        seed: int = 0,
        backend: str = "array",
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_trees <= 0 or leaf_size <= 1:
            raise ValueError("num_trees must be >=1 and leaf_size >= 2")
        if backend not in ("array", "nodes"):
            raise ValueError(f"backend must be 'array' or 'nodes', got {backend!r}")
        self.dim = dim
        self.num_trees = num_trees
        self.leaf_size = leaf_size
        self.seed = seed
        self.backend = backend
        self._keys: list[str] = []
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None
        self._planted = False
        # "nodes" backend: one root _Node per tree.
        self._trees: list[_Node] = []
        # "array" backend: flat node arrays. Children are node ids
        # (-1 = leaf); internal nodes carry a row of _planes plus an offset;
        # leaves carry a [start, end) span into _leaf_items.
        self._tree_roots: list[int] = []
        self._node_left = np.zeros(0, dtype=np.int32)
        self._node_right = np.zeros(0, dtype=np.int32)
        self._node_plane = np.zeros(0, dtype=np.int32)
        self._node_offset = np.zeros(0, dtype=np.float64)
        self._planes = np.zeros((0, dim))
        self._leaf_start = np.zeros(0, dtype=np.int64)
        self._leaf_end = np.zeros(0, dtype=np.int64)
        self._leaf_items = np.zeros(0, dtype=np.int64)
        #: Live key -> row index (tombstoned rows have no entry here).
        self._key_pos: dict[str, int] = {}
        self._fresh: set[int] = set()
        self._deleted_idx: set[int] = set()

    # -------------------------------------------------------------- build

    def add(self, key: str, vector: np.ndarray) -> None:
        if len(vector) != self.dim:
            raise ValueError(f"vector has dim {len(vector)}, index expects {self.dim}")
        norm = np.linalg.norm(vector)
        self._keys.append(key)
        self._rows.append(vector / norm if norm > 0 else np.asarray(vector, dtype=float))
        self._key_pos[key] = len(self._keys) - 1
        self._matrix = None
        self._planted = False

    def build_bulk(self, entries: list[tuple[str, np.ndarray]]) -> "RPForestIndex":
        """Add a whole ``(key, vector)`` batch and plant the forest once.

        Row normalisation matches :meth:`add` exactly (same per-row norm),
        so the planted forest is identical to per-item adds followed by
        :meth:`build` — without invalidating the matrix/trees per point.
        """
        for key, vector in entries:
            if key in self._key_pos:
                raise ValueError(f"duplicate ANN key {key!r}")
            if len(vector) != self.dim:
                raise ValueError(
                    f"vector has dim {len(vector)}, index expects {self.dim}"
                )
            norm = np.linalg.norm(vector)
            self._keys.append(key)
            self._rows.append(
                vector / norm if norm > 0 else np.asarray(vector, dtype=float)
            )
            self._key_pos[key] = len(self._keys) - 1
        return self.build()

    def build(self) -> "RPForestIndex":
        """(Re)build the forest over all live points."""
        if self._deleted_idx:
            live = [
                (k, r) for i, (k, r) in enumerate(zip(self._keys, self._rows))
                if i not in self._deleted_idx
            ]
            self._keys = [k for k, _ in live]
            self._rows = [r for _, r in live]
            self._key_pos = {k: i for i, k in enumerate(self._keys)}
            self._deleted_idx = set()
        self._fresh = set()
        self._trees = []
        self._tree_roots = []
        if not self._rows:
            self._matrix = np.zeros((0, self.dim))
            self._planted = True
            return self
        self._matrix = np.vstack(self._rows)
        if self.backend == "nodes":
            all_indexes = list(range(len(self._keys)))
            self._trees = [
                self._build_node(all_indexes, tree, path=1, depth=0)
                for tree in range(self.num_trees)
            ]
        else:
            self._plant_arrays()
        self._planted = True
        return self

    # ----------------------------------------------------------- mutation

    def __contains__(self, key: str) -> bool:
        return key in self._key_pos

    def insert(self, key: str, vector: np.ndarray) -> None:
        """Add one point to a built forest (delta path).

        The point joins the fresh set, which queries scan exactly alongside
        the tree candidates — zero recall loss — until fresh points exceed
        :attr:`REPLANT_FRACTION` of the forest and the trees are re-planted.
        (On an unbuilt forest this is just :meth:`add`; a previously
        tombstoned key re-enters as a new row, no rebuild needed.)
        """
        if key in self._key_pos:
            raise ValueError(f"duplicate ANN key {key!r}")
        if self._matrix is None:
            self.add(key, vector)
            return
        if len(vector) != self.dim:
            raise ValueError(f"vector has dim {len(vector)}, index expects {self.dim}")
        norm = np.linalg.norm(vector)
        row = vector / norm if norm > 0 else np.asarray(vector, dtype=float)
        self._keys.append(key)
        self._rows.append(row)
        self._key_pos[key] = len(self._keys) - 1
        # The matrix is NOT extended per insert (that would copy O(n*d) per
        # point): fresh rows are scored straight from _rows until the next
        # re-plant folds them in.
        self._fresh.add(len(self._keys) - 1)
        self._maybe_replant()

    def delete(self, key: str) -> None:
        """Tombstone one point; compacts/re-plants past the churn bar."""
        idx = self._key_pos.pop(key, None)
        if idx is None:
            raise KeyError(f"no ANN entry for key {key!r}")
        self._deleted_idx.add(idx)
        self._fresh.discard(idx)
        self._maybe_replant()

    def _maybe_replant(self) -> None:
        live = max(len(self), 1)
        if (
            len(self._fresh) > self.REPLANT_FRACTION * live
            or len(self._deleted_idx) > self.REPLANT_FRACTION * live
        ):
            self.build()

    # ----------------------------------------------------------- planting

    def _node_words(self, tree: int, path: int) -> tuple[int, int]:
        """Two decorrelated 64-bit hash words of one tree node.

        ``path`` is the heap-style position id (root 1, children ``2p`` /
        ``2p+1``): a node's randomness depends only on where it sits, never
        on the order the builder visits nodes in — which is what lets the
        level-synchronous array builder and the recursive oracle plant
        bit-identical trees. Integer mixing (splitmix64) instead of a
        ``default_rng`` per node keeps planting out of Generator
        construction, which dominated the build at lake scale.
        """
        base = _mix64(_mix64(self.seed ^ (tree * _SPLITMIX_GAMMA)) ^ path)
        return base, _mix64(base + _SPLITMIX_GAMMA)

    def _split_plane(self, indexes, tree: int, path: int) -> tuple[np.ndarray, float]:
        """Sample one node's splitting hyperplane: the perpendicular bisector
        of two distinct sampled points (random plane if they coincide).

        ``indexes`` may be a list (nodes backend) or an int array (array
        backend); both hit identical scalar arithmetic.
        """
        h1, h2 = self._node_words(tree, path)
        n = len(indexes)
        i = h1 % n
        j = h2 % (n - 1)
        if j >= i:  # j drawn from [0, n-1) then shifted past i: j != i, uniform
            j += 1
        p, q = self._matrix[indexes[i]], self._matrix[indexes[j]]
        normal = p - q
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            # Identical sample points: random hyperplane through the origin
            # (rare enough that a seeded Generator is fine here).
            normal = np.random.default_rng(h1).standard_normal(self.dim)
            norm = np.linalg.norm(normal)
        normal = normal / norm
        midpoint = (p + q) / 2.0
        offset = float(normal @ midpoint)
        return normal, offset

    def _build_node(self, indexes: list[int], tree: int, path: int, depth: int) -> _Node:
        """Recursive oracle builder (``"nodes"`` backend)."""
        if len(indexes) <= self.leaf_size or depth > self.MAX_DEPTH:
            return _Node(indexes=list(indexes))
        normal, offset = self._split_plane(indexes, tree, path)
        projections = self._matrix[indexes] @ normal - offset
        left_idx = [ix for ix, s in zip(indexes, projections) if s <= 0]
        right_idx = [ix for ix, s in zip(indexes, projections) if s > 0]
        if not left_idx or not right_idx:
            return _Node(indexes=list(indexes))
        return _Node(
            normal=normal,
            offset=offset,
            left=self._build_node(left_idx, tree, 2 * path, depth + 1),
            right=self._build_node(right_idx, tree, 2 * path + 1, depth + 1),
        )

    def _plant_arrays(self) -> None:
        """Plant all trees level-synchronously into flat node arrays.

        The frontier carries ``(tree, path, node id, row-index array)``
        entries for one depth at a time; splits partition index *arrays*
        with boolean masks (no per-element Python), and leaves append their
        spans to one flat ``_leaf_items`` vector CSR-style. Projections are
        the same ``matrix[idx] @ normal`` GEMV the oracle uses — see the
        module docstring for why that, plus position-keyed randomness,
        makes the two backends bit-identical.
        """
        n = self._matrix.shape[0]
        left: list[int] = []
        right: list[int] = []
        plane_of: list[int] = []
        offsets: list[float] = []
        leaf_start: list[int] = []
        leaf_end: list[int] = []
        leaf_chunks: list[np.ndarray] = []
        planes: list[np.ndarray] = []
        items_written = 0

        def alloc() -> int:
            left.append(-1)
            right.append(-1)
            plane_of.append(-1)
            offsets.append(0.0)
            leaf_start.append(0)
            leaf_end.append(0)
            return len(left) - 1

        def seal_leaf(node: int, idx: np.ndarray) -> None:
            nonlocal items_written
            leaf_start[node] = items_written
            items_written += int(idx.size)
            leaf_end[node] = items_written
            leaf_chunks.append(idx)

        all_idx = np.arange(n, dtype=np.int64)
        self._tree_roots = [alloc() for _ in range(self.num_trees)]
        frontier: list[tuple[int, int, int, np.ndarray]] = [
            (tree, 1, root, all_idx) for tree, root in enumerate(self._tree_roots)
        ]
        depth = 0
        while frontier:
            next_frontier: list[tuple[int, int, int, np.ndarray]] = []
            for tree, path, node, idx in frontier:
                if idx.size <= self.leaf_size or depth > self.MAX_DEPTH:
                    seal_leaf(node, idx)
                    continue
                normal, offset = self._split_plane(idx, tree, path)
                projections = self._matrix[idx] @ normal - offset
                mask = projections <= 0
                left_idx = idx[mask]
                right_idx = idx[~mask]
                if left_idx.size == 0 or right_idx.size == 0:
                    seal_leaf(node, idx)
                    continue
                plane_of[node] = len(planes)
                planes.append(normal)
                offsets[node] = offset
                lo, hi = alloc(), alloc()
                left[node] = lo
                right[node] = hi
                next_frontier.append((tree, 2 * path, lo, left_idx))
                next_frontier.append((tree, 2 * path + 1, hi, right_idx))
            frontier = next_frontier
            depth += 1

        self._node_left = np.asarray(left, dtype=np.int32)
        self._node_right = np.asarray(right, dtype=np.int32)
        self._node_plane = np.asarray(plane_of, dtype=np.int32)
        self._node_offset = np.asarray(offsets, dtype=np.float64)
        self._planes = np.vstack(planes) if planes else np.zeros((0, self.dim))
        self._leaf_start = np.asarray(leaf_start, dtype=np.int64)
        self._leaf_end = np.asarray(leaf_end, dtype=np.int64)
        self._leaf_items = (
            np.concatenate(leaf_chunks) if leaf_chunks else np.zeros(0, dtype=np.int64)
        )

    def __len__(self) -> int:
        return len(self._keys) - len(self._deleted_idx)

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Rows as one slab plus the flat planted arrays verbatim.

        ``matrix_rows`` records how many leading rows the planted matrix
        covered (-1 = never planted): post-plant inserts only extend
        ``_rows``, so ``_matrix == stacked_rows[:m]`` always holds and the
        matrix need not be stored twice. ``_key_pos`` is derived (live keys
        only) and rebuilt on restore.
        """
        n = len(self._keys)
        rows = np.vstack(self._rows) if self._rows else np.zeros((0, self.dim))
        return {
            "dim": self.dim,
            "num_trees": self.num_trees,
            "leaf_size": self.leaf_size,
            "seed": self.seed,
            "backend": self.backend,
            "keys": list(self._keys),
            "rows": rows,
            "matrix_rows": -1 if self._matrix is None else int(self._matrix.shape[0]),
            "planted": self._planted,
            "fresh": sorted(self._fresh),
            "deleted_idx": sorted(self._deleted_idx),
            "trees": self._trees,
            "tree_roots": list(self._tree_roots),
            "node_left": self._node_left,
            "node_right": self._node_right,
            "node_plane": self._node_plane,
            "node_offset": self._node_offset,
            "planes": self._planes,
            "leaf_start": self._leaf_start,
            "leaf_end": self._leaf_end,
            "leaf_items": self._leaf_items,
            "n": n,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "RPForestIndex":
        index = cls(
            dim=state["dim"],
            num_trees=state["num_trees"],
            leaf_size=state["leaf_size"],
            seed=state["seed"],
            backend=state["backend"],
        )
        rows = np.asarray(state["rows"], dtype=float)
        n = state["n"]
        index._keys = list(state["keys"])
        index._rows = [rows[i] for i in range(n)]
        m = state["matrix_rows"]
        index._matrix = None if m < 0 else rows[:m]
        index._planted = state["planted"]
        index._fresh = set(state["fresh"])
        index._deleted_idx = set(state["deleted_idx"])
        index._trees = state["trees"]
        index._tree_roots = list(state["tree_roots"])
        index._node_left = np.asarray(state["node_left"], dtype=np.int32)
        index._node_right = np.asarray(state["node_right"], dtype=np.int32)
        index._node_plane = np.asarray(state["node_plane"], dtype=np.int32)
        index._node_offset = np.asarray(state["node_offset"], dtype=np.float64)
        index._planes = np.asarray(state["planes"], dtype=float)
        index._leaf_start = np.asarray(state["leaf_start"], dtype=np.int64)
        index._leaf_end = np.asarray(state["leaf_end"], dtype=np.int64)
        index._leaf_items = np.asarray(state["leaf_items"], dtype=np.int64)
        # Live keys only; a re-inserted (previously tombstoned) key's live
        # row is the later one, so last-write-wins over the enumeration.
        index._key_pos = {
            key: i for i, key in enumerate(index._keys)
            if i not in index._deleted_idx
        }
        return index

    # -------------------------------------------------------------- query

    def _walk_arrays(self, q: np.ndarray, budget: int) -> set[int]:
        """Candidate row ids from the flat-array trees (shared heap walk)."""
        candidates: set[int] = set()
        heap: list[tuple[float, int, int]] = []
        counter = 0
        for root in self._tree_roots:
            heapq.heappush(heap, (-np.inf, counter, root))
            counter += 1
        left, right = self._node_left, self._node_right
        plane_of, offsets = self._node_plane, self._node_offset
        planes = self._planes
        items, starts, ends = self._leaf_items, self._leaf_start, self._leaf_end
        while heap and len(candidates) < budget:
            _, _, node = heapq.heappop(heap)
            while left[node] >= 0:
                margin = float(planes[plane_of[node]] @ q - offsets[node])
                near, far = (
                    (left[node], right[node]) if margin <= 0
                    else (right[node], left[node])
                )
                heapq.heappush(heap, (-abs(margin), counter, far))
                counter += 1
                node = near
            candidates.update(items[starts[node]:ends[node]].tolist())
        return candidates

    def _walk_nodes(self, q: np.ndarray, budget: int) -> set[int]:
        """Candidate row ids from the ``_Node`` trees (parity oracle walk)."""
        candidates: set[int] = set()
        heap: list[tuple[float, int, _Node]] = []
        counter = 0
        for tree in self._trees:
            heapq.heappush(heap, (-np.inf, counter, tree))
            counter += 1
        while heap and len(candidates) < budget:
            _, _, node = heapq.heappop(heap)
            while not node.is_leaf:
                margin = float(node.normal @ q - node.offset)
                near, far = (node.left, node.right) if margin <= 0 else (node.right, node.left)
                heapq.heappush(heap, (-abs(margin), counter, far))
                counter += 1
                node = near
            candidates.update(node.indexes)
        return candidates

    def query(
        self,
        vector: np.ndarray,
        k: int = 10,
        search_k: int | None = None,
        exclude: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k keys by cosine similarity with approximate candidate search.

        ``search_k`` is the candidate budget (default: ``k * num_trees * 4``,
        matching Annoy's rule of thumb); higher values trade speed for recall.
        Both backends explore the most promising branch across all trees
        first via a shared priority queue over (negative margin, tiebreak,
        node), like Annoy.
        """
        if self._matrix is None or (not self._planted and self._rows):
            self.build()
        if self._matrix.shape[0] == 0:
            return []
        exclude = exclude or set()
        norm = np.linalg.norm(vector)
        q = vector / norm if norm > 0 else np.asarray(vector, dtype=float)
        budget = search_k if search_k is not None else max(k * self.num_trees * 4, k)

        if self.backend == "nodes":
            candidates = self._walk_nodes(q, budget)
        else:
            candidates = self._walk_arrays(q, budget)
        # Fresh (not-yet-planted) points are always scanned exactly, ON TOP
        # of the tree budget (they must not starve the tree walk), so
        # incremental inserts lose no recall between re-plants.
        candidates.update(self._fresh)

        scored = []
        planted = self._matrix.shape[0]
        for idx in candidates:
            if idx in self._deleted_idx:
                continue
            key = self._keys[idx]
            if key in exclude:
                continue
            row = self._matrix[idx] if idx < planted else self._rows[idx]
            scored.append((key, float(row @ q)))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]
