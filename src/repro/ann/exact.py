"""Exact (brute-force) nearest-neighbour index by cosine similarity."""

from __future__ import annotations

import numpy as np


class ExactIndex:
    """Reference NN index: exact cosine-similarity ranking."""

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._keys: list[str] = []
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None

    def add(self, key: str, vector: np.ndarray) -> None:
        if len(vector) != self.dim:
            raise ValueError(f"vector has dim {len(vector)}, index expects {self.dim}")
        self._keys.append(key)
        norm = np.linalg.norm(vector)
        self._rows.append(vector / norm if norm > 0 else vector)
        self._matrix = None

    def build(self) -> "ExactIndex":
        if self._rows:
            self._matrix = np.vstack(self._rows)
        else:
            self._matrix = np.zeros((0, self.dim))
        return self

    def __len__(self) -> int:
        return len(self._keys)

    def query(
        self, vector: np.ndarray, k: int = 10, exclude: set[str] | None = None
    ) -> list[tuple[str, float]]:
        """Top-k keys by cosine similarity to ``vector``."""
        if self._matrix is None:
            self.build()
        if self._matrix.shape[0] == 0:
            return []
        exclude = exclude or set()
        norm = np.linalg.norm(vector)
        q = vector / norm if norm > 0 else vector
        sims = self._matrix @ q
        order = np.argsort(-sims, kind="stable")
        out = []
        for idx in order:
            key = self._keys[idx]
            if key in exclude:
                continue
            out.append((key, float(sims[idx])))
            if len(out) == k:
                break
        return out
