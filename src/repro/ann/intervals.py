"""1-d interval index over numeric column ranges.

Serves the numeric probes of the candidate-generation layer: given a query
column's :class:`~repro.relational.stats.NumericStats`, return every indexed
column whose ``[min, max]`` range overlaps the query range — plus columns
whose *mean* lies within a few joint standard deviations of the query mean,
because :func:`~repro.relational.stats.numeric_overlap` awards up to 0.3 for
distribution proximity even when the ranges are disjoint.

The scan is a handful of vectorised numpy comparisons over pre-built arrays,
so a probe costs O(#numeric columns) with a tiny constant — the expensive
per-pair ensemble scoring happens only on the survivors.
"""

from __future__ import annotations

import numpy as np

from repro.relational.stats import NumericStats


class IntervalIndex:
    """Range-overlap index over ``(key, NumericStats)`` entries."""

    def __init__(self) -> None:
        self._keys: list[str] = []
        self._key_set: set[str] = set()
        self._stats: list[NumericStats] = []
        self._mins: np.ndarray | None = None
        self._maxs: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None

    # -------------------------------------------------------------- build

    def add(self, key: str, stats: NumericStats) -> None:
        if key in self._key_set:
            raise ValueError(f"duplicate interval key {key!r}")
        self._keys.append(key)
        self._key_set.add(key)
        self._stats.append(stats)
        self._mins = None  # arrays are stale; rebuilt lazily

    def remove(self, key: str) -> None:
        """Delete one entry; the vectorised arrays are rebuilt lazily."""
        if key not in self._key_set:
            raise KeyError(f"no interval entry for key {key!r}")
        i = self._keys.index(key)
        del self._keys[i]
        del self._stats[i]
        self._key_set.discard(key)
        self._mins = None

    def build(self) -> "IntervalIndex":
        self._mins = np.array([s.minimum for s in self._stats], dtype=float)
        self._maxs = np.array([s.maximum for s in self._stats], dtype=float)
        self._means = np.array([s.mean for s in self._stats], dtype=float)
        self._stds = np.array([s.std for s in self._stats], dtype=float)
        return self

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._key_set

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Keys and stats only; the vectorised arrays are lazy and rebuilt
        on the first post-restore probe."""
        return {"keys": list(self._keys), "stats": list(self._stats)}

    @classmethod
    def restore_state(cls, state: dict) -> "IntervalIndex":
        index = cls()
        index._keys = list(state["keys"])
        index._key_set = set(index._keys)
        index._stats = list(state["stats"])
        return index

    # -------------------------------------------------------------- query

    def query(
        self,
        stats: NumericStats,
        mean_slack: float = 4.0,
        exclude: set[str] | None = None,
    ) -> list[str]:
        """Keys whose range overlaps ``stats`` or whose mean is nearby.

        ``mean_slack`` widens the mean-proximity window to ``mean_slack *
        (std_query + std_entry)``; at the default of 4 the proximity term of
        ``numeric_overlap`` has decayed below 0.006, so anything outside the
        window cannot meaningfully score.
        """
        if not self._keys:
            return []
        if self._mins is None:
            self.build()
        exclude = exclude or set()
        overlap = (self._mins <= stats.maximum) & (self._maxs >= stats.minimum)
        nearby = np.abs(self._means - stats.mean) <= mean_slack * (
            self._stds + stats.std
        )
        hits = np.nonzero(overlap | nearby)[0]
        return [self._keys[i] for i in hits if self._keys[i] not in exclude]

    def query_scored(
        self,
        stats: NumericStats,
        k: int | None = None,
        threshold: float | None = None,
        exclude: set[str] | None = None,
    ) -> list[str]:
        """Keys ranked by the exact ``numeric_overlap`` measure, vectorised.

        The score replicates :func:`~repro.relational.stats.numeric_overlap`
        (0.7 · range-overlap + 0.3 · mean proximity) over the whole index in
        one numpy pass, so a capped (``k``) or thresholded (``threshold``)
        probe loses nothing relative to scoring every pair one by one.
        """
        if not self._keys:
            return []
        if self._mins is None:
            self.build()
        exclude = exclude or set()
        lo = np.maximum(self._mins, stats.minimum)
        hi = np.minimum(self._maxs, stats.maximum)
        domains = self._maxs - self._mins
        smaller = np.minimum(domains, stats.maximum - stats.minimum)
        overlap = np.where(
            hi < lo,
            0.0,
            np.where(
                smaller == 0.0,
                1.0,
                (hi - lo) / np.where(smaller == 0.0, 1.0, smaller),
            ),
        )
        spread = np.maximum(self._stds + stats.std, 1e-9)
        proximity = np.exp(-np.abs(self._means - stats.mean) / spread)
        score = 0.7 * overlap + 0.3 * proximity
        order = np.argsort(-score, kind="stable")
        if threshold is not None:
            order = order[score[order] >= threshold]
        hits = [self._keys[i] for i in order if self._keys[i] not in exclude]
        return hits if k is None else hits[:k]
