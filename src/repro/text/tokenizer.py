"""Tokenisation for documents, cell values, and schema names."""

from __future__ import annotations

import re

# Words: letter-initiated alphanumerics, allowing internal hyphens and
# apostrophes ("drug-drug", "don't"); numbers kept as separate tokens so the
# pipeline's POS filter can drop them.
_TOKEN_RE = re.compile(r"[A-Za-z][A-Za-z0-9'\-]*|[0-9]+(?:\.[0-9]+)?")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("Pemetrexed inhibits thymidylate synthase.")
    ['pemetrexed', 'inhibits', 'thymidylate', 'synthase']
    """
    tokens = _TOKEN_RE.findall(text)
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = _SENTENCE_RE.split(text.strip())
    return [p for p in (part.strip() for part in parts) if p]


def name_trigrams(name: str) -> list[str]:
    """Character trigrams of a normalised schema identifier.

    The identifier is lowercased and token-joined first, so ``DrugKey`` and
    ``drug_key`` produce the same grams. Names shorter than three characters
    yield the whole normalised name as a single gram, keeping the output
    non-empty for any non-blank identifier.

    >>> name_trigrams("DrugKey")
    ['dru', 'rug', 'ug ', 'g k', ' ke', 'key']
    """
    normalised = " ".join(split_identifier(name))
    if len(normalised) < 3:
        return [normalised] if normalised else []
    return [normalised[i : i + 3] for i in range(len(normalised) - 2)]


def split_identifier(name: str) -> list[str]:
    """Tokenise a schema identifier such as ``Enzyme_Targets`` or ``drugKey``.

    Handles snake_case, kebab-case, CamelCase and whitespace.

    >>> split_identifier("Enzyme_Targets")
    ['enzyme', 'targets']
    >>> split_identifier("drugKey")
    ['drug', 'key']
    """
    pieces = re.split(r"[\s_\-./]+", name.strip())
    tokens: list[str] = []
    for piece in pieces:
        if not piece:
            continue
        tokens.extend(t.lower() for t in _CAMEL_RE.split(piece) if t)
    return tokens
