"""Document -> column-style bag-of-words transformation (paper §3, Figure 2).

Each document goes through tokenisation, stop-word removal, POS filtering
(retain nouns), and lemmatisation; finally terms that occur in a large
fraction of documents are dropped as non-discriminative. The output
:class:`BagOfWords` is the unified column-style format consumed by the
profiler for both modalities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.text.lemmatizer import lemmatize
from repro.text.pos import is_probable_noun
from repro.text.stopwords import is_stopword
from repro.text.tokenizer import tokenize

#: Sentinel distinguishing "never decided" from a memoised None (filtered).
_MISSING = object()


@dataclass
class BagOfWords:
    """Column-style representation of a document (or a column's values)."""

    terms: Counter = field(default_factory=Counter)

    @property
    def vocabulary(self) -> set[str]:
        return set(self.terms)

    @property
    def total(self) -> int:
        return sum(self.terms.values())

    def top(self, n: int) -> list[str]:
        """The ``n`` most frequent terms (ties broken alphabetically)."""
        return [t for t, _ in sorted(self.terms.items(), key=lambda kv: (-kv[1], kv[0]))[:n]]

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term in self.terms

    def __iter__(self):
        return iter(self.terms)


class DocumentPipeline:
    """NLP-based format transformation from raw text to :class:`BagOfWords`.

    Parameters
    ----------
    max_doc_frequency:
        Terms appearing in more than this fraction of documents (measured on
        the corpus passed to :meth:`fit`) are filtered out as
        non-discriminative, per paper §3.
    keep_pos_nouns:
        Apply the heuristic noun filter. Disabled for metadata strings, where
        every token is content-bearing.
    """

    #: Bound on the per-pipeline token -> lemma-decision memo.
    TERM_MEMO_MAX = 1 << 16

    def __init__(self, max_doc_frequency: float = 0.5, keep_pos_nouns: bool = True):
        if not 0.0 < max_doc_frequency <= 1.0:
            raise ValueError(f"max_doc_frequency must be in (0, 1], got {max_doc_frequency}")
        self.max_doc_frequency = max_doc_frequency
        self.keep_pos_nouns = keep_pos_nouns
        self._common_terms: set[str] = set()
        self._num_docs_fit = 0
        self._pinned = False
        #: token -> lemma (or None when filtered); the stopword/POS/lemma
        #: decision is a pure function of the token, so it is shared across
        #: documents and fits of this pipeline instance.
        self._term_memo: dict[str, str | None] = {}

    # ------------------------------------------------------------------ fit

    def pin_filter(self, common_terms: set[str], num_docs: int) -> "DocumentPipeline":
        """Pin the df filter to an externally-computed term set.

        A sharded lake in global-stats mode computes the "occurs in a large
        fraction of documents" filter over the *whole* corpus and pins each
        shard's pipeline with the result, so shard-local :meth:`fit` /
        :meth:`fit_transform` calls keep the corpus-wide filter instead of
        re-deriving it from the shard's own documents. While pinned, fitting
        is a no-op for the filter (transforms still run normally);
        :meth:`unpin_filter` restores self-fitting behaviour.
        """
        self._common_terms = set(common_terms)
        self._num_docs_fit = num_docs
        self._pinned = True
        return self

    def unpin_filter(self) -> None:
        """Forget a pinned filter; the next :meth:`fit` re-derives it."""
        self._pinned = False

    @property
    def common_terms(self) -> frozenset[str]:
        """The df-filtered ("too common") term set of the current filter."""
        return frozenset(self._common_terms)

    @property
    def num_docs_fit(self) -> int:
        """Corpus size the current filter was derived from (or pinned with)."""
        return self._num_docs_fit

    def fit(self, corpus: Iterable[str]) -> "DocumentPipeline":
        """Learn the corpus-wide document frequencies used for term filtering."""
        if self._pinned:
            return self
        doc_freq: Counter = Counter()
        n = 0
        for text in corpus:
            n += 1
            doc_freq.update(set(self._base_terms(text)))
        self._num_docs_fit = n
        # "Occurs in a large number of documents" is only meaningful with a
        # corpus of some size; on a handful of documents the filter would
        # delete the entire vocabulary.
        if n >= 5:
            cutoff = self.max_doc_frequency * n
            self._common_terms = {t for t, df in doc_freq.items() if df > cutoff}
        else:
            self._common_terms = set()
        return self

    # ------------------------------------------------------------ transform

    def transform(self, text: str) -> BagOfWords:
        """Transform one document into its bag-of-words representation."""
        terms = [t for t in self._base_terms(text) if t not in self._common_terms]
        return BagOfWords(Counter(terms))

    def fit_transform(self, corpus: list[str]) -> list[BagOfWords]:
        """Fit the df filter and transform the corpus in one pass.

        Equivalent to ``fit(corpus)`` followed by ``transform`` per document
        (same filter, same bags), but each document is tokenised/lemmatised
        once instead of twice — the batch fit path of the profiler runs on
        this.
        """
        base = [self._base_terms(text) for text in corpus]
        if not self._pinned:
            doc_freq: Counter = Counter()
            for terms in base:
                doc_freq.update(set(terms))
            self._num_docs_fit = len(base)
            if len(base) >= 5:
                cutoff = self.max_doc_frequency * len(base)
                self._common_terms = {t for t, df in doc_freq.items() if df > cutoff}
            else:
                self._common_terms = set()
        return [
            BagOfWords(Counter(t for t in terms if t not in self._common_terms))
            for terms in base
        ]

    # ----------------------------------------------------------- persistence

    def __getstate__(self) -> dict:
        # The term memo is a pure-function cache; rebuilt on demand.
        state = dict(self.__dict__)
        state["_term_memo"] = {}
        return state

    def persistent_state(self) -> dict:
        return {
            "max_doc_frequency": self.max_doc_frequency,
            "keep_pos_nouns": self.keep_pos_nouns,
            "common_terms": sorted(self._common_terms),
            "num_docs_fit": self._num_docs_fit,
            "pinned": self._pinned,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "DocumentPipeline":
        pipeline = cls(
            max_doc_frequency=state["max_doc_frequency"],
            keep_pos_nouns=state["keep_pos_nouns"],
        )
        pipeline._common_terms = set(state["common_terms"])
        pipeline._num_docs_fit = state["num_docs_fit"]
        pipeline._pinned = state["pinned"]
        return pipeline

    # ------------------------------------------------------------ internals

    def _base_terms(self, text: str) -> list[str]:
        """Tokenise + stopword-filter + POS-filter + lemmatise (memoised)."""
        memo = self._term_memo
        missing = _MISSING
        out = []
        for token in tokenize(text):
            lemma = memo.get(token, missing)
            if lemma is missing:
                lemma = self._term_decision(token)
                if len(memo) < self.TERM_MEMO_MAX:
                    memo[token] = lemma
            if lemma is not None:
                out.append(lemma)
        return out

    def _term_decision(self, token: str) -> str | None:
        """The per-token filter chain; None when the token is dropped."""
        if is_stopword(token):
            return None
        if self.keep_pos_nouns and not is_probable_noun(token):
            return None
        lemma = lemmatize(token)
        if len(lemma) < 2:
            return None
        return lemma
