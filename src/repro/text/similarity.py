"""Set and string similarity measures used throughout CMDL.

Includes the two Jaccard variants central to the paper (symmetric similarity
vs the asymmetric *set containment* CMDL adopts, §3), plus the Jaro and
Jaro-Winkler string metrics used by the entity-matching baselines and the
schema-name similarity used for PK-FK and unionability.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Collection

from repro.text.tokenizer import split_identifier


def jaccard(a: Collection, b: Collection) -> float:
    """Symmetric Jaccard similarity |A ∩ B| / |A ∪ B| (Aurum/D3L's measure)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def jaccard_containment(a: Collection, b: Collection) -> float:
    """Asymmetric Jaccard set containment |A ∩ B| / |A| (CMDL's measure).

    Measured *from* ``a`` (e.g. the document side) *into* ``b`` (the column
    side); robust when the two domain sizes are very different (paper §3).
    """
    sa = set(a)
    if not sa:
        return 0.0
    return len(sa & set(b)) / len(sa)


def jaro(s1: str, s2: str) -> float:
    """Jaro string similarity in [0, 1]."""
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if not len1 or not len2:
        return 0.0
    match_window = max(len1, len2) // 2 - 1
    match_window = max(match_window, 0)
    s1_matches = [False] * len1
    s2_matches = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        lo = max(0, i - match_window)
        hi = min(len2, i + match_window + 1)
        for j in range(lo, hi):
            if s2_matches[j] or s2[j] != ch:
                continue
            s1_matches[i] = s2_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matches[i]:
            continue
        while not s2_matches[k]:
            k += 1
        if s1[i] != s2[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len1 + matches / len2 + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted for common prefixes (<= 4 chars)."""
    base = jaro(s1, s2)
    prefix = 0
    for c1, c2 in zip(s1[:4], s2[:4]):
        if c1 != c2:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def name_similarity(name1: str, name2: str) -> float:
    """Schema-name similarity: token Jaccard blended with Jaro-Winkler.

    Identifier names like ``drug_id`` vs ``DrugKey`` match partially on tokens
    and strongly on character shape; the blend (token-set Jaccard and
    Jaro-Winkler on the normalised string, averaged) is robust to both naming
    conventions.
    """
    t1, t2 = split_identifier(name1), split_identifier(name2)
    token_score = jaccard(t1, t2)
    string_score = jaro_winkler(" ".join(t1), " ".join(t2))
    return 0.5 * token_score + 0.5 * string_score


@lru_cache(maxsize=65536)
def cached_name_similarity(name1: str, name2: str) -> float:
    """Memoised :func:`name_similarity` for the discovery hot paths.

    Schema names repeat heavily across a lake's tables, and the measure is
    a pure function of the two strings, so one process-wide cache serves
    every discovery module (PK-FK, unionability) at once.
    """
    return name_similarity(name1, name2)
