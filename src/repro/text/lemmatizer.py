"""Rule-based English lemmatiser (noun-oriented).

The pipeline only keeps nouns, so the lemmatiser focuses on plural and
inflectional noun morphology plus a small irregular table. Rules follow the
standard order-sensitive suffix-rewrite approach (as in the Porter/NLTK
WordNet lemmatiser fallback behaviour for nouns).
"""

from __future__ import annotations

_IRREGULAR = {
    "children": "child",
    "men": "man",
    "women": "woman",
    "people": "person",
    "mice": "mouse",
    "feet": "foot",
    "teeth": "tooth",
    "geese": "goose",
    "data": "datum",
    "criteria": "criterion",
    "phenomena": "phenomenon",
    "analyses": "analysis",
    "bases": "basis",
    "diagnoses": "diagnosis",
    "hypotheses": "hypothesis",
    "indices": "index",
    "matrices": "matrix",
    "vertices": "vertex",
}

# Words ending in 's' that are not plural.
_S_FINAL_SINGULARS = frozenset(
    """
    bus gas lens news series species analysis basis diagnosis synthesis
    thesis virus status corpus census focus bonus campus crisis axis
    diabetes rabies measles kudos pancreas atlas canvas alias bias iris
    """.split()
)


def lemmatize(token: str) -> str:
    """Return the lemma (singular form) of a lowercased noun token.

    >>> lemmatize("enzymes")
    'enzyme'
    >>> lemmatize("interactions")
    'interaction'
    >>> lemmatize("studies")
    'study'
    >>> lemmatize("synthesis")
    'synthesis'
    """
    if token in _IRREGULAR:
        return _IRREGULAR[token]
    if token in _S_FINAL_SINGULARS or len(token) <= 3:
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("sses") or token.endswith("shes") or token.endswith("ches"):
        return token[:-2]
    if token.endswith("xes") or token.endswith("zes"):
        return token[:-2]
    if token.endswith("ves") and len(token) > 4:
        # knives -> knife, but leaves "curves" -> "curve" handled by final 's'
        stem = token[:-3]
        if stem.endswith(("i", "l", "r", "a")):  # knife, wolf/shelf, scarf, leaf
            return stem + ("fe" if stem.endswith("i") else "f")
        return token[:-1]
    if token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        return token
    if token.endswith("s"):
        return token[:-1]
    return token
