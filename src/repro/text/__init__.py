"""NLP substrate: the document-transformation pipeline of CMDL (paper §3).

CMDL converts each unstructured document into a column-style bag of words via
tokenisation, stop-word removal, part-of-speech filtering (keep nouns), and
lemmatisation, then drops non-discriminative high-document-frequency terms.
The paper uses Gensim/NLTK for this; we implement an equivalent rule-based
pipeline so the system is fully self-contained.
"""

from repro.text.tokenizer import tokenize, sentences
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.pos import is_probable_noun
from repro.text.lemmatizer import lemmatize
from repro.text.pipeline import DocumentPipeline, BagOfWords
from repro.text.similarity import (
    jaccard,
    jaccard_containment,
    jaro,
    jaro_winkler,
    name_similarity,
)

__all__ = [
    "tokenize",
    "sentences",
    "STOPWORDS",
    "is_stopword",
    "is_probable_noun",
    "lemmatize",
    "DocumentPipeline",
    "BagOfWords",
    "jaccard",
    "jaccard_containment",
    "jaro",
    "jaro_winkler",
    "name_similarity",
]
