"""Heuristic part-of-speech filtering.

The CMDL pipeline keeps only noun terms (paper §3). A full statistical POS
tagger is out of scope and unnecessary: for the discovery task, what matters
is dropping the verb/adjective/adverb/function-word bulk so that the bag of
words concentrates on content-bearing nouns (drug names, enzyme names, place
names, column-value vocabulary). We implement the suffix + closed-class
heuristics classically used for unknown-word POS guessing, which work well for
this purpose and are fully deterministic.
"""

from __future__ import annotations

# Closed-class non-noun words common in technical prose and not always caught
# by the stop-word list.
_NON_NOUN_WORDS = frozenset(
    """
    is are was were be been being have has had do does did can could may
    might must shall should will would inhibit inhibits inhibited increase
    increases increased decrease decreases decreased cause causes caused
    target targets targeted show shows showed found find finds use uses used
    include includes included contain contains contained suggest suggests
    suggested report reports reported associated related against active
    severe greater larger smaller higher lower novel new old known unknown
    several many much other another same different such very more most less
    least
    """.split()
)

# Suffixes that strongly indicate verbs, adverbs, or adjectives. Plain "-ed"
# is deliberately NOT here: domain nouns such as drug names (pemetrexed)
# end in -ed, and losing them would destroy the discovery signal; common
# participles are caught by the closed-class list and "-ated"/"-ized" below.
_NON_NOUN_SUFFIXES = (
    "ly",     # adverbs: rapidly, severely
    "ing",    # gerunds/participles: targeting, developing
    "ated",   # participles: associated, elevated
    "ized",   # participles: characterized
    "ised",   # participles: characterised
    "ive",    # adjectives: active, effective
    "ous",    # adjectives: dangerous, aqueous
    "able",   # adjectives: capable
    "ible",   # adjectives: possible
    "ful",    # adjectives: useful
    "less",   # adjectives: harmless
    "est",    # superlatives: largest
)

# Suffixes that strongly indicate nouns and override the non-noun suffixes
# (e.g. "-tion" contains no blocked suffix but "reduction" matters; "-ase"
# catches enzymes like reductase/synthase which end in neither list).
_NOUN_SUFFIXES = (
    "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ship", "ism",
    "ase", "ine", "ide", "ate", "ol", "gen", "cyte", "emia", "itis", "oma",
    "er", "or", "ist", "age", "ery", "ure",
)


def is_probable_noun(token: str) -> bool:
    """Heuristically decide whether ``token`` (lowercased) is a noun.

    Numbers are rejected; capitalisation is not available post-lowercasing so
    the decision rests on closed-class membership and suffix morphology.
    Unknown words with neutral morphology default to *noun*, which matches the
    behaviour needed for domain terms (drug names, gene symbols, place names).
    """
    if not token or token[0].isdigit():
        return False
    if token in _NON_NOUN_WORDS:
        return False
    for suffix in _NOUN_SUFFIXES:
        if token.endswith(suffix) and len(token) > len(suffix) + 1:
            return True
    for suffix in _NON_NOUN_SUFFIXES:
        if token.endswith(suffix) and len(token) > len(suffix) + 1:
            return False
    return True
