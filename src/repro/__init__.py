"""repro: full reproduction of CMDL (VLDB 2023).

CMDL -- Cross Modal Data Discovery over Structured and Unstructured Data
Lakes (Eltabakh, Kunjir, Elmagarmid, Ahmad; arXiv:2306.00932).

Quickstart::

    from repro import CMDL, Q, generate_pharma_lake

    generated = generate_pharma_lake()
    engine = CMDL().fit(generated.lake)
    docs = engine.discover(Q.content_search("thymidylate synthase"))
    tables = engine.discover(Q.cross_modal(docs[1], top_n=3))
    joinable = engine.discover(Q.pkfk(tables[1], top_n=2))

    # or as one declarative pipeline / an SRQL string:
    engine.discover(Q.content_search("thymidylate synthase")
                      .cross_modal(top_n=3).pkfk(top_n=2))
    engine.discover("SELECT * FROM lake WHERE joinable('drugs') TOP 2")
"""

from repro.core.system import CMDL, CMDLConfig
from repro.core.session import LakeSession, open_lake
from repro.core.sharding import ShardedLakeSession, ShardRouter
from repro.core.discovery import DiscoveryEngine, DiscoveryResultSet
from repro.core.srql import Q, parse_srql, to_srql
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Column, Table
from repro.serve import LakeServer
from repro.lakes import (
    generate_mlopen_lake,
    generate_pharma_lake,
    generate_ukopen_lake,
)

__version__ = "1.0.0"

__all__ = [
    "CMDL",
    "CMDLConfig",
    "LakeServer",
    "LakeSession",
    "ShardedLakeSession",
    "ShardRouter",
    "open_lake",
    "Q",
    "parse_srql",
    "to_srql",
    "DiscoveryEngine",
    "DiscoveryResultSet",
    "DataLake",
    "Document",
    "Column",
    "Table",
    "generate_pharma_lake",
    "generate_ukopen_lake",
    "generate_mlopen_lake",
    "__version__",
]
