"""repro: full reproduction of CMDL (VLDB 2023).

CMDL -- Cross Modal Data Discovery over Structured and Unstructured Data
Lakes (Eltabakh, Kunjir, Elmagarmid, Ahmad; arXiv:2306.00932).

Quickstart::

    from repro import CMDL, generate_pharma_lake

    generated = generate_pharma_lake()
    engine = CMDL().fit(generated.lake)
    docs = engine.content_search("thymidylate synthase", mode="text")
    tables = engine.cross_modal_search(docs[1], top_n=3)
    joinable = engine.pkfk(tables[1], top_n=2)
"""

from repro.core.system import CMDL, CMDLConfig
from repro.core.discovery import DiscoveryEngine, DiscoveryResultSet
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Column, Table
from repro.lakes import (
    generate_mlopen_lake,
    generate_pharma_lake,
    generate_ukopen_lake,
)

__version__ = "1.0.0"

__all__ = [
    "CMDL",
    "CMDLConfig",
    "DiscoveryEngine",
    "DiscoveryResultSet",
    "DataLake",
    "Document",
    "Column",
    "Table",
    "generate_pharma_lake",
    "generate_ukopen_lake",
    "generate_mlopen_lake",
    "__version__",
]
