"""Domain vocabularies for the synthetic lakes.

Each domain provides entity-name generators (drugs, enzymes, places, ...)
and sentence templates. Names are composed from domain-plausible stems and
suffixes so that (a) they are unique enough for keyword search to work where
the paper says it works (Pharma drug names, Benchmark 1B) and (b) they share
subword structure so embedding similarity behaves like it does on real data
(e.g. all enzymes end in '-ase').
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng

# --------------------------------------------------------------------------
# Pharma building blocks
# --------------------------------------------------------------------------

_DRUG_STEMS = [
    "peme", "metho", "fluoro", "cis", "oxa", "carbo", "doce", "pacli",
    "gemci", "irino", "eto", "vin", "doxo", "epi", "ida", "mito", "ble",
    "capeci", "tega", "ralti", "lome", "tri", "clo", "flu", "cyta", "deci",
    "aza", "neva", "zido", "lami", "stavu", "tenofo", "abaca", "efavi",
    "ritona", "saquina", "indina", "ampre", "ataza", "dolute", "ralte",
]
_DRUG_SUFFIXES = [
    "trexed", "trexate", "uracil", "platin", "taxel", "tabine", "tecan",
    "poside", "blastine", "rubicin", "mycin", "citabine", "fur", "titrexed",
    "zolamide", "phosphamide", "darabine", "citidine", "rapine", "vudine",
    "vir", "navir", "gravir", "mab", "nib", "zumab", "ximab",
]
_ENZYME_STEMS = [
    "thymidylate", "dihydrofolate", "ribonucleotide", "adenosine",
    "cytidine", "guanylate", "purine", "pyrimidine", "folate", "glutamate",
    "aspartate", "serine", "tyrosine", "histidine", "alanine", "carbonic",
    "glucose", "lactate", "pyruvate", "citrate", "malate", "fumarate",
    "succinate", "acetyl", "methyl", "phospho", "glyco", "lipo", "amino",
    "carboxy", "hydroxy", "nucleoside", "xanthine", "uridine", "inosine",
]
_ENZYME_KINDS = [
    "synthase", "synthetase", "reductase", "kinase", "mutase", "oxidase",
    "transferase", "hydrolase", "isomerase", "ligase", "dehydrogenase",
    "phosphatase", "carboxylase", "anhydrase", "esterase", "peptidase",
]
_CONDITIONS = [
    "pancreatic cancer", "breast cancer", "lung carcinoma", "leukemia",
    "lymphoma", "melanoma", "colorectal cancer", "ovarian cancer",
    "hypertension", "diabetes", "arthritis", "asthma", "epilepsy",
    "depression", "anemia", "hepatitis", "influenza", "tuberculosis",
    "malaria", "osteoporosis", "glaucoma", "psoriasis", "migraine",
]
_EFFECTS = [
    "bone marrow suppression", "peripheral neuropathy", "nausea",
    "hepatotoxicity", "nephrotoxicity", "cardiotoxicity", "fatigue",
    "immune suppression", "hair loss", "mucositis", "fever", "chills",
    "body aches", "rash", "anemia", "thrombocytopenia", "neutropenia",
]
_ACTIONS = ["inhibitor", "activator", "substrate", "antagonist", "agonist",
            "modulator", "blocker", "inducer"]

# --------------------------------------------------------------------------
# Government / open-data building blocks
# --------------------------------------------------------------------------

_PLACE_STEMS = [
    "ash", "bir", "brad", "bri", "cam", "can", "car", "ches", "dar", "der",
    "dur", "exe", "glou", "hamp", "here", "hull", "lan", "lee", "lei",
    "lin", "liver", "man", "new", "nor", "not", "oxf", "ply", "ports",
    "pres", "read", "shef", "south", "stoke", "sun", "swin", "wake",
    "war", "wig", "win", "wol", "wor", "york",
]
_PLACE_SUFFIXES = [
    "field", "ford", "ham", "ton", "bury", "chester", "mouth", "pool",
    "wich", "caster", "borough", "bridge", "minster", "gate", "well",
]
_DEPARTMENTS = [
    "education", "health", "transport", "housing", "environment", "justice",
    "treasury", "culture", "defence", "energy", "planning", "welfare",
]
_GOVT_METRICS = [
    "population", "budget", "expenditure", "income", "employment",
    "attendance", "enrollment", "capacity", "emissions", "incidents",
    "collisions", "complaints", "grants", "subsidies", "revenue",
]

#: Topical vocabulary per department: family tables carry programme columns
#: drawn from these pools and documents mention other words from the same
#: pool, so documents relate to their tables through topical (semantic)
#: proximity with only partial exact-keyword overlap — the regime of
#: Benchmark 1A where embedding signals beat keyword search (paper §6.1).
DEPARTMENT_TOPICS = {
    "education": ["school", "pupil", "teacher", "literacy", "classroom",
                  "curriculum", "tuition", "nursery", "exam", "truancy"],
    "health": ["hospital", "patient", "clinic", "nurse", "vaccination",
               "surgery", "ambulance", "ward", "screening", "obesity"],
    "transport": ["road", "bus", "rail", "cycling", "junction", "pothole",
                  "congestion", "timetable", "freight", "parking"],
    "housing": ["tenancy", "landlord", "homelessness", "dwelling", "rent",
                "mortgage", "eviction", "insulation", "lettings", "repairs"],
    "environment": ["recycling", "flooding", "wildlife", "litter", "parks",
                    "drainage", "air", "rivers", "woodland", "allotment"],
    "justice": ["court", "probation", "offender", "sentencing", "bail",
                "tribunal", "custody", "magistrate", "parole", "warrant"],
    "treasury": ["tax", "bond", "audit", "pension", "deficit", "levy",
                 "procurement", "inflation", "reserve", "valuation"],
    "culture": ["museum", "library", "theatre", "festival", "heritage",
                "gallery", "archive", "orchestra", "sculpture", "archives"],
    "defence": ["barracks", "regiment", "cadet", "veteran", "garrison",
                "reserve", "logistics", "drill", "armoury", "deployment"],
    "energy": ["turbine", "solar", "grid", "meter", "insulation", "biomass",
               "substation", "tariff", "storage", "hydrogen"],
    "planning": ["zoning", "permit", "greenbelt", "appeal", "survey",
                 "blueprint", "easement", "drainage", "facade", "plot"],
    "welfare": ["benefit", "claimant", "allowance", "foster", "carer",
                "disability", "safeguarding", "outreach", "voucher",
                "hardship"],
}

#: How prose refers to each metric — documents use these synonyms, so pure
#: keyword search cannot match the column names (the semantic gap that
#: defeats elastic search on Benchmark 1A, paper §6.1).
GOVT_METRIC_SYNONYMS = {
    "population": "residents",
    "budget": "funding",
    "expenditure": "spending",
    "income": "earnings",
    "employment": "jobs",
    "attendance": "turnout",
    "enrollment": "admissions",
    "capacity": "headroom",
    "emissions": "pollution",
    "incidents": "occurrences",
    "collisions": "crashes",
    "complaints": "grievances",
    "grants": "awards",
    "subsidies": "support payments",
    "revenue": "receipts",
}

# --------------------------------------------------------------------------
# ML / open-portal building blocks
# --------------------------------------------------------------------------

_ML_THEMES = [
    "movies", "housing", "wine", "iris", "titanic", "loans", "churn",
    "sales", "weather", "stocks", "energy", "crops", "students", "flights",
    "taxis", "bikes", "songs", "books", "games", "restaurants",
]
_ML_FEATURES = [
    "score", "rating", "price", "area", "rooms", "age", "duration",
    "length", "width", "height", "weight", "volume", "count", "amount",
    "speed", "distance", "temperature", "humidity", "pressure", "quality",
]
_REVIEW_ADJECTIVES = [
    "gripping", "tedious", "brilliant", "forgettable", "charming",
    "clumsy", "haunting", "predictable", "inventive", "bloated",
    "tense", "warm", "hollow", "sharp", "uneven", "lively",
]
_REVIEW_NOUNS = [
    "plot", "performance", "dialogue", "pacing", "score", "cinematography",
    "ending", "premise", "cast", "direction", "screenplay", "tone",
]


@dataclass
class DomainVocabulary:
    """A bundle of entity-name pools for one domain."""

    name: str
    pools: dict[str, list[str]] = field(default_factory=dict)

    def pool(self, kind: str) -> list[str]:
        try:
            return self.pools[kind]
        except KeyError:
            raise KeyError(
                f"vocabulary {self.name!r} has no pool {kind!r}; "
                f"available: {sorted(self.pools)}"
            ) from None

    def sample(self, kind: str, n: int, rng) -> list[str]:
        """Sample ``n`` entries (with replacement if the pool is smaller)."""
        pool = self.pool(kind)
        rng = ensure_rng(rng)
        replace = n > len(pool)
        picks = rng.choice(len(pool), size=n, replace=replace)
        return [pool[i] for i in picks]


def _compose(stems: list[str], suffixes: list[str], count: int,
             rng: np.random.Generator) -> list[str]:
    """Compose ``count`` unique names as stem+suffix pairs."""
    names: list[str] = []
    seen: set[str] = set()
    attempts = 0
    while len(names) < count and attempts < count * 50:
        attempts += 1
        stem = stems[int(rng.integers(len(stems)))]
        suffix = suffixes[int(rng.integers(len(suffixes)))]
        name = stem + suffix
        if name not in seen:
            seen.add(name)
            names.append(name)
    # Deterministic fallback when the combinatorial space is exhausted.
    i = 0
    while len(names) < count:
        candidate = f"{stems[i % len(stems)]}{suffixes[i % len(suffixes)]}{i}"
        if candidate not in seen:
            seen.add(candidate)
            names.append(candidate)
        i += 1
    return names


def pharma_vocabulary(num_drugs: int = 400, num_enzymes: int = 150,
                      seed: int = 0) -> DomainVocabulary:
    """Pharmaceutical vocabulary: drugs, enzymes, genes, conditions, effects."""
    rng = ensure_rng(seed)
    drugs = [n.capitalize() for n in _compose(_DRUG_STEMS, _DRUG_SUFFIXES, num_drugs, rng)]
    enzyme_names = _compose(_ENZYME_STEMS, [" " + k for k in _ENZYME_KINDS],
                            num_enzymes, rng)
    enzymes = [n.capitalize() for n in enzyme_names]
    genes = [
        f"{e.split()[0][:4].upper()}{rng.integers(1, 30)}" for e in enzyme_names
    ]
    return DomainVocabulary(
        name="pharma",
        pools={
            "drug": drugs,
            "enzyme": enzymes,
            "gene": genes,
            "condition": list(_CONDITIONS),
            "effect": list(_EFFECTS),
            "action": list(_ACTIONS),
        },
    )


def govt_vocabulary(num_places: int = 300, seed: int = 0) -> DomainVocabulary:
    """Government open-data vocabulary: places, departments, metrics."""
    rng = ensure_rng(seed)
    places = [n.capitalize() for n in _compose(_PLACE_STEMS, _PLACE_SUFFIXES,
                                               num_places, rng)]
    return DomainVocabulary(
        name="govt",
        pools={
            "place": places,
            "department": list(_DEPARTMENTS),
            "metric": list(_GOVT_METRICS),
        },
    )


def ml_vocabulary(seed: int = 0) -> DomainVocabulary:
    """ML open-portal vocabulary: dataset themes, feature names, review text."""
    rng = ensure_rng(seed)
    titles = [
        f"{theme}-{rng.integers(100, 999)}" for theme in _ML_THEMES for _ in range(3)
    ]
    return DomainVocabulary(
        name="ml",
        pools={
            "theme": list(_ML_THEMES),
            "feature": list(_ML_FEATURES),
            "title": titles,
            "review_adjective": list(_REVIEW_ADJECTIVES),
            "review_noun": list(_REVIEW_NOUNS),
        },
    )
