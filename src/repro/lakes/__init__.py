"""Synthetic data-lake generators (the stand-ins for the paper's test suite).

The paper evaluates on three real lakes (Table 1): Pharma (DrugBank + ChEMBL
+ ChEBI tables with PubMed abstracts), UK-Open (government CSVs + synthetic
text), and ML-Open (Kaggle/OpenML CSVs + movie reviews). None are available
offline, so these generators synthesise lakes with the same *statistical
shape* — table/column/document counts (scaled), numeric-attribute fractions,
key-sharing join structure, skewed cardinalities (the mQCR knob), and
documents derived from table rows so that cross-modal ground truth is exact.

Every generator is fully seeded: the same seed yields byte-identical lakes
and ground truth across processes.
"""

from repro.lakes.vocab import DomainVocabulary, pharma_vocabulary, govt_vocabulary, ml_vocabulary
from repro.lakes.groundtruth import GroundTruth
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.ukopen import UKOpenLakeConfig, generate_ukopen_lake
from repro.lakes.mlopen import MLOpenLakeConfig, generate_mlopen_lake
from repro.lakes.synthesis import derive_unionable_tables

__all__ = [
    "DomainVocabulary",
    "pharma_vocabulary",
    "govt_vocabulary",
    "ml_vocabulary",
    "GroundTruth",
    "PharmaLakeConfig",
    "generate_pharma_lake",
    "UKOpenLakeConfig",
    "generate_ukopen_lake",
    "MLOpenLakeConfig",
    "generate_mlopen_lake",
    "derive_unionable_tables",
]
