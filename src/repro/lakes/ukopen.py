"""The UK-Open lake: government open-data CSVs + synthetic text documents.

Reproduces the shape of D3L's "Smaller Real" testbed as used by the paper:

* Table *families*: each family shares a schema theme (department x metric
  set) and a place-name key domain; variants differ by year, row subset, and
  synonym-renamed columns. Families define the unionability ground truth
  (Benchmark 3A, "from [15]").
* Join ground truth is *manually annotated* in the paper (Benchmark 2A) and
  notably does "not necessarily imply high syntactic overlap" (§6.2) — which
  is why every system scores poorly there. We reproduce this by starting
  from the true place-key joins and applying annotation noise (dropped true
  links + added semantic-only links).
* Synthetic text documents are generated from table rows with recorded
  links (Benchmark 1A, "synthetic" ground truth, mQCR ~0.05: short docs
  against wide place-name columns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lakes.base import GeneratedLake
from repro.lakes.groundtruth import (
    GroundTruth,
    brute_force_joinable_columns,
    noisy_manual_annotation,
)
from repro.lakes.vocab import govt_vocabulary
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table
from repro.utils.rng import ensure_rng

_KEY_COLUMN_NAMES = ["local_authority", "area_name", "place", "region", "district"]
_YEARS = ["2015", "2016", "2017", "2018", "2019", "2020", "2021"]


@dataclass
class UKOpenLakeConfig:
    """Scale knobs for the UK-Open lake (defaults ~10x below the paper)."""

    num_families: int = 12
    tables_per_family: int = 5
    rows_per_table: int = 60
    num_places: int = 200
    num_documents: int = 240
    noise_documents: int = 40
    annotation_miss_rate: float = 0.45
    annotation_spurious_rate: float = 0.25
    seed: int = 0


def _family_table(
    family_idx: int,
    variant: int,
    department: str,
    topics: list[str],
    metrics: list[str],
    places: list[str],
    rows: int,
    rng: np.random.Generator,
) -> Table:
    """One table of a family: place key + year + programme + metric columns.

    Every family table carries a topically coherent ``programme`` column
    drawn from the department's topic pool — the coherent column semantics
    that embeddings capture (paper §2.1) and that documents relate to.
    """
    key_name = _KEY_COLUMN_NAMES[variant % len(_KEY_COLUMN_NAMES)]
    picked_places = [places[i] for i in rng.choice(len(places), size=rows, replace=True)]
    data: dict[str, list[str]] = {
        key_name: picked_places,
        "year": [_YEARS[int(rng.integers(len(_YEARS)))] for _ in range(rows)],
        # Cell values carry *inflected* topic forms ("schools", "pupils
        # funding") while prose uses base forms: an out-of-box keyword index
        # cannot bridge the morphology, subword embeddings can.
        "programme": [
            f"{topics[int(rng.integers(len(topics)))]}s "
            f"{topics[int(rng.integers(len(topics)))]}ing scheme"
            for _ in range(rows)
        ],
    }
    for metric in metrics:
        data[metric] = [f"{rng.integers(10, 100000)}" for _ in range(rows)]
    name = f"{department}_{'_'.join(metrics[:1])}_{family_idx}_{variant}"
    return Table.from_dict(name, data)


def _generate_documents(
    cfg: UKOpenLakeConfig,
    families: dict[int, list[Table]],
    departments: dict[int, str],
    rng: np.random.Generator,
) -> tuple[list[Document], GroundTruth]:
    """Synthetic text with exact links to the tables that produced it."""
    from repro.lakes.vocab import DEPARTMENT_TOPICS, GOVT_METRIC_SYNONYMS

    gt = GroundTruth(task="doc_to_table")
    documents: list[Document] = []
    family_ids = sorted(families)
    for i in range(cfg.num_documents):
        fid = family_ids[int(rng.integers(len(family_ids)))]
        tables = families[fid]
        table = tables[int(rng.integers(len(tables)))]
        key_col = table.columns[0]
        place = key_col.values[int(rng.integers(len(key_col.values)))]
        place2 = key_col.values[int(rng.integers(len(key_col.values)))]
        place3 = key_col.values[int(rng.integers(len(key_col.values)))]
        metric_cols = [c for c in table.columns if c.dtype.is_numeric and c.name != "year"]
        metric = metric_cols[0].name if metric_cols else "budget"
        # Prose refers to the metric by its synonym and to the department by
        # topic words, never the column names: value overlap (places) and
        # topical semantics, not keywords, tie the document to its tables —
        # the regime where elastic search fails on 1A (paper §6.1).
        phrase = GOVT_METRIC_SYNONYMS.get(metric, metric)
        department = departments[fid]
        topics = DEPARTMENT_TOPICS[department]
        t1 = topics[int(rng.integers(len(topics)))]
        t2 = topics[int(rng.integers(len(topics)))]
        t3 = topics[int(rng.integers(len(topics)))]
        text = (
            f"Figures covering {place}, {place2} and {place3} point to a "
            f"shift in {phrase} this year. The {t1} {t2} scheme in {place} "
            f"is credited locally, while {place2} attributes its {phrase} "
            f"change to the {t3} programme."
        )
        doc = Document(
            doc_id=f"ukdoc:{i:05d}",
            title=f"Notes on {phrase} and {t1} trends",
            text=text,
            source="synthetic",
        )
        documents.append(doc)
        # The doc derives from one family: all family members mention the
        # same place domain and metrics, so all are related.
        for t in tables:
            gt.add(doc.doc_id, t.name)
        gt.query_cardinality[doc.doc_id] = len(set(text.lower().split()))
    for i in range(cfg.noise_documents):
        text = (
            "The committee reviewed procedural updates and agreed to "
            "publish consolidated guidance next quarter. No figures were "
            "included in the interim minutes."
        )
        documents.append(
            Document(
                doc_id=f"ukdoc:noise:{i:05d}",
                title=f"Committee minutes {i}",
                text=text,
                source="synthetic",
            )
        )
    return documents, gt


def generate_ukopen_lake(config: UKOpenLakeConfig | None = None) -> GeneratedLake:
    """Generate the UK-Open lake with Benchmarks 1A/2A/3A ground truth."""
    cfg = config or UKOpenLakeConfig()
    rng = ensure_rng(cfg.seed)
    vocab = govt_vocabulary(num_places=cfg.num_places, seed=cfg.seed)
    places = vocab.pool("place")
    all_departments = vocab.pool("department")
    all_metrics = vocab.pool("metric")

    lake = DataLake(name="uk_open")
    families: dict[int, list[Table]] = {}
    departments: dict[int, str] = {}
    union_gt = GroundTruth(task="union")

    for fid in range(cfg.num_families):
        department = all_departments[fid % len(all_departments)]
        departments[fid] = department
        metric_count = 2 + int(rng.integers(3))
        metrics = [all_metrics[i] for i in
                   rng.choice(len(all_metrics), size=metric_count, replace=False)]
        # Families use overlapping slices of the shared place pool so that
        # cross-family place joins exist (the 2A join search space).
        lo = int(rng.integers(0, max(1, len(places) - 120)))
        family_places = places[lo : lo + 120]
        from repro.lakes.vocab import DEPARTMENT_TOPICS

        tables = [
            _family_table(fid, v, department, DEPARTMENT_TOPICS[department],
                          metrics, family_places, cfg.rows_per_table, rng)
            for v in range(cfg.tables_per_family)
        ]
        families[fid] = tables
        for table in tables:
            lake.add_table(table)
        names = [t.name for t in tables]
        for t1 in names:
            for t2 in names:
                if t1 != t2:
                    union_gt.add(t1, t2)

    documents, doc_gt = _generate_documents(cfg, families, departments, rng)
    lake.add_documents(documents)
    for table in lake.tables:
        doc_gt.answer_cardinality[table.name] = max(
            (c.cardinality for c in table.columns), default=1
        )

    # True syntactic joins (place-key containment), then annotation noise.
    exact_join = brute_force_joinable_columns(lake, containment_threshold=0.5)
    spurious: dict[str, list[str]] = {}
    all_text_cols = [c.qualified_name for c in lake.columns if not c.dtype.is_numeric]
    for query in exact_join.queries:
        picks = rng.choice(len(all_text_cols), size=min(3, len(all_text_cols)),
                           replace=False)
        spurious[query] = [all_text_cols[i] for i in picks]
    join_gt = noisy_manual_annotation(
        exact_join,
        rng,
        miss_rate=cfg.annotation_miss_rate,
        spurious=spurious,
        spurious_rate=cfg.annotation_spurious_rate,
    )

    generated = GeneratedLake(
        lake=lake,
        collections={"govt": [t.name for t in lake.tables]},
    )
    generated.ground_truths["doc_to_table"] = doc_gt
    generated.ground_truths["syntactic_join"] = join_gt
    generated.ground_truths["union"] = union_gt
    return generated
