"""Ground-truth containers and brute-force generators.

Mirrors Table 2's "Ground Truth Generation" column: generator-recorded truth
(synthetic benchmarks), truth "from the database" (cross-references planted
by the lake generator), brute-force all-pairs set similarity (syntactic
joins), schema definitions (PK-FK), and simulated manual annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.catalog import DataLake
from repro.relational.table import Column
from repro.text.similarity import jaccard_containment


@dataclass
class GroundTruth:
    """Query DE -> relevant answer DEs, plus benchmark metadata.

    ``answers`` maps a query identifier (doc id, qualified column name, or
    table name depending on the task) to the set of relevant result
    identifiers. ``query_cardinality`` and ``answer_cardinality`` record the
    DE sizes needed to compute the paper's mQCR statistic.
    """

    task: str
    answers: dict[str, set[str]] = field(default_factory=dict)
    query_cardinality: dict[str, int] = field(default_factory=dict)
    answer_cardinality: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ mutation

    def add(self, query: str, answer: str) -> None:
        self.answers.setdefault(query, set()).add(answer)

    def merge(self, other: "GroundTruth") -> None:
        for query, answer_set in other.answers.items():
            self.answers.setdefault(query, set()).update(answer_set)
        self.query_cardinality.update(other.query_cardinality)
        self.answer_cardinality.update(other.answer_cardinality)

    # ------------------------------------------------------------- queries

    @property
    def queries(self) -> list[str]:
        """Queries with at least one true answer, deterministic order."""
        return sorted(q for q, a in self.answers.items() if a)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def relevant(self, query: str) -> set[str]:
        return self.answers.get(query, set())

    # ------------------------------------------------------------ statistics

    def average_answer_size(self) -> float:
        sizes = [len(self.answers[q]) for q in self.queries]
        return float(np.mean(sizes)) if sizes else 0.0

    def mqcr(self) -> float:
        """Median Query Cardinality Ratio over all ground-truth links.

        For a link q -> a, QCR = |q| / |a| using the recorded DE
        cardinalities (bag-of-words size for documents, distinct-value count
        for columns); the median over all links measures the skewness the
        paper uses to explain containment's advantage.
        """
        ratios = []
        for query in self.queries:
            qc = self.query_cardinality.get(query)
            if not qc:
                continue
            for answer in self.answers[query]:
                ac = self.answer_cardinality.get(answer)
                if ac:
                    ratios.append(min(1.0, qc / ac))
        return float(np.median(ratios)) if ratios else 0.0


# ----------------------------------------------------------------------
# Brute-force generators
# ----------------------------------------------------------------------


def brute_force_joinable_columns(
    lake: DataLake,
    containment_threshold: float = 0.5,
    min_distinct: int = 3,
    table_names: list[str] | None = None,
) -> GroundTruth:
    """All-pairs exact set-containment join ground truth (Benchmarks 2B/2C).

    Two text columns from distinct tables are joinable iff the containment
    in either direction reaches ``containment_threshold``. This is the
    "expensive all-pairs exact set similarity" the paper runs (§6.2), made
    feasible by our lake sizes. ``table_names`` restricts the search to one
    data collection (e.g. DrugBank only, per Benchmark 2B).
    """
    gt = GroundTruth(task="syntactic_join")
    scope = set(table_names) if table_names is not None else None
    columns = [
        c for c in lake.columns
        if not c.dtype.is_numeric and c.cardinality >= min_distinct
        and (scope is None or c.table_name in scope)
    ]
    for c in columns:
        gt.query_cardinality[c.qualified_name] = c.cardinality
        gt.answer_cardinality[c.qualified_name] = c.cardinality
    for i, a in enumerate(columns):
        for b in columns[i + 1 :]:
            if a.table_name == b.table_name:
                continue
            fwd = jaccard_containment(a.distinct_values, b.distinct_values)
            bwd = jaccard_containment(b.distinct_values, a.distinct_values)
            if max(fwd, bwd) >= containment_threshold:
                gt.add(a.qualified_name, b.qualified_name)
                gt.add(b.qualified_name, a.qualified_name)
    return gt


def pkfk_ground_truth_from_schema(
    pkfk_pairs: list[tuple[str, str]],
) -> GroundTruth:
    """PK-FK truth from schema definitions (Benchmark 2D, ChEMBL/ChEBI style).

    ``pkfk_pairs`` lists (pk_qualified_column, fk_qualified_column) links as
    declared by the generating schema.
    """
    gt = GroundTruth(task="pkfk")
    for pk, fk in pkfk_pairs:
        gt.add(pk, fk)
    return gt


def noisy_manual_annotation(
    gt: GroundTruth,
    rng: np.random.Generator,
    miss_rate: float = 0.2,
    spurious: dict[str, list[str]] | None = None,
    spurious_rate: float = 0.1,
) -> GroundTruth:
    """Simulate human annotation: drop some true links, add plausible ones.

    The paper's manually-annotated benchmarks (2A, 1C) have ground truth
    that "does not necessarily imply high syntactic overlap" (§6.2) — human
    annotators judge semantic relatedness, missing some mechanical overlaps
    and adding links no sketch can see. This transform reproduces that
    characteristic, which is what drags every system's accuracy down on 2A.
    """
    if not 0.0 <= miss_rate < 1.0:
        raise ValueError(f"miss_rate must be in [0, 1), got {miss_rate}")
    if not 0.0 <= spurious_rate <= 1.0:
        raise ValueError(f"spurious_rate must be in [0, 1], got {spurious_rate}")
    noisy = GroundTruth(task=gt.task)
    noisy.query_cardinality.update(gt.query_cardinality)
    noisy.answer_cardinality.update(gt.answer_cardinality)
    for query in gt.queries:
        kept = {a for a in gt.answers[query] if rng.random() >= miss_rate}
        for answer in kept:
            noisy.add(query, answer)
        if spurious and query in spurious:
            for candidate in spurious[query]:
                if rng.random() < spurious_rate:
                    noisy.add(query, candidate)
    return noisy


def record_column_cardinalities(gt: GroundTruth, columns: list[Column]) -> None:
    """Fill cardinality maps from live Column objects (for mQCR)."""
    for column in columns:
        gt.query_cardinality.setdefault(column.qualified_name, column.cardinality)
        gt.answer_cardinality.setdefault(column.qualified_name, column.cardinality)
