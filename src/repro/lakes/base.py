"""Common container for a generated lake and its ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lakes.groundtruth import GroundTruth
from repro.relational.catalog import DataLake


@dataclass
class GeneratedLake:
    """A synthetic lake bundled with every ground truth its benchmarks need.

    ``ground_truths`` is keyed by task name (e.g. ``"doc_to_table"``,
    ``"syntactic_join"``, ``"pkfk:drugbank"``, ``"union"``).
    ``collections`` groups table names by data collection (Table 1's rows).
    """

    lake: DataLake
    ground_truths: dict[str, GroundTruth] = field(default_factory=dict)
    collections: dict[str, list[str]] = field(default_factory=dict)
    pkfk_pairs: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    def ground_truth(self, task: str) -> GroundTruth:
        try:
            return self.ground_truths[task]
        except KeyError:
            raise KeyError(
                f"lake {self.lake.name!r} has no ground truth for task {task!r}; "
                f"available: {sorted(self.ground_truths)}"
            ) from None

    def tables_in(self, collection: str) -> list[str]:
        try:
            return self.collections[collection]
        except KeyError:
            raise KeyError(
                f"lake {self.lake.name!r} has no collection {collection!r}; "
                f"available: {sorted(self.collections)}"
            ) from None
