"""The Pharma lake: DrugBank + ChEMBL + ChEBI tables with PubMed abstracts.

Reproduces the statistical shape of the paper's Pharma test suite (Table 1):

* **DrugBank**-style CSV tables — mostly text, ~7% numeric attributes, and
  — deliberately — a few duplicated primary-key rows, because the paper
  attributes CMDL's reduced PK-FK precision on DrugBank to key duplicates
  ("a lack of enforcement of key constraints", §6.2).
* **ChEMBL**-style tables — ~41% numeric, with schema-declared PK-FK links.
* **ChEBI**-style tables — numeric keys only; all PK-FK constraints are on
  numeric columns (§6.2's explanation for Aurum/CMDL parity there).
* **PubMed** abstracts generated from the database rows themselves, so each
  abstract's doc->table ground truth is exact ("from the database",
  Benchmark 1B). Noise abstracts with no table links are added so that the
  number of queries is below the number of documents, as in Table 2.
* **DrugBank-Synthetic** union tables derived by projection/selection
  (Benchmark 3B).

FK columns sample a *subset* of PK values with repetition, which yields the
low mQCR / high-skew regime of Benchmark 2B where set containment beats
Jaccard similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lakes.base import GeneratedLake
from repro.lakes.groundtruth import (
    GroundTruth,
    brute_force_joinable_columns,
    pkfk_ground_truth_from_schema,
)
from repro.lakes.synthesis import derive_unionable_tables
from repro.lakes.vocab import pharma_vocabulary
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table
from repro.utils.rng import ensure_rng


@dataclass
class PharmaLakeConfig:
    """Scale knobs for the Pharma lake (defaults ~8x below the paper)."""

    num_drugs: int = 120
    num_enzymes: int = 60
    num_documents: int = 160
    noise_documents: int = 40
    interactions_rows: int = 200
    targets_rows: int = 180
    chembl_compounds: int = 150
    chebi_compounds: int = 80
    union_derived_per_base: int = 4
    duplicate_key_fraction: float = 0.05
    seed: int = 0


def _drug_id(i: int) -> str:
    return f"DB{i:05d}"


def _enzyme_id(i: int) -> str:
    return f"BE{i:07d}"


def _fk_sample(pk_values: list[str], n: int, rng: np.random.Generator,
               coverage: float = 0.5) -> list[str]:
    """Sample FK values from a subset of the PKs (with repetition).

    ``coverage`` controls which fraction of PK values ever appear as FKs;
    the result is fully contained in the PK column (containment 1.0) while
    its Jaccard similarity with the PK column stays low — the skew that
    separates CMDL from Aurum in Benchmarks 2B/2D.
    """
    pool_size = max(1, int(len(pk_values) * coverage))
    pool = [pk_values[i] for i in rng.choice(len(pk_values), size=pool_size,
                                             replace=False)]
    return [pool[i] for i in rng.integers(0, len(pool), size=n)]


def _build_drugbank(cfg: PharmaLakeConfig, vocab, rng) -> tuple[
    list[Table], list[tuple[str, str]], dict[str, dict]
]:
    """DrugBank tables, intended PK-FK pairs, and entity cross-references."""
    drugs = vocab.pool("drug")[: cfg.num_drugs]
    enzymes = vocab.pool("enzyme")[: cfg.num_enzymes]
    genes = vocab.pool("gene")[: cfg.num_enzymes]
    conditions = vocab.pool("condition")
    effects = vocab.pool("effect")
    actions = vocab.pool("action")

    drug_ids = [_drug_id(i + 1) for i in range(cfg.num_drugs)]
    enzyme_ids = [_enzyme_id(i + 1) for i in range(cfg.num_enzymes)]
    drug_condition = {
        d: conditions[int(rng.integers(len(conditions)))] for d in drug_ids
    }

    # drugs table, with a few duplicated key rows (paper §6.2).
    dup = max(1, int(cfg.num_drugs * cfg.duplicate_key_fraction))
    dup_idx = rng.choice(cfg.num_drugs, size=dup, replace=False).tolist()
    ids_col, names_col, desc_col, type_col, year_col = [], [], [], [], []
    for i, (did, name) in enumerate(zip(drug_ids, drugs)):
        repeats = 2 if i in dup_idx else 1
        for _ in range(repeats):
            ids_col.append(did)
            names_col.append(name)
            desc_col.append(
                f"{name} is a chemotherapy drug used in the treatment of "
                f"{drug_condition[did]}."
            )
            type_col.append("small molecule" if rng.random() < 0.8 else "biotech")
            year_col.append(str(int(rng.integers(1960, 2023))))
    drugs_table = Table.from_dict(
        "drugs",
        {"drug_id": ids_col, "name": names_col, "description": desc_col,
         "type": type_col, "approval_year": year_col},
    )

    enzymes_table = Table.from_dict(
        "enzymes",
        {
            "enzyme_id": enzyme_ids,
            "name": enzymes,
            "gene": genes,
            "organism": ["Humans"] * cfg.num_enzymes,
        },
    )

    def _distractor_values(n: int, mix: float = 0.42) -> list[str]:
        """Column values mixing drug ids (sub-containment-threshold) with junk.

        Distractor columns have moderate Jaccard similarity with the key
        columns but containment below the join threshold: under Jaccard
        ranking (Aurum/D3L) they displace the true low-coverage FK links,
        under containment ranking (CMDL) they stay below every true link —
        the mechanism behind Table 3's Benchmark-2B gap.
        """
        out = []
        for i in range(n):
            if rng.random() < mix:
                out.append(drug_ids[int(rng.integers(len(drug_ids)))])
            else:
                out.append(f"XX{int(rng.integers(10_000, 99_999))}-{i}")
        return out

    # enzyme_targets: which drug targets which enzyme.
    target_rows = cfg.targets_rows
    target_drug = _fk_sample(drug_ids, target_rows, rng, coverage=0.22)
    target_enzyme = [enzymes[int(rng.integers(len(enzymes)))] for _ in range(target_rows)]
    enzyme_targets = Table.from_dict(
        "enzyme_targets",
        {
            "id": [_enzyme_id(5000 + i) for i in range(target_rows)],
            "target": target_enzyme,
            "action": [("yes" if rng.random() < 0.7 else "unknown") for _ in range(target_rows)],
            "drug_key": target_drug,
        },
    )

    inter_rows = cfg.interactions_rows
    inter_1 = _fk_sample(drug_ids, inter_rows, rng, coverage=0.30)
    inter_2 = _fk_sample(drug_ids, inter_rows, rng, coverage=0.28)
    inter_effects = [
        f"may increase the risk of {effects[int(rng.integers(len(effects)))]} "
        f"such as {effects[int(rng.integers(len(effects)))]}"
        for _ in range(inter_rows)
    ]
    drug_interactions = Table.from_dict(
        "drug_interactions",
        {"drug_1": inter_1, "drug_2": inter_2, "effect": inter_effects},
    )

    cond_rows = cfg.num_drugs
    cond_drug = _fk_sample(drug_ids, cond_rows, rng, coverage=0.20)
    drug_conditions = Table.from_dict(
        "drug_conditions",
        {
            "drug_id": cond_drug,
            "condition": [drug_condition[d] for d in cond_drug],
            "phase": [str(int(rng.integers(1, 5))) for _ in range(cond_rows)],
        },
    )

    dose_rows = cfg.num_drugs
    dose_drug = _fk_sample(drug_ids, dose_rows, rng, coverage=0.25)
    drug_dosages = Table.from_dict(
        "drug_dosages",
        {
            "drug_id": dose_drug,
            "form": [("tablet" if rng.random() < 0.5 else "injection")
                     for _ in range(dose_rows)],
            "strength_mg": [f"{rng.integers(5, 500)}" for _ in range(dose_rows)],
            "batch_code": _distractor_values(dose_rows),
        },
    )

    manufacturers = [
        f"{vocab.pool('drug')[i][:5]} Pharma"
        for i in range(0, min(40, cfg.num_drugs), 2)
    ]
    manufacturer_ids = [f"MF{i:04d}" for i in range(len(manufacturers))]
    manufacturers_table = Table.from_dict(
        "manufacturers",
        {
            "manufacturer_id": manufacturer_ids,
            "company": manufacturers,
            "country": [
                ["USA", "Germany", "Switzerland", "UK", "Japan"][int(rng.integers(5))]
                for _ in manufacturers
            ],
        },
    )

    dm_rows = cfg.num_drugs
    drug_manufacturers = Table.from_dict(
        "drug_manufacturers",
        {
            "drug_id": _fk_sample(drug_ids, dm_rows, rng, coverage=0.35),
            "manufacturer_id": _fk_sample(manufacturer_ids, dm_rows, rng, coverage=0.9),
        },
    )

    atc_rows = cfg.num_drugs
    atc_codes = Table.from_dict(
        "atc_codes",
        {
            "drug_id": _fk_sample(drug_ids, atc_rows, rng, coverage=0.30),
            "audit_ref": _distractor_values(atc_rows),
            "atc_code": [
                f"L{rng.integers(1, 5)}{chr(65 + rng.integers(6))}"
                f"{chr(65 + rng.integers(6))}{rng.integers(1, 99):02d}"
                for _ in range(atc_rows)
            ],
            "level": [str(int(rng.integers(1, 6))) for _ in range(atc_rows)],
        },
    )

    ref_rows = cfg.num_drugs
    ref_drug = _fk_sample(drug_ids, ref_rows, rng, coverage=0.22)
    drug_by_id = dict(zip(drug_ids, drugs))
    references = Table.from_dict(
        "literature_references",
        {
            "ref_id": [f"REF{i:05d}" for i in range(ref_rows)],
            "drug_id": ref_drug,
            "pubmed_id": [str(int(rng.integers(10_000_000, 35_000_000)))
                          for _ in range(ref_rows)],
            "legacy_code": _distractor_values(ref_rows),
            "title": [
                f"Clinical evaluation of {drug_by_id[d]} in "
                f"{drug_condition[d]}" for d in ref_drug
            ],
        },
    )

    categories = ["antifolate", "antimetabolite", "alkylating agent",
                  "antibiotic", "antiviral", "kinase inhibitor",
                  "monoclonal antibody", "immunosuppressant"]
    cat_rows = cfg.num_drugs
    drug_categories = Table.from_dict(
        "drug_categories",
        {
            "drug_id": _fk_sample(drug_ids, cat_rows, rng, coverage=0.32),
            "category": [categories[int(rng.integers(len(categories)))]
                         for _ in range(cat_rows)],
        },
    )

    # etl_staging: cardinality-matched "sibling" columns, one per FK column.
    # A sibling shares ~45% of its FK's value pool (plus junk), so its
    # Jaccard similarity with the FK *exceeds* the FK's Jaccard with the
    # true key column, while its containment stays below the join
    # threshold. This is the skewed-cardinality regime of Benchmark 2B
    # (mQCR 0.08 in the paper) where Jaccard ranking fails and set
    # containment does not (§6.2).
    fk_pools = {
        "stg_target_drug": target_drug,
        "stg_cond_drug": cond_drug,
        "stg_dose_drug": dose_drug,
        "stg_inter_first": inter_1,
        "stg_inter_second": inter_2,
        "stg_ref_drug": ref_drug,
    }
    staging_rows = max(len(set(v)) for v in fk_pools.values())
    staging_data = {}
    for sib_name, fk_values in fk_pools.items():
        pool = sorted(set(fk_values))
        keep = [pool[i] for i in rng.choice(len(pool),
                                            size=int(len(pool) * 0.45),
                                            replace=False)]
        junk = [f"ZZ{int(rng.integers(10_000, 99_999))}-{sib_name}-{i}"
                for i in range(len(pool) - len(keep))]
        distinct = keep + junk
        # Pad by cycling existing values so the distinct count stays fixed.
        column = [distinct[i % len(distinct)] for i in range(staging_rows)]
        staging_data[sib_name] = column
    etl_staging = Table.from_dict("etl_staging", staging_data)

    tables = [
        drugs_table, enzymes_table, enzyme_targets, drug_interactions,
        drug_conditions, drug_dosages, manufacturers_table,
        drug_manufacturers, atc_codes, references, drug_categories,
        etl_staging,
    ]
    pkfk = [
        ("drugs.drug_id", "enzyme_targets.drug_key"),
        ("drugs.drug_id", "drug_interactions.drug_1"),
        ("drugs.drug_id", "drug_interactions.drug_2"),
        ("drugs.drug_id", "drug_conditions.drug_id"),
        ("drugs.drug_id", "drug_dosages.drug_id"),
        ("drugs.drug_id", "drug_manufacturers.drug_id"),
        ("drugs.drug_id", "atc_codes.drug_id"),
        ("drugs.drug_id", "literature_references.drug_id"),
        ("drugs.drug_id", "drug_categories.drug_id"),
        ("enzymes.name", "enzyme_targets.target"),
        ("manufacturers.manufacturer_id", "drug_manufacturers.manufacturer_id"),
    ]
    xrefs = {
        "drug_ids": dict(zip(drug_ids, drugs)),
        "drug_condition": drug_condition,
        "enzyme_names": enzymes,
        "targets_by_drug": _group_targets(target_drug, target_enzyme),
        "interaction_pairs": list(zip(inter_1, inter_2, inter_effects)),
    }
    return tables, pkfk, xrefs


def _group_targets(target_drug: list[str], target_enzyme: list[str]) -> dict[str, list[str]]:
    grouped: dict[str, list[str]] = {}
    for drug, enzyme in zip(target_drug, target_enzyme):
        grouped.setdefault(drug, []).append(enzyme)
    return grouped


def _build_chembl(cfg: PharmaLakeConfig, vocab, rng) -> tuple[
    list[Table], list[tuple[str, str]]
]:
    n = cfg.chembl_compounds
    molregnos = [str(100_000 + i) for i in range(n)]
    # Half the ChEMBL names are DrugBank drug names: realistic overlap that
    # enables cross-collection semantic joins.
    drugs = vocab.pool("drug")
    names = [
        drugs[i % len(drugs)] if i % 2 == 0 else f"CHEMBL-compound-{i}"
        for i in range(n)
    ]
    compounds = Table.from_dict(
        "compounds",
        {
            "molregno": molregnos,
            "chembl_id": [f"CHEMBL{i + 1000}" for i in range(n)],
            "pref_name": names,
            "mw_freebase": [f"{rng.uniform(100, 900):.2f}" for _ in range(n)],
            "alogp": [f"{rng.uniform(-3, 8):.2f}" for _ in range(n)],
            "psa": [f"{rng.uniform(10, 250):.2f}" for _ in range(n)],
        },
    )

    num_assays = max(10, n // 4)
    assay_ids = [str(5000 + i) for i in range(num_assays)]
    target_ids = [str(9000 + i) for i in range(cfg.num_enzymes)]
    assays = Table.from_dict(
        "assays",
        {
            "assay_id": assay_ids,
            "description": [
                f"Binding assay against {vocab.pool('enzyme')[int(rng.integers(cfg.num_enzymes))]}"
                for _ in range(num_assays)
            ],
            "target_id": _fk_sample(target_ids, num_assays, rng, coverage=0.6),
            "assay_type": [("B" if rng.random() < 0.6 else "F")
                           for _ in range(num_assays)],
        },
    )

    act_rows = n * 2
    activities = Table.from_dict(
        "activities",
        {
            "activity_id": [str(70_000 + i) for i in range(act_rows)],
            "molregno": _fk_sample(molregnos, act_rows, rng, coverage=0.5),
            "assay_id": _fk_sample(assay_ids, act_rows, rng, coverage=0.7),
            "standard_value": [f"{rng.uniform(0.1, 10000):.1f}" for _ in range(act_rows)],
            "standard_units": ["nM"] * act_rows,
        },
    )

    target_dictionary = Table.from_dict(
        "target_dictionary",
        {
            "target_id": target_ids,
            "pref_name": vocab.pool("enzyme")[: cfg.num_enzymes],
            "organism": ["Homo sapiens"] * cfg.num_enzymes,
        },
    )

    syn_rows = n
    molecule_synonyms = Table.from_dict(
        "molecule_synonyms",
        {
            "molregno": _fk_sample(molregnos, syn_rows, rng, coverage=0.55),
            "synonym": [f"{names[int(rng.integers(n))]}" for _ in range(syn_rows)],
            "syn_type": [("TRADE_NAME" if rng.random() < 0.5 else "RESEARCH_CODE")
                         for _ in range(syn_rows)],
        },
    )

    tables = [compounds, assays, activities, target_dictionary, molecule_synonyms]
    pkfk = [
        ("compounds.molregno", "activities.molregno"),
        ("assays.assay_id", "activities.assay_id"),
        ("target_dictionary.target_id", "assays.target_id"),
        ("compounds.molregno", "molecule_synonyms.molregno"),
    ]
    return tables, pkfk


def _build_chebi(cfg: PharmaLakeConfig, vocab, rng) -> tuple[
    list[Table], list[tuple[str, str]]
]:
    n = cfg.chebi_compounds
    ids = [str(20_000 + i) for i in range(n)]
    chebi_compounds = Table.from_dict(
        "chebi_compounds",
        {
            "id": ids,
            "chebi_name": [f"chebi-{vocab.pool('drug')[i % cfg.num_drugs].lower()}"
                           for i in range(n)],
            "mass": [f"{rng.uniform(50, 1200):.3f}" for _ in range(n)],
            "charge": [str(int(rng.integers(-3, 4))) for _ in range(n)],
        },
    )
    rel_rows = n * 2
    chebi_relations = Table.from_dict(
        "chebi_relations",
        {
            "rel_id": [str(40_000 + i) for i in range(rel_rows)],
            "init_id": _fk_sample(ids, rel_rows, rng, coverage=0.6),
            "final_id": _fk_sample(ids, rel_rows, rng, coverage=0.6),
            "status": [("C" if rng.random() < 0.9 else "E") for _ in range(rel_rows)],
        },
    )
    name_rows = n
    chebi_names = Table.from_dict(
        "chebi_names",
        {
            "name_id": [str(60_000 + i) for i in range(name_rows)],
            "compound_id": _fk_sample(ids, name_rows, rng, coverage=0.7),
            "adapted": [("T" if rng.random() < 0.5 else "F") for _ in range(name_rows)],
        },
    )
    tables = [chebi_compounds, chebi_relations, chebi_names]
    pkfk = [
        ("chebi_compounds.id", "chebi_relations.init_id"),
        ("chebi_compounds.id", "chebi_relations.final_id"),
        ("chebi_compounds.id", "chebi_names.compound_id"),
    ]
    return tables, pkfk


_ABSTRACT_TEMPLATES = [
    ("{drug} is a novel antifolate that inhibits {enzyme} and {enzyme2}, "
     "among others. {drug} is active against {condition} cells in vitro."),
    ("Several agents can inhibit thymidine synthesis by targeting {enzyme}. "
     "But some of them, like {drug}, cause {effect} and inhibit the immune "
     "system."),
    ("In a phase II study, {drug} demonstrated activity in patients with "
     "{condition}. The most common adverse events were {effect} and "
     "{effect2}."),
    ("Co-administration of {drug} with {drug2} may increase the severity of "
     "{effect}. Monitoring is recommended for patients with {condition}."),
    ("The enzyme {enzyme} plays a central role in {condition}. Inhibition "
     "by {drug} was associated with reduced {effect} in preclinical models."),
]

_NOISE_TEMPLATES = [
    ("Epidemiological surveillance of {condition} remains a public health "
     "priority. Regional registries reported heterogeneous incidence."),
    ("Management guidelines for {condition} emphasise early screening. "
     "Lifestyle interventions reduced overall burden in cohort studies."),
    ("The etiology of {condition} involves complex environmental factors. "
     "Further longitudinal research is warranted."),
]


def _generate_documents(cfg: PharmaLakeConfig, xrefs: dict, vocab, rng) -> tuple[
    list[Document], GroundTruth
]:
    """PubMed-style abstracts + exact doc->table links (Benchmark 1B)."""
    gt = GroundTruth(task="doc_to_table")
    documents: list[Document] = []
    drug_ids = list(xrefs["drug_ids"])
    conditions = vocab.pool("condition")
    effects = vocab.pool("effect")
    enzymes = xrefs["enzyme_names"]

    for i in range(cfg.num_documents):
        did = drug_ids[int(rng.integers(len(drug_ids)))]
        drug = xrefs["drug_ids"][did]
        drug_enzymes = xrefs["targets_by_drug"].get(did, [])
        enzyme = (drug_enzymes[int(rng.integers(len(drug_enzymes)))]
                  if drug_enzymes else enzymes[int(rng.integers(len(enzymes)))])
        enzyme2 = enzymes[int(rng.integers(len(enzymes)))]
        condition = xrefs["drug_condition"][did]
        effect = effects[int(rng.integers(len(effects)))]
        effect2 = effects[int(rng.integers(len(effects)))]
        template_idx = int(rng.integers(len(_ABSTRACT_TEMPLATES)))
        template = _ABSTRACT_TEMPLATES[template_idx]
        drug2_id = drug_ids[int(rng.integers(len(drug_ids)))]
        drug2 = xrefs["drug_ids"][drug2_id]
        text = template.format(
            drug=drug, drug2=drug2, enzyme=enzyme, enzyme2=enzyme2,
            condition=condition, effect=effect, effect2=effect2,
        )
        doc = Document(
            doc_id=f"pubmed:{i:05d}",
            title=f"{drug} and {enzyme}: a review",
            text=text,
            source="PubMed",
        )
        documents.append(doc)
        # Exact links: mentioning a drug links the doc to drug-bearing
        # tables; mentioning an enzyme links enzyme tables; templates with
        # interactions/conditions link those tables.
        gt.add(doc.doc_id, "drugs")
        if "{enzyme}" in template:
            gt.add(doc.doc_id, "enzymes")
            gt.add(doc.doc_id, "enzyme_targets")
        if "{drug2}" in template:
            gt.add(doc.doc_id, "drug_interactions")
        if "{condition}" in template:
            gt.add(doc.doc_id, "drug_conditions")
        gt.query_cardinality[doc.doc_id] = len(set(text.lower().split()))

    for i in range(cfg.noise_documents):
        condition = conditions[int(rng.integers(len(conditions)))]
        template = _NOISE_TEMPLATES[int(rng.integers(len(_NOISE_TEMPLATES)))]
        documents.append(
            Document(
                doc_id=f"pubmed:noise:{i:05d}",
                title=f"Notes on {condition}",
                text=template.format(condition=condition),
                source="PubMed",
            )
        )
    return documents, gt


def generate_pharma_lake(config: PharmaLakeConfig | None = None) -> GeneratedLake:
    """Generate the Pharma lake with all its benchmarks' ground truth."""
    cfg = config or PharmaLakeConfig()
    rng = ensure_rng(cfg.seed)
    vocab = pharma_vocabulary(num_drugs=cfg.num_drugs,
                              num_enzymes=cfg.num_enzymes, seed=cfg.seed)

    drugbank_tables, drugbank_pkfk, xrefs = _build_drugbank(cfg, vocab, rng)
    chembl_tables, chembl_pkfk = _build_chembl(cfg, vocab, rng)
    chebi_tables, chebi_pkfk = _build_chebi(cfg, vocab, rng)

    lake = DataLake(name="pharma")
    for table in drugbank_tables + chembl_tables + chebi_tables:
        lake.add_table(table)

    documents, doc_gt = _generate_documents(cfg, xrefs, vocab, rng)
    lake.add_documents(documents)
    for table in lake.tables:
        doc_gt.answer_cardinality[table.name] = max(
            (c.cardinality for c in table.columns), default=1
        )

    union_bases = [t for t in drugbank_tables
                   if t.num_columns >= 3][:8]
    derived, union_gt = derive_unionable_tables(
        union_bases,
        derived_per_base=cfg.union_derived_per_base,
        seed=ensure_rng(cfg.seed + 1),
        name_prefix="dbsyn",
    )
    for table in derived:
        lake.add_table(table)

    drugbank_names = [t.name for t in drugbank_tables]
    join_gt = brute_force_joinable_columns(lake, table_names=drugbank_names)

    generated = GeneratedLake(
        lake=lake,
        collections={
            "drugbank": drugbank_names,
            "chembl": [t.name for t in chembl_tables],
            "chebi": [t.name for t in chebi_tables],
            "drugbank_synthetic": [t.name for t in derived],
        },
        pkfk_pairs={
            "drugbank": drugbank_pkfk,
            "chembl": chembl_pkfk,
            "chebi": chebi_pkfk,
        },
    )
    generated.ground_truths["doc_to_table"] = doc_gt
    generated.ground_truths["syntactic_join"] = join_gt
    generated.ground_truths["union"] = union_gt
    for db, pairs in generated.pkfk_pairs.items():
        generated.ground_truths[f"pkfk:{db}"] = pkfk_ground_truth_from_schema(pairs)
    return generated
