"""The ML-Open lake: open-portal ML datasets + review documents.

Reproduces the shape of the NextiaJD-derived testbed used by the paper
(Table 1): three collections at increasing scale and numeric fraction —
Small Scale (SS, ~33% numeric), Medium Scale (MS, ~46%), Large Scale (LS,
~69%, strongly skewed key cardinalities giving the mQCR ~0.02 regime where
containment dominates Jaccard in Benchmark 2C-LS) — plus a corpus of movie
reviews whose doc->table ground truth is *manually annotated* in the paper
(Benchmark 1C), simulated here with annotation noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lakes.base import GeneratedLake
from repro.lakes.groundtruth import (
    GroundTruth,
    brute_force_joinable_columns,
    noisy_manual_annotation,
)
from repro.lakes.vocab import ml_vocabulary
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table
from repro.utils.rng import ensure_rng


@dataclass
class MLOpenLakeConfig:
    """Scale knobs for the ML-Open lake (defaults well below the paper)."""

    ss_tables: int = 10
    ss_rows: int = 40
    ms_tables: int = 20
    ms_rows: int = 100
    ls_tables: int = 12
    ls_rows: int = 320
    num_reviews: int = 150
    noise_reviews: int = 30
    annotation_miss_rate: float = 0.2
    seed: int = 0


def _entity_pool(theme: str, size: int, rng: np.random.Generator) -> list[str]:
    """Key-entity names for a theme (movie titles, neighbourhoods, ...)."""
    return [f"{theme}-{int(rng.integers(10_000, 99_999))}-{i}" for i in range(size)]


def _collection_tables(
    prefix: str,
    num_tables: int,
    rows: int,
    numeric_fraction: float,
    themes: list[str],
    features: list[str],
    rng: np.random.Generator,
    key_skew: float = 0.0,
) -> tuple[list[Table], dict[str, list[str]]]:
    """Tables for one collection; tables of the same theme share key pools.

    ``key_skew`` > 0 makes some tables' key columns small subsets of the
    theme pool (the LS low-mQCR regime); 0 keeps cardinalities comparable.
    """
    pools: dict[str, list[str]] = {}
    theme_tables: dict[str, list[str]] = {}
    tables = []
    for i in range(num_tables):
        theme = themes[i % len(themes)]
        if theme not in pools:
            pools[theme] = _entity_pool(theme, max(rows, 50), rng)
        pool = pools[theme]
        if key_skew > 0 and (i // len(themes)) % 2 == 1:
            # Skewed variant (alternating *within* each theme): the key
            # column draws from a small slice of the theme pool, so its
            # true join partners are the large-key variants — containment
            # 1.0 but tiny Jaccard.
            slice_size = max(5, int(len(pool) * (1.0 - key_skew)))
            pool = pool[:slice_size]
        keys = [pool[int(rng.integers(len(pool)))] for _ in range(rows)]
        n_features = 4
        n_numeric = max(1, round(n_features * numeric_fraction))
        data: dict[str, list[str]] = {f"{theme}_id": keys}
        picked = [features[int(j)] for j in
                  rng.choice(len(features), size=n_features, replace=False)]
        for j, feature in enumerate(picked):
            if j < n_numeric:
                data[feature] = [f"{rng.uniform(0, 1000):.2f}" for _ in range(rows)]
            else:
                data[feature] = [
                    f"{theme} {feature} level {int(rng.integers(1, 6))}"
                    for _ in range(rows)
                ]
        name = f"{prefix}_{theme}_{i}"
        tables.append(Table.from_dict(name, data))
        theme_tables.setdefault(theme, []).append(name)
    return tables, theme_tables


def _ls_catalog_table(ls_tables: list[Table], rng: np.random.Generator) -> Table:
    """Cardinality-matched sibling columns for the skewed LS key columns.

    Each sibling shares ~45% of one LS key column's values plus junk: its
    Jaccard similarity with that key exceeds the key's Jaccard with its
    true (much larger) join partners, while its containment stays below the
    join threshold — the low-mQCR regime of Benchmark 2C-LS where
    containment-based ranking wins (paper Table 3).
    """
    pools = {}
    for table in ls_tables:
        key = table.columns[0]
        distinct = sorted(key.distinct_values)
        if len(distinct) <= 60:  # the skewed (small-key) variants
            base = f"cat_{table.name.removeprefix('ls_')}"
            pools[f"{base}_a"] = distinct
            pools[f"{base}_b"] = distinct
    if not pools:
        pools["cat_empty"] = ["none"]
    rows = max(len(p) for p in pools.values())
    data = {}
    for sib_name, pool in pools.items():
        keep_n = max(1, int(len(pool) * 0.45))
        keep = [pool[i] for i in rng.choice(len(pool), size=keep_n,
                                            replace=False)]
        junk = [f"cat-{int(rng.integers(10_000, 99_999))}-{sib_name}-{i}"
                for i in range(len(pool) - keep_n)]
        distinct = keep + junk
        data[sib_name] = [distinct[i % len(distinct)] for i in range(rows)]
    return Table.from_dict("ls_catalog", data)


def _generate_reviews(
    cfg: MLOpenLakeConfig,
    ms_tables: list[Table],
    theme_tables: dict[str, list[str]],
    vocab,
    rng: np.random.Generator,
) -> tuple[list[Document], GroundTruth]:
    """Movie-review documents mentioning key entities of MS tables."""
    gt = GroundTruth(task="doc_to_table")
    adjectives = vocab.pool("review_adjective")
    nouns = vocab.pool("review_noun")
    documents = []
    key_bearing = [t for t in ms_tables if t.num_columns >= 1]
    for i in range(cfg.num_reviews):
        table = key_bearing[int(rng.integers(len(key_bearing)))]
        key_col = table.columns[0]
        theme = key_col.name.removesuffix("_id")
        # Reviews cite entities the way people write, not the way the table
        # stores them: the trailing row discriminator is dropped, so exact
        # keyword matches cannot pinpoint tables — only subword/semantic
        # proximity can, which is what defeats keyword search on 1C.
        cited = []
        for _ in range(3):
            entity = key_col.values[int(rng.integers(len(key_col.values)))]
            cited.append(entity.rsplit("-", 1)[0])
        adj1 = adjectives[int(rng.integers(len(adjectives)))]
        adj2 = adjectives[int(rng.integers(len(adjectives)))]
        noun1 = nouns[int(rng.integers(len(nouns)))]
        noun2 = nouns[int(rng.integers(len(nouns)))]
        text = (
            f"Watched {cited[0]} last night, after {cited[1]} and "
            f"{cited[2]} earlier this week. The {noun1} was {adj1} and the "
            f"{noun2} felt {adj2}. As {theme} entries go, {cited[0]} stands "
            f"out for its {noun1}."
        )
        doc = Document(
            doc_id=f"review:{i:05d}",
            title=f"Review of {cited[0]}",
            text=text,
            source="Reviews",
        )
        documents.append(doc)
        for name in theme_tables.get(theme, []):
            gt.add(doc.doc_id, name)
        gt.query_cardinality[doc.doc_id] = len(set(text.lower().split()))
    for i in range(cfg.noise_reviews):
        adj = adjectives[int(rng.integers(len(adjectives)))]
        noun = nouns[int(rng.integers(len(nouns)))]
        documents.append(
            Document(
                doc_id=f"review:noise:{i:05d}",
                title=f"Untitled musings {i}",
                text=(f"A {adj} {noun} can carry a film further than any "
                      f"budget. Craft matters more than spectacle."),
                source="Reviews",
            )
        )
    return documents, gt


def generate_mlopen_lake(config: MLOpenLakeConfig | None = None) -> GeneratedLake:
    """Generate the ML-Open lake with Benchmarks 1C/2C ground truth."""
    cfg = config or MLOpenLakeConfig()
    rng = ensure_rng(cfg.seed)
    vocab = ml_vocabulary(seed=cfg.seed)
    themes = vocab.pool("theme")
    features = vocab.pool("feature")

    ss_tables, _ = _collection_tables(
        "ss", cfg.ss_tables, cfg.ss_rows, 0.33, themes[:4], features, rng)
    ms_tables, ms_theme_tables = _collection_tables(
        "ms", cfg.ms_tables, cfg.ms_rows, 0.46, themes[4:10], features, rng)
    ls_tables, _ = _collection_tables(
        "ls", cfg.ls_tables, cfg.ls_rows, 0.69, themes[10:14], features, rng,
        key_skew=0.9)
    ls_tables.append(_ls_catalog_table(ls_tables, rng))

    lake = DataLake(name="ml_open")
    for table in ss_tables + ms_tables + ls_tables:
        lake.add_table(table)

    documents, raw_doc_gt = _generate_reviews(cfg, ms_tables, ms_theme_tables,
                                              vocab, rng)
    lake.add_documents(documents)
    for table in lake.tables:
        raw_doc_gt.answer_cardinality[table.name] = max(
            (c.cardinality for c in table.columns), default=1
        )
    doc_gt = noisy_manual_annotation(raw_doc_gt, rng,
                                     miss_rate=cfg.annotation_miss_rate)

    generated = GeneratedLake(
        lake=lake,
        collections={
            "ss": [t.name for t in ss_tables],
            "ms": [t.name for t in ms_tables],
            "ls": [t.name for t in ls_tables],
        },
    )
    generated.ground_truths["doc_to_table"] = doc_gt
    for coll in ("ss", "ms", "ls"):
        generated.ground_truths[f"syntactic_join:{coll}"] = (
            brute_force_joinable_columns(
                lake, table_names=generated.collections[coll])
        )
    return generated
