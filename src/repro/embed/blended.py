"""Blended word embedder: surface-form + distributional signal.

A pre-trained fasttext model carries both morphological information (from
subwords) and distributional information (from training on a big corpus).
We reproduce the combination by concat-projecting the deterministic
:class:`HashingEmbedder` vector with the lake-trained :class:`PPMIEmbedder`
vector: each contributes ``dim`` components, then the concatenation is
reduced back to ``dim`` by a fixed random projection (Johnson-Lindenstrauss),
keeping the output dimensionality at the paper's 100.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder


class BlendedEmbedder:
    """Word embedder blending subword-hash and PPMI-SVD vectors."""

    def __init__(
        self,
        dim: int = 100,
        subword: HashingEmbedder | None = None,
        distributional: PPMIEmbedder | None = None,
        subword_weight: float = 0.5,
        seed: int = 0,
    ):
        if not 0.0 <= subword_weight <= 1.0:
            raise ValueError(f"subword_weight must be in [0,1], got {subword_weight}")
        self.dim = dim
        self.subword = subword or HashingEmbedder(dim=dim, seed=seed)
        self.distributional = distributional
        self.subword_weight = subword_weight
        rng = np.random.default_rng(seed + 7)
        # Fixed JL projection from 2*dim to dim, shared by all words.
        self._projection = rng.standard_normal((2 * dim, dim)) / np.sqrt(dim)
        self._cache: dict[str, np.ndarray] = {}

    def embed_word(self, word: str) -> np.ndarray:
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        sub = self.subword.embed_word(word)
        if self.distributional is not None and self.distributional.is_fitted:
            dist = self.distributional.embed_word(word)
        else:
            dist = np.zeros(self.dim)
        if not np.any(dist):
            # OOV in the distributional model: rely purely on subwords, as
            # fasttext does for unseen words.
            vec = sub
        else:
            w = self.subword_weight
            stacked = np.concatenate([w * sub, (1.0 - w) * dist])
            vec = stacked @ self._projection
            norm = np.linalg.norm(vec)
            if norm > 0:
                vec = vec / norm
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        """Stack blended vectors, batching everything but the projection.

        The subword rows come from one slab-kernel call, the distributional
        rows from one gather, and the weighted concatenation is assembled
        as a matrix — all elementwise, so each row matches the per-word
        form. Only the JL projection itself stays a per-row GEMV: a single
        GEMM accumulates in a different order than ``embed_word``'s
        vector-matrix product and would change the output bytes.
        """
        if not words:
            return np.zeros((0, self.dim))
        cache = self._cache
        lowered = [w.lower() for w in words]
        pending = list(dict.fromkeys(w for w in lowered if w not in cache))
        if pending:
            self._blend_pending(pending)
        return np.vstack([cache[w] for w in lowered])

    def warm_words(self, words: list[str]) -> None:
        """Fill the blended cache without assembling the stacked matrix
        (the overlapped fit warm-up only needs the cache side effect)."""
        cache = self._cache
        pending = list(dict.fromkeys(
            w for w in (word.lower() for word in words) if w not in cache
        ))
        if pending:
            self._blend_pending(pending)

    def _blend_pending(self, pending: list[str]) -> None:
        """Blend uncached (lowercased, deduped) words into the cache."""
        dim = self.dim
        sub = self.subword.embed_words(pending)
        dist = np.zeros((len(pending), dim))
        model = self.distributional
        if model is not None and model.is_fitted and model.vocabulary:
            vocab_get = model.vocabulary.get
            vectors = model._vectors
            for i, word in enumerate(pending):
                idx = vocab_get(word)
                if idx is not None:
                    dist[i] = vectors[idx]
        # Rows whose distributional half is all-zero (OOV or unfitted
        # model) rely purely on subwords, as fasttext does for unseen words.
        blendable = dist.any(axis=1)
        weight = self.subword_weight
        stacked = np.empty((len(pending), 2 * dim))
        stacked[:, :dim] = weight * sub
        stacked[:, dim:] = (1.0 - weight) * dist
        projection = self._projection
        cache = self._cache
        for i, word in enumerate(pending):
            if blendable[i]:
                vec = stacked[i] @ projection
                norm = np.linalg.norm(vec)
                if norm > 0:
                    vec = vec / norm
            else:
                vec = sub[i]
            cache[word] = vec

    def similarity(self, w1: str, w2: str) -> float:
        v1, v2 = self.embed_word(w1), self.embed_word(w2)
        n1, n2 = np.linalg.norm(v1), np.linalg.norm(v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        return float(np.dot(v1, v2) / (n1 * n2))

    # ---------------------------------------------- process-pool warm-up

    def cache_fills(self, words: list[str]) -> dict:
        """Embed ``words`` and return the picklable cache fills (blended
        vectors plus the subword component's own fills), for the process-
        backend warm-up — see :meth:`HashingEmbedder.cache_fills`."""
        self.embed_words(words)
        cache = self._cache
        lowered = dict.fromkeys(w.lower() for w in words)
        return {
            "vectors": {w: cache[w] for w in lowered},
            "subword": self.subword.cache_fills(list(lowered)),
        }

    def merge_cache_fills(self, fills: dict) -> None:
        """Merge one :meth:`cache_fills` result (idempotent fills only)."""
        cache = self._cache
        for word, vec in fills["vectors"].items():
            cache.setdefault(word, vec)
        subword_fills = fills.get("subword")
        if subword_fills:
            self.subword.merge_cache_fills(subword_fills)

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Sub-embedder states plus the projection matrix verbatim — the
        construction seed is not stored on the instance, so the projection
        itself is the durable artefact. The blended word cache is derived
        warmth (sub-embedder lookups are deterministic) and is rebuilt
        lazily instead of persisted."""
        return {
            "dim": self.dim,
            "subword_weight": self.subword_weight,
            "projection": self._projection,
            "subword": self.subword.persistent_state(),
            "distributional": (
                None if self.distributional is None
                else self.distributional.persistent_state()
            ),
        }

    @classmethod
    def restore_state(cls, state: dict) -> "BlendedEmbedder":
        embedder = cls(
            dim=state["dim"],
            subword=HashingEmbedder.restore_state(state["subword"]),
            distributional=(
                None if state["distributional"] is None
                else PPMIEmbedder.restore_state(state["distributional"])
            ),
            subword_weight=state["subword_weight"],
        )
        embedder._projection = np.asarray(state["projection"], dtype=float)
        return embedder


class LakeEmbedderTraining:
    """In-flight training of the default lake embedder.

    The distributional (PPMI) component trains on a background thread — its
    heavy lifting is GIL-releasing sparse-algebra and Lanczos work — while
    the caller warms the subword component (e.g. one batched
    ``subword.embed_words`` over the fit's union vocabulary) and runs other
    fit stages. :meth:`result` joins and assembles the blended embedder; the
    vectors are identical to a sequential :func:`build_lake_embedder` call —
    the thread changes scheduling, not arithmetic.
    """

    def __init__(self, token_corpora, dim: int = 100, seed: int = 0):
        """``token_corpora`` is the list of token lists to train on, or a
        zero-argument callable producing it — a callable moves the corpus
        assembly itself onto the training thread, overlapping it with the
        caller's other fit stages (it is training prep, not embed work)."""
        self.subword = HashingEmbedder(dim=dim, seed=seed)
        self._dim = dim
        self._seed = seed
        self._box: dict[str, object] = {}

        def _train() -> None:
            try:
                corpora = token_corpora() if callable(token_corpora) else token_corpora
                self._box["model"] = PPMIEmbedder(dim=dim, seed=seed).fit(
                    corpora
                )
            except BaseException as exc:  # surfaced by result()
                self._box["error"] = exc

        self._thread = threading.Thread(
            target=_train, name="lake-embedder-train", daemon=True
        )
        self._thread.start()

    def result(self) -> BlendedEmbedder:
        """Wait for training and assemble the blended embedder."""
        self._thread.join()
        error = self._box.get("error")
        if error is not None:
            raise error  # type: ignore[misc]
        return BlendedEmbedder(
            dim=self._dim,
            subword=self.subword,
            distributional=self._box["model"],  # type: ignore[arg-type]
            seed=self._seed,
        )


def build_lake_embedder(
    token_corpora: list[list[str]], dim: int = 100, seed: int = 0
) -> BlendedEmbedder:
    """Train a blended embedder on the lake's own token corpus.

    ``token_corpora`` is a list of token lists (documents' and columns' term
    bags). This is the stand-in for "load a pre-trained fasttext model":
    the returned embedder provides a vector for *every* word (subword path
    covers OOV) with distributional structure learned from the lake.
    """
    return LakeEmbedderTraining(token_corpora, dim=dim, seed=seed).result()
