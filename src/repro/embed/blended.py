"""Blended word embedder: surface-form + distributional signal.

A pre-trained fasttext model carries both morphological information (from
subwords) and distributional information (from training on a big corpus).
We reproduce the combination by concat-projecting the deterministic
:class:`HashingEmbedder` vector with the lake-trained :class:`PPMIEmbedder`
vector: each contributes ``dim`` components, then the concatenation is
reduced back to ``dim`` by a fixed random projection (Johnson-Lindenstrauss),
keeping the output dimensionality at the paper's 100.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder


class BlendedEmbedder:
    """Word embedder blending subword-hash and PPMI-SVD vectors."""

    def __init__(
        self,
        dim: int = 100,
        subword: HashingEmbedder | None = None,
        distributional: PPMIEmbedder | None = None,
        subword_weight: float = 0.5,
        seed: int = 0,
    ):
        if not 0.0 <= subword_weight <= 1.0:
            raise ValueError(f"subword_weight must be in [0,1], got {subword_weight}")
        self.dim = dim
        self.subword = subword or HashingEmbedder(dim=dim, seed=seed)
        self.distributional = distributional
        self.subword_weight = subword_weight
        rng = np.random.default_rng(seed + 7)
        # Fixed JL projection from 2*dim to dim, shared by all words.
        self._projection = rng.standard_normal((2 * dim, dim)) / np.sqrt(dim)
        self._cache: dict[str, np.ndarray] = {}

    def embed_word(self, word: str) -> np.ndarray:
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        sub = self.subword.embed_word(word)
        if self.distributional is not None and self.distributional.is_fitted:
            dist = self.distributional.embed_word(word)
        else:
            dist = np.zeros(self.dim)
        if not np.any(dist):
            # OOV in the distributional model: rely purely on subwords, as
            # fasttext does for unseen words.
            vec = sub
        else:
            w = self.subword_weight
            stacked = np.concatenate([w * sub, (1.0 - w) * dist])
            vec = stacked @ self._projection
            norm = np.linalg.norm(vec)
            if norm > 0:
                vec = vec / norm
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        if not words:
            return np.zeros((0, self.dim))
        # Warm the subword model for every uncached word first: one batched
        # bucket-table draw instead of per-word materialisation. The blend
        # itself stays per-word, so rows match embed_word exactly.
        missing = [w.lower() for w in words if w.lower() not in self._cache]
        if missing:
            self.subword.embed_words(missing)
        return np.vstack([self.embed_word(w) for w in words])

    def similarity(self, w1: str, w2: str) -> float:
        v1, v2 = self.embed_word(w1), self.embed_word(w2)
        n1, n2 = np.linalg.norm(v1), np.linalg.norm(v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        return float(np.dot(v1, v2) / (n1 * n2))

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Sub-embedder states plus the projection matrix verbatim — the
        construction seed is not stored on the instance, so the projection
        itself is the durable artefact. The blended word cache is derived
        warmth (sub-embedder lookups are deterministic) and is rebuilt
        lazily instead of persisted."""
        return {
            "dim": self.dim,
            "subword_weight": self.subword_weight,
            "projection": self._projection,
            "subword": self.subword.persistent_state(),
            "distributional": (
                None if self.distributional is None
                else self.distributional.persistent_state()
            ),
        }

    @classmethod
    def restore_state(cls, state: dict) -> "BlendedEmbedder":
        embedder = cls(
            dim=state["dim"],
            subword=HashingEmbedder.restore_state(state["subword"]),
            distributional=(
                None if state["distributional"] is None
                else PPMIEmbedder.restore_state(state["distributional"])
            ),
            subword_weight=state["subword_weight"],
        )
        embedder._projection = np.asarray(state["projection"], dtype=float)
        return embedder


class LakeEmbedderTraining:
    """In-flight training of the default lake embedder.

    The distributional (PPMI) component trains on a background thread — its
    heavy lifting is GIL-releasing sparse-algebra and Lanczos work — while
    the caller warms the subword component (e.g. one batched
    ``subword.embed_words`` over the fit's union vocabulary) and runs other
    fit stages. :meth:`result` joins and assembles the blended embedder; the
    vectors are identical to a sequential :func:`build_lake_embedder` call —
    the thread changes scheduling, not arithmetic.
    """

    def __init__(self, token_corpora: list[list[str]], dim: int = 100, seed: int = 0):
        self.subword = HashingEmbedder(dim=dim, seed=seed)
        self._dim = dim
        self._seed = seed
        self._box: dict[str, object] = {}

        def _train() -> None:
            try:
                self._box["model"] = PPMIEmbedder(dim=dim, seed=seed).fit(
                    token_corpora
                )
            except BaseException as exc:  # surfaced by result()
                self._box["error"] = exc

        self._thread = threading.Thread(
            target=_train, name="lake-embedder-train", daemon=True
        )
        self._thread.start()

    def result(self) -> BlendedEmbedder:
        """Wait for training and assemble the blended embedder."""
        self._thread.join()
        error = self._box.get("error")
        if error is not None:
            raise error  # type: ignore[misc]
        return BlendedEmbedder(
            dim=self._dim,
            subword=self.subword,
            distributional=self._box["model"],  # type: ignore[arg-type]
            seed=self._seed,
        )


def build_lake_embedder(
    token_corpora: list[list[str]], dim: int = 100, seed: int = 0
) -> BlendedEmbedder:
    """Train a blended embedder on the lake's own token corpus.

    ``token_corpora`` is a list of token lists (documents' and columns' term
    bags). This is the stand-in for "load a pre-trained fasttext model":
    the returned embedder provides a vector for *every* word (subword path
    covers OOV) with distributional structure learned from the lake.
    """
    return LakeEmbedderTraining(token_corpora, dim=dim, seed=seed).result()
