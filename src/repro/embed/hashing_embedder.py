"""Subword-hashing word embedder (fasttext-style, deterministic).

fasttext (Bojanowski et al. 2016) represents a word as the sum of vectors of
its character n-grams, looked up in a fixed-size hashed bucket table. We
reproduce the representation side with a fully *vectorised* bucket table:
component ``j`` of bucket ``x`` is the centred unit-variance uniform draw
``sqrt(12) * ((h_j(x) + 0.5) / p - 0.5)`` where ``h_j`` is the shared
universal hash family of :mod:`repro.utils.hashing` (fasttext itself
initialises its bucket table uniformly). Each component is a deterministic
draw, distinct buckets decorrelate through the per-component ``(a_j, b_j)``
coefficients, and — unlike per-bucket seeded RNG streams, which force one
Python-level generator construction per bucket — the table rows for *every*
gram of *every* word materialise in one numpy expression. Gram -> bucket
routing uses crc32 (deterministic, C-speed); any two processes produce
identical embeddings without a training phase, and the resulting space
encodes *surface-form* similarity: words sharing many n-grams get high
cosine similarity.

Per-word arithmetic is batch-size independent by construction: a word's
vector is ``table[gram_rows].sum(axis=0)`` normalised, computed identically
whether the word arrives alone (:meth:`HashingEmbedder.embed_word`) or
inside a vocabulary batch (:meth:`HashingEmbedder.embed_words`), which is
what lets the batched fit pipeline and the per-item delta path produce
byte-identical profiles.
"""

from __future__ import annotations

import threading
import zlib
from time import perf_counter

import numpy as np

from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_32,
    universal_hash_family,
)

#: sqrt(12): scales a centred uniform [-0.5, 0.5) draw to unit variance.
_UNIFORM_SCALE = 3.4641016151377544


class HashingEmbedder:
    """Deterministic character-n-gram embedding model.

    Parameters
    ----------
    dim: output vector dimensionality (paper uses 100-d sub-encodings).
    min_n, max_n: n-gram size range; fasttext defaults are 3..6.
    num_buckets: size of the shared n-gram bucket table.
    """

    def __init__(
        self,
        dim: int = 100,
        min_n: int = 3,
        max_n: int = 5,
        num_buckets: int = 1 << 17,
        seed: int = 0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= min_n <= max_n:
            raise ValueError(f"invalid n-gram range [{min_n}, {max_n}]")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.num_buckets = num_buckets
        self.seed = seed
        self._a, self._b = universal_hash_family(dim, seed, tag="bucket")
        #: crc32 seed value mixed into every gram -> bucket route.
        self._crc_seed = stable_hash_32(f"bucket-route-{seed}")
        self._cache: dict[str, np.ndarray] = {}
        self._gram_bucket: dict[str, int] = {}
        #: Drawn slice of the bucket table: bucket id -> row of _table.
        #: _table grows geometrically; rows beyond _table_len are spare
        #: capacity, so incremental draws append without copying the table.
        self._bucket_row: dict[int, int] = {}
        self._table = np.zeros((0, dim))
        self._table_len = 0
        #: Serialises table growth: the parallel embed warm-up calls
        #: ``embed_words`` from several threads, and concurrent draws must
        #: not hand two buckets the same row slot. Row *content* is a pure
        #: function of the bucket id, so assignment order stays irrelevant.
        self._table_lock = threading.Lock()
        #: Cumulative kernel seconds per batched-embed sub-stage (grams =
        #: slab assembly, route = gram -> bucket -> row resolution, draw =
        #: bucket-table extension, pool = gather + segmented reduction).
        #: Surfaced per fit as ``FitStats.embed_breakdown``.
        self.kernel_seconds: dict[str, float] = {
            "grams": 0.0, "route": 0.0, "draw": 0.0, "pool": 0.0,
        }
        self._kernel_lock = threading.Lock()

    # Locks don't copy or pickle; sharded sessions deep-copy the embedder
    # per shard, so the copy recreates its own (uncontended) lock.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_table_lock"]
        del state["_kernel_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._table_lock = threading.Lock()
        self._kernel_lock = threading.Lock()

    def _tick(self, stage: str, start: float) -> None:
        """Accumulate one kernel timing sample (thread-safe)."""
        elapsed = perf_counter() - start
        with self._kernel_lock:
            self.kernel_seconds[stage] += elapsed

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Config only. Everything else — the hash family (``_a``/``_b``/
        ``_crc_seed``), the bucket table, the gram/word caches — is a pure
        function of (dim, seed) re-derived lazily on demand, so persisting
        it would store megabytes of recomputable warmth in every catalog."""
        return {
            "dim": self.dim,
            "min_n": self.min_n,
            "max_n": self.max_n,
            "num_buckets": self.num_buckets,
            "seed": self.seed,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "HashingEmbedder":
        return cls(
            dim=state["dim"],
            min_n=state["min_n"],
            max_n=state["max_n"],
            num_buckets=state["num_buckets"],
            seed=state["seed"],
        )

    # ---------------------------------------------------------- internals

    def _ngrams(self, word: str) -> list[str]:
        """Boundary-marked character n-grams plus the whole word itself."""
        marked = f"<{word}>"
        grams = [marked]  # whole-word entry, as in fasttext
        for n in range(self.min_n, self.max_n + 1):
            if n >= len(marked):
                break
            grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
        return grams

    def _bucket_of(self, gram: str) -> int:
        """Bucket id of one gram, memoised — the scalar routing path (no
        per-call list allocation)."""
        bucket = self._gram_bucket.get(gram)
        if bucket is None:
            bucket = zlib.crc32(gram.encode("utf-8"), self._crc_seed) % self.num_buckets
            self._gram_bucket[gram] = bucket
        return bucket

    def _buckets_of(self, grams: list[str]) -> list[int]:
        """Bucket ids for a gram list, each gram routed once per instance."""
        cache = self._gram_bucket
        crc_seed = self._crc_seed
        num_buckets = self.num_buckets
        out = []
        for gram in grams:
            bucket = cache.get(gram)
            if bucket is None:
                bucket = zlib.crc32(gram.encode("utf-8"), crc_seed) % num_buckets
                cache[gram] = bucket
            out.append(bucket)
        return out

    def _gram_slab(self, words: list[str]) -> tuple[list[int], list[str]]:
        """Flatten every word's grams into one slab with per-word counts.

        Gram order inside a word matches :meth:`_ngrams` exactly (whole
        word first, then sizes ascending, positions ascending), so pooling
        over the slab's per-word spans reproduces the per-word formula.
        """
        start = perf_counter()
        slab: list[str] = []
        counts: list[int] = []
        min_n, max_n = self.min_n, self.max_n
        for word in words:
            marked = f"<{word}>"
            length = len(marked)
            grams = [marked]
            for n in range(min_n, min(max_n, length - 1) + 1):
                grams.extend(marked[i : i + n] for i in range(length - n + 1))
            counts.append(len(grams))
            slab.extend(grams)
        self._tick("grams", start)
        return counts, slab

    def _route_slab(self, slab: list[str]) -> np.ndarray:
        """Table row ids for every gram occurrence of one slab.

        Distinct grams are routed (crc32) and drawn once; occurrences then
        resolve through one gram -> row map, so the per-gram cost of a slab
        is paid per *distinct* gram, not per occurrence.
        """
        start = perf_counter()
        distinct = list(dict.fromkeys(slab))
        buckets = self._buckets_of(distinct)
        self._tick("route", start)
        self._materialise_buckets(buckets)
        start = perf_counter()
        row_of = self._bucket_row
        gram_row = {g: row_of[b] for g, b in zip(distinct, buckets)}
        row_ids = np.fromiter(
            map(gram_row.__getitem__, slab), dtype=np.intp, count=len(slab)
        )
        self._tick("route", start)
        return row_ids

    def _materialise_buckets(self, buckets: list[int]) -> None:
        """Extend the drawn table with any not-yet-drawn bucket ids."""
        row_of = self._bucket_row
        missing_set = {b for b in buckets if b not in row_of}
        if not missing_set:
            return
        with self._table_lock:
            # Re-check under the lock: a concurrent warm thread may have
            # drawn some of these buckets between the test above and here.
            missing = sorted(b for b in missing_set if b not in row_of)
            if not missing:
                return
            self._draw_rows(missing)

    def _draw_rows(self, missing: list[int]) -> None:
        """Draw table rows for ``missing`` bucket ids (caller holds the lock).

        One vectorised expression over every (bucket, component) pair; the
        in-place ops apply the same elementwise sequence as the textbook
        form ``((h + 0.5) / p - 0.5) * scale``, so row bytes are unchanged
        while the temporaries (and one full-rows copy) disappear.
        """
        start = perf_counter()
        p = np.uint64(UNIVERSAL_HASH_PRIME)
        x = np.array(missing, dtype=np.uint64)[:, None]
        hashed = self._a[None, :] * x
        hashed += self._b
        hashed %= p
        # np.add casts the uint64 operand to float64 before adding — the
        # same two steps as astype-then-add, fused into one array pass.
        uniform = np.empty(hashed.shape)
        np.add(hashed, 0.5, out=uniform)
        uniform /= float(p)
        uniform -= 0.5
        base = self._table_len
        needed = base + len(missing)
        if needed > self._table.shape[0]:
            grown = np.zeros((max(needed, 2 * self._table.shape[0]), self.dim))
            grown[:base] = self._table[:base]
            self._table = grown
        np.multiply(uniform, _UNIFORM_SCALE, out=self._table[base:needed])
        self._table_len = needed
        for offset, bucket in enumerate(missing):
            self._bucket_row[bucket] = base + offset
        self._tick("draw", start)

    def _bucket_vector(self, gram: str) -> np.ndarray:
        """The table row of one gram (kept for introspection and tests)."""
        bucket = self._bucket_of(gram)
        self._materialise_buckets([bucket])
        return self._table[self._bucket_row[bucket]]

    def _pool_segments(
        self, gather: np.ndarray, offsets: list[int], counts: list[int]
    ) -> list[np.ndarray]:
        """Mean + unit-norm per gram segment of one stacked row gather.

        ``np.add.reduceat`` reduces each segment independently and
        sequentially, so a segment's sum depends only on its own rows —
        which is exactly what makes the word formula batch-size
        independent: :meth:`embed_word` is the one-segment special case.
        The mean and the norm-guarded division are elementwise, so the
        batched forms below match the per-segment loop byte for byte
        (``x / 1.0`` is exact for the zero-norm rows).
        """
        sums = np.add.reduceat(gather, offsets, axis=0)
        return self._finish_pool(sums, counts)

    def _finish_pool(
        self, sums: np.ndarray, counts: list[int]
    ) -> list[np.ndarray]:
        """Mean + unit-norm rows from per-segment sums (shared tail of the
        full-gather and chunked pooling paths; all elementwise + per-row
        norms, so chunking the sums never changes a row's bytes)."""
        means = sums / np.asarray(counts, dtype=np.float64)[:, None]
        norms = np.empty(len(means))
        for i, row in enumerate(means):
            norms[i] = np.linalg.norm(row)
        out = means / np.where(norms > 0.0, norms, 1.0)[:, None]
        return list(out)

    #: Words per chunk of the slab pooling pass: ~10k gram rows (8 MB of
    #: gathered table) per chunk keeps the gather + reduceat working set
    #: cache-resident — ~3x faster than one full-slab gather, and byte-
    #: identical because reduceat reduces each word's segment independently.
    _POOL_CHUNK_WORDS = 512

    def _pool_slab(
        self, row_ids: np.ndarray, offsets: np.ndarray, counts: list[int]
    ) -> list[np.ndarray]:
        """Chunked gather + segmented reduction over one routed slab."""
        num_words = len(counts)
        sums = np.empty((num_words, self.dim))
        table = self._table
        chunk = self._POOL_CHUNK_WORDS
        for w0 in range(0, num_words, chunk):
            w1 = min(w0 + chunk, num_words)
            r0 = offsets[w0]
            r1 = offsets[w1] if w1 < num_words else len(row_ids)
            gather = table.take(row_ids[r0:r1], axis=0)
            sums[w0:w1] = np.add.reduceat(gather, offsets[w0:w1] - r0, axis=0)
        return self._finish_pool(sums, counts)

    # -------------------------------------------------------------- public

    def embed_word(self, word: str) -> np.ndarray:
        """Return the (unit-normalised) vector for ``word``."""
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        buckets = self._buckets_of(grams)
        self._materialise_buckets(buckets)
        row_of = self._bucket_row
        gather = self._table[[row_of[b] for b in buckets]]
        (vec,) = self._pool_segments(gather, [0], [len(grams)])
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        """Stack word vectors into an (n, dim) matrix via the slab kernel.

        The uncached words' grams are flattened into one slab
        (:meth:`_gram_slab`), each *distinct* gram is routed and drawn once
        (:meth:`_route_slab`), all gram rows are gathered in one pass, and
        the per-word means come from a single segmented reduction — the
        same formula as :meth:`embed_word` (its one-segment special case),
        so every row is byte-identical to the per-word path no matter how
        the vocabulary is batched.
        """
        if not words:
            return np.zeros((0, self.dim))
        cache = self._cache
        lowered = [w.lower() for w in words]
        pending = list(dict.fromkeys(w for w in lowered if w not in cache))
        if pending:
            self._fill_pending(pending)
        return np.vstack([cache[w] for w in lowered])

    def warm_words(self, words: list[str]) -> None:
        """Fill the word cache without assembling the stacked matrix.

        The overlapped fit warm-up only needs the cache side effect of
        :meth:`embed_words`; skipping the final vstack saves one full-
        vocabulary copy per warm pass.
        """
        cache = self._cache
        pending = list(dict.fromkeys(
            w for w in (word.lower() for word in words) if w not in cache
        ))
        if pending:
            self._fill_pending(pending)

    def _fill_pending(self, pending: list[str]) -> None:
        """Run the slab kernel for uncached (lowercased, deduped) words."""
        counts, slab = self._gram_slab(pending)
        row_ids = self._route_slab(slab)
        start = perf_counter()
        offsets = np.zeros(len(counts), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        vectors = self._pool_slab(row_ids, offsets, counts)
        cache = self._cache
        for word, vec in zip(pending, vectors):
            cache[word] = vec
        self._tick("pool", start)

    # ---------------------------------------------- process-pool warm-up

    def cache_fills(self, words: list[str]) -> dict:
        """Embed ``words`` and return the resulting cache fills, picklable.

        The process-backend embed warm-up ships a cold copy of the embedder
        to each worker, calls this on the worker's vocabulary chunk, and
        merges the returned fills into the parent with
        :meth:`merge_cache_fills` — the warm-then-assemble protocol over
        process boundaries. Kernel seconds ride along so the fit breakdown
        can account for work done in workers.
        """
        self.warm_words(words)
        cache = self._cache
        lowered = dict.fromkeys(w.lower() for w in words)
        return {
            "vectors": {w: cache[w] for w in lowered},
            "gram_buckets": dict(self._gram_bucket),
            "kernel_seconds": dict(self.kernel_seconds),
        }

    def merge_cache_fills(self, fills: dict) -> None:
        """Merge one :meth:`cache_fills` result into this instance.

        Fills are idempotent and order-independent: vectors and gram routes
        are pure functions of (dim, seed), so merging the same word from
        two workers writes the same bytes.
        """
        cache = self._cache
        for word, vec in fills["vectors"].items():
            cache.setdefault(word, vec)
        self._gram_bucket.update(fills.get("gram_buckets", {}))
        kernel = fills.get("kernel_seconds")
        if kernel:
            with self._kernel_lock:
                for stage, seconds in kernel.items():
                    self.kernel_seconds[stage] = (
                        self.kernel_seconds.get(stage, 0.0) + seconds
                    )

    def similarity(self, w1: str, w2: str) -> float:
        """Cosine similarity between two word vectors."""
        return float(np.dot(self.embed_word(w1), self.embed_word(w2)))
