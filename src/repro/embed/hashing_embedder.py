"""Subword-hashing word embedder (fasttext-style, deterministic).

fasttext (Bojanowski et al. 2016) represents a word as the sum of vectors of
its character n-grams, looked up in a fixed-size hashed bucket table. We
reproduce the representation side: bucket vectors are generated
deterministically (unit Gaussians seeded by the bucket id), so any two
processes produce identical embeddings without a training phase. The
resulting space encodes *surface-form* similarity: words sharing many
n-grams get high cosine similarity.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import stable_hash_64


class HashingEmbedder:
    """Deterministic character-n-gram embedding model.

    Parameters
    ----------
    dim: output vector dimensionality (paper uses 100-d sub-encodings).
    min_n, max_n: n-gram size range; fasttext defaults are 3..6.
    num_buckets: size of the shared n-gram bucket table.
    """

    def __init__(
        self,
        dim: int = 100,
        min_n: int = 3,
        max_n: int = 5,
        num_buckets: int = 1 << 17,
        seed: int = 0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= min_n <= max_n:
            raise ValueError(f"invalid n-gram range [{min_n}, {max_n}]")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.num_buckets = num_buckets
        self.seed = seed
        self._cache: dict[str, np.ndarray] = {}

    # ---------------------------------------------------------- internals

    def _ngrams(self, word: str) -> list[str]:
        """Boundary-marked character n-grams plus the whole word itself."""
        marked = f"<{word}>"
        grams = [marked]  # whole-word entry, as in fasttext
        for n in range(self.min_n, self.max_n + 1):
            if n >= len(marked):
                break
            grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
        return grams

    def _bucket_vector(self, gram: str) -> np.ndarray:
        bucket = stable_hash_64(gram, self.seed) % self.num_buckets
        rng = np.random.default_rng(bucket ^ (self.seed << 32))
        return rng.standard_normal(self.dim)

    # -------------------------------------------------------------- public

    def embed_word(self, word: str) -> np.ndarray:
        """Return the (unit-normalised) vector for ``word``."""
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        vec = np.zeros(self.dim)
        for gram in grams:
            vec += self._bucket_vector(gram)
        vec /= len(grams)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        """Stack word vectors into an (n, dim) matrix."""
        if not words:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed_word(w) for w in words])

    def similarity(self, w1: str, w2: str) -> float:
        """Cosine similarity between two word vectors."""
        return float(np.dot(self.embed_word(w1), self.embed_word(w2)))
