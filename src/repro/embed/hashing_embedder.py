"""Subword-hashing word embedder (fasttext-style, deterministic).

fasttext (Bojanowski et al. 2016) represents a word as the sum of vectors of
its character n-grams, looked up in a fixed-size hashed bucket table. We
reproduce the representation side with a fully *vectorised* bucket table:
component ``j`` of bucket ``x`` is the centred unit-variance uniform draw
``sqrt(12) * ((h_j(x) + 0.5) / p - 0.5)`` where ``h_j`` is the shared
universal hash family of :mod:`repro.utils.hashing` (fasttext itself
initialises its bucket table uniformly). Each component is a deterministic
draw, distinct buckets decorrelate through the per-component ``(a_j, b_j)``
coefficients, and — unlike per-bucket seeded RNG streams, which force one
Python-level generator construction per bucket — the table rows for *every*
gram of *every* word materialise in one numpy expression. Gram -> bucket
routing uses crc32 (deterministic, C-speed); any two processes produce
identical embeddings without a training phase, and the resulting space
encodes *surface-form* similarity: words sharing many n-grams get high
cosine similarity.

Per-word arithmetic is batch-size independent by construction: a word's
vector is ``table[gram_rows].sum(axis=0)`` normalised, computed identically
whether the word arrives alone (:meth:`HashingEmbedder.embed_word`) or
inside a vocabulary batch (:meth:`HashingEmbedder.embed_words`), which is
what lets the batched fit pipeline and the per-item delta path produce
byte-identical profiles.
"""

from __future__ import annotations

import threading
import zlib

import numpy as np

from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_32,
    universal_hash_family,
)

#: sqrt(12): scales a centred uniform [-0.5, 0.5) draw to unit variance.
_UNIFORM_SCALE = 3.4641016151377544


class HashingEmbedder:
    """Deterministic character-n-gram embedding model.

    Parameters
    ----------
    dim: output vector dimensionality (paper uses 100-d sub-encodings).
    min_n, max_n: n-gram size range; fasttext defaults are 3..6.
    num_buckets: size of the shared n-gram bucket table.
    """

    def __init__(
        self,
        dim: int = 100,
        min_n: int = 3,
        max_n: int = 5,
        num_buckets: int = 1 << 17,
        seed: int = 0,
    ):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if not 1 <= min_n <= max_n:
            raise ValueError(f"invalid n-gram range [{min_n}, {max_n}]")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.num_buckets = num_buckets
        self.seed = seed
        self._a, self._b = universal_hash_family(dim, seed, tag="bucket")
        #: crc32 seed value mixed into every gram -> bucket route.
        self._crc_seed = stable_hash_32(f"bucket-route-{seed}")
        self._cache: dict[str, np.ndarray] = {}
        self._gram_bucket: dict[str, int] = {}
        #: Drawn slice of the bucket table: bucket id -> row of _table.
        #: _table grows geometrically; rows beyond _table_len are spare
        #: capacity, so incremental draws append without copying the table.
        self._bucket_row: dict[int, int] = {}
        self._table = np.zeros((0, dim))
        self._table_len = 0
        #: Serialises table growth: the parallel embed warm-up calls
        #: ``embed_words`` from several threads, and concurrent draws must
        #: not hand two buckets the same row slot. Row *content* is a pure
        #: function of the bucket id, so assignment order stays irrelevant.
        self._table_lock = threading.Lock()

    # Locks don't copy or pickle; sharded sessions deep-copy the embedder
    # per shard, so the copy recreates its own (uncontended) lock.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_table_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._table_lock = threading.Lock()

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Config only. Everything else — the hash family (``_a``/``_b``/
        ``_crc_seed``), the bucket table, the gram/word caches — is a pure
        function of (dim, seed) re-derived lazily on demand, so persisting
        it would store megabytes of recomputable warmth in every catalog."""
        return {
            "dim": self.dim,
            "min_n": self.min_n,
            "max_n": self.max_n,
            "num_buckets": self.num_buckets,
            "seed": self.seed,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "HashingEmbedder":
        return cls(
            dim=state["dim"],
            min_n=state["min_n"],
            max_n=state["max_n"],
            num_buckets=state["num_buckets"],
            seed=state["seed"],
        )

    # ---------------------------------------------------------- internals

    def _ngrams(self, word: str) -> list[str]:
        """Boundary-marked character n-grams plus the whole word itself."""
        marked = f"<{word}>"
        grams = [marked]  # whole-word entry, as in fasttext
        for n in range(self.min_n, self.max_n + 1):
            if n >= len(marked):
                break
            grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
        return grams

    def _buckets_of(self, grams: list[str]) -> list[int]:
        """Bucket ids for a gram list, each gram routed once per instance."""
        cache = self._gram_bucket
        crc_seed = self._crc_seed
        num_buckets = self.num_buckets
        out = []
        for gram in grams:
            bucket = cache.get(gram)
            if bucket is None:
                bucket = zlib.crc32(gram.encode("utf-8"), crc_seed) % num_buckets
                cache[gram] = bucket
            out.append(bucket)
        return out

    def _materialise_buckets(self, buckets: list[int]) -> None:
        """Extend the drawn table with any not-yet-drawn bucket ids."""
        row_of = self._bucket_row
        missing_set = {b for b in buckets if b not in row_of}
        if not missing_set:
            return
        with self._table_lock:
            # Re-check under the lock: a concurrent warm thread may have
            # drawn some of these buckets between the test above and here.
            missing = sorted(b for b in missing_set if b not in row_of)
            if not missing:
                return
            self._draw_rows(missing)

    def _draw_rows(self, missing: list[int]) -> None:
        """Draw table rows for ``missing`` bucket ids (caller holds the lock)."""
        p = np.uint64(UNIVERSAL_HASH_PRIME)
        x = np.array(missing, dtype=np.uint64)[:, None]
        hashed = (self._a[None, :] * x + self._b[None, :]) % p
        uniform = (hashed.astype(np.float64) + 0.5) / float(p)
        rows = (uniform - 0.5) * _UNIFORM_SCALE
        base = self._table_len
        needed = base + len(missing)
        if needed > self._table.shape[0]:
            grown = np.zeros((max(needed, 2 * self._table.shape[0]), self.dim))
            grown[:base] = self._table[:base]
            self._table = grown
        self._table[base:needed] = rows
        self._table_len = needed
        for offset, bucket in enumerate(missing):
            self._bucket_row[bucket] = base + offset

    def _bucket_vector(self, gram: str) -> np.ndarray:
        """The table row of one gram (kept for introspection and tests)."""
        (bucket,) = self._buckets_of([gram])
        self._materialise_buckets([bucket])
        return self._table[self._bucket_row[bucket]]

    def _pool_segments(
        self, gather: np.ndarray, offsets: list[int], counts: list[int]
    ) -> list[np.ndarray]:
        """Mean + unit-norm per gram segment of one stacked row gather.

        ``np.add.reduceat`` reduces each segment independently and
        sequentially, so a segment's sum depends only on its own rows —
        which is exactly what makes the word formula batch-size
        independent: :meth:`embed_word` is the one-segment special case.
        """
        sums = np.add.reduceat(gather, offsets, axis=0)
        out = []
        for row, count in zip(sums, counts):
            vec = row / count
            norm = np.linalg.norm(vec)
            out.append(vec / norm if norm > 0 else vec)
        return out

    # -------------------------------------------------------------- public

    def embed_word(self, word: str) -> np.ndarray:
        """Return the (unit-normalised) vector for ``word``."""
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        buckets = self._buckets_of(grams)
        self._materialise_buckets(buckets)
        row_of = self._bucket_row
        gather = self._table[[row_of[b] for b in buckets]]
        (vec,) = self._pool_segments(gather, [0], [len(grams)])
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        """Stack word vectors into an (n, dim) matrix, batching table draws.

        All bucket rows any uncached word needs are materialised in one
        vectorised pass, every word's gram rows are gathered into one
        stacked matrix, and the per-word means come from a single segmented
        reduction — the same formula as :meth:`embed_word` (its one-segment
        special case), so every row is byte-identical to the per-word path
        no matter how the vocabulary is batched.
        """
        if not words:
            return np.zeros((0, self.dim))
        cache = self._cache
        pending: list[str] = []
        seen_pending: set[str] = set()
        flat_rows: list[int] = []
        offsets: list[int] = []
        counts: list[int] = []
        pending_buckets: list[list[int]] = []
        for word in words:
            word = word.lower()
            if word not in cache and word not in seen_pending:
                seen_pending.add(word)
                pending.append(word)
                pending_buckets.append(self._buckets_of(self._ngrams(word)))
        if pending:
            all_buckets: list[int] = []
            for buckets in pending_buckets:
                all_buckets.extend(buckets)
            self._materialise_buckets(all_buckets)
            row_of = self._bucket_row
            for buckets in pending_buckets:
                offsets.append(len(flat_rows))
                counts.append(len(buckets))
                flat_rows.extend(row_of[b] for b in buckets)
            vectors = self._pool_segments(self._table[flat_rows], offsets, counts)
            for word, vec in zip(pending, vectors):
                cache[word] = vec
        return np.vstack([cache[w.lower()] for w in words])

    def similarity(self, w1: str, w2: str) -> float:
        """Cosine similarity between two word vectors."""
        return float(np.dot(self.embed_word(w1), self.embed_word(w2)))
