"""Pooling of word vectors into a DE-level solo embedding.

CMDL uses mean pooling (paper §3, footnote 3): unlike min or max pooling,
which are biased toward a few extreme values, the mean represents the whole
set — and matches the aggregation used by the Aurum/D3L comparators. Min and
max pooling are provided for the ablation discussed in that footnote.
"""

from __future__ import annotations

import numpy as np


def _empty_guard(matrix: np.ndarray, dim_hint: int | None) -> np.ndarray | None:
    if matrix.size == 0:
        dim = dim_hint if dim_hint is not None else (
            matrix.shape[1] if matrix.ndim == 2 else 0
        )
        return np.zeros(dim)
    return None


def mean_pool(matrix: np.ndarray, dim_hint: int | None = None) -> np.ndarray:
    """Column-wise mean of an (n, dim) word-vector matrix, unit-normalised."""
    empty = _empty_guard(matrix, dim_hint)
    if empty is not None:
        return empty
    pooled = matrix.mean(axis=0)
    norm = np.linalg.norm(pooled)
    return pooled / norm if norm > 0 else pooled


def max_pool(matrix: np.ndarray, dim_hint: int | None = None) -> np.ndarray:
    """Column-wise maximum (biased toward extremes; ablation only)."""
    empty = _empty_guard(matrix, dim_hint)
    if empty is not None:
        return empty
    pooled = matrix.max(axis=0)
    norm = np.linalg.norm(pooled)
    return pooled / norm if norm > 0 else pooled


def min_pool(matrix: np.ndarray, dim_hint: int | None = None) -> np.ndarray:
    """Column-wise minimum (biased toward extremes; ablation only)."""
    empty = _empty_guard(matrix, dim_hint)
    if empty is not None:
        return empty
    pooled = matrix.min(axis=0)
    norm = np.linalg.norm(pooled)
    return pooled / norm if norm > 0 else pooled


POOLERS = {"mean": mean_pool, "max": max_pool, "min": min_pool}
