"""Word-embedding substrate.

CMDL's profiler applies a pre-trained fasttext model to each word and mean
pools the vectors into a 100-d "solo embedding" per DE (paper §3). No
pre-trained model is available offline, so we provide two from-scratch
equivalents:

* :class:`HashingEmbedder` — fasttext-style: a word's vector is the mean of
  vectors of its character n-grams, each drawn deterministically from a
  shared hashed bucket table. Morphologically similar words (drug/drugs,
  reductase/synthase sharing '-ase') land nearby, which is exactly the
  property the discovery signals rely on.
* :class:`PPMIEmbedder` — corpus-trained: positive pointwise mutual
  information co-occurrence matrix factorised with truncated SVD. Words used
  in similar contexts (e.g. two drug names appearing with the same enzymes)
  land nearby — this supplies the *distributional* semantics a pre-trained
  model would.

The default embedder used by the profiler blends both so that vectors carry
surface-form and contextual signal, mirroring what fasttext trained on a
domain corpus provides.
"""

from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder
from repro.embed.pooling import mean_pool, max_pool, min_pool
from repro.embed.blended import BlendedEmbedder, build_lake_embedder

__all__ = [
    "HashingEmbedder",
    "PPMIEmbedder",
    "BlendedEmbedder",
    "build_lake_embedder",
    "mean_pool",
    "max_pool",
    "min_pool",
]
