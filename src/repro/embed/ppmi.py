"""Corpus-trained embeddings via PPMI + truncated SVD.

The classic count-based alternative to skip-gram (Levy & Goldberg 2014):
build a word-context co-occurrence matrix over a sliding window, transform
to positive pointwise mutual information, and factorise with sparse SVD.
Words appearing in similar contexts obtain similar vectors — this is the
distributional-semantics signal a pre-trained fasttext model would
contribute, learned here directly from the lake's own text.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import svds


class PPMIEmbedder:
    """PPMI-SVD embedding model trained on tokenised sentences."""

    def __init__(self, dim: int = 100, window: int = 4, min_count: int = 2,
                 seed: int = 0):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.seed = seed
        self.vocabulary: dict[str, int] = {}
        self._vectors: np.ndarray | None = None

    # ---------------------------------------------------------------- fit

    def fit(self, token_lists: list[list[str]]) -> "PPMIEmbedder":
        """Train on a corpus given as lists of (already lowercased) tokens."""
        word_counts = Counter(t for tokens in token_lists for t in tokens)
        vocab = sorted(w for w, c in word_counts.items() if c >= self.min_count)
        self.vocabulary = {w: i for i, w in enumerate(vocab)}
        v = len(vocab)
        if v == 0:
            self._vectors = np.zeros((0, self.dim))
            return self

        cooc: Counter = Counter()
        for tokens in token_lists:
            ids = [self.vocabulary[t] for t in tokens if t in self.vocabulary]
            for i, wi in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        cooc[(wi, ids[j])] += 1

        if not cooc:
            self._vectors = np.zeros((v, self.dim))
            return self

        rows, cols, data = [], [], []
        total = sum(cooc.values())
        row_sums = Counter()
        col_sums = Counter()
        for (i, j), c in cooc.items():
            row_sums[i] += c
            col_sums[j] += c
        for (i, j), c in cooc.items():
            pmi = np.log((c * total) / (row_sums[i] * col_sums[j]))
            if pmi > 0:
                rows.append(i)
                cols.append(j)
                data.append(pmi)

        matrix = csr_matrix((data, (rows, cols)), shape=(v, v))
        k = min(self.dim, v - 1, matrix.nnz)
        if k < 1:
            self._vectors = np.zeros((v, self.dim))
            return self
        u, s, _ = svds(matrix, k=k, random_state=self.seed)
        # svds returns ascending singular values; order is irrelevant for
        # cosine similarity but we sort for determinism of the layout.
        order = np.argsort(-s)
        emb = u[:, order] * np.sqrt(s[order])
        vectors = np.zeros((v, self.dim))
        vectors[:, : emb.shape[1]] = emb
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._vectors = vectors / norms
        return self

    # -------------------------------------------------------------- lookup

    @property
    def is_fitted(self) -> bool:
        return self._vectors is not None

    def __contains__(self, word: str) -> bool:
        return word in self.vocabulary

    def embed_word(self, word: str) -> np.ndarray:
        """Vector for ``word``; the zero vector for out-of-vocabulary words."""
        if self._vectors is None:
            raise RuntimeError("PPMIEmbedder is not fitted; call fit() first")
        idx = self.vocabulary.get(word.lower())
        if idx is None:
            return np.zeros(self.dim)
        return self._vectors[idx]

    def similarity(self, w1: str, w2: str) -> float:
        v1, v2 = self.embed_word(w1), self.embed_word(w2)
        n1, n2 = np.linalg.norm(v1), np.linalg.norm(v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        return float(np.dot(v1, v2) / (n1 * n2))
