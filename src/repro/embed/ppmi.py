"""Corpus-trained embeddings via PPMI + truncated SVD.

The classic count-based alternative to skip-gram (Levy & Goldberg 2014):
build a word-context co-occurrence matrix over a sliding window, transform
to positive pointwise mutual information, and factorise with sparse SVD.
Words appearing in similar contexts obtain similar vectors — this is the
distributional-semantics signal a pre-trained fasttext model would
contribute, learned here directly from the lake's own text.
"""

from __future__ import annotations

import warnings
from collections import Counter
from itertools import chain, repeat

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import svds


class PPMIEmbedder:
    """PPMI-SVD embedding model trained on tokenised sentences."""

    def __init__(self, dim: int = 100, window: int = 4, min_count: int = 2,
                 seed: int = 0):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.seed = seed
        self.vocabulary: dict[str, int] = {}
        self._vectors: np.ndarray | None = None

    # ---------------------------------------------------------------- fit

    def fit(self, token_lists: list[list[str]]) -> "PPMIEmbedder":
        """Train on a corpus given as lists of (already lowercased) tokens."""
        word_counts = Counter(chain.from_iterable(token_lists))
        vocab = sorted(w for w, c in word_counts.items() if c >= self.min_count)
        self.vocabulary = {w: i for i, w in enumerate(vocab)}
        v = len(vocab)
        if v == 0:
            self._vectors = np.zeros((0, self.dim))
            return self

        # Sliding-window co-occurrence, vectorised: within one token list the
        # (centre, context) pairs at distance d are exactly the aligned
        # slices (ids[:-d], ids[d:]) and their mirror. The whole corpus is
        # flattened into one id array with a parallel list-index array, so
        # the per-distance slices run corpus-wide with a same-list mask and
        # the counts come from one np.unique over encoded pair codes —
        # exact integers, identical to the per-token loop this replaces.
        vocab = self.vocabulary
        # One C-speed pass: every token maps to its id (-1 for out-of-vocab),
        # owners come from one np.repeat, and the OOV mask drops both in
        # lock-step — the same (id, owner) stream as the per-list loop.
        lengths = np.fromiter(
            map(len, token_lists), dtype=np.int64, count=len(token_lists)
        )
        all_ids = np.fromiter(
            map(vocab.get, chain.from_iterable(token_lists), repeat(-1)),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        owner_all = np.repeat(np.arange(len(token_lists), dtype=np.int64), lengths)
        in_vocab = all_ids >= 0
        ids = all_ids[in_vocab]
        owner = owner_all[in_vocab]
        pair_codes: list[np.ndarray] = []
        for d in range(1, min(self.window, len(ids) - 1) + 1):
            same = owner[:-d] == owner[d:]
            left, right = ids[:-d][same], ids[d:][same]
            pair_codes.append(left * v + right)
            pair_codes.append(right * v + left)
        if not pair_codes:
            self._vectors = np.zeros((v, self.dim))
            return self
        codes, counts = np.unique(np.concatenate(pair_codes), return_counts=True)
        if codes.size == 0:
            self._vectors = np.zeros((v, self.dim))
            return self

        pair_rows, pair_cols = codes // v, codes % v
        total = int(counts.sum())
        # Exact integer marginals (float-weighted bincount would round the
        # products for very large corpora).
        row_sums = np.zeros(v, dtype=np.int64)
        col_sums = np.zeros(v, dtype=np.int64)
        np.add.at(row_sums, pair_rows, counts)
        np.add.at(col_sums, pair_cols, counts)
        pmi = np.log(
            (counts * total) / (row_sums[pair_rows] * col_sums[pair_cols])
        )
        positive = pmi > 0
        matrix = csr_matrix(
            (pmi[positive], (pair_rows[positive], pair_cols[positive])),
            shape=(v, v),
        )
        k = min(self.dim, v - 1, matrix.nnz)
        if k < 1:
            self._vectors = np.zeros((v, self.dim))
            return self
        u, s = self._truncated_svd(matrix, k)
        # svds returns ascending singular values; order is irrelevant for
        # cosine similarity but we sort for determinism of the layout.
        order = np.argsort(-s)
        emb = u[:, order] * np.sqrt(s[order])
        vectors = np.zeros((v, self.dim))
        vectors[:, : emb.shape[1]] = emb
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._vectors = vectors / norms
        return self

    #: Vocabulary size above which the PROPACK solver is used: for the
    #: k ~ dim regime it converges in roughly half the ARPACK wall time;
    #: ARPACK remains the small-matrix path and the fallback.
    PROPACK_MIN_VOCAB = 256

    def _truncated_svd(self, matrix, k: int):
        """Rank-k SVD factors (u, s) of the PPMI matrix, seeded.

        Solver choice affects the vector *bytes* (ARPACK and PROPACK agree
        on the subspace, not bit-for-bit), so a fallback must never be
        silent: embeddings fitted on two hosts should either match or be
        loudly flagged as solver-divergent.
        """
        if matrix.shape[0] >= self.PROPACK_MIN_VOCAB:
            try:
                u, s, _ = svds(
                    matrix, k=k, solver="propack", random_state=self.seed
                )
                return u, s
            except Exception as exc:  # pragma: no cover - solver availability
                warnings.warn(
                    "PROPACK SVD unavailable or failed "
                    f"({type(exc).__name__}: {exc}); falling back to ARPACK. "
                    "Embedding bytes will differ from PROPACK-built hosts.",
                    RuntimeWarning,
                    stacklevel=2,
                )
        u, s, _ = svds(matrix, k=k, random_state=self.seed)
        return u, s

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Config + trained factors: the SVD is never re-run on restore
        (solver choice affects vector bytes, so the trained matrix itself
        is the durable artefact)."""
        return {
            "dim": self.dim,
            "window": self.window,
            "min_count": self.min_count,
            "seed": self.seed,
            "vocabulary": dict(self.vocabulary),
            "vectors": self._vectors,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "PPMIEmbedder":
        embedder = cls(
            dim=state["dim"],
            window=state["window"],
            min_count=state["min_count"],
            seed=state["seed"],
        )
        embedder.vocabulary = dict(state["vocabulary"])
        vectors = state["vectors"]
        embedder._vectors = (
            None if vectors is None else np.asarray(vectors, dtype=float)
        )
        return embedder

    # -------------------------------------------------------------- lookup

    @property
    def is_fitted(self) -> bool:
        return self._vectors is not None

    def __contains__(self, word: str) -> bool:
        return word in self.vocabulary

    def embed_word(self, word: str) -> np.ndarray:
        """Vector for ``word``; the zero vector for out-of-vocabulary words."""
        if self._vectors is None:
            raise RuntimeError("PPMIEmbedder is not fitted; call fit() first")
        idx = self.vocabulary.get(word.lower())
        if idx is None:
            return np.zeros(self.dim)
        return self._vectors[idx]

    def similarity(self, w1: str, w2: str) -> float:
        v1, v2 = self.embed_word(w1), self.embed_word(w2)
        n1, n2 = np.linalg.norm(v1), np.linalg.norm(v2)
        if n1 == 0 or n2 == 0:
            return 0.0
        return float(np.dot(v1, v2) / (n1 * n2))
