"""Weak-supervision substrate (the Snorkel stand-in, paper §4.1).

Components:

* :class:`LabelingFunction` — a named weak labeler emitting 1 (related),
  0 (unrelated), or ABSTAIN per data point.
* :class:`GenerativeLabelModel` — estimates each LF's accuracy purely from
  agreements/disagreements (Dawid-Skene EM, the same family as Snorkel's
  generative model) and combines the noisy votes into probabilistic labels.
* :class:`LogisticRegression` — the discriminative stage: trained with the
  standard cross-entropy loss on input features against the probabilistic
  labels, so the model generalises beyond the labeled points.
* :func:`prune_labeling_functions` — the paper's gold-label preprocessing:
  switch off LFs whose measured accuracy falls below a threshold fraction of
  the best LF's accuracy.
"""

from repro.weaklabel.lf import ABSTAIN, LabelingFunction, apply_labeling_functions
from repro.weaklabel.generative import GenerativeLabelModel
from repro.weaklabel.discriminative import LogisticRegression
from repro.weaklabel.gold import lf_accuracies_on_gold, prune_labeling_functions

__all__ = [
    "ABSTAIN",
    "LabelingFunction",
    "apply_labeling_functions",
    "GenerativeLabelModel",
    "LogisticRegression",
    "lf_accuracies_on_gold",
    "prune_labeling_functions",
]
