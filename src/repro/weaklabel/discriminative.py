"""Discriminative stage: logistic regression on input features.

The probabilistic labels from the generative model are put through a
discriminator trained with the standard cross-entropy loss over the input
features, ensuring generalisation beyond the labeled points (paper §4.1).
Soft targets are supported directly (cross entropy against probabilities).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class LogisticRegression:
    """L2-regularised logistic regression trained by full-batch gradient descent."""

    def __init__(
        self,
        lr: float = 0.5,
        l2: float = 1e-4,
        max_iter: int = 500,
        tol: float = 1e-7,
        seed: int = 0,
    ):
        if lr <= 0 or max_iter <= 0:
            raise ValueError("lr and max_iter must be positive")
        self.lr = lr
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self.n_iter_: int = 0

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * z))  # numerically stable sigmoid

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LogisticRegression":
        """Fit on (n, d) features against soft or hard targets in [0, 1]."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ValueError("features and targets disagree on n")
        n, d = x.shape
        rng = ensure_rng(self.seed)
        w = rng.normal(scale=0.01, size=d)
        b = 0.0
        prev_loss = np.inf
        for iteration in range(self.max_iter):
            p = self._sigmoid(x @ w + b)
            error = p - y
            grad_w = x.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
            eps = 1e-12
            loss = float(
                -np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
                + 0.5 * self.l2 * np.dot(w, w)
            )
            self.n_iter_ = iteration + 1
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() the model before calling predict_proba()")
        x = np.asarray(features, dtype=float)
        return self._sigmoid(x @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)
