"""Labeling-function abstraction."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Sentinel vote for "this LF has no opinion on this point".
ABSTAIN = -1


class LabelingFunction:
    """A named weak labeler: point -> {0, 1, ABSTAIN}.

    ``fn`` may encode any heuristic — in CMDL the four main LFs are top-k
    probes of the semantic, syntactic, content-keyword, and metadata-keyword
    indexes (paper Figure 3). The class is deliberately open so new signals
    (e.g. an LLM-based relatedness check) plug in without system changes.
    """

    def __init__(self, name: str, fn: Callable[[object], int]):
        if not name:
            raise ValueError("labeling function needs a non-empty name")
        self.name = name
        self.fn = fn
        self.enabled = True

    def __call__(self, point: object) -> int:
        if not self.enabled:
            return ABSTAIN
        vote = self.fn(point)
        if vote not in (0, 1, ABSTAIN):
            raise ValueError(
                f"labeling function {self.name!r} returned {vote!r}; "
                "expected 0, 1, or ABSTAIN"
            )
        return vote

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"LabelingFunction({self.name!r}, {state})"


def apply_labeling_functions(
    lfs: Sequence[LabelingFunction], points: Sequence[object]
) -> np.ndarray:
    """Build the (n_points, n_lfs) vote matrix with values {0, 1, ABSTAIN}."""
    if not lfs:
        raise ValueError("need at least one labeling function")
    votes = np.full((len(points), len(lfs)), ABSTAIN, dtype=int)
    for j, lf in enumerate(lfs):
        for i, point in enumerate(points):
            votes[i, j] = lf(point)
    return votes
