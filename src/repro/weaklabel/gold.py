"""Gold-label preprocessing: measure and prune weak labeling functions.

With only a handful of LFs, Snorkel cannot always null out a poor one
(paper §4.1). CMDL's remedy: when a tiny gold-labeled set exists, measure
each LF's accuracy on it and switch off every LF whose accuracy is below a
threshold (default 50%) *relative to the best LF's accuracy*.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.weaklabel.lf import ABSTAIN, LabelingFunction, apply_labeling_functions


def lf_accuracies_on_gold(
    lfs: Sequence[LabelingFunction],
    gold_points: Sequence[object],
    gold_labels: Sequence[int],
) -> dict[str, float]:
    """Per-LF accuracy over non-abstain votes on the gold set.

    An LF that abstains everywhere gets accuracy 0.0 (it carries no signal
    on this data and should not survive pruning by default).
    """
    if len(gold_points) != len(gold_labels):
        raise ValueError("gold points and labels disagree on length")
    votes = apply_labeling_functions(lfs, gold_points)
    labels = np.asarray(gold_labels)
    out: dict[str, float] = {}
    for j, lf in enumerate(lfs):
        col = votes[:, j]
        voted = col != ABSTAIN
        if not voted.any():
            out[lf.name] = 0.0
            continue
        out[lf.name] = float((col[voted] == labels[voted]).mean())
    return out


def prune_labeling_functions(
    lfs: Sequence[LabelingFunction],
    gold_points: Sequence[object],
    gold_labels: Sequence[int],
    relative_threshold: float = 0.5,
) -> dict[str, float]:
    """Disable LFs whose gold accuracy < threshold * best accuracy.

    Mutates ``lf.enabled`` in place (disabled LFs abstain on every point),
    and returns the measured accuracies for reporting. At least one LF (the
    best) always remains enabled.
    """
    if not 0.0 < relative_threshold <= 1.0:
        raise ValueError(
            f"relative_threshold must be in (0, 1], got {relative_threshold}"
        )
    accuracies = lf_accuracies_on_gold(lfs, gold_points, gold_labels)
    best = max(accuracies.values(), default=0.0)
    if best <= 0.0:
        return accuracies  # nothing measurable; leave all LFs on
    cutoff = relative_threshold * best
    for lf in lfs:
        lf.enabled = accuracies[lf.name] >= cutoff
    return accuracies
