"""Generative label model: combine noisy LF votes into probabilistic labels.

Snorkel's generative model estimates LF accuracies using only their
agreements and disagreements, then reweights and combines their outputs
(paper §4.1). We implement the canonical member of that family: the binary
Dawid-Skene model fit with EM. Each LF j has a (class-conditional) accuracy
alpha_j = P(vote = y | not abstain); the latent true label y has prior pi.

E-step:  P(y=1 | votes_i) ∝ pi * prod_j alpha_j^[v=1] (1-alpha_j)^[v=0]
M-step:  alpha_j = expected fraction of non-abstain votes matching y.
"""

from __future__ import annotations

import numpy as np

from repro.weaklabel.lf import ABSTAIN


class GenerativeLabelModel:
    """Dawid-Skene EM over a {0, 1, ABSTAIN} vote matrix."""

    def __init__(self, max_iter: int = 100, tol: float = 1e-6, seed: int = 0):
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.lf_accuracies: np.ndarray | None = None
        self.class_prior: float | None = None
        self.n_iter_: int = 0

    def fit(self, votes: np.ndarray) -> "GenerativeLabelModel":
        """Fit LF accuracies from the (n, m) vote matrix."""
        votes = np.asarray(votes)
        if votes.ndim != 2:
            raise ValueError(f"votes must be 2-D, got shape {votes.shape}")
        n, m = votes.shape
        pos = votes == 1
        neg = votes == 0
        voted = votes != ABSTAIN

        # Initialise from the majority-vote posterior: per-LF accuracies are
        # seeded by how often each LF agrees with the majority, which puts
        # EM in the right basin immediately.
        pos_counts = pos.sum(axis=1)
        vote_counts = np.maximum(voted.sum(axis=1), 1)
        prob = np.clip(pos_counts / vote_counts, 0.05, 0.95)
        pi = float(np.clip(prob.mean(), 0.05, 0.95))
        agree0 = pos * prob[:, None] + neg * (1.0 - prob)[:, None]
        denom0 = np.maximum(voted.sum(axis=0).astype(float), 1.0)
        alpha = np.clip(agree0.sum(axis=0) / denom0, 0.05, 0.95)

        prev_ll = -np.inf
        for iteration in range(self.max_iter):
            # E-step in log space for numerical stability.
            log_a = np.log(np.clip(alpha, 1e-6, 1 - 1e-6))
            log_na = np.log(np.clip(1.0 - alpha, 1e-6, 1 - 1e-6))
            # Likelihood of votes under y=1: vote==1 -> alpha, vote==0 -> 1-alpha.
            ll_pos = pos @ log_a + neg @ log_na + np.log(pi)
            ll_neg = neg @ log_a + pos @ log_na + np.log(1.0 - pi)
            shift = np.maximum(ll_pos, ll_neg)
            w_pos = np.exp(ll_pos - shift)
            w_neg = np.exp(ll_neg - shift)
            prob = w_pos / (w_pos + w_neg)

            # M-step.
            pi = float(np.clip(prob.mean(), 0.01, 0.99))
            agree = pos * prob[:, None] + neg * (1.0 - prob)[:, None]
            denom = voted.sum(axis=0).astype(float)
            with np.errstate(invalid="ignore", divide="ignore"):
                alpha_new = np.where(denom > 0, agree.sum(axis=0) / denom, 0.5)
            alpha = np.clip(alpha_new, 0.01, 0.99)

            ll = float(np.sum(shift + np.log(w_pos + w_neg)))
            self.n_iter_ = iteration + 1
            if abs(ll - prev_ll) < self.tol * max(1.0, abs(prev_ll)):
                break
            prev_ll = ll

        # Polarity guard: Dawid-Skene is symmetric under a global label flip.
        # Like Snorkel, we assume labeling functions are better than chance on
        # average; if EM converged to the flipped mode, un-flip it.
        if float(alpha.mean()) < 0.5:
            alpha = 1.0 - alpha
            pi = 1.0 - pi

        self.lf_accuracies = alpha
        self.class_prior = pi
        return self

    def predict_proba(self, votes: np.ndarray) -> np.ndarray:
        """Posterior P(y=1 | votes) for each row of the vote matrix."""
        if self.lf_accuracies is None:
            raise RuntimeError("fit() the model before calling predict_proba()")
        votes = np.asarray(votes)
        pos = votes == 1
        neg = votes == 0
        log_a = np.log(np.clip(self.lf_accuracies, 1e-6, 1 - 1e-6))
        log_na = np.log(np.clip(1.0 - self.lf_accuracies, 1e-6, 1 - 1e-6))
        ll_pos = pos @ log_a + neg @ log_na + np.log(self.class_prior)
        ll_neg = neg @ log_a + pos @ log_na + np.log(1.0 - self.class_prior)
        shift = np.maximum(ll_pos, ll_neg)
        w_pos = np.exp(ll_pos - shift)
        w_neg = np.exp(ll_neg - shift)
        return w_pos / (w_pos + w_neg)

    def fit_predict_proba(self, votes: np.ndarray) -> np.ndarray:
        return self.fit(votes).predict_proba(votes)
