"""Containment-search baseline: minhash sketches + LSH Ensemble (Figure 6).

Builds a minwise-hash signature from the document's content and probes the
LSH Ensemble over column signatures. As the paper observes, the ensemble is
threshold-based and therefore weak at producing *ranked* results — which is
reproduced here by quantising its scores into coarse threshold buckets
before ranking (the cause of the "unexpected reverse trend" on 1A).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DocToTableMethod
from repro.core.indexes import IndexCatalog
from repro.core.profiler import Profile


class ContainmentSearchBaseline(DocToTableMethod):
    """LSH-Ensemble containment search from documents into columns."""

    name = "containment_search"

    def __init__(self, profile: Profile, indexes: IndexCatalog,
                 num_threshold_buckets: int = 4):
        super().__init__(profile)
        self.indexes = indexes
        self.num_buckets = num_threshold_buckets

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        sketch = self.profile.documents[doc_id]
        hits = self.indexes.column_containment.query(
            sketch.signature, k=max(5 * k, 20)
        )
        # Threshold-bucket quantisation: the index can only answer "above
        # threshold t" queries, so fine-grained ranking is unavailable.
        quantised = [
            (col, float(np.ceil(score * self.num_buckets) / self.num_buckets))
            for col, score in hits
        ]
        quantised.sort(key=lambda kv: (-kv[1], kv[0]))
        return self.aggregate_columns_to_tables(quantised, k)
