"""Baseline systems the paper compares against (§6, "Baselines").

* :mod:`repro.baselines.elastic` — keyword-search families: BM25 over
  content+schema, LM-Dirichlet over content+schema, BM25 content-only,
  BM25 schema-only (the four elastic settings of Figure 6).
* :mod:`repro.baselines.containment` — containment search via minwise
  hashing + LSH Ensemble (sketch-based baseline of Figure 6).
* :mod:`repro.baselines.entity_matching` — SpaCy-style entity extraction +
  Jaccard/Jaro matching, plus the domain-tuned "SciSpaCy" variant.
* :mod:`repro.baselines.aurum` — Aurum (Fernandez et al., ICDE 2018):
  Jaccard-similarity knowledge graph; join, PK-FK, and max-combined
  unionability.
* :mod:`repro.baselines.d3l` — D3L (Bogatu et al., ICDE 2020):
  multi-signal sketches combined by weighted Euclidean distance at query
  time.

All baselines consume the same :class:`~repro.core.profiler.Profile` CMDL
uses, so comparisons isolate the *method*, not the feature extraction.
"""

from repro.baselines.base import DocToTableMethod
from repro.baselines.elastic import ElasticSearchBaseline
from repro.baselines.containment import ContainmentSearchBaseline
from repro.baselines.entity_matching import EntityMatchingBaseline
from repro.baselines.aurum import AurumBaseline
from repro.baselines.d3l import D3LBaseline
from repro.baselines.cmdl_adapter import CMDLDocToTable

__all__ = [
    "DocToTableMethod",
    "ElasticSearchBaseline",
    "ContainmentSearchBaseline",
    "EntityMatchingBaseline",
    "AurumBaseline",
    "D3LBaseline",
    "CMDLDocToTable",
]
