"""Common interfaces for evaluated methods."""

from __future__ import annotations

from repro.core.profiler import Profile


class DocToTableMethod:
    """A method ranking tables by relatedness to a query document."""

    name: str = "base"

    def __init__(self, profile: Profile):
        self.profile = profile

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        """Top-k (table, score) for the document. Override in subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------- helpers

    def aggregate_columns_to_tables(
        self, column_hits: list[tuple[str, float]], k: int
    ) -> list[tuple[str, float]]:
        """Column scores -> table scores (max per table), ranked."""
        best: dict[str, float] = {}
        for col_id, score in column_hits:
            table = self.profile.columns[col_id].table_name
            if score > best.get(table, float("-inf")):
                best[table] = score
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
