"""D3L baseline (Bogatu et al., ICDE 2020) as characterised in §6.

D3L builds hash-based sketches over multiple fine-grained column signals —
name, value overlap (Jaccard), format pattern, and word embedding — and
combines them *at query time* as a weighted Euclidean distance over the
per-signal distance vector. For unionability, candidates are gathered per
individual measure first and then ranked by the combined distance
("match-then-combine", vs CMDL's "combine-then-match" ensemble).
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.profiler import Profile
from repro.text.similarity import jaccard, name_similarity

_FORMAT_TOKEN_RE = re.compile(r"[A-Za-z]+|\d+|[^A-Za-z\d]+")


def format_pattern(value: str) -> str:
    """Abstract a cell value into its character-class pattern (D3L's format

    signal): letters -> 'a', digits -> '9', other runs kept verbatim.
    ``DB00642`` -> ``a9``, ``12.5`` -> ``9.9``.
    """
    out = []
    for token in _FORMAT_TOKEN_RE.findall(value):
        if token.isalpha():
            out.append("a")
        elif token.isdigit():
            out.append("9")
        else:
            out.append(token)
    return "".join(out)


class D3LBaseline:
    """Multi-signal join and union discovery with query-time combination."""

    name = "d3l"

    SIGNALS = ("name", "value", "format", "embedding")

    def __init__(self, profile: Profile, weights: dict[str, float] | None = None):
        self.profile = profile
        self.weights = weights or {s: 1.0 for s in self.SIGNALS}
        unknown = set(self.weights) - set(self.SIGNALS)
        if unknown:
            raise ValueError(f"unknown D3L signals: {sorted(unknown)}")
        self._eligible = [
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        ]
        self._formats: dict[str, set[str]] = {}
        for cid, sketch in profile.columns.items():
            self._formats[cid] = {format_pattern(v) for v in sketch.value_set}

    # ------------------------------------------------------------- signals

    def signal_similarities(self, col_a: str, col_b: str) -> dict[str, float]:
        sa = self.profile.columns[col_a]
        sb = self.profile.columns[col_b]
        emb_sim = 0.0
        na = np.linalg.norm(sa.content_embedding)
        nb = np.linalg.norm(sb.content_embedding)
        if na > 0 and nb > 0:
            emb_sim = float(
                np.dot(sa.content_embedding, sb.content_embedding) / (na * nb)
            )
        return {
            "name": name_similarity(sa.column_name, sb.column_name),
            "value": jaccard(sa.value_set, sb.value_set),
            "format": jaccard(self._formats[col_a], self._formats[col_b]),
            "embedding": max(0.0, emb_sim),
        }

    def combined_distance(self, col_a: str, col_b: str) -> float:
        """Weighted Euclidean distance over per-signal distances."""
        sims = self.signal_similarities(col_a, col_b)
        total = 0.0
        for signal, weight in self.weights.items():
            d = 1.0 - sims[signal]
            total += weight * d * d
        return float(np.sqrt(total / sum(self.weights.values())))

    # --------------------------------------------------------------- joins

    def joinable_columns(self, column_id: str, k: int = 10) -> list[tuple[str, float]]:
        """Top-k joinable columns: value-overlap (Jaccard) driven, like §6.2."""
        query = self.profile.columns[column_id]
        scored = []
        for candidate in self._eligible:
            other = self.profile.columns[candidate]
            if candidate == column_id or other.table_name == query.table_name:
                continue
            sims = self.signal_similarities(column_id, candidate)
            # Join relevance leans on value overlap (Jaccard, like Aurum -
            # the paper groups both as Jaccard-similarity systems in §6.2),
            # lightly refined by the name/format sketches.
            score = 0.85 * sims["value"] + 0.1 * sims["name"] + 0.05 * sims["format"]
            if score > 0:
                scored.append((candidate, score))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    # --------------------------------------------------------------- union

    def unionable_tables(self, table_name: str, k: int = 10,
                         candidate_k: int = 10) -> list[tuple[str, float]]:
        """Match-then-combine: per-signal candidates, then weighted distance."""
        query_columns = self.profile.columns_of_table(table_name)
        if not query_columns:
            return []
        others = [
            cid for cid in self.profile.columns
            if self.profile.columns[cid].table_name != table_name
        ]
        candidates: set[str] = set()
        for qc in query_columns:
            for signal in self.SIGNALS:
                scored = [
                    (oc, self.signal_similarities(qc, oc)[signal]) for oc in others
                ]
                scored.sort(key=lambda kv: (-kv[1], kv[0]))
                for oc, s in scored[:candidate_k]:
                    if s > 0:
                        candidates.add(self.profile.columns[oc].table_name)

        results = []
        for candidate in sorted(candidates):
            cand_columns = self.profile.columns_of_table(candidate)
            if not cand_columns:
                continue
            # Per query column, its closest candidate column by combined
            # distance; table distance = mean of the matched distances.
            distances = []
            for qc in query_columns:
                best = min(
                    self.combined_distance(qc, cc) for cc in cand_columns
                )
                distances.append(best)
            table_similarity = 1.0 - float(np.mean(distances))
            results.append((candidate, table_similarity))
        results.sort(key=lambda kv: (-kv[1], kv[0]))
        return results[:k]
