"""Adapter exposing CMDL's cross-modal search as a DocToTableMethod.

Three variants, matching Figure 6's CMDL labels: solo embeddings, joint
embeddings, and joint + gold tuning (the latter differs only in how the
engine was fitted — with gold pairs passed to :meth:`repro.core.system.CMDL.fit`).
"""

from __future__ import annotations

from repro.baselines.base import DocToTableMethod
from repro.core.discovery import DiscoveryEngine


class CMDLDocToTable(DocToTableMethod):
    """Ranks tables with a fitted CMDL engine."""

    def __init__(self, engine: DiscoveryEngine, representation: str = "joint",
                 label: str | None = None):
        super().__init__(engine.profile)
        if representation not in ("joint", "solo"):
            raise ValueError(f"unknown representation {representation!r}")
        self.engine = engine
        self.representation = representation
        self.name = label or f"cmdl_{representation}"

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        drs = self.engine.cross_modal_search(
            doc_id, top_n=k, representation=self.representation
        )
        return list(drs.items)
