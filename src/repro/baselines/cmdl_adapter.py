"""Adapter exposing CMDL's cross-modal search as a DocToTableMethod.

Three variants, matching Figure 6's CMDL labels: solo embeddings, joint
embeddings, and joint + gold tuning (the latter differs only in how the
engine was fitted — with gold pairs passed to :meth:`repro.core.system.CMDL.fit`).
"""

from __future__ import annotations

from repro.baselines.base import DocToTableMethod
from repro.core.discovery import DiscoveryEngine
from repro.core.srql import Q


class CMDLDocToTable(DocToTableMethod):
    """Ranks tables with a fitted CMDL engine via the SRQL query layer."""

    def __init__(self, engine: DiscoveryEngine, representation: str = "joint",
                 label: str | None = None):
        super().__init__(engine.profile)
        if representation not in ("joint", "solo"):
            raise ValueError(f"unknown representation {representation!r}")
        self.engine = engine
        self.representation = representation
        self.name = label or f"cmdl_{representation}"

    def _query(self, doc_id: str, k: int):
        return Q.cross_modal(doc_id, top_n=k, representation=self.representation)

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        drs = self.engine.discover(self._query(doc_id, k))
        return list(drs.items)

    def rank_tables_batch(
        self, doc_ids: list[str], k: int
    ) -> dict[str, list[tuple[str, float]]]:
        """Batched variant for evaluation sweeps: one planned workload,
        shared subplans deduplicated by the executor."""
        results = self.engine.discover_batch(
            [self._query(d, k) for d in doc_ids]
        )
        return {d: list(drs.items) for d, drs in zip(doc_ids, results)}
