"""Elastic-search baselines for doc->table discovery (Figure 6).

Four settings, matching the paper's labels:

* ``bm25`` — BM25 over the union of content values and schema information;
* ``lm_dirichlet`` — LM-Dirichlet over the same union;
* ``bm25_content`` — BM25 over content values only;
* ``bm25_schema`` — BM25 over schema information only.

Each extracts the query document's keywords and searches an index built on
the tabular columns.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import DocToTableMethod
from repro.core.profiler import Profile
from repro.search.engine import SearchEngine

ELASTIC_MODES = ("bm25", "lm_dirichlet", "bm25_content", "bm25_schema")


class ElasticSearchBaseline(DocToTableMethod):
    """Keyword search from document terms into column indexes."""

    def __init__(self, profile: Profile, mode: str = "bm25"):
        if mode not in ELASTIC_MODES:
            raise ValueError(f"unknown elastic mode {mode!r}; expected {ELASTIC_MODES}")
        super().__init__(profile)
        self.mode = mode
        self.name = f"elastic_{mode}"
        ranker = "lm_dirichlet" if mode == "lm_dirichlet" else "bm25"
        self.engine = SearchEngine(ranker=ranker)
        text_columns = set(profile.text_discovery_columns())
        for col_id, sketch in profile.columns.items():
            if col_id not in text_columns:
                continue
            terms: Counter = Counter()
            if mode in ("bm25", "lm_dirichlet", "bm25_content"):
                terms.update(sketch.content_bow.terms)
            if mode in ("bm25", "lm_dirichlet", "bm25_schema"):
                terms.update(sketch.metadata_bow.terms)
            if terms:
                self.engine.add(col_id, terms)

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        sketch = self.profile.documents[doc_id]
        query: Counter = Counter()
        if self.mode == "bm25_schema":
            query.update(sketch.metadata_bow.terms)
            query.update(sketch.content_bow.terms)
        else:
            query.update(sketch.content_bow.terms)
        hits = self.engine.search(query, k=max(5 * k, 20))
        return self.aggregate_columns_to_tables(hits, k)
