"""Aurum baseline (Fernandez et al., ICDE 2018) as characterised in §6.

Aurum materialises schema- and content-similarity links between column
pairs in a knowledge graph. The operative differences from CMDL:

* joins and PK-FK inclusion are scored with symmetric *Jaccard similarity*
  (not set containment) — which collapses under skewed cardinalities;
* unionability combines only schema-name similarity and content Jaccard,
  taking the *maximum* of the two scores, with no ensemble or alignment.

Numeric columns use the same numeric-overlap measure as CMDL (hence the
identical ChEBI row in Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import Profile
from repro.relational.stats import numeric_overlap
from repro.text.similarity import jaccard, name_similarity


@dataclass(frozen=True)
class AurumPKFKLink:
    pk_column: str
    fk_column: str
    score: float


class AurumBaseline:
    """Join, PK-FK, and union discovery with Aurum's scoring choices."""

    name = "aurum"

    def __init__(
        self,
        profile: Profile,
        uniqueness: dict[str, float],
        pkfk_jaccard_threshold: float = 0.5,
        pkfk_name_threshold: float = 0.35,
        key_uniqueness_threshold: float = 0.9,
        numeric_threshold: float = 0.85,
    ):
        self.profile = profile
        self.uniqueness = uniqueness
        self.pkfk_jaccard_threshold = pkfk_jaccard_threshold
        self.pkfk_name_threshold = pkfk_name_threshold
        self.key_uniqueness_threshold = key_uniqueness_threshold
        self.numeric_threshold = numeric_threshold
        self._eligible = [
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        ]

    # ------------------------------------------------------------- joins

    def joinable_columns(self, column_id: str, k: int = 10) -> list[tuple[str, float]]:
        """Top-k joinable columns by Jaccard *similarity*."""
        query = self.profile.columns[column_id]
        scored = []
        for candidate in self._eligible:
            other = self.profile.columns[candidate]
            if candidate == column_id or other.table_name == query.table_name:
                continue
            s = jaccard(query.value_set, other.value_set)
            if s > 0:
                scored.append((candidate, s))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    # -------------------------------------------------------------- pkfk

    def discover_pkfk(self, table_scope: set[str] | None = None) -> list[AurumPKFKLink]:
        """PK-FK via Jaccard similarity as the inclusion measure."""
        links = []
        pk_candidates = [
            cid for cid, s in self.profile.columns.items()
            if s.tags is not None and s.tags.pkfk_discovery
            and self.uniqueness.get(cid, 0.0) >= self.key_uniqueness_threshold
        ]
        fk_candidates = [
            cid for cid, s in self.profile.columns.items()
            if s.tags is not None and s.tags.pkfk_discovery
        ]
        for pk in sorted(pk_candidates):
            pk_sketch = self.profile.columns[pk]
            if table_scope is not None and pk_sketch.table_name not in table_scope:
                continue
            for fk in sorted(fk_candidates):
                fk_sketch = self.profile.columns[fk]
                if fk == pk or fk_sketch.table_name == pk_sketch.table_name:
                    continue
                if table_scope is not None and fk_sketch.table_name not in table_scope:
                    continue
                if name_similarity(pk_sketch.column_name,
                                   fk_sketch.column_name) < self.pkfk_name_threshold:
                    continue
                if pk_sketch.numeric is not None and fk_sketch.numeric is not None:
                    inclusion = numeric_overlap(fk_sketch.numeric, pk_sketch.numeric)
                    if inclusion < self.numeric_threshold:
                        continue
                else:
                    inclusion = jaccard(fk_sketch.value_set, pk_sketch.value_set)
                    if inclusion < self.pkfk_jaccard_threshold:
                        continue
                links.append(AurumPKFKLink(pk, fk, inclusion))
        links.sort(key=lambda l: (-l.score, l.pk_column, l.fk_column))
        return links

    # -------------------------------------------------------------- union

    def unionable_tables(self, table_name: str, k: int = 10) -> list[tuple[str, float]]:
        """Union by max(schema similarity, content Jaccard), no alignment."""
        query_columns = self.profile.columns_of_table(table_name)
        best: dict[str, float] = {}
        for qc in query_columns:
            qs = self.profile.columns[qc]
            for cid, cs in self.profile.columns.items():
                if cs.table_name == table_name:
                    continue
                score = max(
                    name_similarity(qs.column_name, cs.column_name),
                    jaccard(qs.value_set, cs.value_set),
                )
                if score > best.get(cs.table_name, 0.0):
                    best[cs.table_name] = score
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
