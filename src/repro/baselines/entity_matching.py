"""Entity-matching baselines (Figure 6's right-most labels).

The paper's entity-matching family treats each table tuple as a document
and links a query document to a table when an extracted entity matches a
tuple. Two extractors are provided:

* ``generic`` — SpaCy-like surface heuristics: capitalised token spans and
  alphanumeric codes. Without domain tuning these extractions are noisy,
  which yields the near-random accuracy the paper reports on 1A/1C.
* ``domain`` — the "SciSpaCy" analogue: the extractor also knows a domain
  lexicon (e.g. the pharma entity pools), producing competitive quality on
  the Pharma benchmark (1B) only.

Two matchers: token-set Jaccard and Jaro (character-based). Jaro's
quadratic document-x-tuple cost is real; ``max_pairs_budget`` reproduces
the paper's observation that Jaro was infeasible on 1B by letting the
harness detect budget blow-ups instead of running for days.
"""

from __future__ import annotations

import re

from repro.baselines.base import DocToTableMethod
from repro.core.profiler import Profile
from repro.relational.catalog import DataLake
from repro.text.similarity import jaccard, jaro

_CAP_SPAN_RE = re.compile(r"\b[A-Z][a-zA-Z0-9\-]+(?:\s+[A-Z][a-zA-Z0-9\-]+)*\b")
_CODE_RE = re.compile(r"\b[A-Z]{2,}\d{2,}\b")


class EntityExtractor:
    """Heuristic named-entity extractor with optional domain lexicon."""

    def __init__(self, lexicon: set[str] | None = None):
        self.lexicon = {e.lower() for e in (lexicon or set())}

    def extract(self, text: str) -> set[str]:
        entities = {m.group(0) for m in _CAP_SPAN_RE.finditer(text)}
        entities |= {m.group(0) for m in _CODE_RE.finditer(text)}
        if self.lexicon:
            lowered = text.lower()
            entities |= {e for e in self.lexicon if e in lowered}
        return {e.strip() for e in entities if len(e.strip()) >= 3}


class JaroBudgetExceeded(RuntimeError):
    """Raised when the Jaro matcher exceeds its comparison budget.

    Mirrors the paper's 1B experience: "the Jaro-based algorithm was not
    feasible to compute due to the quadratic time complexity" (§6.1).
    """


class EntityMatchingBaseline(DocToTableMethod):
    """Entity extraction + tuple matching, scored per table."""

    def __init__(
        self,
        profile: Profile,
        lake: DataLake,
        matcher: str = "jaccard",
        extractor: str = "generic",
        lexicon: set[str] | None = None,
        match_threshold: float = 0.5,
        max_pairs_budget: int | None = None,
    ):
        if matcher not in ("jaccard", "jaro"):
            raise ValueError(f"unknown matcher {matcher!r}")
        if extractor not in ("generic", "domain"):
            raise ValueError(f"unknown extractor {extractor!r}")
        if extractor == "domain" and not lexicon:
            raise ValueError("domain extractor needs a lexicon")
        super().__init__(profile)
        self.matcher = matcher
        self.extractor = EntityExtractor(lexicon if extractor == "domain" else None)
        self.match_threshold = match_threshold
        self.max_pairs_budget = max_pairs_budget
        self.name = f"entity_{extractor}_{matcher}"
        # Pre-tokenise every tuple once.
        self._table_rows: dict[str, list[set[str]]] = {}
        for table in lake.tables:
            rows = []
            for row in table.rows():
                tokens = set()
                for cell in row:
                    tokens.update(t.lower() for t in cell.split() if len(t) >= 3)
                rows.append(tokens)
            self._table_rows[table.name] = rows
        self._documents = {d.doc_id: d.text for d in lake.documents}

    def rank_tables(self, doc_id: str, k: int) -> list[tuple[str, float]]:
        text = self._documents[doc_id]
        entities = {e.lower() for e in self.extractor.extract(text)}
        if not entities:
            return []
        comparisons = 0
        scored = []
        for table_name, rows in self._table_rows.items():
            best = 0.0
            for row_tokens in rows:
                comparisons += 1
                if self.max_pairs_budget and comparisons > self.max_pairs_budget:
                    raise JaroBudgetExceeded(
                        f"entity matcher exceeded {self.max_pairs_budget} "
                        "tuple comparisons"
                    )
                score = self._match(entities, row_tokens)
                if score > best:
                    best = score
            if best >= self.match_threshold:
                scored.append((table_name, best))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    def _match(self, entities: set[str], row_tokens: set[str]) -> float:
        if self.matcher == "jaccard":
            # Entity-level hit rate: fraction of extracted entities whose
            # tokens appear in the tuple.
            entity_tokens = {t for e in entities for t in e.split()}
            return jaccard(entity_tokens & row_tokens, entity_tokens) if entity_tokens else 0.0
        # Jaro: best entity-token alignment (quadratic in practice).
        best = 0.0
        for entity in entities:
            for token in row_tokens:
                s = jaro(entity, token)
                if s > best:
                    best = s
        return best
