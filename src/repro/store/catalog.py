"""Persistent lake catalogs: save a fitted session, reopen without refit.

A saved catalog is a directory::

    catalog/
        catalog.sqlite      # manifest: kind, shard count, router, journal seq
        shard-0000.sqlite   # per-shard data (monolithic lakes have one)
        shard-0001.sqlite
        ...

Each shard file (see :class:`~repro.store.shard.ShardStore`) carries
everything a cold ``CMDL.fit`` would have produced for that shard — lake
rows, DE sketches, every index structure's ``persistent_state()``, embedder
and pipeline state, the engine's resolved strategy table, and the session's
drift trackers — so :func:`load_catalog` rebuilds a live session with *no*
refitting: byte-identical profiles, indexes restored slab-for-slab, and the
engine's fit-time strategy decisions pinned rather than re-derived against
whatever the profile has since become.

Durability between checkpoints comes from a **write-ahead mutation
journal**: a bound session appends each mutation (add/update/remove/
rebalance/refresh) to the owning shard's journal *before* applying it, and
:meth:`LakeStore.checkpoint` folds the accumulated state back into the data
tables and clears the tail. Reopening a catalog replays any surviving tail
through the public mutators — the reopened session lands on the exact
generation the writer last reached.

Checkpoints are incremental: per-shard dirty tracking (row-level for lake
tables/documents/sketches, doc-side vs column-side for index structures)
rewrites only what the journaled mutations touched; a refresh — which
replaces a shard's whole catalog — falls back to a full rewrite, detected
by identity against the index catalog seen at the previous checkpoint.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path

from repro.core.candidates import CandidateGenerator
from repro.core.discovery import DiscoveryEngine
from repro.core.indexes import IndexCatalog
from repro.core.profiler import Profile, Profiler
from repro.core.session import LakeSession
from repro.core.sharding import ShardedLakeSession, ShardRouter
from repro.core.system import CMDL
from repro.embed.blended import BlendedEmbedder
from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder
from repro.relational.catalog import DataLake
from repro.store.shard import SCHEMA_VERSION, ShardStore
from repro.text.pipeline import DocumentPipeline

#: Default mutation count between automatic checkpoints of a bound session.
DEFAULT_CHECKPOINT_EVERY = 64

#: Index structures persisted as their own state sections, split by which
#: side of the lake mutates them: document churn never touches the column
#: structures and vice versa, so a delta checkpoint rewrites only one side.
DOC_INDEX_SECTIONS = ("doc_content", "doc_metadata", "doc_solo", "doc_joint")
COL_INDEX_SECTIONS = (
    "column_content",
    "column_metadata",
    "column_schema",
    "column_schema_ngrams",
    "column_containment",
    "value_containment",
    "column_numeric",
    "column_semantic",
    "column_solo",
    "column_joint",
)
INDEX_SECTIONS = DOC_INDEX_SECTIONS + COL_INDEX_SECTIONS

_EMBEDDER_CLASSES = {
    cls.__name__: cls
    for cls in (HashingEmbedder, PPMIEmbedder, BlendedEmbedder)
}


class ShardDirt:
    """What one shard's journaled mutations touched since the checkpoint.

    ``tables`` / ``docs`` are dicts used as ordered sets: delta rewrites
    must hit SQLite in the same sequence the live dict was mutated, so the
    DELETE+INSERT rowid order keeps matching dict insertion order.
    """

    __slots__ = (
        "tables",
        "tables_removed",
        "docs",
        "docs_removed",
        "sketches",
        "sketches_removed",
        "all_doc_sketches",
        "doc_indexes",
        "col_indexes",
        "full",
    )

    def __init__(self):
        self.tables: dict[str, None] = {}
        self.tables_removed: set[str] = set()
        self.docs: dict[str, None] = {}
        self.docs_removed: set[str] = set()
        self.sketches: set[str] = set()
        self.sketches_removed: set[str] = set()
        #: A corpus-wide df-filter shift can re-sketch *any* document.
        self.all_doc_sketches = False
        self.doc_indexes = False
        self.col_indexes = False
        self.full = False

    def mark_table(self, name: str) -> None:
        self.tables.pop(name, None)
        self.tables[name] = None
        self.tables_removed.discard(name)

    def mark_doc(self, doc_id: str) -> None:
        self.docs.pop(doc_id, None)
        self.docs[doc_id] = None
        self.docs_removed.discard(doc_id)

    def mark_sketch(self, de_id: str) -> None:
        self.sketches.add(de_id)
        self.sketches_removed.discard(de_id)

    def remove_table(self, name: str) -> None:
        self.tables.pop(name, None)
        self.tables_removed.add(name)

    def remove_doc(self, doc_id: str) -> None:
        self.docs.pop(doc_id, None)
        self.docs_removed.add(doc_id)

    def remove_sketch(self, de_id: str) -> None:
        self.sketches.discard(de_id)
        self.sketches_removed.add(de_id)

    def any(self) -> bool:
        return bool(
            self.full
            or self.tables
            or self.tables_removed
            or self.docs
            or self.docs_removed
            or self.sketches
            or self.sketches_removed
            or self.all_doc_sketches
            or self.doc_indexes
            or self.col_indexes
        )


# ------------------------------------------------------------ state helpers


def _embedder_state(embedder):
    """Class-tagged embedder state; unknown embedder types pickle whole."""
    if embedder is None:
        return None
    name = type(embedder).__name__
    if _EMBEDDER_CLASSES.get(name) is type(embedder):
        return {"class": name, "state": embedder.persistent_state()}
    return {"class": "__pickled__", "state": embedder}


def _restore_embedder(payload):
    if payload is None:
        return None
    if payload["class"] == "__pickled__":
        return payload["state"]
    return _EMBEDDER_CLASSES[payload["class"]].restore_state(payload["state"])


def _config_state(config) -> dict:
    """The config with its live embedder/pipeline objects stripped — those
    are persisted (and restored) through their own state sections."""
    return {
        "config": replace(config, embedder=None, document_pipeline=None),
        "had_embedder": config.embedder is not None,
        "had_pipeline": config.document_pipeline is not None,
    }


def _index_section_state(indexes: IndexCatalog, name: str):
    structure = getattr(indexes, name)
    if structure is None:  # the optional joint forests
        return None
    return structure.persistent_state()


# ----------------------------------------------------------- shard writing


def _write_shard_small(db: ShardStore, session: LakeSession) -> None:
    """The sections rewritten on every checkpoint: cheap, always current."""
    profile = session.profile
    db.put_state(
        "profile_meta",
        {
            "doc_order": list(profile.documents),
            "col_order": list(profile.columns),
            "table_columns": {
                name: list(cols) for name, cols in profile.table_columns.items()
            },
            "structured_seconds": profile.structured_seconds,
            "unstructured_seconds": profile.unstructured_seconds,
            "fit_stats": profile.fit_stats,
        },
    )
    engine = session.engine
    db.put_state(
        "engine",
        {
            "strategy": engine.strategy,
            "operator_strategies": dict(engine.operator_strategies),
            # The *resolved* per-operator table: reopening must pin the
            # fit-time decisions, not re-run "auto" against a profile that
            # journaled mutations may have grown or shrunk.
            "operator_strategy": dict(engine.operator_strategy),
            "uniqueness": dict(engine.uniqueness),
            "pkfk_params": dict(engine.pkfk_params),
            "generation": engine.generation,
        },
    )
    db.put_state(
        "session",
        {
            "gold_pairs": session.gold_pairs,
            "mutations": session.mutations,
            "auto_refresh_threshold": session.auto_refresh_threshold,
            "fit_vocabulary": sorted(session._fit_vocabulary),
            "post_fit_terms": {
                de_id: sorted(terms)
                for de_id, terms in session._post_fit_terms.items()
            },
        },
    )
    indexes = session.indexes
    db.put_state(
        "index:meta",
        {
            "seed": indexes.seed,
            "index_breakdown": dict(indexes.index_breakdown),
            "text_columns": sorted(indexes._text_columns),
        },
    )
    db.put_meta("generation", str(engine.generation))
    db.put_meta("lake_name", session.lake.name)


def _write_shard_full(db: ShardStore, session: LakeSession) -> None:
    db.clear("lake_tables")
    db.clear("lake_documents")
    db.clear("sketches")
    for table in session.lake.tables:
        db.put_row("lake_tables", table.name, table)
    for document in session.lake.documents:
        db.put_row("lake_documents", document.doc_id, document)
    for de_id, sketch in session.profile.documents.items():
        db.put_sketch(de_id, sketch.kind, sketch)
    for de_id, sketch in session.profile.columns.items():
        db.put_sketch(de_id, sketch.kind, sketch)
    indexes = session.indexes
    for name in INDEX_SECTIONS:
        db.put_state(f"index:{name}", _index_section_state(indexes, name))
    db.put_state("embedder", _embedder_state(session.profiler.embedder))
    db.put_state("pipeline", session.profiler.pipeline.persistent_state())
    db.put_state("config", _config_state(session.cmdl.config))
    db.put_state("joint", {"model": session.cmdl.joint_model})
    _write_shard_small(db, session)


def _write_shard_delta(
    db: ShardStore, session: LakeSession, dirt: ShardDirt
) -> None:
    for name in dirt.tables_removed:
        db.delete_row("lake_tables", name)
    for name in dirt.tables:  # insertion order — see ShardDirt
        if session.lake.has_table(name):
            db.put_row("lake_tables", name, session.lake.table(name))
    for doc_id in dirt.docs_removed:
        db.delete_row("lake_documents", doc_id)
    for doc_id in dirt.docs:
        if session.lake.has_document(doc_id):
            db.put_row("lake_documents", doc_id, session.lake.document(doc_id))

    for de_id in sorted(dirt.sketches_removed):
        db.delete_sketch(de_id)
    dirty_sketches = set(dirt.sketches)
    if dirt.all_doc_sketches:
        # A df-filter shift may have re-sketched any document: rewrite the
        # document side wholesale (sketch row order is immaterial — restore
        # orders by the profile_meta lists).
        db.delete_sketches_of_kind("document")
        dirty_sketches.update(session.profile.documents)
    for de_id in sorted(dirty_sketches):
        sketch = session.profile.documents.get(de_id)
        if sketch is None:
            sketch = session.profile.columns.get(de_id)
        if sketch is not None:
            db.put_sketch(de_id, sketch.kind, sketch)

    indexes = session.indexes
    if dirt.doc_indexes:
        for name in DOC_INDEX_SECTIONS:
            db.put_state(f"index:{name}", _index_section_state(indexes, name))
    if dirt.col_indexes:
        for name in COL_INDEX_SECTIONS:
            db.put_state(f"index:{name}", _index_section_state(indexes, name))
    if dirt.all_doc_sketches or dirt.docs or dirt.docs_removed:
        # Document churn refits the df filter (and its pinned copies).
        db.put_state("pipeline", session.profiler.pipeline.persistent_state())
    _write_shard_small(db, session)


# ---------------------------------------------------------- shard restoring


def _restore_shard(db: ShardStore) -> LakeSession:
    """One shard file -> one live :class:`LakeSession`, no refitting."""
    pipeline = DocumentPipeline.restore_state(db.get_state("pipeline"))
    embedder = _restore_embedder(db.get_state("embedder"))
    config_payload = db.get_state("config")
    config = config_payload["config"]
    if config_payload["had_pipeline"]:
        config.document_pipeline = pipeline
    if config_payload["had_embedder"]:
        config.embedder = embedder

    lake = DataLake(name=db.get_meta("lake_name", "lake"))
    for _, table in db.iter_rows("lake_tables"):
        lake.add_table(table)
    for _, document in db.iter_rows("lake_documents"):
        lake.add_document(document)

    sketches = {de_id: sketch for de_id, _, sketch in db.iter_sketches()}
    profile_meta = db.get_state("profile_meta")
    profile = Profile(
        documents={d: sketches[d] for d in profile_meta["doc_order"]},
        columns={c: sketches[c] for c in profile_meta["col_order"]},
        table_columns={
            name: list(cols)
            for name, cols in profile_meta["table_columns"].items()
        },
        structured_seconds=profile_meta["structured_seconds"],
        unstructured_seconds=profile_meta["unstructured_seconds"],
        fit_stats=profile_meta["fit_stats"],
    )

    index_meta = db.get_state("index:meta")
    index_state = {
        "seed": index_meta["seed"],
        "index_breakdown": index_meta["index_breakdown"],
        "text_columns": index_meta["text_columns"],
    }
    for name in INDEX_SECTIONS:
        index_state[name] = db.get_state(f"index:{name}")
    indexes = IndexCatalog.restore_state(profile, index_state)
    joint_model = db.get_state("joint")["model"]

    cmdl = CMDL(config)
    cmdl.profiler = Profiler(
        embedding_dim=config.embedding_dim,
        num_hashes=config.num_hashes,
        pooling=config.pooling,
        embedder=embedder,
        pipeline=pipeline,
        seed=config.seed,
        workers=config.fit_workers,
    )
    cmdl.profile = profile
    cmdl.indexes = indexes
    cmdl.joint_model = joint_model
    cmdl.fit_stats = profile.fit_stats

    engine_state = db.get_state("engine")
    engine = DiscoveryEngine(
        profile=profile,
        indexes=indexes,
        joint_model=joint_model,
        uniqueness=engine_state["uniqueness"],
        pkfk_params=engine_state["pkfk_params"],
        strategy=engine_state["strategy"],
        operator_strategies=engine_state["operator_strategies"],
    )
    # Pin the fit-time resolution (an "auto" strategy re-resolved here would
    # see the journal-mutated profile, not the one the writer fitted).
    engine.operator_strategy = dict(engine_state["operator_strategy"])
    engine.generation = engine_state["generation"]
    if "indexed" in engine.operator_strategy.values():
        if engine.candidates is None:
            engine.candidates = CandidateGenerator(
                profile, indexes, generation=engine.generation
            )
        else:
            engine.candidates.generation = engine.generation
    else:
        engine.candidates = None
    cmdl.engine = engine

    session_state = db.get_state("session")
    session = LakeSession(
        cmdl,
        lake,
        gold_pairs=session_state["gold_pairs"],
        auto_refresh_threshold=session_state["auto_refresh_threshold"],
    )
    session.mutations = session_state["mutations"]
    # Drift trackers survive the reopen: the fit-time vocabulary, not the
    # current profile's, is the OOV baseline.
    session._fit_vocabulary = set(session_state["fit_vocabulary"])
    session._post_fit_terms = {
        de_id: frozenset(terms)
        for de_id, terms in session_state["post_fit_terms"].items()
    }
    return session


# -------------------------------------------------------------- lake store


class LakeStore:
    """A saved catalog directory bound to one live session.

    Created by ``session.save(path)`` (which full-writes every shard) or by
    :func:`load_catalog` (which restores the session from disk). While
    bound, every session mutation passes through :meth:`journal_scope` —
    write-ahead journaling plus dirty tracking — and :meth:`checkpoint`
    folds the journal tail into the data tables incrementally.
    """

    def __init__(
        self,
        path: Path,
        kind: str,
        catalog_db: ShardStore,
        shard_dbs: list[ShardStore],
        session,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ):
        self.path = path
        self.kind = kind
        self.catalog_db = catalog_db
        self.shard_dbs = shard_dbs
        self.session = session
        self.checkpoint_every = checkpoint_every
        self._seq = int(catalog_db.get_meta("journal_seq", "0"))
        self._dirt = [ShardDirt() for _ in shard_dbs]
        self._seen_indexes = [
            weakref.ref(s.indexes) for s in self._shard_sessions()
        ]
        self._pending = 0
        self._active = False
        self._replaying = False

    # ------------------------------------------------------------- create

    @classmethod
    def create(cls, path: str | Path, session) -> "LakeStore":
        """Full-write ``session`` into a (possibly pre-existing) catalog
        directory and bind the store to the session."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        kind = (
            "sharded" if isinstance(session, ShardedLakeSession) else "monolithic"
        )
        shard_sessions = session.shards if kind == "sharded" else [session]
        # Drop shard files (and WAL sidecars) a previous, differently-shaped
        # catalog left behind.
        keep = {f"shard-{i:04d}.sqlite" for i in range(len(shard_sessions))}
        for stale in path.glob("shard-*.sqlite*"):
            if stale.name.split(".sqlite")[0] + ".sqlite" not in keep:
                stale.unlink()
        catalog_db = ShardStore(path / "catalog.sqlite", create=True)
        shard_dbs = [
            ShardStore(path / f"shard-{i:04d}.sqlite", create=True)
            for i in range(len(shard_sessions))
        ]
        store = cls(path, kind, catalog_db, shard_dbs, session)
        for db, shard_session in zip(shard_dbs, shard_sessions):
            _write_shard_full(db, shard_session)
            db.clear_journal()
            db.commit()
        store._seq = 0
        store._write_manifest()
        session._store = store
        return store

    # --------------------------------------------------------------- open

    @classmethod
    def open(cls, path: str | Path):
        """Reopen a saved catalog: restore the session, replay the journal
        tail, and return the bound live session."""
        path = Path(path)
        catalog_db = ShardStore(path / "catalog.sqlite")
        kind = catalog_db.get_meta("kind")
        if kind not in ("monolithic", "sharded"):
            raise ValueError(f"catalog at {path} has unknown kind {kind!r}")
        num_shards = int(catalog_db.get_meta("num_shards", "1"))
        checkpoint_every = int(
            catalog_db.get_meta("checkpoint_every", str(DEFAULT_CHECKPOINT_EVERY))
        )
        shard_dbs = [
            ShardStore(path / f"shard-{i:04d}.sqlite") for i in range(num_shards)
        ]
        if kind == "monolithic":
            session = _restore_shard(shard_dbs[0])
        else:
            shards = [_restore_shard(db) for db in shard_dbs]
            router_state = catalog_db.get_state("router")
            router = ShardRouter(
                router_state["num_shards"],
                assignments=dict(router_state["assignments"]),
                seed=router_state["seed"],
            )
            top = catalog_db.get_state("top")
            config_payload = top["config"]
            config = config_payload["config"]
            # The top-level config's live objects come back from shard 0's
            # restored copies (shard fits deep-copy them anyway).
            if config_payload["had_pipeline"]:
                config.document_pipeline = shards[0].profiler.pipeline
            if config_payload["had_embedder"]:
                config.embedder = shards[0].profiler.embedder
            df_pipeline = (
                None
                if top["df_pipeline"] is None
                else DocumentPipeline.restore_state(top["df_pipeline"])
            )
            session = ShardedLakeSession._restore(
                config=config,
                router=router,
                name=catalog_db.get_meta("name", "lake"),
                global_stats=top["global_stats"],
                gold_pairs=top["gold_pairs"],
                auto_refresh_threshold=top["auto_refresh_threshold"],
                fit_workers=top["fit_workers"],
                df_pipeline=df_pipeline,
                shards=shards,
            )
        store = cls(
            path,
            kind,
            catalog_db,
            shard_dbs,
            session,
            checkpoint_every=checkpoint_every,
        )
        session._store = store
        store._replay()
        return session

    # ----------------------------------------------------------- journal

    @contextmanager
    def journal_scope(self, op: str, payload: dict):
        """Write-ahead wrap of one session mutation.

        The record is journaled *before* the mutation runs (a crash mid-op
        replays it to completion on reopen) and dropped again if the
        mutator raises before touching anything (e.g. a KeyError on an
        unknown name). Nested entries — an auto-refresh firing inside a
        mutator — are deliberately not journaled: replaying the outer op
        re-triggers them deterministically.
        """
        if self._active:
            yield
            return
        self._active = True
        try:
            shard_idx = self._route(op, payload)
            pre = self._pre_dirt(shard_idx, op, payload)
            seq = None
            if not self._replaying:
                seq = self._next_seq()
                db = self.shard_dbs[shard_idx]
                db.append_journal(seq, op, payload)
                db.commit()
            try:
                yield
            except BaseException:
                if seq is not None:
                    db.delete_journal(seq)
                    db.commit()
                raise
            self._post_dirt(shard_idx, op, payload, pre)
            if not self._replaying:
                self._pending += 1
                if self.checkpoint_every and self._pending >= self.checkpoint_every:
                    self.checkpoint()
        finally:
            self._active = False

    def _next_seq(self) -> int:
        self._seq += 1
        self.catalog_db.put_meta("journal_seq", str(self._seq))
        self.catalog_db.commit()
        return self._seq

    def _replay(self) -> None:
        entries: list[tuple[int, str, object]] = []
        for db in self.shard_dbs:
            entries.extend(db.journal_entries())
        entries.sort(key=lambda entry: entry[0])
        if not entries:
            return
        self._replaying = True
        try:
            for _, op, payload in entries:
                self._apply(op, payload)
        finally:
            self._replaying = False
        self._pending = len(entries)

    def _apply(self, op: str, payload) -> None:
        session = self.session
        if op == "add_table":
            session.add_table(payload["table"])
        elif op == "update_table":
            session.update_table(payload["table"])
        elif op == "add_documents":
            session.add_documents(payload["documents"])
        elif op == "remove":
            session.remove(payload["name"])
        elif op == "rebalance":
            session.rebalance(payload["assignments"])
        elif op == "refresh":
            if payload["with_gold"]:
                session.refresh(payload["gold_pairs"])
            else:
                session.refresh()
        else:
            raise ValueError(f"unknown journal op {op!r}")

    # ------------------------------------------------------------ routing

    def _shard_sessions(self) -> list[LakeSession]:
        if self.kind == "sharded":
            return self.session.shards
        return [self.session]

    def _route(self, op: str, payload) -> int:
        """The shard whose journal carries the record (placement only —
        replay ordering is by the catalog-global seq)."""
        if self.kind == "monolithic":
            return 0
        router = self.session.router
        if op in ("add_table", "update_table"):
            return router.shard_of(payload["table"].name)
        if op == "remove":
            return router.shard_of(payload["name"])
        if op == "add_documents":
            return router.shard_of(payload["documents"][0].doc_id)
        return 0  # rebalance, refresh: lake-wide ops

    # ------------------------------------------------------ dirty tracking

    def _doc_dirt_shards(self, owner: int) -> list[int]:
        """Shards whose document side a doc mutation may touch: the owner,
        plus every sibling when a corpus-wide df filter is in play."""
        if self.kind == "sharded" and self.session.global_stats:
            return list(range(len(self.shard_dbs)))
        return [owner]

    def _pre_dirt(self, shard_idx: int, op: str, payload) -> dict:
        session = self._shard_sessions()[shard_idx]
        if op == "update_table":
            name = payload["table"].name
            return {
                "old_columns": list(session.profile.columns_of_table(name))
            }
        if op == "remove":
            name = payload["name"]
            if session.lake.has_table(name):
                return {
                    "kind": "table",
                    "columns": list(session.profile.columns_of_table(name)),
                }
            return {"kind": "document"}
        return {}

    def _post_dirt(self, shard_idx: int, op: str, payload, pre: dict) -> None:
        dirt = self._dirt[shard_idx]
        session = self._shard_sessions()[shard_idx]
        if op == "add_table":
            name = payload["table"].name
            dirt.mark_table(name)
            for col_id in session.profile.columns_of_table(name):
                dirt.mark_sketch(col_id)
            dirt.col_indexes = True
        elif op == "update_table":
            name = payload["table"].name
            dirt.mark_table(name)
            new_columns = set(session.profile.columns_of_table(name))
            for col_id in set(pre["old_columns"]) - new_columns:
                dirt.remove_sketch(col_id)
            for col_id in session.profile.columns_of_table(name):
                dirt.mark_sketch(col_id)
            dirt.col_indexes = True
        elif op == "add_documents":
            for document in payload["documents"]:
                owner = (
                    self.session.router.shard_of(document.doc_id)
                    if self.kind == "sharded"
                    else shard_idx
                )
                self._dirt[owner].mark_doc(document.doc_id)
            for idx in self._doc_dirt_shards(shard_idx):
                self._dirt[idx].all_doc_sketches = True
                self._dirt[idx].doc_indexes = True
        elif op == "remove":
            if pre["kind"] == "table":
                dirt.remove_table(payload["name"])
                for col_id in pre["columns"]:
                    dirt.remove_sketch(col_id)
                dirt.col_indexes = True
            else:
                dirt.remove_doc(payload["name"])
                dirt.remove_sketch(payload["name"])
                for idx in self._doc_dirt_shards(shard_idx):
                    self._dirt[idx].all_doc_sketches = True
                    self._dirt[idx].doc_indexes = True
        elif op in ("rebalance", "refresh"):
            for shard_dirt in self._dirt:
                shard_dirt.full = True
        else:  # pragma: no cover - _apply validates first
            raise ValueError(f"unknown journal op {op!r}")

    # --------------------------------------------------------- checkpoint

    def checkpoint(self) -> None:
        """Fold the journal tail into the data tables and clear it.

        Shards whose index catalog was replaced since the last checkpoint
        (an explicit or drift-triggered refresh) are rewritten in full; the
        rest get a delta write covering exactly what the dirty tracker saw.
        """
        shard_sessions = self._shard_sessions()
        for i, (db, shard_session) in enumerate(
            zip(self.shard_dbs, shard_sessions)
        ):
            dirt = self._dirt[i]
            if self._seen_indexes[i]() is not shard_session.indexes:
                dirt.full = True
            if dirt.full:
                _write_shard_full(db, shard_session)
            elif dirt.any():
                _write_shard_delta(db, shard_session, dirt)
            db.clear_journal()
            db.commit()
            self._dirt[i] = ShardDirt()
            self._seen_indexes[i] = weakref.ref(shard_session.indexes)
        self._write_manifest()
        self._pending = 0

    def _write_manifest(self) -> None:
        catalog = self.catalog_db
        catalog.put_meta("kind", self.kind)
        catalog.put_meta("num_shards", str(len(self.shard_dbs)))
        catalog.put_meta("checkpoint_every", str(self.checkpoint_every))
        catalog.put_meta("journal_seq", str(self._seq))
        session = self.session
        if self.kind == "sharded":
            catalog.put_meta("name", session.name)
            catalog.put_state(
                "router",
                {
                    "num_shards": session.router.num_shards,
                    "seed": session.router.seed,
                    "assignments": dict(session.router.assignments),
                },
            )
            catalog.put_state(
                "top",
                {
                    "global_stats": session.global_stats,
                    "gold_pairs": session.gold_pairs,
                    "auto_refresh_threshold": session.auto_refresh_threshold,
                    "fit_workers": session.fit_workers,
                    "config": _config_state(session.config),
                    "df_pipeline": (
                        None
                        if session._df_pipeline is None
                        else session._df_pipeline.persistent_state()
                    ),
                },
            )
        else:
            catalog.put_meta("name", session.lake.name)
        catalog.commit()

    # -------------------------------------------------------------- admin

    def pending_journal(self) -> int:
        """Journaled mutations not yet folded into a checkpoint."""
        return self._pending

    def catalog_bytes(self) -> int:
        """Total on-disk size of the catalog directory's SQLite files."""
        return self.catalog_db.file_bytes() + sum(
            db.file_bytes() for db in self.shard_dbs
        )

    def close(self) -> None:
        """Release every SQLite handle (idempotent — double-close through
        a session's context manager plus an explicit close() is safe, and
        an unfolded journal tail stays durable for the next reopen)."""
        for db in self.shard_dbs:
            db.close()
        self.catalog_db.close()


def restore_shard_session(db: ShardStore) -> LakeSession:
    """Restore one shard file into a live monolithic session — the shard
    worker bootstrap (:mod:`repro.serve.worker`) and any tool that wants a
    single shard without paying for the whole lake."""
    return _restore_shard(db)


def replay_shard_journal(
    db: ShardStore,
    session: LakeSession,
    owns_document=None,
    sibling_entries=None,
) -> int:
    """Replay one shard's journal tail through its restored session.

    This is the single-shard recovery entry point: a respawned shard
    worker calls it at boot so the shard lands back on its exact
    pre-crash state without the front-end replaying anything. Entries
    stay in the journal (checkpointing folds them later); the return
    value is how many entries mutated this shard.

    ``owns_document`` — optional ``doc_id -> bool`` predicate. A
    journaled ``add_documents`` may batch documents routed to *several*
    shards while the record sits in one shard's journal (placement is
    the first document's owner); the predicate filters any batch down to
    the documents this shard actually owns. Table ops never need it:
    their journal placement is the owning shard.

    ``sibling_entries`` — journal entries read from the *other* shards
    of the same catalog. Only their ``add_documents`` records matter
    (the cross-shard case above, seen from the non-placement side); they
    are merged with this shard's own tail and the union replays in
    global seq order, so adds and removes of the same document land in
    their original order.

    Replay is tolerant of entries whose mutator raises (they failed the
    same way originally, so skipping reproduces the pre-crash state) but
    refuses lake-wide ops (``rebalance``/``refresh``): those cannot be
    applied shard-locally and are rejected at serve time anyway.
    """
    entries = list(db.journal_entries())
    if sibling_entries:
        entries.extend(
            (seq, op, payload)
            for seq, op, payload in sibling_entries
            if op == "add_documents"
        )
        entries.sort(key=lambda entry: entry[0])
    replayed = 0
    for _, op, payload in entries:
        if op in ("rebalance", "refresh"):
            raise ValueError(
                f"shard journal holds lake-wide op {op!r}; reopen the "
                f"catalog with repro.open_lake() to fold it before serving"
            )
        try:
            if op == "add_table":
                session.add_table(payload["table"])
            elif op == "update_table":
                session.update_table(payload["table"])
            elif op == "add_documents":
                documents = payload["documents"]
                if owns_document is not None:
                    documents = [
                        doc for doc in documents if owns_document(doc.doc_id)
                    ]
                if not documents:
                    continue
                session.add_documents(documents)
            elif op == "remove":
                session.remove(payload["name"])
            else:
                raise ValueError(f"unknown journal op {op!r}")
        except (KeyError, ValueError):
            # The mutator rejected the entry (duplicate name, unknown
            # target): it raised identically when first applied, so the
            # shard state never included it. Skip and keep replaying.
            continue
        replayed += 1
    return replayed


def load_catalog(path: str | Path):
    """Reopen a saved lake catalog as a live session — no refitting.

    Returns a :class:`~repro.core.session.LakeSession` or
    :class:`~repro.core.sharding.ShardedLakeSession` according to what was
    saved; any journal tail left by an unsaved writer is replayed so the
    session lands on the exact generation the writer last reached.
    """
    return LakeStore.open(path)
