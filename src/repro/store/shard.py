"""One durable catalog file: the SQLite layer under a saved shard.

Each shard of a saved lake (a monolithic session counts as one shard) is a
single SQLite file in WAL mode holding

* ``meta`` — schema version, generation stamp, lake name;
* ``lake_tables`` / ``lake_documents`` — the raw lake rows, pickled, with
  ``rowid`` preserving the live session's dict insertion order (writes are
  DELETE+INSERT, replicating dict move-to-end semantics);
* ``sketches`` — one pickled :class:`~repro.core.profiler.DESketch` per DE;
* ``state`` + ``arrays`` — named state sections: the residual pickle of a
  ``persistent_state()`` dict plus its extracted numpy slabs as typed blobs
  (see :mod:`repro.store.codec`);
* ``journal`` — the write-ahead mutation tail since the last checkpoint.

The wrapper stays dumb on purpose: it moves payloads, it does not know what
a profile or an index is. Orchestration lives in
:mod:`repro.store.catalog`.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from repro.store import codec

#: Bumped on any incompatible layout change; a mismatch refuses to open.
SCHEMA_VERSION = 1


class CatalogCorrupt(ValueError):
    """A shard catalog file is unreadable, truncated, or the wrong schema.

    Subclasses :class:`ValueError` so pre-existing schema-mismatch
    handlers keep working; carries the shard path in its message so a
    worker boot failure names the exact file to inspect.
    """

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS lake_tables (
    name TEXT PRIMARY KEY,
    payload BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS lake_documents (
    doc_id TEXT PRIMARY KEY,
    payload BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS sketches (
    de_id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS state (
    section TEXT PRIMARY KEY,
    payload BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS arrays (
    section TEXT NOT NULL,
    idx INTEGER NOT NULL,
    dtype TEXT NOT NULL,
    shape TEXT NOT NULL,
    data BLOB NOT NULL,
    PRIMARY KEY (section, idx)
);
CREATE TABLE IF NOT EXISTS journal (
    seq INTEGER PRIMARY KEY,
    op TEXT NOT NULL,
    payload BLOB NOT NULL
);
"""

#: Row tables addressable through the generic row helpers.
_ROW_TABLES = {
    "lake_tables": "name",
    "lake_documents": "doc_id",
}


class ShardStore:
    """SQLite-backed storage for one shard of a saved lake catalog."""

    def __init__(self, path: str | Path, create: bool = False):
        self.path = Path(path)
        if not create and not self.path.exists():
            raise FileNotFoundError(f"no shard catalog at {self.path}")
        # check_same_thread=False: sharded sessions run mutators from pool
        # threads; the store serialises its own writes at the session layer.
        self._closed = False
        self.conn = sqlite3.connect(str(self.path), check_same_thread=False)
        try:
            self.conn.execute("PRAGMA journal_mode=WAL")
            self.conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError as exc:
            if create:
                raise
            raise CatalogCorrupt(
                f"catalog file {self.path} is not a readable shard "
                f"catalog: {exc}"
            ) from exc
        if create:
            self.conn.executescript(_SCHEMA)
            self.put_meta("schema_version", str(SCHEMA_VERSION))
            self.conn.commit()
        else:
            try:
                found = self.get_meta("schema_version")
            except sqlite3.DatabaseError as exc:
                raise CatalogCorrupt(
                    f"catalog file {self.path} is not a readable shard "
                    f"catalog: {exc}"
                ) from exc
            if found != str(SCHEMA_VERSION):
                raise CatalogCorrupt(
                    f"catalog file {self.path} has schema version {found!r}; "
                    f"this build reads version {SCHEMA_VERSION}"
                )

    # --------------------------------------------------------------- meta

    def put_meta(self, key: str, value: str) -> None:
        self.conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def get_meta(self, key: str, default: str | None = None) -> str | None:
        row = self.conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    # --------------------------------------------------------------- rows

    def put_row(self, table: str, key: str, obj) -> None:
        """DELETE+INSERT: a rewritten row moves to the end of the rowid
        order, exactly as a re-added key moves to the end of a dict."""
        key_col = _ROW_TABLES[table]
        self.conn.execute(f"DELETE FROM {table} WHERE {key_col} = ?", (key,))
        self.conn.execute(
            f"INSERT INTO {table} ({key_col}, payload) VALUES (?, ?)",
            (key, codec.dumps(obj)),
        )

    def delete_row(self, table: str, key: str) -> None:
        key_col = _ROW_TABLES[table]
        self.conn.execute(f"DELETE FROM {table} WHERE {key_col} = ?", (key,))

    def iter_rows(self, table: str):
        """(key, object) pairs in rowid order — the live dict's order."""
        key_col = _ROW_TABLES[table]
        for key, payload in self.conn.execute(
            f"SELECT {key_col}, payload FROM {table} ORDER BY rowid"
        ):
            yield key, codec.loads(payload)

    def clear(self, table: str) -> None:
        if table not in _ROW_TABLES and table not in ("sketches", "journal"):
            raise ValueError(f"not a clearable table: {table!r}")
        self.conn.execute(f"DELETE FROM {table}")

    # ----------------------------------------------------------- sketches

    def put_sketch(self, de_id: str, kind: str, sketch) -> None:
        self.conn.execute("DELETE FROM sketches WHERE de_id = ?", (de_id,))
        self.conn.execute(
            "INSERT INTO sketches (de_id, kind, payload) VALUES (?, ?, ?)",
            (de_id, kind, codec.dumps(sketch)),
        )

    def delete_sketch(self, de_id: str) -> None:
        self.conn.execute("DELETE FROM sketches WHERE de_id = ?", (de_id,))

    def delete_sketches_of_kind(self, kind: str) -> None:
        self.conn.execute("DELETE FROM sketches WHERE kind = ?", (kind,))

    def iter_sketches(self):
        for de_id, kind, payload in self.conn.execute(
            "SELECT de_id, kind, payload FROM sketches"
        ):
            yield de_id, kind, codec.loads(payload)

    # -------------------------------------------------------------- state

    def put_state(self, section: str, obj) -> None:
        """Store one state section: residual pickle + extracted slabs."""
        arrays: list = []
        residual = codec.split_arrays(obj, arrays)
        self.conn.execute("DELETE FROM arrays WHERE section = ?", (section,))
        self.conn.execute(
            "INSERT INTO state (section, payload) VALUES (?, ?) "
            "ON CONFLICT(section) DO UPDATE SET payload = excluded.payload",
            (section, codec.dumps(residual)),
        )
        for idx, array in enumerate(arrays):
            dtype, shape, data = codec.encode_array(array)
            self.conn.execute(
                "INSERT INTO arrays (section, idx, dtype, shape, data) "
                "VALUES (?, ?, ?, ?, ?)",
                (section, idx, dtype, shape, data),
            )

    def get_state(self, section: str):
        row = self.conn.execute(
            "SELECT payload FROM state WHERE section = ?", (section,)
        ).fetchone()
        if row is None:
            raise KeyError(f"catalog file {self.path} has no section {section!r}")
        arrays = [
            codec.decode_array(dtype, shape, data)
            for dtype, shape, data in self.conn.execute(
                "SELECT dtype, shape, data FROM arrays "
                "WHERE section = ? ORDER BY idx",
                (section,),
            )
        ]
        residual = codec.loads(row[0])
        if not arrays:
            # Array-free sections (postings, vocabularies, journal-sized
            # metadata) skip the placeholder walk entirely — it dominates
            # reopen time on large residual structures otherwise.
            return residual
        return codec.join_arrays(residual, arrays)

    # ------------------------------------------------------------ journal

    def append_journal(self, seq: int, op: str, payload) -> None:
        # OR REPLACE keeps the append idempotent: after an ack-lost crash
        # the front-end cannot know whether the row committed, and a
        # supervised retry must not trip the seq primary key.
        self.conn.execute(
            "INSERT OR REPLACE INTO journal (seq, op, payload) VALUES (?, ?, ?)",
            (seq, op, codec.dumps(payload)),
        )

    def delete_journal(self, seq: int) -> None:
        self.conn.execute("DELETE FROM journal WHERE seq = ?", (seq,))

    def journal_entries(self) -> list[tuple[int, str, object]]:
        return [
            (seq, op, codec.loads(payload))
            for seq, op, payload in self.conn.execute(
                "SELECT seq, op, payload FROM journal ORDER BY seq"
            )
        ]

    def clear_journal(self) -> None:
        self.conn.execute("DELETE FROM journal")

    # ------------------------------------------------------------- admin

    def integrity_check(self) -> None:
        """Boot-time integrity gate: SQLite ``PRAGMA quick_check``.

        Raises :class:`CatalogCorrupt` (naming the shard path) when the
        file is torn or internally inconsistent, so a corrupt catalog
        fails at worker boot instead of as an opaque mid-query error.
        """
        try:
            rows = self.conn.execute("PRAGMA quick_check").fetchall()
        except sqlite3.DatabaseError as exc:
            raise CatalogCorrupt(
                f"catalog file {self.path} failed SQLite quick_check: {exc}"
            ) from exc
        findings = [row[0] for row in rows if row[0] != "ok"]
        if findings:
            raise CatalogCorrupt(
                f"catalog file {self.path} failed SQLite quick_check: "
                + "; ".join(findings)
            )

    def commit(self) -> None:
        self.conn.commit()

    def close(self) -> None:
        """Commit and release the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.conn.commit()
        self.conn.close()

    def file_bytes(self) -> int:
        """On-disk size (checkpointing the WAL first for an honest figure)."""
        self.conn.commit()
        self.conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return self.path.stat().st_size
