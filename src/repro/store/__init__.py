"""Durable lake catalogs: save a fitted session, reopen without refit.

Public surface::

    session = repro.open_lake(lake)       # fit once
    session.save("catalog/")              # durable on-disk catalog
    ...
    session = repro.open_lake("catalog/")   # reopen: no refit
    session = repro.CMDL.load("catalog/")   # equivalent

See :mod:`repro.store.catalog` for the on-disk layout, the write-ahead
mutation journal, and the incremental checkpoint machinery.
"""

from repro.store.catalog import (
    DEFAULT_CHECKPOINT_EVERY,
    LakeStore,
    ShardDirt,
    load_catalog,
    replay_shard_journal,
    restore_shard_session,
)
from repro.store.shard import SCHEMA_VERSION, CatalogCorrupt, ShardStore

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "CatalogCorrupt",
    "LakeStore",
    "SCHEMA_VERSION",
    "ShardDirt",
    "ShardStore",
    "load_catalog",
    "replay_shard_journal",
    "restore_shard_session",
]
