"""Typed-blob encoding for persisted state dictionaries.

``persistent_state()`` dictionaries mix plain Python values with (often
large) numpy arrays. Pickling the whole dict would work, but buries every
array inside one opaque blob — no per-array typing, no chance to store the
slabs as first-class rows. :func:`split_arrays` walks a state structure and
replaces every ndarray with an :class:`ArrayRef` placeholder, returning the
extracted arrays separately; the residual structure (plain scalars,
strings, dicts, dataclasses, Counters) pickles compactly, and each array is
stored as a ``(dtype, shape, bytes)`` triple via :func:`encode_array`.
:func:`join_arrays` is the exact inverse.

Arrays nested inside *objects* (e.g. a pickled tree-node graph kept as
residual state) stay inside the residual pickle — the split only walks
dicts, lists and tuples, which is where every ``persistent_state()`` slab
lives by convention.
"""

from __future__ import annotations

import json
import pickle

import numpy as np

#: Pickle protocol for every persisted payload.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class ArrayRef:
    """Placeholder for an extracted array: index into the section's slab list."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):
        return (ArrayRef, (self.index,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayRef({self.index})"


def split_arrays(obj, arrays: list[np.ndarray]):
    """Replace every ndarray reachable through dict/list/tuple containers
    with an :class:`ArrayRef`, appending the array to ``arrays``."""
    if isinstance(obj, np.ndarray):
        arrays.append(np.ascontiguousarray(obj))
        return ArrayRef(len(arrays) - 1)
    if isinstance(obj, dict):
        return {key: split_arrays(value, arrays) for key, value in obj.items()}
    if isinstance(obj, list):
        return [split_arrays(value, arrays) for value in obj]
    if isinstance(obj, tuple):
        return tuple(split_arrays(value, arrays) for value in obj)
    return obj


def join_arrays(obj, arrays: list[np.ndarray]):
    """Inverse of :func:`split_arrays`: resolve every placeholder."""
    if isinstance(obj, ArrayRef):
        return arrays[obj.index]
    if isinstance(obj, dict):
        return {key: join_arrays(value, arrays) for key, value in obj.items()}
    if isinstance(obj, list):
        return [join_arrays(value, arrays) for value in obj]
    if isinstance(obj, tuple):
        return tuple(join_arrays(value, arrays) for value in obj)
    return obj


def encode_array(array: np.ndarray) -> tuple[str, str, bytes]:
    """One array as a typed blob: ``(dtype string, shape json, raw bytes)``."""
    contiguous = np.ascontiguousarray(array)
    return contiguous.dtype.str, json.dumps(contiguous.shape), contiguous.tobytes()


def decode_array(dtype: str, shape: str, data: bytes) -> np.ndarray:
    """Rebuild an array from its typed blob (writable: restored structures
    may mutate their slabs in place, e.g. the embedder's bucket table)."""
    buffer = bytearray(data)
    return np.frombuffer(buffer, dtype=np.dtype(dtype)).reshape(json.loads(shape))


def dumps(obj) -> bytes:
    """Pickle one payload with the store's protocol."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def loads(blob: bytes):
    return pickle.loads(blob)
