"""Wall-clock timing helpers used by the profiler and benchmark harnesses."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def time_call(fn, *args, repeat: int = 1, **kwargs):
    """Call ``fn`` ``repeat`` times; return (last result, mean seconds)."""
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    result = None
    start = time.perf_counter()
    for _ in range(repeat):
        result = fn(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeat
    return result, elapsed
