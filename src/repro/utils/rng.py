"""Random-number-generator plumbing.

All stochastic components (lake generators, samplers, NN initialisation,
mini-batch shuffling) accept either an integer seed, an existing
``numpy.random.Generator``, or ``None``; :func:`ensure_rng` normalises the
three cases so call sites stay tidy.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed spec."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
