"""Stable, process-independent hash functions.

The minhash sketches, LSH bands, and the subword-hashing embedder all need
hash functions that (a) are deterministic across interpreter sessions and
(b) can be drawn as an indexed family ``h_0, h_1, ...``. Scalar hashes come
from blake2b with an explicit seed baked into the key, which is both fast
and has excellent distribution properties; indexed families use the classic
universal construction h(x) = (a*x + b) mod p with coefficient arrays, so a
whole family can be applied to a whole array of inputs in one vectorised
numpy expression.

Prime choice
------------
The family modulus is the Mersenne prime ``UNIVERSAL_HASH_PRIME = 2**31 - 1``
everywhere. With ``a, b, x < 2**31`` every product ``a*x`` stays below
``2**62`` and the multiply-add-mod evaluates exactly in uint64, which is what
lets minhash signatures and embedder bucket tables vectorise over items and
hash functions at once. (The other standard choice, ``2**61 - 1``, would
need 128-bit intermediates and forces per-item Python arithmetic — the repo
used to carry a closure-based family over it next to the vectorised one;
this module is now the single home of the family and its prime.)
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

_MASK_64 = (1 << 64) - 1
_MASK_32 = (1 << 32) - 1

#: Modulus of every universal-hash family in the repo (see module docstring).
UNIVERSAL_HASH_PRIME = (1 << 31) - 1


#: seed -> little-endian blake2b key, so the hot path packs each seed once.
_KEY_CACHE: dict[int, bytes] = {}


def stable_hash_64(value: str | bytes, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``value``.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED`` and is
    identical across processes and platforms.
    """
    if isinstance(value, str):
        value = value.encode("utf-8", errors="replace")
    key = _KEY_CACHE.get(seed)
    if key is None:
        key = struct.pack("<Q", seed & _MASK_64)
        _KEY_CACHE[seed] = key
    digest = hashlib.blake2b(value, digest_size=8, key=key).digest()
    return int.from_bytes(digest, "little")


def stable_hash_32(value: str | bytes, seed: int = 0) -> int:
    """Return a deterministic 32-bit hash of ``value``."""
    return stable_hash_64(value, seed) & _MASK_32


def universal_hash_family(
    num_hashes: int, seed: int = 0, tag: str = "minhash"
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(a, b)`` coefficient arrays of an indexed hash family.

    ``h_i(x) = (a[i] * x + b[i]) mod UNIVERSAL_HASH_PRIME`` with
    ``a[i] in [1, p-1]`` and ``b[i] in [0, p-1]``, both uint64 so the whole
    family applies to a uint64 input array in one vectorised expression
    (products stay below 2**62 — see the module docstring on the prime).
    Coefficients are derived deterministically from ``(tag, seed)``, so
    families built in different processes are identical; distinct ``tag``
    values (e.g. ``"minhash"`` vs ``"bucket"``) give independent families
    from the same seed.
    """
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    p = UNIVERSAL_HASH_PRIME
    a = np.array(
        [stable_hash_32(f"{tag}-a-{i}", seed) % (p - 1) + 1 for i in range(num_hashes)],
        dtype=np.uint64,
    )
    b = np.array(
        [stable_hash_32(f"{tag}-b-{i}", seed) % p for i in range(num_hashes)],
        dtype=np.uint64,
    )
    return a, b


def token_fingerprint(token: str, seed: int = 0) -> int:
    """Map a token to the 64-bit integer domain used by the hash families."""
    return stable_hash_64(token, seed)
