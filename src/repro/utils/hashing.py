"""Stable, process-independent hash functions.

The minhash sketches, LSH bands, and the subword-hashing embedder all need
hash functions that (a) are deterministic across interpreter sessions and
(b) can be drawn as an indexed family ``h_0, h_1, ...``. We build them from
blake2b with an explicit seed baked into the key, which is both fast and has
excellent distribution properties.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable

_MASK_64 = (1 << 64) - 1
_MASK_32 = (1 << 32) - 1

# Parameters of the classic universal-hash family h(x) = (a*x + b) mod p.
# 2**61 - 1 is a Mersenne prime, the standard choice for 64-bit minhash.
MERSENNE_PRIME = (1 << 61) - 1


def stable_hash_64(value: str | bytes, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``value``.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED`` and is
    identical across processes and platforms.
    """
    if isinstance(value, str):
        value = value.encode("utf-8", errors="replace")
    key = struct.pack("<Q", seed & _MASK_64)
    digest = hashlib.blake2b(value, digest_size=8, key=key).digest()
    return struct.unpack("<Q", digest)[0]


def stable_hash_32(value: str | bytes, seed: int = 0) -> int:
    """Return a deterministic 32-bit hash of ``value``."""
    return stable_hash_64(value, seed) & _MASK_32


def hash_family(num_hashes: int, seed: int = 0) -> list[Callable[[int], int]]:
    """Return ``num_hashes`` independent universal hash functions over ints.

    Each function maps a 64-bit integer to ``[0, 2**61 - 2]`` using the
    multiply-add-mod-prime construction. The (a, b) coefficients are derived
    deterministically from ``seed`` so sketches built in different processes
    are comparable.
    """
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    functions = []
    for i in range(num_hashes):
        a = stable_hash_64(f"minhash-a-{i}", seed) % (MERSENNE_PRIME - 1) + 1
        b = stable_hash_64(f"minhash-b-{i}", seed) % MERSENNE_PRIME

        def h(x: int, a: int = a, b: int = b) -> int:
            return (a * x + b) % MERSENNE_PRIME

        functions.append(h)
    return functions


def token_fingerprint(token: str, seed: int = 0) -> int:
    """Map a token to the 64-bit integer domain used by the hash families."""
    return stable_hash_64(token, seed)
