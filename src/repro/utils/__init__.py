"""Shared low-level utilities: stable hashing, RNG plumbing, and timers.

Everything in :mod:`repro` that needs hashing or randomness goes through this
module so that runs are reproducible across processes (Python's built-in
``hash`` is salted per process and therefore unusable for sketches).
"""

from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_32,
    stable_hash_64,
    universal_hash_family,
)
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

__all__ = [
    "UNIVERSAL_HASH_PRIME",
    "stable_hash_32",
    "stable_hash_64",
    "universal_hash_family",
    "ensure_rng",
    "Timer",
]
