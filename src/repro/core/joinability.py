"""Syntactic join discovery via Jaccard set containment (paper §5.1, §6.2).

CMDL's key difference from Aurum/D3L here: the joinability score between
two columns is the *maximum directional set containment* rather than
symmetric Jaccard similarity, which stays robust when the joined columns
have very different cardinalities (the low-mQCR regime of Benchmarks
2B/2C-LS).
"""

from __future__ import annotations

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.profiler import Profile
from repro.text.similarity import jaccard_containment


class JoinDiscovery:
    """Top-k joinable-column / joinable-table search over a profile.

    ``strategy="indexed"`` pulls per-query candidates from the
    :class:`~repro.core.candidates.CandidateGenerator` (value-containment LSH
    probes) and exact-scores only those; ``strategy="exact"`` scans every
    eligible column pair and serves as the correctness oracle.
    """

    def __init__(
        self,
        profile: Profile,
        use_exact_sets: bool = True,
        candidates: CandidateGenerator | None = None,
        strategy: str | None = None,
    ):
        self.profile = profile
        self.use_exact_sets = use_exact_sets
        self.candidates = candidates
        self.strategy = resolve_strategy(strategy, candidates)
        self._eligible = [
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        ]

    # ------------------------------------------------------------- scoring

    def score(self, col_a: str, col_b: str) -> float:
        """Max-direction containment between two columns' value sets."""
        sa = self.profile.columns[col_a]
        sb = self.profile.columns[col_b]
        if self.use_exact_sets:
            fwd = jaccard_containment(sa.value_set, sb.value_set)
            bwd = jaccard_containment(sb.value_set, sa.value_set)
        else:
            fwd = sa.signature.containment(sb.signature)
            bwd = sb.signature.containment(sa.signature)
        return max(fwd, bwd)

    # ------------------------------------------------------------- queries

    def joinable_columns(
        self, column_id: str, k: int = 10, min_score: float = 0.0
    ) -> list[tuple[str, float]]:
        """Top-k joinable columns in *other* tables, by containment."""
        query_table = self.profile.columns[column_id].table_name
        if self.strategy == "indexed":
            # Iteration order is irrelevant: the score sort below breaks ties
            # by candidate id, so the result is deterministic either way.
            pool = self.candidates.join_candidates(column_id, k=k)
        else:
            pool = self._eligible
        scored = []
        for candidate in pool:
            if candidate == column_id:
                continue
            if self.profile.columns[candidate].table_name == query_table:
                continue
            s = self.score(column_id, candidate)
            if s > min_score:
                scored.append((candidate, s))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    def joinable_tables(
        self, table_name: str, k: int = 10, per_column_k: int = 10
    ) -> list[tuple[str, float]]:
        """Top-k tables joinable with ``table_name``.

        A candidate table's score is the best containment over all column
        pairs between the two tables.
        """
        best: dict[str, float] = {}
        for column_id in self.profile.columns_of_table(table_name):
            sketch = self.profile.columns[column_id]
            if sketch.tags is None or not sketch.tags.join_discovery:
                continue
            for other, score in self.joinable_columns(column_id, k=per_column_k):
                other_table = self.profile.columns[other].table_name
                if score > best.get(other_table, 0.0):
                    best[other_table] = score
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
