"""Syntactic join discovery via Jaccard set containment (paper §5.1, §6.2).

CMDL's key difference from Aurum/D3L here: the joinability score between
two columns is the *maximum directional set containment* rather than
symmetric Jaccard similarity, which stays robust when the joined columns
have very different cardinalities (the low-mQCR regime of Benchmarks
2B/2C-LS).
"""

from __future__ import annotations

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.profiler import Profile
from repro.text.similarity import jaccard_containment


class JoinDiscovery:
    """Top-k joinable-column / joinable-table search over a profile.

    ``strategy="indexed"`` pulls per-query candidates from the
    :class:`~repro.core.candidates.CandidateGenerator` (value-containment LSH
    probes) and exact-scores only those; ``strategy="exact"`` scans every
    eligible column pair and serves as the correctness oracle.
    """

    #: Per-query-column candidate budget of :meth:`joinable_tables` —
    #: also the budget the sharded gatherer merges per-shard lists to, so
    #: the two paths can never disagree on the cut.
    PER_COLUMN_K = 10

    def __init__(
        self,
        profile: Profile,
        use_exact_sets: bool = True,
        candidates: CandidateGenerator | None = None,
        strategy: str | None = None,
    ):
        self.profile = profile
        self.use_exact_sets = use_exact_sets
        self.candidates = candidates
        self.strategy = resolve_strategy(strategy, candidates)
        self._eligible = [
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        ]

    # ------------------------------------------------------------- scoring

    def score_sketches(self, sa, sb) -> float:
        """Max-direction containment between two column sketches' value sets.

        The score is a pure pair function of the two sketches, so either
        side may be *foreign* — a column profiled on another shard — which
        is what lets the sharded scatter-gather path score a broadcast
        query sketch against shard-local columns.
        """
        if self.use_exact_sets:
            fwd = jaccard_containment(sa.value_set, sb.value_set)
            bwd = jaccard_containment(sb.value_set, sa.value_set)
        else:
            fwd = sa.signature.containment(sb.signature)
            bwd = sb.signature.containment(sa.signature)
        return max(fwd, bwd)

    def score(self, col_a: str, col_b: str) -> float:
        """Max-direction containment between two columns' value sets."""
        return self.score_sketches(
            self.profile.columns[col_a], self.profile.columns[col_b]
        )

    # ------------------------------------------------------------- queries

    def joinable_columns(
        self, column_id: str, k: int = 10, min_score: float = 0.0
    ) -> list[tuple[str, float]]:
        """Top-k joinable columns in *other* tables, by containment."""
        return self.joinable_columns_for(
            self.profile.columns[column_id], k=k, min_score=min_score
        )

    def joinable_columns_for(
        self, sketch, k: int = 10, min_score: float = 0.0
    ) -> list[tuple[str, float]]:
        """:meth:`joinable_columns` for an explicit (possibly foreign) query
        sketch — the scatter unit of the sharded join path. Candidates come
        from this profile only; the query sketch may live anywhere."""
        if self.strategy == "indexed":
            # Iteration order is irrelevant: the score sort below breaks ties
            # by candidate id, so the result is deterministic either way.
            pool = self.candidates.join_candidates_for(sketch, k=k)
        else:
            pool = self._eligible
        scored = []
        for candidate in pool:
            if candidate == sketch.de_id:
                continue
            other = self.profile.columns[candidate]
            if other.table_name == sketch.table_name:
                continue
            s = self.score_sketches(sketch, other)
            if s > min_score:
                scored.append((candidate, s))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]

    @staticmethod
    def fold_best_pairs(
        best: dict[str, float],
        scored_columns: list[tuple[str, float]],
        table_of,
    ) -> dict[str, float]:
        """Fold scored column hits into best-pair-per-table evidence.

        Shared by :meth:`joinable_tables` and the sharded gatherer (which
        folds globally-merged per-column lists through its own catalog
        resolver) so aggregation semantics — including the "scores must
        beat 0.0 to enter" rule — live in one place.
        """
        for col_id, score in scored_columns:
            table = table_of(col_id)
            if score > best.get(table, 0.0):
                best[table] = score
        return best

    def joinable_tables(
        self, table_name: str, k: int = 10, per_column_k: int | None = None
    ) -> list[tuple[str, float]]:
        """Top-k tables joinable with ``table_name``.

        A candidate table's score is the best containment over all column
        pairs between the two tables.
        """
        if per_column_k is None:
            per_column_k = self.PER_COLUMN_K
        best: dict[str, float] = {}
        table_of = lambda cid: self.profile.columns[cid].table_name
        for column_id in self.profile.columns_of_table(table_name):
            sketch = self.profile.columns[column_id]
            if sketch.tags is None or not sketch.tags.join_discovery:
                continue
            self.fold_best_pairs(
                best, self.joinable_columns(column_id, k=per_column_k), table_of
            )
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
