"""Indexing framework: one index per sketch type (paper §3, Figure 2).

From a :class:`~repro.core.profiler.Profile` the catalog builds:

* BM25 engines over content and metadata, separately for documents and for
  text-discovery columns (four "elastic" indexes);
* an LSH Ensemble over the column minhash signatures (containment);
* ANN (random-projection forest) indexes over the 200-d solo encodings of
  documents and columns;
* after joint-model training, ANN indexes over the 100-d joint embeddings
  (:meth:`index_joint_embeddings`).

For the structured-discovery candidate layer it additionally indexes *every*
column (not just the text-discovery subset):

* ``value_containment`` — LSH Ensemble over value-set minhash signatures
  (value-equality semantics, the measure joins and PK-FK inclusion use);
* ``column_schema`` / ``column_schema_ngrams`` — inverted indexes over
  column-name tokens and character trigrams (schema-name probes);
* ``column_numeric`` — interval index over numeric column ranges;
* ``column_semantic`` — ANN index over the content solo embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.ann.intervals import IntervalIndex
from repro.ann.rpforest import RPForestIndex
from repro.core.profiler import Profile
from repro.search.engine import SearchEngine
from repro.sketch.lshensemble import LSHEnsemble
from repro.text.tokenizer import name_trigrams, split_identifier


class IndexCatalog:
    """All CMDL indexes for one profiled lake."""

    def __init__(
        self,
        profile: Profile,
        num_partitions: int = 8,
        num_bands: int = 16,
        num_trees: int = 8,
        ranker: str = "bm25",
        seed: int = 0,
    ):
        self.profile = profile
        self.seed = seed

        self.doc_content = SearchEngine(ranker=ranker)
        self.doc_metadata = SearchEngine(ranker=ranker)
        self.column_content = SearchEngine(ranker=ranker)
        self.column_metadata = SearchEngine(ranker=ranker)
        self.column_containment = LSHEnsemble(
            num_partitions=num_partitions, num_bands=num_bands
        )

        # Candidate-layer indexes: cover ALL columns, because the exact
        # structured scorers (join containment, the union 4-measure ensemble,
        # PK-FK inclusion) are defined over value sets / names / ranges of
        # any column, not just the text-discovery subset.
        self.value_containment = LSHEnsemble(
            num_partitions=num_partitions, num_bands=num_bands
        )
        self.column_schema = SearchEngine(ranker=ranker)
        self.column_schema_ngrams = SearchEngine(ranker=ranker)
        self.column_numeric = IntervalIndex()

        text_columns = set(profile.text_discovery_columns())
        encoding_dim = None
        embedding_dim = None

        for doc_id, sketch in profile.documents.items():
            self.doc_content.add(doc_id, sketch.content_bow.terms)
            self.doc_metadata.add(doc_id, sketch.metadata_bow.terms)
            encoding_dim = encoding_dim or len(sketch.encoding)
        for col_id, sketch in profile.columns.items():
            encoding_dim = encoding_dim or len(sketch.encoding)
            embedding_dim = embedding_dim or len(sketch.content_embedding)
            self.value_containment.add(col_id, sketch.join_signature)
            self.column_schema.add(col_id, split_identifier(sketch.column_name))
            self.column_schema_ngrams.add(col_id, name_trigrams(sketch.column_name))
            if sketch.numeric is not None:
                self.column_numeric.add(col_id, sketch.numeric)
            if col_id not in text_columns:
                continue
            self.column_content.add(col_id, sketch.content_bow.terms)
            self.column_metadata.add(col_id, sketch.metadata_bow.terms)
            self.column_containment.add(col_id, sketch.signature)
        self.column_containment.build()
        self.value_containment.build()
        self.column_numeric.build()

        self.column_semantic = RPForestIndex(
            dim=embedding_dim or 100, num_trees=num_trees, seed=seed
        )
        for col_id, sketch in profile.columns.items():
            self.column_semantic.add(col_id, sketch.content_embedding)
        self.column_semantic.build()

        dim = encoding_dim or 200
        self.doc_solo = RPForestIndex(dim=dim, num_trees=num_trees, seed=seed)
        self.column_solo = RPForestIndex(dim=dim, num_trees=num_trees, seed=seed)
        for doc_id, sketch in profile.documents.items():
            self.doc_solo.add(doc_id, sketch.encoding)
        for col_id, sketch in profile.columns.items():
            if col_id in text_columns:
                self.column_solo.add(col_id, sketch.encoding)
        self.doc_solo.build()
        self.column_solo.build()

        self.doc_joint: RPForestIndex | None = None
        self.column_joint: RPForestIndex | None = None

    # ------------------------------------------------------------- joint

    def index_joint_embeddings(
        self,
        doc_vectors: dict[str, np.ndarray],
        column_vectors: dict[str, np.ndarray],
        num_trees: int = 8,
    ) -> None:
        """Index the joint-space vectors produced by the trained model."""
        dims = {len(v) for v in doc_vectors.values()} | {
            len(v) for v in column_vectors.values()
        }
        if len(dims) != 1:
            raise ValueError(f"inconsistent joint vector dims: {sorted(dims)}")
        dim = dims.pop()
        self.doc_joint = RPForestIndex(dim=dim, num_trees=num_trees, seed=self.seed)
        self.column_joint = RPForestIndex(dim=dim, num_trees=num_trees, seed=self.seed)
        for doc_id, vec in doc_vectors.items():
            self.doc_joint.add(doc_id, vec)
        for col_id, vec in column_vectors.items():
            self.column_joint.add(col_id, vec)
        self.doc_joint.build()
        self.column_joint.build()

    @property
    def has_joint(self) -> bool:
        return self.column_joint is not None
