"""Indexing framework: one index per sketch type (paper §3, Figure 2).

From a :class:`~repro.core.profiler.Profile` the catalog builds:

* BM25 engines over content and metadata, separately for documents and for
  text-discovery columns (four "elastic" indexes);
* an LSH Ensemble over the column minhash signatures (containment);
* ANN (random-projection forest) indexes over the 200-d solo encodings of
  documents and columns;
* after joint-model training, ANN indexes over the 100-d joint embeddings
  (:meth:`index_joint_embeddings`).

For the structured-discovery candidate layer it additionally indexes *every*
column (not just the text-discovery subset):

* ``value_containment`` — LSH Ensemble over value-set minhash signatures
  (value-equality semantics, the measure joins and PK-FK inclusion use);
* ``column_schema`` / ``column_schema_ngrams`` — inverted indexes over
  column-name tokens and character trigrams (schema-name probes);
* ``column_numeric`` — interval index over numeric column ranges;
* ``column_semantic`` — ANN index over the content solo embeddings.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from repro.ann.intervals import IntervalIndex
from repro.ann.rpforest import RPForestIndex
from repro.core.profiler import Profile
from repro.search.engine import SearchEngine
from repro.sketch.lshensemble import LSHEnsemble
from repro.text.tokenizer import name_trigrams, split_identifier


class IndexCatalog:
    """All CMDL indexes for one profiled lake."""

    def __init__(
        self,
        profile: Profile,
        num_partitions: int = 8,
        num_bands: int = 16,
        num_trees: int = 8,
        ranker: str = "bm25",
        seed: int = 0,
        bulk: bool = True,
    ):
        self.profile = profile
        self.seed = seed
        #: Build seconds per structure *group* (value_containment, schema,
        #: numeric, semantic, keyword) — see :meth:`_timed` for the
        #: grouping. Filled by both construction paths and accumulated by
        #: the delta routes, so a fit regression is attributable to a
        #: structure, not just the index stage as a whole.
        self.index_breakdown: dict[str, float] = {
            "value_containment": 0.0,
            "schema": 0.0,
            "numeric": 0.0,
            "semantic": 0.0,
            "keyword": 0.0,
        }

        self.doc_content = SearchEngine(ranker=ranker)
        self.doc_metadata = SearchEngine(ranker=ranker)
        self.column_content = SearchEngine(ranker=ranker)
        self.column_metadata = SearchEngine(ranker=ranker)
        self.column_containment = LSHEnsemble(
            num_partitions=num_partitions, num_bands=num_bands
        )

        # Candidate-layer indexes: cover ALL columns, because the exact
        # structured scorers (join containment, the union 4-measure ensemble,
        # PK-FK inclusion) are defined over value sets / names / ranges of
        # any column, not just the text-discovery subset.
        self.value_containment = LSHEnsemble(
            num_partitions=num_partitions, num_bands=num_bands
        )
        self.column_schema = SearchEngine(ranker=ranker)
        self.column_schema_ngrams = SearchEngine(ranker=ranker)
        self.column_numeric = IntervalIndex()

        self._text_columns = set(profile.text_discovery_columns())
        encoding_dim = None
        embedding_dim = None

        for sketch in profile.documents.values():
            encoding_dim = encoding_dim or len(sketch.encoding)
        for sketch in profile.columns.values():
            encoding_dim = encoding_dim or len(sketch.encoding)
            embedding_dim = embedding_dim or len(sketch.content_embedding)

        self.column_semantic = RPForestIndex(
            dim=embedding_dim or 100, num_trees=num_trees, seed=seed
        )
        dim = encoding_dim or 200
        self.doc_solo = RPForestIndex(dim=dim, num_trees=num_trees, seed=seed)
        self.column_solo = RPForestIndex(dim=dim, num_trees=num_trees, seed=seed)

        if bulk:
            self._build_bulk(profile)
        else:
            for doc_id, sketch in profile.documents.items():
                self._index_document(doc_id, sketch)
            for col_id, sketch in profile.columns.items():
                self._index_column(col_id, sketch)
            with self._timed("value_containment"):
                self.column_containment.build()
                self.value_containment.build()
            with self._timed("numeric"):
                self.column_numeric.build()
            with self._timed("semantic"):
                self.column_semantic.build()
                self.doc_solo.build()
                self.column_solo.build()

        self.doc_joint: RPForestIndex | None = None
        self.column_joint: RPForestIndex | None = None

    # ----------------------------------------------------------- indexing

    @contextmanager
    def _timed(self, group: str):
        """Accumulate elapsed build seconds into one breakdown group.

        Groups: ``keyword`` = the BM25 engines (doc/column content and
        metadata); ``value_containment`` = both LSH Ensembles (value sets
        and content signatures); ``schema`` = the column-name token and
        trigram engines; ``numeric`` = the interval index; ``semantic`` =
        every RP forest over solo encodings/embeddings.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.index_breakdown[group] += time.perf_counter() - start

    def _build_bulk(self, profile: Profile) -> None:
        """One-pass construction of every index from a full profile.

        Each structure ingests its whole entry stream at once (fused
        postings assembly, staged-then-built sketch/ANN structures) instead
        of N incremental ``add``/``insert`` calls. Entry order matches the
        per-item path, so the built state is identical to ``bulk=False``.
        """
        docs = profile.documents
        with self._timed("keyword"):
            self.doc_content.build_bulk(
                (doc_id, s.content_bow.terms) for doc_id, s in docs.items()
            )
            self.doc_metadata.build_bulk(
                (doc_id, s.metadata_bow.terms) for doc_id, s in docs.items()
            )
        with self._timed("semantic"):
            self.doc_solo.build_bulk(
                [(doc_id, s.encoding) for doc_id, s in docs.items()]
            )

        cols = profile.columns
        with self._timed("value_containment"):
            self.value_containment.build_bulk(
                [(col_id, s.join_signature) for col_id, s in cols.items()]
            )
        with self._timed("schema"):
            self.column_schema.build_bulk(
                (col_id, split_identifier(s.column_name)) for col_id, s in cols.items()
            )
            self.column_schema_ngrams.build_bulk(
                (col_id, name_trigrams(s.column_name)) for col_id, s in cols.items()
            )
        with self._timed("semantic"):
            self.column_semantic.build_bulk(
                [(col_id, s.content_embedding) for col_id, s in cols.items()]
            )
        with self._timed("numeric"):
            for col_id, sketch in cols.items():
                if sketch.numeric is not None:
                    self.column_numeric.add(col_id, sketch.numeric)
            self.column_numeric.build()

        text = [(c, s) for c, s in cols.items() if c in self._text_columns]
        with self._timed("keyword"):
            self.column_content.build_bulk((c, s.content_bow.terms) for c, s in text)
            self.column_metadata.build_bulk((c, s.metadata_bow.terms) for c, s in text)
        with self._timed("value_containment"):
            self.column_containment.build_bulk([(c, s.signature) for c, s in text])
        with self._timed("semantic"):
            self.column_solo.build_bulk([(c, s.encoding) for c, s in text])

    def _index_document(self, doc_id: str, sketch) -> None:
        """Route one document sketch into every index that covers it.

        Works both at build time (entries staged, caller builds) and as the
        delta path (the sketch structures' ``insert`` absorbs post-build
        adds; the keyword engines are incremental by construction).
        """
        with self._timed("keyword"):
            self.doc_content.add(doc_id, sketch.content_bow.terms)
            self.doc_metadata.add(doc_id, sketch.metadata_bow.terms)
        with self._timed("semantic"):
            self.doc_solo.insert(doc_id, sketch.encoding)

    def _index_column(self, col_id: str, sketch) -> None:
        """Route one column sketch into every index that covers it."""
        with self._timed("value_containment"):
            self.value_containment.insert(col_id, sketch.join_signature)
        with self._timed("schema"):
            self.column_schema.add(col_id, split_identifier(sketch.column_name))
            self.column_schema_ngrams.add(col_id, name_trigrams(sketch.column_name))
        with self._timed("semantic"):
            self.column_semantic.insert(col_id, sketch.content_embedding)
        if sketch.numeric is not None:
            with self._timed("numeric"):
                self.column_numeric.add(col_id, sketch.numeric)
        if col_id not in self._text_columns:
            return
        with self._timed("keyword"):
            self.column_content.add(col_id, sketch.content_bow.terms)
            self.column_metadata.add(col_id, sketch.metadata_bow.terms)
        with self._timed("value_containment"):
            self.column_containment.insert(col_id, sketch.signature)
        with self._timed("semantic"):
            self.column_solo.insert(col_id, sketch.encoding)

    # ------------------------------------------------------------- deltas

    def insert_document(self, sketch) -> None:
        """Index one new document sketch (delta path)."""
        self._index_document(sketch.de_id, sketch)

    def remove_document(self, doc_id: str) -> None:
        """Drop one document from every index that covers it."""
        self.doc_content.remove(doc_id)
        self.doc_metadata.remove(doc_id)
        self.doc_solo.delete(doc_id)
        if self.doc_joint is not None and doc_id in self.doc_joint:
            self.doc_joint.delete(doc_id)

    def insert_column(self, sketch) -> None:
        """Index one new column sketch (delta path); honours its tags."""
        if sketch.tags is not None and sketch.tags.text_discovery:
            self._text_columns.add(sketch.de_id)
        self._index_column(sketch.de_id, sketch)

    def remove_column(self, col_id: str) -> None:
        """Drop one column from every index that covers it."""
        self.value_containment.delete(col_id)
        self.column_schema.remove(col_id)
        self.column_schema_ngrams.remove(col_id)
        self.column_semantic.delete(col_id)
        if col_id in self.column_numeric:
            self.column_numeric.remove(col_id)
        if col_id in self._text_columns:
            self._text_columns.discard(col_id)
            self.column_content.remove(col_id)
            self.column_metadata.remove(col_id)
            self.column_containment.delete(col_id)
            self.column_solo.delete(col_id)
        if self.column_joint is not None and col_id in self.column_joint:
            self.column_joint.delete(col_id)

    # -------------------------------------------------------- persistence

    #: Structure groups of the catalog, by persistence shape.
    ENGINES = (
        "doc_content",
        "doc_metadata",
        "column_content",
        "column_metadata",
        "column_schema",
        "column_schema_ngrams",
    )
    ENSEMBLES = ("column_containment", "value_containment")
    FORESTS = ("column_semantic", "doc_solo", "column_solo")

    def persistent_state(self) -> dict:
        state: dict = {
            "seed": self.seed,
            "index_breakdown": dict(self.index_breakdown),
            "text_columns": sorted(self._text_columns),
        }
        for name in self.ENGINES:
            state[name] = getattr(self, name).persistent_state()
        for name in self.ENSEMBLES:
            state[name] = getattr(self, name).persistent_state()
        for name in self.FORESTS:
            state[name] = getattr(self, name).persistent_state()
        state["column_numeric"] = self.column_numeric.persistent_state()
        state["doc_joint"] = (
            None if self.doc_joint is None else self.doc_joint.persistent_state()
        )
        state["column_joint"] = (
            None if self.column_joint is None
            else self.column_joint.persistent_state()
        )
        return state

    @classmethod
    def restore_state(cls, profile: Profile, state: dict) -> "IndexCatalog":
        """Rebuild a catalog from persisted per-structure state, bypassing
        ``__init__`` (which would refit every index from the profile)."""
        catalog = cls.__new__(cls)
        catalog.profile = profile
        catalog.seed = state["seed"]
        catalog.index_breakdown = dict(state["index_breakdown"])
        catalog._text_columns = set(state["text_columns"])
        for name in cls.ENGINES:
            setattr(catalog, name, SearchEngine.restore_state(state[name]))
        for name in cls.ENSEMBLES:
            setattr(catalog, name, LSHEnsemble.restore_state(state[name]))
        for name in cls.FORESTS:
            setattr(catalog, name, RPForestIndex.restore_state(state[name]))
        catalog.column_numeric = IntervalIndex.restore_state(
            state["column_numeric"]
        )
        catalog.doc_joint = (
            None if state["doc_joint"] is None
            else RPForestIndex.restore_state(state["doc_joint"])
        )
        catalog.column_joint = (
            None if state["column_joint"] is None
            else RPForestIndex.restore_state(state["column_joint"])
        )
        return catalog

    # ------------------------------------------------------------- joint

    def index_joint_embeddings(
        self,
        doc_vectors: dict[str, np.ndarray],
        column_vectors: dict[str, np.ndarray],
        num_trees: int = 8,
    ) -> None:
        """Index the joint-space vectors produced by the trained model."""
        dims = {len(v) for v in doc_vectors.values()} | {
            len(v) for v in column_vectors.values()
        }
        if len(dims) != 1:
            raise ValueError(f"inconsistent joint vector dims: {sorted(dims)}")
        dim = dims.pop()
        self.doc_joint = RPForestIndex(dim=dim, num_trees=num_trees, seed=self.seed)
        self.column_joint = RPForestIndex(dim=dim, num_trees=num_trees, seed=self.seed)
        for doc_id, vec in doc_vectors.items():
            self.doc_joint.add(doc_id, vec)
        for col_id, vec in column_vectors.items():
            self.column_joint.add(col_id, vec)
        self.doc_joint.build()
        self.column_joint.build()

    def insert_joint_document(self, doc_id: str, vector: np.ndarray) -> None:
        """Delta-index one joint-space document vector (no-op pre-training)."""
        if self.doc_joint is not None:
            self.doc_joint.insert(doc_id, vector)

    def insert_joint_column(self, col_id: str, vector: np.ndarray) -> None:
        """Delta-index one joint-space column vector (no-op pre-training)."""
        if self.column_joint is not None:
            self.column_joint.insert(col_id, vector)

    @property
    def has_joint(self) -> bool:
        return self.column_joint is not None
