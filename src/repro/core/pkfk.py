"""PK-FK join discovery (paper §5.1, §6.2).

A PK-FK link is an inclusion dependency: the FK column's values must be
(largely) contained in the PK column; the PK column must look like a key
(cardinality ratio close to 1); and the two columns should have similar
names. CMDL scores inclusion with Jaccard *set containment* (vs Aurum's
Jaccard similarity), which lifts recall when FKs cover only part of the key
domain; schema-name similarity filters out coincidental containments.
Numeric columns use the numeric-overlap measure (same as Aurum, hence the
identical ChEBI results in Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.profiler import DESketch, Profile
from repro.relational.stats import numeric_overlap
from repro.text.similarity import cached_name_similarity, jaccard_containment


@dataclass(frozen=True)
class PKFKLink:
    """A discovered PK-FK relationship with its component scores."""

    pk_column: str
    fk_column: str
    containment: float
    name_score: float
    pk_uniqueness: float

    @property
    def score(self) -> float:
        return self.containment * self.name_score * self.pk_uniqueness


class PKFKDiscovery:
    """Discovers PK-FK links over all tagged column pairs of a profile."""

    def __init__(
        self,
        profile: Profile,
        uniqueness_map: dict[str, float],
        containment_threshold: float = 0.85,
        name_threshold: float = 0.35,
        key_uniqueness_threshold: float = 0.85,
        numeric_threshold: float = 0.85,
        candidates: CandidateGenerator | None = None,
        strategy: str | None = None,
    ):
        # Note the key-uniqueness default of 0.85 (not 1.0): real lakes
        # contain duplicated keys (DrugBank, §6.2), so CMDL accepts
        # near-keys — raising recall at some precision cost, exactly the
        # DrugBank trade-off of Table 4.
        """``uniqueness_map`` gives distinct/non-missing per column id.

        ``strategy="indexed"`` restricts the FK candidates of each PK to the
        index probes (name, value containment, numeric range) instead of all
        tagged columns; ``strategy="exact"`` is the brute-force oracle.
        """
        self.profile = profile
        self.uniqueness = uniqueness_map
        self.containment_threshold = containment_threshold
        self.name_threshold = name_threshold
        self.key_uniqueness_threshold = key_uniqueness_threshold
        self.numeric_threshold = numeric_threshold
        self.candidates = candidates
        self.strategy = resolve_strategy(strategy, candidates)

    def candidate_pk_entries(self) -> list[tuple["DESketch", float]]:
        """Local candidate-PK (sketch, uniqueness) pairs, sorted by id.

        PK candidacy — pkfk-tagged and key-like — is a per-column property,
        so this is the gather unit of the sharded sweep: every shard
        contributes its local PKs and receives the lake-wide set back.
        """
        out = []
        for cid in sorted(self.profile.columns):
            sketch = self.profile.columns[cid]
            if sketch.tags is None or not sketch.tags.pkfk_discovery:
                continue
            uniqueness = self.uniqueness.get(cid, 0.0)
            if uniqueness >= self.key_uniqueness_threshold:
                out.append((sketch, uniqueness))
        return out

    def _candidate_fks(self) -> list[str]:
        return sorted(
            cid for cid, sketch in self.profile.columns.items()
            if sketch.tags is not None and sketch.tags.pkfk_discovery
        )

    def discover(self, table_scope: set[str] | None = None) -> list[PKFKLink]:
        """All PK-FK links (optionally restricted to a table subset)."""
        return self.links_for(self.candidate_pk_entries(), table_scope=table_scope)

    def links_for(
        self,
        pk_entries: list[tuple["DESketch", float]],
        table_scope: set[str] | None = None,
    ) -> list[PKFKLink]:
        """PK-FK links between the given PK entries and *local* FK columns.

        ``pk_entries`` are ``(sketch, uniqueness)`` pairs and may include
        foreign PKs (columns profiled on other shards): every pair check is
        a pure function of the two sketches. :meth:`discover` is this over
        the local PK set; the sharded sweep broadcasts the lake-wide PK set
        to every shard and unions the per-shard link lists — each (PK, FK)
        pair is checked exactly once, by the shard owning the FK.
        """
        links: list[PKFKLink] = []
        if table_scope is not None:
            pk_entries = [
                (sketch, uniqueness) for sketch, uniqueness in pk_entries
                if sketch.table_name in table_scope
            ]
        if self.strategy == "indexed":
            fks = []  # unused: each PK gets its own pool below
            pools = self.candidates.pkfk_candidates_batch_for(
                [sketch for sketch, _ in pk_entries],
                numeric_threshold=self.numeric_threshold,
                table_scope=table_scope,
            )
        else:
            fks = self._candidate_fks()
        for pk_sketch, pk_uniqueness in pk_entries:
            pk = pk_sketch.de_id
            if self.strategy == "indexed":
                # No need to sort the pool: every surviving pair is appended
                # and the final links.sort canonicalises the output order.
                fk_pool = pools[pk]
            else:
                fk_pool = fks
            for fk in fk_pool:
                fk_sketch = self.profile.columns[fk]
                if fk == pk or fk_sketch.table_name == pk_sketch.table_name:
                    continue
                if table_scope is not None and fk_sketch.table_name not in table_scope:
                    continue
                name_score = cached_name_similarity(
                    pk_sketch.column_name, fk_sketch.column_name
                )
                if name_score < self.name_threshold:
                    continue
                if pk_sketch.numeric is not None and fk_sketch.numeric is not None:
                    inclusion = numeric_overlap(fk_sketch.numeric, pk_sketch.numeric)
                    threshold = self.numeric_threshold
                else:
                    inclusion = jaccard_containment(
                        fk_sketch.value_set, pk_sketch.value_set
                    )
                    threshold = self.containment_threshold
                if inclusion < threshold:
                    continue
                links.append(
                    PKFKLink(
                        pk_column=pk,
                        fk_column=fk,
                        containment=inclusion,
                        name_score=name_score,
                        pk_uniqueness=pk_uniqueness,
                    )
                )
        links.sort(key=lambda link: (-link.score, link.pk_column, link.fk_column))
        return links
