"""Profiler: sketches and statistics per discoverable element (paper §3).

For every DE (document or tabular column) the profiler builds:

* the content bag of words (documents via the NLP pipeline; columns via
  cell-value tokenisation),
* the metadata bag of words (titles / table+column names),
* a minwise-hashing signature of the content token set (containment),
* solo embeddings: 100-d mean-pooled word vectors for metadata and for
  content — concatenated they form the 200-d input encoding of the joint
  model (paper §4.2),
* numeric statistics for numeric columns,
* the column's task tags.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.tagging import ColumnTags, tag_column
from repro.embed.pooling import POOLERS
from repro.relational.catalog import DataLake, Document
from repro.relational.stats import NumericStats, numeric_stats
from repro.relational.table import Column
from repro.sketch.minhash import MinHash, MinHashSignature
from repro.text.pipeline import BagOfWords, DocumentPipeline
from repro.text.tokenizer import split_identifier, tokenize
from repro.utils.timing import Timer

#: DE kind markers used in every index key.
DOCUMENT = "document"
COLUMN = "column"


@dataclass
class DESketch:
    """All profiler outputs for one discoverable element."""

    de_id: str
    kind: str  # DOCUMENT or COLUMN
    content_bow: BagOfWords
    metadata_bow: BagOfWords
    signature: MinHashSignature
    content_embedding: np.ndarray
    metadata_embedding: np.ndarray
    numeric: NumericStats | None = None
    tags: ColumnTags | None = None
    table_name: str = ""
    column_name: str = ""
    #: Raw distinct cell values (columns) / content vocabulary (documents).
    #: Join, PK-FK, and union containment are *value*-equality semantics
    #: (paper §3: "percentage of their overlapping values"), distinct from
    #: the tokenised bag used for text discovery.
    value_set: frozenset[str] = frozenset()
    #: Minhash over :attr:`value_set` (vs :attr:`signature`, which is over
    #: the tokenised content bag). Feeds the value-containment LSH Ensemble
    #: of the candidate-generation layer; None for hand-built sketches.
    value_signature: MinHashSignature | None = None

    @property
    def join_signature(self) -> MinHashSignature:
        """The signature matching value-equality semantics, with fallback."""
        return self.value_signature if self.value_signature is not None else self.signature

    @property
    def encoding(self) -> np.ndarray:
        """The 200-d input encoding: metadata solo ++ content solo."""
        return np.concatenate([self.metadata_embedding, self.content_embedding])

    @property
    def token_set(self) -> set[str]:
        return self.content_bow.vocabulary


@dataclass
class Profile:
    """The profiled lake: sketches per DE plus build-time accounting."""

    documents: dict[str, DESketch] = field(default_factory=dict)
    columns: dict[str, DESketch] = field(default_factory=dict)
    table_columns: dict[str, list[str]] = field(default_factory=dict)
    structured_seconds: float = 0.0
    unstructured_seconds: float = 0.0

    def sketch(self, de_id: str) -> DESketch:
        if de_id in self.documents:
            return self.documents[de_id]
        if de_id in self.columns:
            return self.columns[de_id]
        raise KeyError(f"no sketch for DE {de_id!r}")

    @property
    def num_des(self) -> int:
        return len(self.documents) + len(self.columns)

    def columns_of_table(self, table_name: str) -> list[str]:
        return self.table_columns.get(table_name, [])

    # ------------------------------------------------------------ mutation

    def add_one(self, sketch: DESketch) -> None:
        """Register one freshly-profiled DE (delta path of lake sessions)."""
        if sketch.kind == DOCUMENT:
            if sketch.de_id in self.documents:
                raise ValueError(f"duplicate document sketch {sketch.de_id!r}")
            self.documents[sketch.de_id] = sketch
        else:
            if sketch.de_id in self.columns:
                raise ValueError(f"duplicate column sketch {sketch.de_id!r}")
            self.columns[sketch.de_id] = sketch
            self.table_columns.setdefault(sketch.table_name, []).append(sketch.de_id)

    def drop_one(self, de_id: str) -> DESketch:
        """Forget one DE's sketch; returns it so callers can unindex it."""
        if de_id in self.documents:
            return self.documents.pop(de_id)
        if de_id in self.columns:
            sketch = self.columns.pop(de_id)
            ids = self.table_columns.get(sketch.table_name)
            if ids is not None:
                ids.remove(de_id)
                if not ids:
                    del self.table_columns[sketch.table_name]
            return sketch
        raise KeyError(f"no sketch for DE {de_id!r}")

    def text_discovery_columns(self) -> list[str]:
        """Columns tagged as eligible for doc-column / keyword discovery."""
        return [
            cid for cid, s in self.columns.items()
            if s.tags is not None and s.tags.text_discovery
        ]


class Profiler:
    """Builds a :class:`Profile` for a data lake."""

    def __init__(
        self,
        embedding_dim: int = 100,
        num_hashes: int = 128,
        pooling: str = "mean",
        max_doc_frequency: float = 0.5,
        embedder=None,
        seed: int = 0,
    ):
        if pooling not in POOLERS:
            raise ValueError(f"unknown pooling {pooling!r}; expected {list(POOLERS)}")
        self.embedding_dim = embedding_dim
        self.pooling = POOLERS[pooling]
        self.minhash = MinHash(num_hashes=num_hashes, seed=seed)
        self.pipeline = DocumentPipeline(max_doc_frequency=max_doc_frequency)
        self.embedder = embedder  # resolved lazily in profile() if None
        self.seed = seed

    # ------------------------------------------------------------ helpers

    def _embed_bow(self, bow: BagOfWords) -> np.ndarray:
        words = sorted(bow.vocabulary)
        matrix = self.embedder.embed_words(words)
        return self.pooling(matrix, dim_hint=self.embedding_dim)

    def _column_tokens(self, column: Column) -> Counter:
        """Tokenise a column's cell values into its content bag of words."""
        terms: Counter = Counter()
        for value in column.non_missing:
            tokens = tokenize(value)
            if len(tokens) == 1:
                # Single-token cells (ids, names) kept verbatim.
                terms[tokens[0]] += 1
            else:
                terms.update(tokens)
        return terms

    # ------------------------------------------------------------ profiling

    def profile(self, lake: DataLake) -> Profile:
        """Profile every document and column of ``lake``."""
        profile = Profile()

        # Resolve the embedder lazily: by default train a blended embedder
        # on the lake's own text (the stand-in for a pre-trained fasttext).
        # Tables contribute *row-wise* token lists: a row is the unit of
        # co-occurrence (key values appear next to the attributes that
        # describe them), which is what lets the distributional component
        # bridge document vocabulary to column vocabulary.
        if self.embedder is None:
            from repro.embed.blended import build_lake_embedder

            corpora = [tokenize(d.text) for d in lake.documents]
            for table in lake.tables:
                for row in table.rows():
                    corpora.append([t for cell in row for t in tokenize(cell)])
            self.embedder = build_lake_embedder(
                corpora, dim=self.embedding_dim, seed=self.seed
            )

        with Timer() as t_docs:
            self.pipeline.fit(d.text for d in lake.documents)
            for document in lake.documents:
                profile.documents[document.doc_id] = self._profile_document(document)
        profile.unstructured_seconds = t_docs.elapsed

        with Timer() as t_cols:
            for table in lake.tables:
                ids = []
                for column in table.columns:
                    sketch = self._profile_column(column)
                    profile.columns[sketch.de_id] = sketch
                    ids.append(sketch.de_id)
                profile.table_columns[table.name] = ids
        profile.structured_seconds = t_cols.elapsed
        return profile

    # ---------------------------------------------------------- delta path

    def _require_embedder(self) -> None:
        if self.embedder is None:
            raise RuntimeError(
                "profiler has no embedder yet; profile() a lake first (which "
                "trains the default blended embedder) or construct the "
                "Profiler with an explicit embedder"
            )

    def profile_one(
        self, item: "Document | Column", content: BagOfWords | None = None
    ) -> DESketch:
        """Sketch one new DE without re-profiling the lake (delta path).

        Documents are transformed with the pipeline as currently fitted and
        embedded with the embedder as currently trained — lake sessions own
        keeping both in sync (:class:`~repro.core.session.LakeSession`
        re-fits the pipeline on document churn; the embedder stays frozen
        until ``refresh()``). ``content`` short-circuits the document
        transform when the caller already computed the bag (the session's
        drift check does).
        """
        self._require_embedder()
        if isinstance(item, Document):
            return self._profile_document(item, content=content)
        if isinstance(item, Column):
            return self._profile_column(item)
        raise TypeError(
            f"profile_one takes a Document or a Column, got {type(item).__name__}"
        )

    def profile_table(self, table) -> list[DESketch]:
        """Sketch every column of one new table (delta path)."""
        return [self.profile_one(column) for column in table.columns]

    # ----------------------------------------------------------- internals

    def _profile_document(
        self, document: Document, content: BagOfWords | None = None
    ) -> DESketch:
        if content is None:
            content = self.pipeline.transform(document.text)
        meta_terms = Counter(tokenize(document.title))
        if document.source:
            meta_terms.update(tokenize(document.source))
        metadata = BagOfWords(meta_terms)
        signature = self.minhash.signature(content.vocabulary)
        return DESketch(
            de_id=document.doc_id,
            kind=DOCUMENT,
            content_bow=content,
            metadata_bow=metadata,
            signature=signature,
            content_embedding=self._embed_bow_guarded(content),
            metadata_embedding=self._embed_bow_guarded(metadata),
            value_set=frozenset(content.vocabulary),
            # For documents the value set IS the content vocabulary.
            value_signature=signature,
        )

    def _profile_column(self, column: Column) -> DESketch:
        tags = tag_column(column)
        content = BagOfWords(self._column_tokens(column))
        meta_terms = Counter(split_identifier(column.name))
        meta_terms.update(split_identifier(column.table_name))
        metadata = BagOfWords(meta_terms)
        numeric = (
            numeric_stats(column.numeric_values) if tags.numeric_profile else None
        )
        return DESketch(
            de_id=column.qualified_name,
            kind=COLUMN,
            content_bow=content,
            metadata_bow=metadata,
            signature=self.minhash.signature(content.vocabulary),
            content_embedding=self._embed_bow_guarded(content),
            metadata_embedding=self._embed_bow_guarded(metadata),
            numeric=numeric,
            tags=tags,
            table_name=column.table_name,
            column_name=column.name,
            value_set=frozenset(column.distinct_values),
            value_signature=self.minhash.signature(column.distinct_values),
        )

    def _embed_bow_guarded(self, bow: BagOfWords) -> np.ndarray:
        if not bow.vocabulary:
            return np.zeros(self.embedding_dim)
        return self._embed_bow(bow)
