"""Profiler: sketches and statistics per discoverable element (paper §3).

For every DE (document or tabular column) the profiler builds:

* the content bag of words (documents via the NLP pipeline; columns via
  cell-value tokenisation),
* the metadata bag of words (titles / table+column names),
* a minwise-hashing signature of the content token set (containment),
* solo embeddings: 100-d mean-pooled word vectors for metadata and for
  content — concatenated they form the 200-d input encoding of the joint
  model (paper §4.2),
* numeric statistics for numeric columns,
* the column's task tags.

The cold fit is **batch-first** (:meth:`Profiler.profile`): bags for the
whole lake are assembled first, then every minhash signature is computed in
one :meth:`~repro.sketch.minhash.MinHash.signatures_batch` pass over a
shared :class:`~repro.sketch.fingerprints.FingerprintCache` (each distinct
string hashed once per fit), and the union vocabulary is embedded in a
single ``embed_words`` call with per-DE pooling done by row-indexing the
shared matrix. The per-item routines (:meth:`profile_one` and friends)
remain the delta path of lake sessions and produce byte-identical sketches
— ``profile(lake, batched=False)`` drives the whole fit through them, which
is what the parity suite and the legacy-vs-batched benchmark compare.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.tagging import ColumnTags, tag_column
from repro.embed.pooling import POOLERS
from repro.relational.catalog import DataLake, Document
from repro.relational.stats import NumericStats, numeric_stats
from repro.relational.table import Column
from repro.sketch.fingerprints import FingerprintCache
from repro.sketch.minhash import MinHash, MinHashSignature
from repro.text.pipeline import BagOfWords, DocumentPipeline
from repro.text.tokenizer import split_identifier, tokenize
from repro.utils.timing import Timer

#: DE kind markers used in every index key.
DOCUMENT = "document"
COLUMN = "column"

#: Bound on the per-fit cell-value -> tokens memo. Cell values repeat
#: heavily across columns and tables (ids, categories), so most fits stay
#: far below the bound; past it the memo simply stops growing.
TOKEN_MEMO_MAX = 1 << 16


def _vocab_chunks(words: list[str], workers: int) -> list[list[str]]:
    """Split a vocabulary into at most ``workers`` contiguous chunks."""
    size = max(1, -(-len(words) // workers))
    return [words[i : i + size] for i in range(0, len(words), size)]


def _thread_safe_embedder(embedder) -> bool:
    """True for embedders whose caches tolerate concurrent ``embed_words``.

    Only our own embedders make that promise (the subword bucket table is
    lock-guarded; blended/PPMI cache fills are idempotent); an arbitrary
    user embedder is warmed sequentially instead.
    """
    from repro.embed.blended import BlendedEmbedder
    from repro.embed.hashing_embedder import HashingEmbedder

    return isinstance(embedder, (BlendedEmbedder, HashingEmbedder))


def _process_warmable(embedder, warnings_sink: list[str]) -> bool:
    """True when ``embedder`` can warm in worker processes.

    Requires the cache-fill protocol (``cache_fills`` computes a chunk and
    returns its picklable fills; ``merge_cache_fills`` merges them back)
    and a picklable instance. A failed check degrades to the thread path
    with a one-line note, never an error: the process backend is a
    scheduling optimisation, not a semantic switch.
    """
    if not (
        hasattr(embedder, "cache_fills") and hasattr(embedder, "merge_cache_fills")
    ):
        warnings_sink.append(
            "process embed backend: embedder lacks the cache-fill protocol; "
            "falling back to threads"
        )
        return False
    try:
        pickle.dumps(embedder)
    except Exception as exc:
        warnings_sink.append(
            f"process embed backend: embedder failed to pickle "
            f"({type(exc).__name__}); falling back to threads"
        )
        return False
    return True


def _warm_embedder_chunk(embedder, chunk: list[str]) -> dict:
    """Process-pool warm task: embed one vocabulary chunk in a worker.

    The worker gets a cold pickled copy of the embedder, warms its own
    caches, and ships the per-word fills back for the parent to merge —
    the warm-then-assemble protocol across a process boundary.
    """
    return embedder.cache_fills(chunk)


def _kernel_snapshot(embedder) -> dict[str, float] | None:
    """Copy of the embedder's slab-kernel timing counters, if it has any
    (the blended embedder's live on its subword component)."""
    if embedder is None:
        return None
    kernel = getattr(getattr(embedder, "subword", embedder), "kernel_seconds", None)
    return dict(kernel) if kernel is not None else None


@dataclass
class FitStats:
    """Wall-clock breakdown of one ``CMDL.fit`` (seconds per stage).

    * ``profile_seconds`` — bag building: document pipeline, cell/value
      tokenisation, metadata bags, tags, numeric stats.
    * ``sketch_seconds`` — minhash signatures (the batched fingerprint pass).
    * ``embed_seconds`` — embedder training (when the default lake-trained
      embedder is used) plus union-vocabulary embedding and per-DE pooling.
    * ``index_seconds`` — :class:`~repro.core.indexes.IndexCatalog` build.
    * ``train_seconds`` — labeling + joint-model training (0 without joint).
    * ``total_seconds`` — the whole fit, end to end.

    The legacy (per-item) fit path interleaves bag building, sketching,
    and per-DE embedding, so there ``embed_seconds`` carries only the
    embedder-training time and everything else is lumped into
    ``profile_seconds`` (``sketch_seconds`` stays 0).

    With ``CMDLConfig.fit_workers > 1`` the embed warm-up runs underneath
    the sketch stage, so ``embed_seconds`` reports only the non-overlapped
    remainder (join + matrix assembly + pooling).

    ``index_breakdown`` splits ``index_seconds`` by structure group
    (value_containment / schema / numeric / semantic / keyword build
    seconds, from :attr:`~repro.core.indexes.IndexCatalog.index_breakdown`)
    so an index-stage regression is attributable to a structure. It is kept
    out of :meth:`as_dict`, which stays flat-scalar for report tables.

    ``embed_breakdown`` does the same for the embed stage: ``grams`` /
    ``route`` / ``draw`` / ``pool`` are the slab-kernel sub-stage seconds
    accrued by the fit's embed work (wherever scheduled — the overlapped
    warm-up counts too, and the process backend sums worker-side kernel
    seconds, so with parallel workers the kernel total can exceed the
    stage's wall clock), and ``train_overlap`` is the wall time the embed
    stage spent blocked on the background embedder-training join. Zero
    kernel entries for a custom embedder without the slab kernel.

    ``warnings`` collects non-fatal fit degradations — today, the process
    embed backend falling back to threads (unpicklable embedder, missing
    cache-fill protocol, unusable start method). Empty on a clean fit.
    """

    profile_seconds: float = 0.0
    sketch_seconds: float = 0.0
    embed_seconds: float = 0.0
    index_seconds: float = 0.0
    train_seconds: float = 0.0
    total_seconds: float = 0.0
    index_breakdown: dict[str, float] = field(default_factory=dict)
    embed_breakdown: dict[str, float] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        return {
            "profile_seconds": self.profile_seconds,
            "sketch_seconds": self.sketch_seconds,
            "embed_seconds": self.embed_seconds,
            "index_seconds": self.index_seconds,
            "train_seconds": self.train_seconds,
            "total_seconds": self.total_seconds,
        }

    def summary(self) -> str:
        """One-line ms breakdown, e.g. for benchmark output."""
        parts = [
            f"{name.removesuffix('_seconds')}={1000 * value:.0f}ms"
            for name, value in self.as_dict().items()
        ]
        return " ".join(parts)


@dataclass
class DESketch:
    """All profiler outputs for one discoverable element."""

    de_id: str
    kind: str  # DOCUMENT or COLUMN
    content_bow: BagOfWords
    metadata_bow: BagOfWords
    signature: MinHashSignature
    content_embedding: np.ndarray
    metadata_embedding: np.ndarray
    numeric: NumericStats | None = None
    tags: ColumnTags | None = None
    table_name: str = ""
    column_name: str = ""
    #: Raw distinct cell values (columns) / content vocabulary (documents).
    #: Join, PK-FK, and union containment are *value*-equality semantics
    #: (paper §3: "percentage of their overlapping values"), distinct from
    #: the tokenised bag used for text discovery.
    value_set: frozenset[str] = frozenset()
    #: Minhash over :attr:`value_set` (vs :attr:`signature`, which is over
    #: the tokenised content bag). Feeds the value-containment LSH Ensemble
    #: of the candidate-generation layer; None for hand-built sketches.
    value_signature: MinHashSignature | None = None

    @property
    def join_signature(self) -> MinHashSignature:
        """The signature matching value-equality semantics, with fallback."""
        return self.value_signature if self.value_signature is not None else self.signature

    @property
    def encoding(self) -> np.ndarray:
        """The 200-d input encoding: metadata solo ++ content solo."""
        return np.concatenate([self.metadata_embedding, self.content_embedding])

    @property
    def token_set(self) -> set[str]:
        return self.content_bow.vocabulary


@dataclass
class Profile:
    """The profiled lake: sketches per DE plus build-time accounting."""

    documents: dict[str, DESketch] = field(default_factory=dict)
    columns: dict[str, DESketch] = field(default_factory=dict)
    table_columns: dict[str, list[str]] = field(default_factory=dict)
    structured_seconds: float = 0.0
    unstructured_seconds: float = 0.0
    #: Stage breakdown of the fit that built this profile (profile/sketch/
    #: embed filled by the profiler; index/train/total by ``CMDL.fit``).
    fit_stats: FitStats = field(default_factory=FitStats)

    def sketch(self, de_id: str) -> DESketch:
        if de_id in self.documents:
            return self.documents[de_id]
        if de_id in self.columns:
            return self.columns[de_id]
        raise KeyError(f"no sketch for DE {de_id!r}")

    @property
    def num_des(self) -> int:
        return len(self.documents) + len(self.columns)

    def columns_of_table(self, table_name: str) -> list[str]:
        return self.table_columns.get(table_name, [])

    # ------------------------------------------------------------ mutation

    def add_one(self, sketch: DESketch) -> None:
        """Register one freshly-profiled DE (delta path of lake sessions)."""
        if sketch.kind == DOCUMENT:
            if sketch.de_id in self.documents:
                raise ValueError(f"duplicate document sketch {sketch.de_id!r}")
            self.documents[sketch.de_id] = sketch
        else:
            if sketch.de_id in self.columns:
                raise ValueError(f"duplicate column sketch {sketch.de_id!r}")
            self.columns[sketch.de_id] = sketch
            self.table_columns.setdefault(sketch.table_name, []).append(sketch.de_id)

    def drop_one(self, de_id: str) -> DESketch:
        """Forget one DE's sketch; returns it so callers can unindex it."""
        if de_id in self.documents:
            return self.documents.pop(de_id)
        if de_id in self.columns:
            sketch = self.columns.pop(de_id)
            ids = self.table_columns.get(sketch.table_name)
            if ids is not None:
                ids.remove(de_id)
                if not ids:
                    del self.table_columns[sketch.table_name]
            return sketch
        raise KeyError(f"no sketch for DE {de_id!r}")

    def text_discovery_columns(self) -> list[str]:
        """Columns tagged as eligible for doc-column / keyword discovery."""
        return [
            cid for cid, s in self.columns.items()
            if s.tags is not None and s.tags.text_discovery
        ]


class Profiler:
    """Builds a :class:`Profile` for a data lake."""

    def __init__(
        self,
        embedding_dim: int = 100,
        num_hashes: int = 128,
        pooling: str = "mean",
        max_doc_frequency: float = 0.5,
        embedder=None,
        pipeline: DocumentPipeline | None = None,
        seed: int = 0,
        workers: int = 1,
        embed_backend: str = "thread",
    ):
        if pooling not in POOLERS:
            raise ValueError(f"unknown pooling {pooling!r}; expected {list(POOLERS)}")
        self.embedding_dim = embedding_dim
        self.pooling = POOLERS[pooling]
        self.minhash = MinHash(num_hashes=num_hashes, seed=seed)
        # ``pipeline`` lets a caller supply a pre-configured document
        # pipeline — the sharded lake passes per-shard pipelines pinned to
        # the corpus-wide df filter (global-stats mode).
        self.pipeline = pipeline or DocumentPipeline(max_doc_frequency=max_doc_frequency)
        self.embedder = embedder  # resolved lazily in profile() if None
        self.seed = seed
        #: Worker count of the batched fit's embed stage (0/1 = sequential).
        #: Workers warm per-word embedding caches in vocabulary chunks,
        #: overlapping the sketch stage; the matrix is then assembled by one
        #: ordinary ``embed_words`` call over the warm caches, so the output
        #: is byte-identical to the sequential path at any worker count.
        self.workers = max(1, workers)
        #: "thread" (default) or "process". The thread backend shares one
        #: embedder under the GIL (wins only where the kernel releases it);
        #: the process backend ships cold embedder copies to forked workers
        #: and merges their cache fills, so the warm-up truly overlaps on
        #: multi-core hosts. Degrades to threads (with a note in
        #: ``FitStats.warnings``) when the platform or embedder can't
        #: support it.
        if embed_backend not in ("thread", "process"):
            raise ValueError(
                f"unknown embed_backend {embed_backend!r}; "
                "expected 'thread' or 'process'"
            )
        self.embed_backend = embed_backend
        #: Per-fit string -> fingerprint cache shared by every signature of
        #: the fit; reset by :meth:`profile`, reused by the delta path.
        self.fingerprints = FingerprintCache(seed)
        self._token_memo: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------ helpers

    def _embed_bow(self, bow: BagOfWords) -> np.ndarray:
        words = sorted(bow.vocabulary)
        matrix = self.embedder.embed_words(words)
        return self.pooling(matrix, dim_hint=self.embedding_dim)

    def _cell_tokens(self, value: str) -> tuple[str, ...]:
        """Memoised :func:`tokenize` for cell values (bounded per fit)."""
        memo = self._token_memo
        tokens = memo.get(value)
        if tokens is None:
            tokens = tuple(tokenize(value))
            if len(memo) < TOKEN_MEMO_MAX:
                memo[value] = tokens
        return tokens

    def _column_tokens(self, column: Column) -> Counter:
        """Tokenise a column's cell values into its content bag of words."""
        terms: Counter = Counter()
        for value in column.non_missing:
            tokens = self._cell_tokens(value)
            if len(tokens) == 1:
                # Single-token cells (ids, names) kept verbatim.
                terms[tokens[0]] += 1
            else:
                terms.update(tokens)
        return terms

    def _training_corpora(self, lake: DataLake) -> list[list[str]]:
        """Token corpora the default blended embedder trains on.

        Tables contribute *row-wise* token lists: a row is the unit of
        co-occurrence (key values appear next to the attributes that
        describe them), which is what lets the distributional component
        bridge document vocabulary to column vocabulary.
        """
        corpora = [tokenize(d.text) for d in lake.documents]
        for table in lake.tables:
            for row in table.rows():
                tokens: list[str] = []
                for value in row:
                    tokens.extend(self._cell_tokens(value))
                corpora.append(tokens)
        return corpora

    def _resolve_embedder(self, lake: DataLake) -> None:
        """Train the default blended embedder on the lake's own text
        (the stand-in for a pre-trained fasttext) unless one was supplied."""
        if self.embedder is not None:
            return
        from repro.embed.blended import build_lake_embedder

        self.embedder = build_lake_embedder(
            self._training_corpora(lake), dim=self.embedding_dim, seed=self.seed
        )

    # ------------------------------------------------------------ profiling

    def profile(self, lake: DataLake, batched: bool = True) -> Profile:
        """Profile every document and column of ``lake``.

        ``batched=True`` (the default) runs the vectorised batch pipeline;
        ``batched=False`` runs the per-item delta routines over the whole
        lake — same output byte for byte, kept as the parity oracle and
        benchmark baseline.
        """
        self.fingerprints = FingerprintCache(self.seed)
        self._token_memo = {}
        if batched:
            return self._profile_batched(lake)
        return self._profile_legacy(lake)

    def _profile_legacy(self, lake: DataLake) -> Profile:
        """The pre-batching fit: one pass of the per-item routines per DE."""
        profile = Profile()
        with Timer() as t_embedder:
            self._resolve_embedder(lake)

        with Timer() as t_docs:
            self.pipeline.fit(d.text for d in lake.documents)
            for document in lake.documents:
                profile.documents[document.doc_id] = self._profile_document(document)
        profile.unstructured_seconds = t_docs.elapsed

        with Timer() as t_cols:
            for table in lake.tables:
                ids = []
                for column in table.columns:
                    sketch = self._profile_column(column)
                    profile.columns[sketch.de_id] = sketch
                    ids.append(sketch.de_id)
                profile.table_columns[table.name] = ids
        profile.structured_seconds = t_cols.elapsed
        # Per-item profiling interleaves bags, sketches, and embeddings, so
        # the stage split degenerates to embedder-training vs everything else.
        profile.fit_stats.embed_seconds = t_embedder.elapsed
        profile.fit_stats.profile_seconds = t_docs.elapsed + t_cols.elapsed
        return profile

    def _start_process_pool(self, warnings_sink: list[str]):
        """Start (and fully spawn) the process-backend embed warm pool.

        Called before the training thread exists: forking a multi-threaded
        process can clone held allocator/BLAS locks into the child, so
        under the fork start method every worker is forced to fork *now*,
        while the process is still single-threaded. Any failure degrades
        to the thread path with a note, never an error.
        """
        try:
            context = multiprocessing.get_context("fork")
            prefork = True
        except ValueError:
            try:
                context = multiprocessing.get_context("spawn")
                prefork = False
            except ValueError:
                warnings_sink.append(
                    "process embed backend: no usable start method; "
                    "falling back to threads"
                )
                return None
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
            if prefork:
                # Each submit forks a fresh worker while the previous ones
                # are still busy sleeping, so all forks happen here.
                for future in [
                    pool.submit(time.sleep, 0.02) for _ in range(self.workers)
                ]:
                    future.result()
        except Exception as exc:
            warnings_sink.append(
                f"process embed backend: pool failed to start "
                f"({type(exc).__name__}); falling back to threads"
            )
            return None
        return pool

    def _profile_batched(self, lake: DataLake) -> Profile:
        """Batch-first fit: stage-at-a-time over the whole lake."""
        profile = Profile()
        stats = profile.fit_stats
        documents = list(lake.documents)
        tables = list(lake.tables)
        columns = [column for table in tables for column in table.columns]

        # ---- process-backend warm pool, forked while the process is still
        # single-threaded (see _start_process_pool); an explicit embedder
        # must support the cache-fill protocol or we stay on threads
        process_pool = None
        if self.workers > 1 and self.embed_backend == "process":
            if self.embedder is None or _process_warmable(
                self.embedder, stats.warnings
            ):
                process_pool = self._start_process_pool(stats.warnings)

        # ---- embedder training kicked off first: the PPMI component's
        # heavy lifting releases the GIL, so it overlaps the bag-building
        # and sketch stages below (and warms the cell-token memo those
        # stages then hit). Arithmetic is identical to the sequential
        # build — the thread changes scheduling, not bytes.
        switch_interval = None
        with Timer() as t_corpora:
            training = None
            if self.embedder is None:
                from repro.embed.blended import LakeEmbedderTraining

                # The corpora build runs on the training thread (it is
                # training prep): the cell-token memo it warms is shared
                # with the bags stage below, and concurrent fills are
                # idempotent (tokenisation is deterministic per value).
                training = LakeEmbedderTraining(
                    lambda: self._training_corpora(lake),
                    dim=self.embedding_dim,
                    seed=self.seed,
                )
                # While the training thread is live, shorten the GIL switch
                # interval: the PROPACK solver re-acquires the GIL on every
                # sparse matvec callback, and under the default 5 ms
                # interval the Python-heavy bag loops starve it — on one
                # core the unabsorbed training then bleeds into the embed
                # stage's wall. Scheduling only; bytes are unaffected.
                switch_interval = sys.getswitchinterval()
                sys.setswitchinterval(0.0005)

        try:
            return self._profile_batched_stages(
                lake, profile, stats, documents, tables, columns,
                training, process_pool, t_corpora,
            )
        finally:
            if switch_interval is not None:
                sys.setswitchinterval(switch_interval)

    def _profile_batched_stages(
        self, lake, profile, stats, documents, tables, columns,
        training, process_pool, t_corpora,
    ) -> Profile:
        """Bags -> sketch -> embed -> assembly (body of the batched fit)."""
        # ---- bags: pipeline, tokenisation, metadata, tags, numeric stats
        with Timer() as t_docs:
            doc_contents = self.pipeline.fit_transform([d.text for d in documents])
            doc_metas = []
            for document in documents:
                meta_terms = Counter(tokenize(document.title))
                if document.source:
                    meta_terms.update(tokenize(document.source))
                doc_metas.append(BagOfWords(meta_terms))
        with Timer() as t_cols:
            col_tags = [tag_column(column) for column in columns]
            col_contents = [BagOfWords(self._column_tokens(c)) for c in columns]
            col_metas = []
            for column in columns:
                meta_terms = Counter(split_identifier(column.name))
                meta_terms.update(split_identifier(column.table_name))
                col_metas.append(BagOfWords(meta_terms))
            col_numeric = [
                numeric_stats(column.numeric_values) if tags.numeric_profile else None
                for column, tags in zip(columns, col_tags)
            ]
        stats.profile_seconds = t_docs.elapsed + t_cols.elapsed

        # ---- union vocabulary, computed *before* sketching so the embed
        # warm-up below can run on workers underneath the sketch pass
        with Timer() as t_union:
            union: set[str] = set()
            for bows in (doc_contents, doc_metas, col_contents, col_metas):
                for bow in bows:
                    union.update(bow.terms)
            words = sorted(union)

        # With workers > 1, warm per-word embedding caches in vocabulary
        # chunks while the sketch stage runs: cache fills are idempotent
        # and order-independent, and the matrix itself is assembled
        # afterwards by one ordinary embed_words call over the warm caches
        # — identical bytes to the sequential path, overlapped wall-clock.
        # Thread workers share the embedder under its locks; process
        # workers each warm a cold pickled copy and the parent merges their
        # fills. Before the blended embedder exists only its subword
        # component can be warmed; an explicit embedder is warmed only when
        # it is one of ours (an arbitrary user embedder makes no
        # thread-safety promises).
        warm_target = (
            training.subword if training is not None
            else self.embedder if _thread_safe_embedder(self.embedder)
            else None
        )
        kernel_source = training.subword if training is not None else self.embedder
        kernel_before = _kernel_snapshot(kernel_source)
        pool = warm_futures = process_futures = None
        if self.workers > 1 and words and warm_target is not None:
            chunks = _vocab_chunks(words, self.workers)
            if process_pool is not None:
                try:
                    process_futures = [
                        process_pool.submit(_warm_embedder_chunk, warm_target, chunk)
                        for chunk in chunks
                    ]
                except Exception as exc:
                    stats.warnings.append(
                        f"process embed backend: submit failed "
                        f"({type(exc).__name__}); falling back to threads"
                    )
                    process_futures = None
            if process_futures is None:
                warm = getattr(warm_target, "warm_words", warm_target.embed_words)
                pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="fit-embed"
                )
                warm_futures = [pool.submit(warm, chunk) for chunk in chunks]

        train_overlap = 0.0
        try:
            # ---- sketch: every signature of the fit in one batched pass
            with Timer() as t_sketch:
                sets: list = [bow.vocabulary for bow in doc_contents]
                sets += [bow.vocabulary for bow in col_contents]
                sets += [column.distinct_values for column in columns]
                signatures = self.minhash.signatures_batch(
                    sets, cache=self.fingerprints
                )
                n_docs, n_cols = len(documents), len(columns)
                doc_sigs = signatures[:n_docs]
                col_content_sigs = signatures[n_docs : n_docs + n_cols]
                col_value_sigs = signatures[n_docs + n_cols :]
            stats.sketch_seconds = t_sketch.elapsed

            # ---- embed: one union-vocabulary pass + per-DE pooled slices
            with Timer() as t_embed:
                if process_futures is not None:
                    try:
                        fills = [future.result() for future in process_futures]
                    except Exception as exc:
                        stats.warnings.append(
                            f"process embed warm-up failed "
                            f"({type(exc).__name__}: {exc}); embedding in-process"
                        )
                    else:
                        for fill in fills:
                            warm_target.merge_cache_fills(fill)
                if warm_futures is not None:
                    for future in warm_futures:
                        future.result()
                if training is not None:
                    if pool is None and process_futures is None:
                        # Warm the subword table for the whole fit vocabulary
                        # while the distributional model finishes its thread.
                        training.subword.warm_words(words)
                    join_start = time.perf_counter()
                    self.embedder = training.result()
                    train_overlap = time.perf_counter() - join_start
                    if pool is not None:
                        # The blended cache can only warm now that the
                        # distributional component exists; the subword table
                        # underneath is already hot from the overlapped pass.
                        for future in [
                            pool.submit(self.embedder.warm_words, chunk)
                            for chunk in _vocab_chunks(words, self.workers)
                        ]:
                            future.result()
                matrix = self.embedder.embed_words(words)
                position = {word: i for i, word in enumerate(words)}
                position_of = position.__getitem__
                # Derived tables repeat column content, so distinct bags
                # repeat across DEs; pooling is a pure function of the
                # sorted vocabulary, so duplicates share one pooled vector.
                pooled_memo: dict[tuple[str, ...], np.ndarray] = {}

                def pooled(bow: BagOfWords) -> np.ndarray:
                    if not bow.terms:
                        return np.zeros(self.embedding_dim)
                    key = tuple(sorted(bow.terms))
                    vec = pooled_memo.get(key)
                    if vec is None:
                        rows = matrix.take(
                            np.fromiter(
                                map(position_of, key), dtype=np.intp, count=len(key)
                            ),
                            axis=0,
                        )
                        vec = self.pooling(rows, dim_hint=self.embedding_dim)
                        pooled_memo[key] = vec
                    return vec

                if pool is not None:
                    doc_content_emb = list(pool.map(pooled, doc_contents))
                    doc_meta_emb = list(pool.map(pooled, doc_metas))
                    col_content_emb = list(pool.map(pooled, col_contents))
                    col_meta_emb = list(pool.map(pooled, col_metas))
                else:
                    doc_content_emb = [pooled(bow) for bow in doc_contents]
                    doc_meta_emb = [pooled(bow) for bow in doc_metas]
                    col_content_emb = [pooled(bow) for bow in col_contents]
                    col_meta_emb = [pooled(bow) for bow in col_metas]
        finally:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            if process_pool is not None:
                process_pool.shutdown(wait=True, cancel_futures=True)
        stats.embed_seconds = t_corpora.elapsed + t_union.elapsed + t_embed.elapsed
        kernel_after = _kernel_snapshot(self.embedder)
        breakdown = {"grams": 0.0, "route": 0.0, "draw": 0.0, "pool": 0.0}
        if kernel_after is not None:
            before = kernel_before or {}
            for stage in breakdown:
                breakdown[stage] = kernel_after.get(stage, 0.0) - before.get(
                    stage, 0.0
                )
        breakdown["train_overlap"] = train_overlap
        stats.embed_breakdown = breakdown

        # ---- assembly
        with Timer() as t_doc_assembly:
            for i, document in enumerate(documents):
                signature = doc_sigs[i]
                profile.documents[document.doc_id] = DESketch(
                    de_id=document.doc_id,
                    kind=DOCUMENT,
                    content_bow=doc_contents[i],
                    metadata_bow=doc_metas[i],
                    signature=signature,
                    content_embedding=doc_content_emb[i],
                    metadata_embedding=doc_meta_emb[i],
                    value_set=frozenset(doc_contents[i].vocabulary),
                    # For documents the value set IS the content vocabulary.
                    value_signature=signature,
                )
        with Timer() as t_col_assembly:
            index = 0
            for table in tables:
                ids = []
                for column in table.columns:
                    sketch = DESketch(
                        de_id=column.qualified_name,
                        kind=COLUMN,
                        content_bow=col_contents[index],
                        metadata_bow=col_metas[index],
                        signature=col_content_sigs[index],
                        content_embedding=col_content_emb[index],
                        metadata_embedding=col_meta_emb[index],
                        numeric=col_numeric[index],
                        tags=col_tags[index],
                        table_name=column.table_name,
                        column_name=column.name,
                        value_set=frozenset(column.distinct_values),
                        value_signature=col_value_sigs[index],
                    )
                    profile.columns[sketch.de_id] = sketch
                    ids.append(sketch.de_id)
                    index += 1
                profile.table_columns[table.name] = ids

        # Modality accounting: batched stages span both modalities, so the
        # document share is the doc-bag stage and the per-doc assembly; the
        # column share absorbs the batched sketch/embed passes.
        profile.unstructured_seconds = t_docs.elapsed + t_doc_assembly.elapsed
        profile.structured_seconds = (
            t_cols.elapsed + t_sketch.elapsed + t_embed.elapsed + t_col_assembly.elapsed
        )
        return profile

    # ---------------------------------------------------------- delta path

    def _require_embedder(self) -> None:
        if self.embedder is None:
            raise RuntimeError(
                "profiler has no embedder yet; profile() a lake first (which "
                "trains the default blended embedder) or construct the "
                "Profiler with an explicit embedder"
            )

    def profile_one(
        self, item: "Document | Column", content: BagOfWords | None = None
    ) -> DESketch:
        """Sketch one new DE without re-profiling the lake (delta path).

        Documents are transformed with the pipeline as currently fitted and
        embedded with the embedder as currently trained — lake sessions own
        keeping both in sync (:class:`~repro.core.session.LakeSession`
        re-fits the pipeline on document churn; the embedder stays frozen
        until ``refresh()``). ``content`` short-circuits the document
        transform when the caller already computed the bag (the session's
        drift check does).
        """
        self._require_embedder()
        if isinstance(item, Document):
            return self._profile_document(item, content=content)
        if isinstance(item, Column):
            return self._profile_column(item)
        raise TypeError(
            f"profile_one takes a Document or a Column, got {type(item).__name__}"
        )

    def profile_table(self, table) -> list[DESketch]:
        """Sketch every column of one new table (delta path)."""
        return [self.profile_one(column) for column in table.columns]

    # ----------------------------------------------------------- internals

    def _profile_document(
        self, document: Document, content: BagOfWords | None = None
    ) -> DESketch:
        if content is None:
            content = self.pipeline.transform(document.text)
        meta_terms = Counter(tokenize(document.title))
        if document.source:
            meta_terms.update(tokenize(document.source))
        metadata = BagOfWords(meta_terms)
        signature = self.minhash.signature(content.vocabulary, cache=self.fingerprints)
        return DESketch(
            de_id=document.doc_id,
            kind=DOCUMENT,
            content_bow=content,
            metadata_bow=metadata,
            signature=signature,
            content_embedding=self._embed_bow_guarded(content),
            metadata_embedding=self._embed_bow_guarded(metadata),
            value_set=frozenset(content.vocabulary),
            # For documents the value set IS the content vocabulary.
            value_signature=signature,
        )

    def _profile_column(self, column: Column) -> DESketch:
        tags = tag_column(column)
        content = BagOfWords(self._column_tokens(column))
        meta_terms = Counter(split_identifier(column.name))
        meta_terms.update(split_identifier(column.table_name))
        metadata = BagOfWords(meta_terms)
        numeric = (
            numeric_stats(column.numeric_values) if tags.numeric_profile else None
        )
        return DESketch(
            de_id=column.qualified_name,
            kind=COLUMN,
            content_bow=content,
            metadata_bow=metadata,
            signature=self.minhash.signature(content.vocabulary, cache=self.fingerprints),
            content_embedding=self._embed_bow_guarded(content),
            metadata_embedding=self._embed_bow_guarded(metadata),
            numeric=numeric,
            tags=tags,
            table_name=column.table_name,
            column_name=column.name,
            value_set=frozenset(column.distinct_values),
            value_signature=self.minhash.signature(
                column.distinct_values, cache=self.fingerprints
            ),
        )

    def _embed_bow_guarded(self, bow: BagOfWords) -> np.ndarray:
        if not bow.vocabulary:
            return np.zeros(self.embedding_dim)
        return self._embed_bow(bow)
