"""Relationship types of the Enterprise Knowledge Graph (paper §2.1, §5.1)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RelationType(Enum):
    """Typed edges of the EKG."""

    # document-column (cross-modal)
    DOC_COLUMN_JOINT = "doc_column_joint"          # joint-embedding proximity
    DOC_COLUMN_CONTAINMENT = "doc_column_containment"
    DOC_COLUMN_SEMANTIC = "doc_column_semantic"    # solo-embedding proximity

    # column-column
    CONTENT_CONTAINMENT = "content_containment"
    NAME_SIMILARITY = "name_similarity"
    SEMANTIC_SIMILARITY = "semantic_similarity"
    NUMERIC_OVERLAP = "numeric_overlap"

    # table-table (higher order)
    PKFK = "pkfk"
    UNIONABLE = "unionable"


class NodeKind(Enum):
    """Node types of the EKG."""

    DOCUMENT = "document"
    COLUMN = "column"
    TABLE = "table"


@dataclass(frozen=True)
class Relationship:
    """A scored, typed relationship between two DEs."""

    source: str
    target: str
    rel_type: RelationType
    weight: float

    def __post_init__(self):
        if not 0.0 <= self.weight:
            raise ValueError(f"relationship weight must be >= 0, got {self.weight}")
