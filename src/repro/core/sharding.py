"""Sharded lake architecture: partitioned fit, per-shard catalogs,
scatter-gather SRQL execution.

Every earlier layer assumes one monolithic profile and one index catalog,
so lake size is bounded by a single fit and a single index's memory and
latency. This module partitions the lake into N independently-fitted
shards, mirroring how specialised HTAP designs isolate workloads into
replicas that are maintained independently and merged at query time
(Polynesia, arXiv:2103.00798; HW/SW-cooperation follow-up,
arXiv:2204.11275):

* :class:`ShardRouter` — deterministic hash (or explicit-assignment)
  partitioning of tables and documents to shards, rebalance-aware;
* :class:`ShardedLakeSession` — owns N inner
  :class:`~repro.core.session.LakeSession` shards, fits them concurrently
  on a thread pool through the batched fit pipeline, routes every mutation
  to the owning shard (per-shard generation counters; mutations never
  re-sketch or re-index sibling shards), and exposes the same public
  surface as a monolithic session;
* :class:`ShardedExecutor` — the scatter-gather SRQL path: each planned
  primitive fans out across shards and the per-shard top-k lists are
  merged into the global top-k; DRS composition (``Intersect`` / ``Unite``
  / ``Top`` / ``Then``) runs on the merged result sets.

**Exactness of the merge.** For every primitive the per-shard evaluation
is *locally complete* — a shard's top-k list is the true top-k over its own
partition, computed with the same pure pair functions (containment, the
union ensemble, PK-FK inclusion) or globally comparable scores — so a
score-based k-way merge of per-shard top-k lists equals the monolithic
top-k. Two statistics are corpus-wide rather than pair-local and therefore
shard-dependent by default:

* **BM25 / LM corpus statistics** (document frequencies, corpus size,
  average length) behind every keyword score, and
* the **document pipeline's df filter** ("drop terms occurring in a large
  fraction of documents"), which shapes document bags themselves.

With ``global_stats=False`` (the default) both are shard-local: keyword
scores and document bags reflect each shard's own corpus — mutations stay
perfectly isolated to the owning shard, at the cost of keyword rankings
that can deviate from a monolithic fit (the BM25/df freshness trade-off).
With ``global_stats=True`` the session merges document frequencies across
shards (:class:`~repro.search.engine.CorpusStatsGroup`) and pins every
shard's document pipeline to the corpus-wide df filter, restoring
byte-parity with a monolithic fit; the price is that *document* churn can
ripple: a document add/remove that shifts the corpus-wide filter re-syncs
the (few) drifted documents on sibling shards, exactly as a monolithic
session re-syncs its own.

As everywhere else in the session stack, exact embedding parity under
mutation additionally needs a corpus-independent embedder
(``CMDLConfig.embedder``); the default blended embedder is trained
per-shard on the shard's own corpus and frozen until ``refresh()``.
``cross_modal`` with ``representation="joint"`` is rejected on sharded
sessions: per-shard joint models live in incomparable embedding spaces.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path

from repro.core.discovery import (
    DiscoveryEngine,
    DiscoveryResultSet,
    aggregate_to_tables,
    pkfk_tables_for,
)
from repro.core.joinability import JoinDiscovery
from repro.core.session import LakeSession
from repro.core.srql.executor import OP_ORDER, ExecutionStats, Executor
from repro.core.srql.planner import Planner
from repro.core.system import CMDL, CMDLConfig
from repro.relational.catalog import DataLake, Document
from repro.search.engine import CorpusStatsGroup
from repro.text.pipeline import DocumentPipeline
from repro.utils.hashing import stable_hash_64
from repro.utils.timing import Timer

#: Keyword-engine families whose corpus statistics are merged across shards
#: under ``global_stats=True`` (the four "elastic" indexes of the paper plus
#: the two schema-name probe engines of the candidate layer).
STATS_FAMILIES = (
    "doc_content",
    "doc_metadata",
    "column_content",
    "column_metadata",
    "column_schema",
    "column_schema_ngrams",
)


def _merge_topk(ranked_lists, k: int) -> list[tuple[str, float]]:
    """K-way merge of per-shard ``(id, score)`` lists into the global top-k.

    Every input list is sorted by ``(-score, id)`` and locally complete
    (the true top-k of its shard), and ids are disjoint across shards, so
    sorting the concatenation and cutting at ``k`` is exactly the
    monolithic top-k under the same ordering.
    """
    merged = [item for ranked in ranked_lists for item in ranked]
    merged.sort(key=lambda kv: (-kv[1], kv[0]))
    return merged[:k]


class ShardRouter:
    """Deterministic table/document -> shard assignment.

    Names route by a stable 64-bit hash by default; :meth:`assign` pins a
    name to an explicit shard (the rebalance path), overriding the hash.
    The router is the single source of truth for ownership: partitioning at
    open time and mutation routing afterwards both go through
    :meth:`shard_of`, so they can never disagree.
    """

    def __init__(
        self,
        num_shards: int,
        assignments: dict[str, int] | None = None,
        seed: int = 0,
    ):
        if not isinstance(num_shards, int) or isinstance(num_shards, bool) \
                or num_shards < 1:
            raise ValueError(
                f"num_shards must be a positive integer, got {num_shards!r}"
            )
        self.num_shards = num_shards
        self.seed = seed
        self.assignments: dict[str, int] = {}
        for name, shard in (assignments or {}).items():
            self.assign(name, shard)

    def shard_of(self, name: str) -> int:
        """Owning shard for a table name or document id."""
        pinned = self.assignments.get(name)
        if pinned is not None:
            return pinned
        return int(stable_hash_64(f"shard-route-{self.seed}-{name}") % self.num_shards)

    def assign(self, name: str, shard: int) -> None:
        """Pin ``name`` to ``shard`` explicitly (wins over the hash route)."""
        if not isinstance(shard, int) or isinstance(shard, bool) \
                or not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard!r}"
            )
        self.assignments[name] = shard

    def partition(self, lake: DataLake) -> list[DataLake]:
        """Split a lake into one sub-lake per shard (tables + documents)."""
        sublakes = [
            DataLake(name=f"{lake.name}#shard{i}") for i in range(self.num_shards)
        ]
        for table in lake.tables:
            sublakes[self.shard_of(table.name)].add_table(table)
        for document in lake.documents:
            sublakes[self.shard_of(document.doc_id)].add_document(document)
        return sublakes


class _MergedCatalog:
    """Read-only profile façade over all shards.

    Duck-types the parts of :class:`~repro.core.profiler.Profile` the SRQL
    planner (validation, the "auto" heuristic) and the gather phase (column
    -> table resolution) read: ``table_columns``, ``columns``,
    ``documents``. Merged lazily and cached against the per-shard
    generation vector, so any shard mutation invalidates the snapshot.
    """

    def __init__(self, shards: list[LakeSession]):
        self._shards = shards
        self._key: tuple[int, ...] | None = None
        self._table_columns: dict[str, list[str]] = {}
        self._columns: dict = {}
        self._documents: dict = {}

    def _sync(self) -> None:
        key = tuple(shard.generation for shard in self._shards)
        if key == self._key:
            return
        table_columns: dict[str, list[str]] = {}
        columns: dict = {}
        documents: dict = {}
        for shard in self._shards:
            table_columns.update(shard.profile.table_columns)
            columns.update(shard.profile.columns)
            documents.update(shard.profile.documents)
        self._table_columns = table_columns
        self._columns = columns
        self._documents = documents
        self._key = key

    @property
    def table_columns(self) -> dict[str, list[str]]:
        self._sync()
        return self._table_columns

    @property
    def columns(self) -> dict:
        self._sync()
        return self._columns

    @property
    def documents(self) -> dict:
        self._sync()
        return self._documents

    def columns_of_table(self, table_name: str) -> list[str]:
        return self.table_columns.get(table_name, [])

    @property
    def num_des(self) -> int:
        return len(self.documents) + len(self.columns)


class ShardedExecutor(Executor):
    """Scatter-gather execution of SRQL plans over a sharded session.

    Reuses the monolithic :class:`~repro.core.srql.executor.Executor`'s
    composition, memoisation and grouping machinery; only primitive
    evaluation is overridden to fan out across shards and merge. Physical
    strategy is resolved *per shard*: plan-node annotations (made against
    the merged catalog) are ignored and each shard's engine re-resolves the
    configured choice against its own shard-local size — the "auto"
    heuristic sees the shard, not the lake.

    :class:`~repro.core.srql.executor.ExecutionStats` gains the sharded
    diagnostics: ``shard_generations`` (the per-shard generation vector the
    batch executed under) and ``shard_seconds`` (wall-clock inside each
    shard's scatter calls — the straggler signal).
    """

    def __init__(self, session: "ShardedLakeSession", planner: Planner):
        self.session = session
        self.planner = planner
        self.last_stats: ExecutionStats = ExecutionStats()
        #: (generation vector, merged links) of the last lake-wide PK-FK
        #: sweep; any shard mutation changes the vector and invalidates it.
        self._links_cache: tuple[tuple[int, ...], list] | None = None

    # ------------------------------------------------------------- public

    def execute_batch(self, plans) -> list[DiscoveryResultSet]:
        """Evaluate a workload: memoised, operator-grouped, scatter-gather."""
        session = self.session
        stats = ExecutionStats(
            generation=session.generation,
            shard_generations={
                i: shard.generation for i, shard in enumerate(session.shards)
            },
        )
        memo: dict = {}
        groups: dict[str, dict] = {op: {} for op in OP_ORDER}
        for plan in plans:
            for node in plan.nodes():
                if node.op in groups:
                    groups[node.op].setdefault(node.query, node)
        if groups["pkfk"]:
            # Amortise the lake-wide sweep: one scatter feeds every pkfk
            # query in the batch (and later batches, until a mutation).
            self._pkfk_links(stats)
        for op in OP_ORDER:
            for query, node in groups[op].items():
                if query not in memo:
                    memo[query] = self._run_primitive(node, stats)
        results = [self._eval(plan.root, memo, stats) for plan in plans]
        self.last_stats = stats
        return results

    # -------------------------------------------------------- primitives

    def _run_primitive(self, node, stats: ExecutionStats) -> DiscoveryResultSet:
        query = node.query
        stats.executed += 1
        stats.by_op[node.op] += 1
        if node.op == "content_search":
            return self._keyword(stats, "content_search", query)
        if node.op == "metadata_search":
            return self._keyword(stats, "metadata_search", query)
        if node.op == "cross_modal":
            return self._cross_modal(stats, query)
        if node.op == "joinable":
            return self._joinable(stats, query)
        if node.op == "unionable":
            return self._unionable(stats, query)
        if node.op == "pkfk":
            stats.pkfk_queries += 1
            return self._pkfk(stats, query)
        raise ValueError(f"unknown primitive op {node.op!r}")  # pragma: no cover

    @property
    def catalog(self) -> _MergedCatalog:
        return self.session.catalog

    def _scatter(self, stats, fn):
        return self.session.scatter(fn, stats=stats)

    def _table_of(self, column_id: str) -> str:
        return self.catalog.columns[column_id].table_name

    # keyword search ---------------------------------------------------

    def _keyword(self, stats, op: str, query) -> DiscoveryResultSet:
        hit_lists = self._scatter(
            stats,
            lambda i, shard: getattr(shard.engine, op)(
                query.value, mode=query.mode, k=query.k
            ).items,
        )
        return DiscoveryResultSet(
            _merge_topk(hit_lists, query.k),
            operation=op,
            inputs={"value": query.value, "mode": query.mode},
        )

    # cross-modal ------------------------------------------------------

    def _cross_modal(self, stats, query) -> DiscoveryResultSet:
        column_k = max(query.top_n * 5, 10)
        owner = next(
            (
                shard for shard in self.session.shards
                if query.value in shard.profile.documents
            ),
            None,
        )
        if owner is not None:
            if query.representation == "joint":
                raise RuntimeError(
                    "cross_modal(representation='joint') is not supported on "
                    "sharded sessions: each shard trains its own joint model "
                    "and the per-shard embedding spaces are not comparable; "
                    "query with representation='solo' or use a monolithic "
                    "session"
                )
            encoding = owner.profile.documents[query.value].encoding
            hit_lists = self._scatter(
                stats,
                lambda i, shard: shard.engine.encoding_column_hits(
                    encoding, column_k
                ),
            )
            hits = _merge_topk(hit_lists, column_k)
        else:
            probe = next(
                (
                    shard for shard in self.session.shards
                    if shard.profile.num_des
                ),
                None,
            )
            if probe is None:
                raise ValueError(
                    "cannot build a free-text query sketch over an empty "
                    "profile (no documents and no columns to borrow "
                    "hash-family settings from)"
                )
            # One query sketch for all shards: signatures are hash-family
            # compatible because every shard fits with the same seed/hashes.
            sketch = probe.engine.text_query_sketch(query.value)
            parts = self._scatter(
                stats,
                lambda i, shard: shard.engine.text_column_parts(sketch, column_k),
            )
            containment = _merge_topk([p[0] for p in parts], column_k)
            keyword = _merge_topk([p[1] for p in parts], column_k)
            hits = DiscoveryEngine.merge_text_column_parts(
                dict(containment), dict(keyword), column_k
            )
        tables = aggregate_to_tables(hits, self._table_of)
        return DiscoveryResultSet(
            tables[: query.top_n],
            operation="crossModal_search",
            inputs={"value": query.value, "representation": query.representation},
        )

    # joinable ---------------------------------------------------------

    def _query_sketches(self, table_name: str) -> list:
        owner = self.session.shards[self.session.router.shard_of(table_name)]
        return [
            owner.profile.columns[cid]
            for cid in owner.profile.columns_of_table(table_name)
        ]

    def _joinable(self, stats, query) -> DiscoveryResultSet:
        sketches = [
            s for s in self._query_sketches(query.table)
            if s.tags is not None and s.tags.join_discovery
        ]
        per_column_k = JoinDiscovery.PER_COLUMN_K
        hits_by_shard = self._scatter(
            stats,
            lambda i, shard: {
                sketch.de_id: shard.engine.scorer("joinable")
                .joinable_columns_for(sketch, k=per_column_k)
                for sketch in sketches
            },
        )
        best: dict[str, float] = {}
        for sketch in sketches:
            merged = _merge_topk(
                [hits[sketch.de_id] for hits in hits_by_shard], per_column_k
            )
            JoinDiscovery.fold_best_pairs(best, merged, self._table_of)
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return DiscoveryResultSet(
            ranked[: query.top_n],
            operation="joinable",
            inputs={"table": query.table},
        )

    # unionable --------------------------------------------------------

    def _unionable(self, stats, query) -> DiscoveryResultSet:
        sketches = self._query_sketches(query.table)
        inputs = {"table": query.table}
        if not sketches:
            return DiscoveryResultSet([], operation="unionable", inputs=inputs)
        # Per-shard pair-score memo shared by both phases: each (query
        # column, candidate) ensemble is computed at most once per query.
        caches = [dict() for _ in self.session.shards]

        # Phase 1 — candidate scoring: per shard, per query column, the
        # locally-complete top-k scored candidates (+ exact-mode caps).
        phase1 = self._scatter(
            stats,
            lambda i, shard: shard.engine.scorer("unionable").candidate_hits_for(
                sketches, pair_cache=caches[i]
            ),
        )
        candidate_k = self.session.shards[0].engine.scorer("unionable").candidate_k
        evidence: dict[str, float] = {}
        for sketch in sketches:
            merged = _merge_topk(
                [hits[sketch.de_id] for hits, _ in phase1], candidate_k
            )
            for col_id, score in merged:
                if score > 0:
                    table = self._table_of(col_id)
                    evidence[table] = max(evidence.get(table, 0.0), score)

        # Probe-score caps are only sound when every shard scored its full
        # local column set (exact strategy); the global cap per query
        # column is then the max of the per-shard maxima.
        cap_dicts = [caps for _, caps in phase1]
        row_caps = None
        if all(caps is not None for caps in cap_dicts):
            row_caps = {
                sketch.de_id: max(caps[sketch.de_id] for caps in cap_dicts)
                for sketch in sketches
            }

        # Phase 2 — alignment on the owning shards, each pruning against
        # its local top-k floor (a superset of its global contribution).
        shard_evidence: list[dict[str, float]] = [
            {} for _ in self.session.shards
        ]
        for table, ev in evidence.items():
            shard_evidence[self.session.router.shard_of(table)][table] = ev
        phase2 = self._scatter(
            stats,
            lambda i, shard: shard.engine.scorer("unionable").alignment_scores_for(
                sketches, shard_evidence[i], query.top_n,
                row_caps=row_caps, pair_cache=caches[i],
            ),
        )
        results = [item for shard_results in phase2 for item in shard_results]
        results.sort(key=lambda kv: (-kv[1], kv[0]))
        return DiscoveryResultSet(
            results[: query.top_n], operation="unionable", inputs=inputs
        )

    # pkfk -------------------------------------------------------------

    def _pkfk_links(self, stats: ExecutionStats) -> list:
        """The lake-wide PK-FK sweep: gather PKs, broadcast, merge links.

        Candidate-PK status is a per-column property, so every shard
        contributes its local PKs; the lake-wide PK set is then broadcast
        and every shard checks it against its *local* FK columns — each
        (PK, FK) pair is examined exactly once, by the shard owning the FK.
        Cached against the generation vector (per-shard sweeps additionally
        reuse their own engine caches between batches).
        """
        key = tuple(shard.generation for shard in self.session.shards)
        if self._links_cache is None or self._links_cache[0] != key:
            entry_lists = self._scatter(
                stats,
                lambda i, shard: shard.engine.scorer("pkfk").candidate_pk_entries(),
            )
            entries = sorted(
                (entry for entry_list in entry_lists for entry in entry_list),
                key=lambda entry: entry[0].de_id,
            )
            link_lists = self._scatter(
                stats,
                lambda i, shard: shard.engine.scorer("pkfk").links_for(entries),
            )
            links = [link for link_list in link_lists for link in link_list]
            links.sort(key=lambda link: (-link.score, link.pk_column, link.fk_column))
            self._links_cache = (key, links)
            stats.pkfk_sweeps += 1
        return self._links_cache[1]

    def _pkfk(self, stats, query) -> DiscoveryResultSet:
        ranked = pkfk_tables_for(
            self._pkfk_links(stats), query.table, self._table_of
        )
        return DiscoveryResultSet(
            ranked[: query.top_n], operation="pkfk", inputs={"table": query.table}
        )


class ShardedLakeSession:
    """N independently-fitted lake shards behind one session surface.

    Obtained from ``CMDL.open(lake, shards=N)`` / ``repro.open_lake(lake,
    shards=N)``. Fitting partitions the lake with the router and fits every
    shard through the batched pipeline, concurrently on a thread pool when
    the host has the cores for it. Mutations (``add_table`` /
    ``add_document`` / ``remove`` / ``update_table``) route to the owning
    shard and bump only that shard's generation counter; queries
    (``discover`` / ``discover_batch``) scatter each planned primitive
    across shards and merge per-shard top-k lists into the global top-k
    (see the module docs for the exactness argument and the
    ``global_stats`` corpus-statistics trade-off).
    """

    def __init__(
        self,
        lake: DataLake,
        config: CMDLConfig | None = None,
        shards: int | None = None,
        router: ShardRouter | None = None,
        global_stats: bool = False,
        gold_pairs: list[tuple[str, str, int]] | None = None,
        auto_refresh_threshold: float | None = None,
        fit_workers: int | None = None,
    ):
        if router is None:
            if shards is None:
                raise ValueError("pass shards=N or an explicit ShardRouter")
            router = ShardRouter(shards)
        elif shards is not None and shards != router.num_shards:
            raise ValueError(
                f"shards={shards} disagrees with the router's "
                f"{router.num_shards} shards"
            )
        if auto_refresh_threshold is not None and not (
            0.0 <= auto_refresh_threshold <= 1.0
        ):
            # Fail before any shard fits (LakeSession re-checks per shard).
            raise ValueError(
                "auto_refresh_threshold must be in [0, 1] (an OOV rate), "
                f"got {auto_refresh_threshold!r}"
            )
        self.config = config or CMDLConfig()
        self.router = router
        self.name = lake.name
        self.global_stats = global_stats
        self.gold_pairs = gold_pairs
        self.auto_refresh_threshold = auto_refresh_threshold
        workers = (
            fit_workers if fit_workers is not None
            else min(router.num_shards, os.cpu_count() or 1)
        )
        self.fit_workers = max(1, workers)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.fit_workers, thread_name_prefix="lake-shard"
            )
            if self.fit_workers > 1 and router.num_shards > 1
            else None
        )
        #: Bound :class:`~repro.store.catalog.LakeStore` once :meth:`save`
        #: has written (or :func:`repro.open_lake` has reopened) a catalog.
        #: Set before shard fitting: a failed fit calls :meth:`close`.
        self._store = None
        #: Corpus-wide df calculator for global-stats mode (its term memo
        #: stays warm across filter re-syncs).
        self._df_pipeline = DocumentPipeline() if global_stats else None
        if global_stats:
            self._df_pipeline.fit(d.text for d in lake.documents)

        sublakes = router.partition(lake)
        try:
            self.shards: list[LakeSession] = self._fit_shards(sublakes)
        except BaseException:
            self.close()  # a failed construction must not leak the pool
            raise
        self._stats_groups: dict[str, CorpusStatsGroup] = {}
        self._wired_indexes: list = []
        if global_stats:
            self._wire_stats_groups()
        self.catalog = _MergedCatalog(self.shards)
        self._planner: Planner | None = None
        self._executor: ShardedExecutor | None = None

    @classmethod
    def _restore(
        cls,
        *,
        config: CMDLConfig,
        router: ShardRouter,
        name: str,
        global_stats: bool,
        gold_pairs,
        auto_refresh_threshold: float | None,
        fit_workers: int,
        df_pipeline: DocumentPipeline | None,
        shards: list[LakeSession],
    ) -> "ShardedLakeSession":
        """Assemble a session around already-restored shards (the catalog
        reopen path) — ``__init__`` would refit every shard from scratch."""
        session = cls.__new__(cls)
        session.config = config
        session.router = router
        session.name = name
        session.global_stats = global_stats
        session.gold_pairs = gold_pairs
        session.auto_refresh_threshold = auto_refresh_threshold
        session.fit_workers = fit_workers
        session._pool = (
            ThreadPoolExecutor(
                max_workers=fit_workers, thread_name_prefix="lake-shard"
            )
            if fit_workers > 1 and router.num_shards > 1
            else None
        )
        session._df_pipeline = df_pipeline
        session.shards = shards
        session._stats_groups = {}
        session._wired_indexes = []
        if global_stats:
            session._wire_stats_groups()
        session.catalog = _MergedCatalog(session.shards)
        session._planner = None
        session._executor = None
        session._store = None
        return session

    # ------------------------------------------------------------ fitting

    def _fit_shards(self, sublakes: list[DataLake]) -> list[LakeSession]:
        def build(i: int) -> LakeSession:
            cmdl = CMDL(self._shard_config())
            return cmdl.open(
                sublakes[i],
                gold_pairs=self._filter_gold(sublakes[i]),
                auto_refresh_threshold=self.auto_refresh_threshold,
            )

        if self._pool is not None:
            return list(self._pool.map(build, range(len(sublakes))))
        return [build(i) for i in range(len(sublakes))]

    def _shard_config(self) -> CMDLConfig:
        cfg = replace(self.config)
        if self.config.embedder is not None:
            # Each shard embeds on its own copy: deterministic embedders
            # produce identical vectors, and concurrent fits never contend
            # on one instance's internal caches.
            cfg.embedder = copy.deepcopy(self.config.embedder)
        if self.global_stats:
            pipeline = DocumentPipeline()
            pipeline.pin_filter(
                self._df_pipeline.common_terms, self._df_pipeline.num_docs_fit
            )
            cfg.document_pipeline = pipeline
        return cfg

    def _filter_gold(self, sublake: DataLake):
        """The gold pairs wholly inside one shard (cross-shard pairs cannot
        supervise a per-shard joint model and are dropped)."""
        if not self.gold_pairs:
            return None
        docs = {d.doc_id for d in sublake.documents}
        tables = set(sublake.table_names)
        kept = [
            (doc, col, label) for doc, col, label in self.gold_pairs
            if doc in docs and col.partition(".")[0] in tables
        ]
        return kept or None

    def _wire_stats_groups(self) -> None:
        self._stats_groups = {
            family: CorpusStatsGroup(
                [getattr(shard.indexes, family) for shard in self.shards]
            )
            for family in STATS_FAMILIES
        }
        self._wired_indexes = [shard.indexes for shard in self.shards]

    def _ensure_stats_wiring(self) -> None:
        """Re-wire the stats groups if any shard replaced its catalog (a
        refresh — explicit or drift-triggered — builds new indexes)."""
        if not self.global_stats:
            return
        if self._wired_indexes != [shard.indexes for shard in self.shards]:
            self._wire_stats_groups()

    # ------------------------------------------------------------- access

    @property
    def profile(self) -> _MergedCatalog:
        """Merged, read-only profile view across shards (planner surface)."""
        return self.catalog

    @property
    def generations(self) -> dict[int, int]:
        """Per-shard generation counters (each bumps on its own mutations)."""
        return {i: shard.generation for i, shard in enumerate(self.shards)}

    @property
    def generation(self) -> int:
        """Summed generation vector: monotonic, equal iff no shard mutated."""
        return sum(shard.generation for shard in self.shards)

    @property
    def mutations(self) -> int:
        return sum(shard.mutations for shard in self.shards)

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def table_names(self) -> list[str]:
        return [name for shard in self.shards for name in shard.lake.table_names]

    @property
    def document_ids(self) -> list[str]:
        return [d.doc_id for shard in self.shards for d in shard.lake.documents]

    def shard_of(self, name: str) -> int:
        """The owning shard index for a table name or document id."""
        return self.router.shard_of(name)

    def drift(self) -> float:
        """Lake-wide embedding drift: pooled OOV rate across shards."""
        oov = total = 0
        for shard in self.shards:
            shard_oov, shard_total = shard._drift_counts()
            oov += shard_oov
            total += shard_total
        return oov / total if total else 0.0

    # ------------------------------------------------------------ queries

    def _runtime(self) -> tuple[Planner, ShardedExecutor]:
        if self._executor is None:
            self._planner = Planner(
                self.catalog,
                default_strategy=self.config.discovery_strategy,
                operator_strategies=self.config.operator_strategies,
            )
            self._executor = ShardedExecutor(self, self._planner)
        return self._planner, self._executor

    def discover(self, query) -> DiscoveryResultSet:
        """Run one SRQL query, scatter-gathered across all shards."""
        planner, executor = self._runtime()
        return executor.execute(planner.plan(DiscoveryEngine._to_ast(query)))

    def discover_batch(self, queries) -> list[DiscoveryResultSet]:
        """Run an SRQL workload with batch amortisation across shards."""
        planner, executor = self._runtime()
        plans = planner.plan_batch(
            [DiscoveryEngine._to_ast(q) for q in queries]
        )
        return executor.execute_batch(plans)

    @property
    def last_batch_stats(self) -> ExecutionStats | None:
        """Stats of the most recent discover / discover_batch call."""
        return self._executor.last_stats if self._executor else None

    def scatter(self, fn, stats: ExecutionStats | None = None) -> list:
        """Run ``fn(shard_index, shard)`` on every shard; results in shard
        order. Uses the session thread pool when one exists; per-shard wall
        time is accumulated into ``stats.shard_seconds`` when given."""

        def run(i: int):
            with Timer() as timer:
                result = fn(i, self.shards[i])
            return result, timer.elapsed

        if self._pool is not None:
            outcomes = list(self._pool.map(run, range(len(self.shards))))
        else:
            outcomes = [run(i) for i in range(len(self.shards))]
        if stats is not None:
            for i, (_, seconds) in enumerate(outcomes):
                stats.shard_seconds[i] = stats.shard_seconds.get(i, 0.0) + seconds
                stats.shard_round_trips[i] = (
                    stats.shard_round_trips.get(i, 0) + 1
                )
        return [result for result, _ in outcomes]

    # ----------------------------------------------------------- mutators

    def add_table(self, table) -> None:
        """Add one table to its owning shard (sibling shards untouched)."""
        with self._journal("add_table", {"table": table}):
            shard = self.shards[self.router.shard_of(table.name)]
            shard.add_table(table)
            self._ensure_stats_wiring()

    def update_table(self, table) -> None:
        """Replace an existing table in place on its owning shard."""
        with self._journal("update_table", {"table": table}):
            shard = self.shards[self.router.shard_of(table.name)]
            if table.name not in shard.lake.table_names:
                raise KeyError(
                    f"lake {self.name!r} has no table {table.name!r} to update"
                )
            shard.update_table(table)
            self._ensure_stats_wiring()

    def add_document(self, document: Document) -> None:
        """Add one document to its owning shard.

        In global-stats mode the corpus-wide df filter is recomputed first
        (including the new document) and any sibling documents whose bag
        drifted under the new filter are re-synced — the byte-parity
        counterpart of a monolithic session's own re-sync.
        """
        self.add_documents([document])

    def add_documents(self, documents: list[Document]) -> None:
        """Add several documents, each routed to its owning shard."""
        with self._journal("add_documents", {"documents": list(documents)}):
            by_owner: dict[int, list[Document]] = {}
            for document in documents:
                by_owner.setdefault(
                    self.router.shard_of(document.doc_id), []
                ).append(document)
            if self.global_stats:
                self._sync_document_filter(
                    extra_texts=[d.text for d in documents]
                )
            for owner, batch in sorted(by_owner.items()):
                self.shards[owner].add_documents(batch)
            if self.global_stats:
                self._resync_siblings(skip=set(by_owner))
            self._ensure_stats_wiring()

    def remove(self, name: str) -> None:
        """Remove a table (by name) or document (by id) from its shard."""
        with self._journal("remove", {"name": name}):
            shard_index = self.router.shard_of(name)
            shard = self.shards[shard_index]
            if shard.lake.has_table(name):
                shard.remove(name)
            elif shard.lake.has_document(name):
                if self.global_stats:
                    # Pin the post-removal filter first so the owner's
                    # re-sync (and the siblings') runs under the final
                    # corpus.
                    self._sync_document_filter(exclude={name})
                    shard.remove(name)
                    self._resync_siblings(skip={shard_index})
                else:
                    shard.remove(name)
            else:
                raise KeyError(
                    f"lake {self.name!r} has no table or document {name!r}"
                )
            self._ensure_stats_wiring()

    def rebalance(self, assignments: dict[str, int]) -> int:
        """Move tables/documents to explicitly-assigned shards.

        Each move is a delta remove on the source shard plus a delta add on
        the target (two generation bumps, no refits); the router records
        the assignment so future routing — including :meth:`remove` and
        :meth:`update_table` — follows the entry to its new home. Returns
        the number of entries actually moved (already-home assignments are
        recorded but move nothing). The corpus is unchanged, so the
        global-stats df filter needs no re-sync.
        """
        with self._journal("rebalance", {"assignments": dict(assignments)}):
            moves = 0
            for name, target in assignments.items():
                current = self.router.shard_of(name)
                self.router.assign(name, target)  # validates the target index
                if current == target:
                    continue
                source = self.shards[current]
                destination = self.shards[target]
                if source.lake.has_table(name):
                    table = source.lake.table(name)
                    source.remove(name)
                    destination.add_table(table)
                elif source.lake.has_document(name):
                    document = source.lake.document(name)
                    source.remove(name)
                    destination.add_document(document)
                else:
                    raise KeyError(
                        f"lake {self.name!r} has no table or document {name!r}"
                    )
                moves += 1
            self._ensure_stats_wiring()
        return moves

    def refresh(self, gold_pairs=None) -> None:
        """Full refit of every shard (concurrent when a pool exists).

        Per-shard generation counters stay monotonic across the swap; the
        global-stats groups are re-wired onto the fresh index catalogs.
        """
        with self._journal(
            "refresh",
            {"with_gold": gold_pairs is not None, "gold_pairs": gold_pairs},
        ):
            if gold_pairs is not None:
                self.gold_pairs = gold_pairs
                for shard in self.shards:
                    shard.gold_pairs = self._filter_gold_lake(shard.lake)
            if self.global_stats:
                self._sync_document_filter()
            self.scatter(lambda i, shard: shard.refresh())
            if self.global_stats:
                self._wire_stats_groups()

    def _filter_gold_lake(self, sublake: DataLake):
        return self._filter_gold(sublake)

    # -------------------------------------------------------- persistence

    def save(self, path: str | Path | None = None):
        """Write (or checkpoint) this session's durable catalog.

        Same contract as :meth:`LakeSession.save`: the first call needs a
        ``path`` and full-writes one file per shard plus a manifest; later
        calls checkpoint the bound catalog incrementally.
        """
        from repro.store import LakeStore

        if self._store is not None and (
            path is None or Path(path) == self._store.path
        ):
            self._store.checkpoint()
            return self._store.path
        if path is None:
            raise ValueError(
                "this session has no bound catalog; pass save(path=...)"
            )
        LakeStore.create(path, self)
        return self._store.path

    def _journal(self, op: str, payload: dict):
        """Write-ahead journal scope for one mutation (no-op when no
        catalog is bound)."""
        if self._store is None:
            return nullcontext()
        return self._store.journal_scope(op, payload)

    # ------------------------------------------------------------ serving

    def serve(self, backend: str = "thread", **kwargs):
        """Wrap this lake in a concurrent :class:`~repro.serve.LakeServer`.

        ``backend="thread"`` serves the live session in place (the session
        stays yours to close). ``backend="process"`` checkpoints the bound
        catalog, closes this session, and serves the catalog directory
        with one worker process per shard — the server becomes the sole
        writer, so the in-process session must not stay live alongside it;
        requires a prior :meth:`save`.
        """
        from repro.serve.server import LakeServer

        if backend == "process":
            if self._store is None:
                raise ValueError(
                    "serve(backend='process') serves the saved catalog: "
                    "call save(path) first"
                )
            path = self._store.path
            self._store.checkpoint()
            self.close()
            return LakeServer(path, backend="process", **kwargs)
        return LakeServer(self, backend=backend, **kwargs)

    def close(self) -> None:
        """Shut down the thread pool and release any bound catalog's file
        handles (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ShardedLakeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------- internals

    def _sync_document_filter(
        self, extra_texts: list[str] | None = None, exclude: set[str] | None = None
    ) -> None:
        """Recompute the corpus-wide df filter and pin it on every shard."""
        exclude = exclude or set()
        texts = [
            document.text
            for shard in self.shards
            for document in shard.lake.documents
            if document.doc_id not in exclude
        ]
        texts.extend(extra_texts or ())
        self._df_pipeline.fit(texts)
        for shard in self.shards:
            shard.profiler.pipeline.pin_filter(
                self._df_pipeline.common_terms, len(texts)
            )

    def _resync_siblings(self, skip: set[int]) -> None:
        """Re-sketch sibling documents whose bags drifted under a new
        corpus-wide filter; only shards that actually changed commit (and
        therefore bump their generation)."""
        for i, shard in enumerate(self.shards):
            if i in skip:
                continue
            if shard._resync_documents():
                shard._commit()

    def __repr__(self) -> str:
        tables = sum(shard.lake.num_tables for shard in self.shards)
        docs = sum(shard.lake.num_documents for shard in self.shards)
        return (
            f"ShardedLakeSession({self.name!r}, shards={self.num_shards}, "
            f"tables={tables}, documents={docs}, "
            f"global_stats={self.global_stats})"
        )
