"""SRQL-style discovery interface (paper §5.2).

:class:`DiscoveryEngine` exposes the discovery primitives of the paper's
motivation pipeline (Figure 1 / §5.2): ``content_search`` (Q1),
``cross_modal_search`` (Q2/Q3), ``pkfk`` (Q4), ``unionable`` (Q5), plus
``joinable`` and keyword search over either modality. Results are
:class:`DiscoveryResultSet` objects carrying scores and provenance, and can
be composed (intersect / unite with normalised score sums).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.indexes import IndexCatalog
from repro.core.joinability import JoinDiscovery
from repro.core.joint.model import JointRepresentationModel
from repro.core.pkfk import PKFKDiscovery, PKFKLink
from repro.core.profiler import DESketch, DOCUMENT, Profile
from repro.core.unionability import UnionDiscovery
from repro.text.pipeline import BagOfWords
from repro.text.tokenizer import tokenize


@dataclass
class DiscoveryResultSet:
    """A ranked discovery answer with provenance (the paper's DRS)."""

    items: list[tuple[str, float]]
    operation: str
    inputs: dict = field(default_factory=dict)

    def ids(self) -> list[str]:
        return [i for i, _ in self.items]

    def scores(self) -> dict[str, float]:
        return dict(self.items)

    def __getitem__(self, rank: int) -> str:
        """1-based positional access, matching the paper's ``r1.[1]``."""
        if not 1 <= rank <= len(self.items):
            raise IndexError(
                f"rank {rank} out of range for DRS of size {len(self.items)}"
            )
        return self.items[rank - 1][0]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    # ----------------------------------------------------------- composition

    def intersect(self, other: "DiscoveryResultSet") -> "DiscoveryResultSet":
        """Keep ids in both, scores = normalised sum (paper §5.2)."""
        mine, theirs = self.scores(), other.scores()
        common = set(mine) & set(theirs)
        combined = self._normalised_sum(mine, theirs, common)
        return DiscoveryResultSet(
            combined, operation=f"({self.operation} ∩ {other.operation})"
        )

    def unite(self, other: "DiscoveryResultSet") -> "DiscoveryResultSet":
        """Keep ids in either, scores = normalised sum."""
        mine, theirs = self.scores(), other.scores()
        keys = set(mine) | set(theirs)
        combined = self._normalised_sum(mine, theirs, keys)
        return DiscoveryResultSet(
            combined, operation=f"({self.operation} ∪ {other.operation})"
        )

    @staticmethod
    def _normalised_sum(a: dict, b: dict, keys: set) -> list[tuple[str, float]]:
        def norm(d: dict) -> dict:
            top = max(d.values(), default=0.0)
            return {k: (v / top if top > 0 else 0.0) for k, v in d.items()}

        na, nb = norm(a), norm(b)
        items = [(k, na.get(k, 0.0) + nb.get(k, 0.0)) for k in keys]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items


class DiscoveryEngine:
    """The queryable CMDL instance for one lake."""

    def __init__(
        self,
        profile: Profile,
        indexes: IndexCatalog,
        joint_model: JointRepresentationModel | None,
        uniqueness: dict[str, float],
        pkfk_params: dict | None = None,
        strategy: str = "indexed",
    ):
        """``strategy`` picks the structured-discovery path: ``"indexed"``
        (default) routes join/union/PK-FK candidate generation through the
        sketch indexes; ``"exact"`` brute-forces every eligible pair."""
        self.profile = profile
        self.indexes = indexes
        self.joint_model = joint_model
        candidates = (
            CandidateGenerator(profile, indexes) if strategy == "indexed" else None
        )
        self.strategy = resolve_strategy(strategy, candidates)
        self.candidates = candidates
        self.join_discovery = JoinDiscovery(
            profile, candidates=candidates, strategy=self.strategy
        )
        self.union_discovery = UnionDiscovery(
            profile, candidates=candidates, strategy=self.strategy
        )
        self.pkfk_discovery = PKFKDiscovery(
            profile, uniqueness, candidates=candidates, strategy=self.strategy,
            **(pkfk_params or {})
        )
        self._pkfk_cache: list[PKFKLink] | None = None

    # --------------------------------------------------------- text queries

    def _text_sketch(self, text: str) -> DESketch:
        """Ad-hoc sketch for a free-text query (not a profiled DE).

        Free-text queries are served by the containment + keyword paths,
        which only need the token bag and a compatible minhash signature;
        profiled document ids additionally unlock the embedding paths.
        """
        from repro.sketch.minhash import MinHash  # local to avoid cycle

        any_sketch = next(iter(self.profile.documents.values()), None) or next(
            iter(self.profile.columns.values()), None
        )
        if any_sketch is None:
            raise ValueError(
                "cannot build a free-text query sketch over an empty profile "
                "(no documents and no columns to borrow hash-family settings from)"
            )
        dim = len(any_sketch.content_embedding)
        bow = BagOfWords(Counter(tokenize(text)))
        signature = MinHash(
            num_hashes=any_sketch.signature.num_hashes,
            seed=any_sketch.signature.seed,
        ).signature(bow.vocabulary)
        return DESketch(
            de_id="<query>",
            kind=DOCUMENT,
            content_bow=bow,
            metadata_bow=BagOfWords(),
            signature=signature,
            content_embedding=np.zeros(dim),
            metadata_embedding=np.zeros(dim),
        )

    def content_search(self, value: str, mode: str = "text",
                       k: int = 10) -> DiscoveryResultSet:
        """Keyword search over documents (``mode='text'``) or columns."""
        if mode not in ("text", "table"):
            raise ValueError(f"mode must be 'text' or 'table', got {mode!r}")
        terms = tokenize(value)
        engine = self.indexes.doc_content if mode == "text" else self.indexes.column_content
        hits = engine.search(terms, k=k)
        return DiscoveryResultSet(
            hits, operation="content_search", inputs={"value": value, "mode": mode}
        )

    def metadata_search(self, value: str, mode: str = "text",
                        k: int = 10) -> DiscoveryResultSet:
        """Keyword search over metadata (titles / schema names)."""
        if mode not in ("text", "table"):
            raise ValueError(f"mode must be 'text' or 'table', got {mode!r}")
        terms = tokenize(value)
        engine = (
            self.indexes.doc_metadata if mode == "text" else self.indexes.column_metadata
        )
        hits = engine.search(terms, k=k)
        return DiscoveryResultSet(
            hits, operation="metadata_search", inputs={"value": value, "mode": mode}
        )

    # --------------------------------------------------------- cross-modal

    def cross_modal_search(
        self,
        value: str,
        top_n: int = 3,
        representation: str = "joint",
        column_k: int | None = None,
    ) -> DiscoveryResultSet:
        """Find tables related to a document (Q2/Q3 of the paper).

        ``value`` is a profiled document id, or free text (in which case the
        containment + keyword path is used). ``representation`` selects the
        embedding space: ``"joint"`` (default; requires a trained model) or
        ``"solo"``.
        """
        if representation not in ("joint", "solo"):
            raise ValueError(f"unknown representation {representation!r}")
        column_k = column_k or max(top_n * 5, 10)

        if value in self.profile.documents:
            sketch = self.profile.documents[value]
            if representation == "joint":
                if not self.indexes.has_joint or self.joint_model is None:
                    raise RuntimeError(
                        "joint representation not trained; build CMDL with "
                        "use_joint=True or query with representation='solo'"
                    )
                query_vec = self.joint_model.embed(sketch.encoding[None, :])[0]
                hits = self.indexes.column_joint.query(query_vec, k=column_k)
            else:
                hits = self.indexes.column_solo.query(sketch.encoding, k=column_k)
        else:
            # Free-text query: containment + content keyword scores.
            sketch = self._text_sketch(value)
            containment = dict(
                self.indexes.column_containment.query(sketch.signature, k=column_k)
            )
            keyword = dict(
                self.indexes.column_content.search(sketch.content_bow.terms,
                                                   k=column_k)
            )
            top_kw = max(keyword.values(), default=1.0) or 1.0
            merged = {
                cid: containment.get(cid, 0.0) + keyword.get(cid, 0.0) / top_kw
                for cid in set(containment) | set(keyword)
            }
            hits = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))[:column_k]

        tables = self._aggregate_to_tables(hits)
        return DiscoveryResultSet(
            tables[:top_n],
            operation="crossModal_search",
            inputs={"value": value, "representation": representation},
        )

    def _aggregate_to_tables(
        self, column_hits: list[tuple[str, float]]
    ) -> list[tuple[str, float]]:
        """Aggregate column relatedness to the table level (max per table)."""
        best: dict[str, float] = {}
        for col_id, score in column_hits:
            table = self.profile.columns[col_id].table_name
            if score > best.get(table, float("-inf")):
                best[table] = score
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked

    # ---------------------------------------------------------- structured

    def joinable(self, table_name: str, top_n: int = 2) -> DiscoveryResultSet:
        hits = self.join_discovery.joinable_tables(table_name, k=top_n)
        return DiscoveryResultSet(
            hits, operation="joinable", inputs={"table": table_name}
        )

    def pkfk(self, table_name: str, top_n: int = 2) -> DiscoveryResultSet:
        """Tables PK-FK-joinable with ``table_name``."""
        if self._pkfk_cache is None:
            self._pkfk_cache = self.pkfk_discovery.discover()
        best: dict[str, float] = {}
        for link in self._pkfk_cache:
            pk_table = self.profile.columns[link.pk_column].table_name
            fk_table = self.profile.columns[link.fk_column].table_name
            if pk_table == table_name and fk_table != table_name:
                best[fk_table] = max(best.get(fk_table, 0.0), link.score)
            elif fk_table == table_name and pk_table != table_name:
                best[pk_table] = max(best.get(pk_table, 0.0), link.score)
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return DiscoveryResultSet(
            ranked[:top_n], operation="pkfk", inputs={"table": table_name}
        )

    def unionable(self, table_name: str, top_n: int = 2) -> DiscoveryResultSet:
        hits = self.union_discovery.unionable_tables(table_name, k=top_n)
        return DiscoveryResultSet(
            hits, operation="unionable", inputs={"table": table_name}
        )
