"""SRQL-style discovery interface (paper §5.2).

:class:`DiscoveryEngine` exposes the discovery primitives of the paper's
motivation pipeline (Figure 1 / §5.2): ``content_search`` (Q1),
``cross_modal_search`` (Q2/Q3), ``pkfk`` (Q4), ``unionable`` (Q5), plus
``joinable`` and keyword search over either modality. Results are
:class:`DiscoveryResultSet` objects carrying scores and provenance, and can
be composed (intersect / unite with normalised score sums).

The blessed entrypoints are :meth:`DiscoveryEngine.discover` and
:meth:`DiscoveryEngine.discover_batch`: they take declarative SRQL queries
(a chainable :class:`~repro.core.srql.builder.Q`, a raw AST node, or a
``SELECT ... FROM lake WHERE ...`` string) and run them through the
planner/executor of :mod:`repro.core.srql` — validation, per-operator
``indexed``/``exact`` strategy choice, and batch amortisation included.
The imperative per-operator methods remain as the thin physical layer the
executor drives (and as a stable back-compat surface).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import CandidateGenerator
from repro.core.indexes import IndexCatalog
from repro.core.joinability import JoinDiscovery
from repro.core.joint.model import JointRepresentationModel
from repro.core.pkfk import PKFKDiscovery, PKFKLink
from repro.core.profiler import DESketch, DOCUMENT, Profile
from repro.core.unionability import UnionDiscovery
from repro.text.pipeline import BagOfWords
from repro.text.tokenizer import tokenize

# NOTE: repro.core.srql modules are imported lazily inside methods — the
# srql package imports this module (its executor drives the engine), so a
# module-level import here would be circular.


def check_positive(value, name: str) -> None:
    """Shared guard for ``k`` / ``top_n``-style arguments: a clear,
    consistent ``ValueError`` instead of silent empty results."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")


def check_search_args(mode: str, k) -> None:
    """The ``mode``/``k`` validation shared by content and metadata search."""
    if mode not in ("text", "table"):
        raise ValueError(f"mode must be 'text' or 'table', got {mode!r}")
    check_positive(k, "k")


def aggregate_to_tables(
    column_hits: list[tuple[str, float]], table_of
) -> list[tuple[str, float]]:
    """Aggregate column relatedness to the table level (max per table).

    ``table_of`` resolves a column id to its table name — the monolithic
    engine passes a profile lookup, the sharded gatherer its merged
    catalog's. Shared so the two paths can never drift apart (the sharded
    parity contract depends on identical aggregation and tie-breaks).
    """
    best: dict[str, float] = {}
    for col_id, score in column_hits:
        table = table_of(col_id)
        if score > best.get(table, float("-inf")):
            best[table] = score
    return sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))


def pkfk_tables_for(
    links, table_name: str, table_of
) -> list[tuple[str, float]]:
    """Tables PK-FK-linked to ``table_name``, best link score per table.

    Shared by the monolithic :meth:`DiscoveryEngine.pkfk` and the sharded
    gatherer (which resolves tables through its merged catalog).
    """
    best: dict[str, float] = {}
    for link in links:
        pk_table = table_of(link.pk_column)
        fk_table = table_of(link.fk_column)
        if pk_table == table_name and fk_table != table_name:
            best[fk_table] = max(best.get(fk_table, 0.0), link.score)
        elif fk_table == table_name and pk_table != table_name:
            best[pk_table] = max(best.get(pk_table, 0.0), link.score)
    return sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))


@dataclass
class DiscoveryResultSet:
    """A ranked discovery answer with provenance (the paper's DRS)."""

    items: list[tuple[str, float]]
    operation: str
    inputs: dict = field(default_factory=dict)

    def ids(self) -> list[str]:
        return [i for i, _ in self.items]

    def scores(self) -> dict[str, float]:
        return dict(self.items)

    def __getitem__(self, rank: int) -> str:
        """1-based positional access, matching the paper's ``r1.[1]``."""
        if not 1 <= rank <= len(self.items):
            raise IndexError(
                f"rank {rank} out of range for DRS of size {len(self.items)}"
            )
        return self.items[rank - 1][0]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    # ----------------------------------------------------------- composition

    def intersect(self, other: "DiscoveryResultSet") -> "DiscoveryResultSet":
        """Keep ids in both, scores = normalised sum (paper §5.2)."""
        mine, theirs = self.scores(), other.scores()
        common = set(mine) & set(theirs)
        combined = self._normalised_sum(mine, theirs, common)
        return DiscoveryResultSet(
            combined, operation=f"({self.operation} ∩ {other.operation})"
        )

    def unite(self, other: "DiscoveryResultSet") -> "DiscoveryResultSet":
        """Keep ids in either, scores = normalised sum."""
        mine, theirs = self.scores(), other.scores()
        keys = set(mine) | set(theirs)
        combined = self._normalised_sum(mine, theirs, keys)
        return DiscoveryResultSet(
            combined, operation=f"({self.operation} ∪ {other.operation})"
        )

    @staticmethod
    def _normalised_sum(a: dict, b: dict, keys: set) -> list[tuple[str, float]]:
        def norm(d: dict) -> dict:
            top = max(d.values(), default=0.0)
            return {k: (v / top if top > 0 else 0.0) for k, v in d.items()}

        na, nb = norm(a), norm(b)
        items = [(k, na.get(k, 0.0) + nb.get(k, 0.0)) for k in keys]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return items


class DiscoveryEngine:
    """The queryable CMDL instance for one lake."""

    def __init__(
        self,
        profile: Profile,
        indexes: IndexCatalog,
        joint_model: JointRepresentationModel | None,
        uniqueness: dict[str, float],
        pkfk_params: dict | None = None,
        strategy: str = "indexed",
        operator_strategies: dict[str, str] | None = None,
    ):
        """``strategy`` picks the default structured-discovery path:
        ``"indexed"`` routes join/union/PK-FK candidate generation through
        the sketch indexes, ``"exact"`` brute-forces every eligible pair,
        and ``"auto"`` resolves per operator via the planner's size/density
        heuristic. ``operator_strategies`` overrides the choice for
        individual operators (``{"pkfk": "exact", ...}``)."""
        from repro.core.srql.planner import STRUCTURED_OPS, Planner

        self.profile = profile
        self.indexes = indexes
        self.joint_model = joint_model
        self.uniqueness = uniqueness
        self.pkfk_params = dict(pkfk_params or {})
        self.strategy = strategy
        self.operator_strategies = dict(operator_strategies or {})
        # The planner owns knob validation and auto-resolution; the engine
        # reads the concrete per-operator choices back from it so the two
        # can never disagree.
        self._planner = Planner(
            profile,
            default_strategy=strategy,
            operator_strategies=self.operator_strategies,
        )
        #: Concrete (indexed/exact) strategy per structured operator.
        self.operator_strategy: dict[str, str] = {
            op: self._planner.strategy_for(op) for op in STRUCTURED_OPS
        }

        #: Cache generation: bumped by :meth:`invalidate`, which lake
        #: sessions call on every mutation. Everything derived from the
        #: profile or the indexes (candidate generator, structured scorers,
        #: PK-FK sweeps) is stamped with the generation it was built under
        #: and rebuilt lazily after a bump — the protocol that keeps SRQL
        #: memoisation and the candidate-layer caches from serving stale
        #: results across mutations.
        self.generation = 0
        self.candidates: CandidateGenerator | None = (
            CandidateGenerator(profile, indexes, generation=0)
            if "indexed" in self.operator_strategy.values()
            else None
        )
        self._structured_cache: dict[tuple[str, str], object] = {}
        self._pkfk_links: dict[str, list[PKFKLink]] = {}
        #: Diagnostic: full PK-FK sweeps run so far (the batch executor
        #: reports sweep reuse from this counter).
        self.pkfk_sweeps = 0
        self._executor = None

    # ----------------------------------------------------- physical layer

    @property
    def join_discovery(self) -> JoinDiscovery:
        """The joinable scorer under the default strategy (generation-fresh)."""
        return self._structured("joinable")

    @property
    def union_discovery(self) -> UnionDiscovery:
        """The unionable scorer under the default strategy (generation-fresh)."""
        return self._structured("unionable")

    @property
    def pkfk_discovery(self) -> PKFKDiscovery:
        """The PK-FK scorer under the default strategy (generation-fresh)."""
        return self._structured("pkfk")

    def _ensure_candidates(self) -> CandidateGenerator:
        if self.candidates is None:
            self.candidates = CandidateGenerator(
                self.profile, self.indexes, generation=self.generation
            )
        return self.candidates

    def _resolve_op_strategy(self, op: str, strategy: str | None) -> str:
        from repro.core.srql.planner import choose_strategy, validate_strategy

        if strategy is None:
            # Under "auto" the choice is re-evaluated per call/sweep against
            # the *current* profile (ROADMAP's size/density heuristic: small
            # lakes take the warm-name-cache exact sweep, large lakes the
            # indexed probes) — it can flip as a session's lake churns. The
            # thresholds live in one place: the SRQL planner.
            configured = self._planner.configured_for(op)
            if configured == "auto":
                return choose_strategy(op, self.profile)
            return self.operator_strategy[op]
        validate_strategy(strategy, knob="strategy")
        if strategy == "auto":
            return choose_strategy(op, self.profile)
        return strategy

    def scorer(self, op: str, strategy: str | None = None):
        """The structured scorer for ``op`` under ``strategy``.

        Public accessor for the per-(operator, strategy) scorer cache —
        the sharded scatter-gather executor drives shard-local scorers
        through this (``strategy=None`` resolves the engine's configured
        choice, re-evaluating ``"auto"`` against the *current* profile, so
        every shard picks exact-vs-indexed from its own local size).
        """
        return self._structured(op, strategy)

    def _structured(self, op: str, strategy: str | None = None):
        """The scorer for ``op`` under ``strategy`` (cached per pair)."""
        resolved = self._resolve_op_strategy(op, strategy)
        key = (op, resolved)
        if key not in self._structured_cache:
            candidates = (
                self._ensure_candidates() if resolved == "indexed" else None
            )
            if op == "joinable":
                module = JoinDiscovery(
                    self.profile, candidates=candidates, strategy=resolved
                )
            elif op == "unionable":
                module = UnionDiscovery(
                    self.profile, candidates=candidates, strategy=resolved
                )
            else:
                module = PKFKDiscovery(
                    self.profile, self.uniqueness, candidates=candidates,
                    strategy=resolved, **self.pkfk_params
                )
            self._structured_cache[key] = module
        return self._structured_cache[key]

    # --------------------------------------------------------- text queries

    def text_query_sketch(self, text: str) -> DESketch:
        """Ad-hoc sketch for a free-text query (public alias).

        The sharded path builds the query sketch once (signatures are
        hash-family-compatible across shards, which share the fit seed and
        hash count) and broadcasts it to every shard's index probes.
        """
        return self._text_sketch(text)

    def _text_sketch(self, text: str) -> DESketch:
        """Ad-hoc sketch for a free-text query (not a profiled DE).

        Free-text queries are served by the containment + keyword paths,
        which only need the token bag and a compatible minhash signature;
        profiled document ids additionally unlock the embedding paths.
        """
        from repro.sketch.minhash import MinHash  # local to avoid cycle

        any_sketch = next(iter(self.profile.documents.values()), None) or next(
            iter(self.profile.columns.values()), None
        )
        if any_sketch is None:
            raise ValueError(
                "cannot build a free-text query sketch over an empty profile "
                "(no documents and no columns to borrow hash-family settings from)"
            )
        dim = len(any_sketch.content_embedding)
        bow = BagOfWords(Counter(tokenize(text)))
        signature = MinHash(
            num_hashes=any_sketch.signature.num_hashes,
            seed=any_sketch.signature.seed,
        ).signature(bow.vocabulary)
        return DESketch(
            de_id="<query>",
            kind=DOCUMENT,
            content_bow=bow,
            metadata_bow=BagOfWords(),
            signature=signature,
            content_embedding=np.zeros(dim),
            metadata_embedding=np.zeros(dim),
        )

    def content_search(self, value: str, mode: str = "text",
                       k: int = 10) -> DiscoveryResultSet:
        """Keyword search over documents (``mode='text'``) or columns."""
        check_search_args(mode, k)
        terms = tokenize(value)
        engine = self.indexes.doc_content if mode == "text" else self.indexes.column_content
        hits = engine.search(terms, k=k)
        return DiscoveryResultSet(
            hits, operation="content_search", inputs={"value": value, "mode": mode}
        )

    def metadata_search(self, value: str, mode: str = "text",
                        k: int = 10) -> DiscoveryResultSet:
        """Keyword search over metadata (titles / schema names)."""
        check_search_args(mode, k)
        terms = tokenize(value)
        engine = (
            self.indexes.doc_metadata if mode == "text" else self.indexes.column_metadata
        )
        hits = engine.search(terms, k=k)
        return DiscoveryResultSet(
            hits, operation="metadata_search", inputs={"value": value, "mode": mode}
        )

    # --------------------------------------------------------- cross-modal

    def cross_modal_search(
        self,
        value: str,
        top_n: int = 3,
        representation: str = "joint",
        column_k: int | None = None,
    ) -> DiscoveryResultSet:
        """Find tables related to a document (Q2/Q3 of the paper).

        ``value`` is a profiled document id, or free text (in which case the
        containment + keyword path is used). ``representation`` selects the
        embedding space: ``"joint"`` (default; requires a trained model) or
        ``"solo"``.
        """
        if representation not in ("joint", "solo"):
            raise ValueError(f"unknown representation {representation!r}")
        check_positive(top_n, "top_n")
        if column_k is not None:
            check_positive(column_k, "column_k")
        column_k = column_k or max(top_n * 5, 10)

        if value in self.profile.documents:
            sketch = self.profile.documents[value]
            if representation == "joint":
                if not self.indexes.has_joint or self.joint_model is None:
                    raise RuntimeError(
                        "joint representation not trained; build CMDL with "
                        "use_joint=True or query with representation='solo'"
                    )
                query_vec = self.joint_model.embed(sketch.encoding[None, :])[0]
                hits = self.indexes.column_joint.query(query_vec, k=column_k)
            else:
                hits = self.encoding_column_hits(sketch.encoding, column_k)
        else:
            # Free-text query: containment + content keyword scores.
            sketch = self.text_query_sketch(value)
            containment, keyword = self.text_column_parts(sketch, column_k)
            hits = self.merge_text_column_parts(
                dict(containment), dict(keyword), column_k
            )

        tables = self._aggregate_to_tables(hits)
        return DiscoveryResultSet(
            tables[:top_n],
            operation="crossModal_search",
            inputs={"value": value, "representation": representation},
        )

    # The three pieces below are the scatter units of sharded cross-modal
    # search: each runs against local indexes only, returns raw
    # (column id, score) evidence, and defers the cross-source merge to
    # ``merge_text_column_parts`` / table aggregation — which the sharded
    # gatherer applies over per-shard parts exactly as the monolithic path
    # applies them over its own.

    def encoding_column_hits(
        self, encoding: np.ndarray, column_k: int
    ) -> list[tuple[str, float]]:
        """Top-``column_k`` columns by solo-encoding similarity (local ANN)."""
        return self.indexes.column_solo.query(encoding, k=column_k)

    def text_column_parts(
        self, sketch: DESketch, column_k: int
    ) -> tuple[list[tuple[str, float]], list[tuple[str, float]]]:
        """(containment hits, keyword hits) for a free-text query sketch."""
        containment = self.indexes.column_containment.query(
            sketch.signature, k=column_k
        )
        keyword = self.indexes.column_content.search(
            sketch.content_bow.terms, k=column_k
        )
        return containment, keyword

    @staticmethod
    def merge_text_column_parts(
        containment: dict[str, float], keyword: dict[str, float], column_k: int
    ) -> list[tuple[str, float]]:
        """Combine containment + keyword evidence into ranked column hits.

        Keyword scores are normalised by the best keyword score *in the
        pool*, so the gatherer must merge per-shard keyword lists first
        (with group-merged corpus statistics the scores are comparable and
        the global best is the max of the per-shard bests).
        """
        top_kw = max(keyword.values(), default=1.0) or 1.0
        merged = {
            cid: containment.get(cid, 0.0) + keyword.get(cid, 0.0) / top_kw
            for cid in set(containment) | set(keyword)
        }
        return sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))[:column_k]

    def _aggregate_to_tables(
        self, column_hits: list[tuple[str, float]]
    ) -> list[tuple[str, float]]:
        """Aggregate column relatedness to the table level (max per table)."""
        return aggregate_to_tables(
            column_hits, lambda cid: self.profile.columns[cid].table_name
        )

    # ---------------------------------------------------------- structured

    def joinable(self, table_name: str, top_n: int = 2,
                 strategy: str | None = None) -> DiscoveryResultSet:
        check_positive(top_n, "top_n")
        scorer = self._structured("joinable", strategy)
        hits = scorer.joinable_tables(table_name, k=top_n)
        return DiscoveryResultSet(
            hits, operation="joinable", inputs={"table": table_name}
        )

    def pkfk_links(self, strategy: str | None = None,
                   refresh: bool = False) -> list[PKFKLink]:
        """The lake-wide PK-FK link sweep, cached per strategy.

        This is the public accessor the executor, benchmarks, and tests
        share — nothing should poke a private cache. ``refresh=True``
        forces a re-sweep; :meth:`invalidate` drops all cached sweeps.
        """
        resolved = self._resolve_op_strategy("pkfk", strategy)
        if refresh or resolved not in self._pkfk_links:
            self._pkfk_links[resolved] = self._structured(
                "pkfk", resolved
            ).discover()
            self.pkfk_sweeps += 1
        return self._pkfk_links[resolved]

    #: Valid :meth:`invalidate` scopes, narrowest first.
    INVALIDATE_SCOPES = ("pkfk", "candidates", "all")

    def invalidate(self, scope: str = "all") -> None:
        """Drop derived state so no query can read stale results.

        ``scope`` selects how much to drop:

        * ``"pkfk"`` — cached PK-FK sweeps only (e.g. to force fresh sweeps
          for a timing run);
        * ``"candidates"`` — additionally the candidate generator and the
          structured scorers built over it (their probe caches and stacked
          signature matrices snapshot the profile);
        * ``"all"`` (default) — additionally bump :attr:`generation` and
          re-resolve ``"auto"`` operator strategies against the current
          profile size. Lake sessions call this on every mutation.
        """
        if scope not in self.INVALIDATE_SCOPES:
            raise ValueError(
                f"invalid invalidate scope {scope!r}; allowed values are "
                f"{', '.join(repr(s) for s in self.INVALIDATE_SCOPES)}"
            )
        self._pkfk_links.clear()
        if scope == "pkfk":
            return
        self.candidates = None
        self._structured_cache.clear()
        if scope == "candidates":
            return
        self.generation += 1
        self._planner.refresh()
        from repro.core.srql.planner import STRUCTURED_OPS

        self.operator_strategy = {
            op: self._planner.strategy_for(op) for op in STRUCTURED_OPS
        }

    def pkfk(self, table_name: str, top_n: int = 2,
             strategy: str | None = None) -> DiscoveryResultSet:
        """Tables PK-FK-joinable with ``table_name``."""
        check_positive(top_n, "top_n")
        ranked = pkfk_tables_for(
            self.pkfk_links(strategy), table_name,
            lambda cid: self.profile.columns[cid].table_name,
        )
        return DiscoveryResultSet(
            ranked[:top_n], operation="pkfk", inputs={"table": table_name}
        )

    def unionable(self, table_name: str, top_n: int = 2,
                  strategy: str | None = None) -> DiscoveryResultSet:
        check_positive(top_n, "top_n")
        scorer = self._structured("unionable", strategy)
        hits = scorer.unionable_tables(table_name, k=top_n)
        return DiscoveryResultSet(
            hits, operation="unionable", inputs={"table": table_name}
        )

    # ------------------------------------------------------- SRQL queries

    def _query_runtime(self):
        """The (planner, lazily-built executor) pair for SRQL queries."""
        if self._executor is None:
            from repro.core.srql.executor import Executor

            self._executor = Executor(self, planner=self._planner)
        return self._planner, self._executor

    @staticmethod
    def _to_ast(query):
        from repro.core.srql.parser import parse_srql

        if isinstance(query, str):
            return parse_srql(query)
        return getattr(query, "ast", query)

    def discover(self, query) -> DiscoveryResultSet:
        """Run one declarative SRQL query.

        ``query`` may be a chainable :class:`~repro.core.srql.builder.Q`,
        a raw AST node, or an SRQL string (``SELECT * FROM lake WHERE
        joinable('drugs') TOP 2``). The query is validated and planned
        against this engine's profile, then executed; results are identical
        to the corresponding imperative method calls.
        """
        planner, executor = self._query_runtime()
        return executor.execute(planner.plan(self._to_ast(query)))

    def discover_batch(self, queries) -> list[DiscoveryResultSet]:
        """Run a workload of SRQL queries with batch amortisation.

        Shared subplans (structurally equal queries or subqueries) are
        computed once, same-operator primitives run grouped, and all
        ``pkfk`` queries share one link sweep per strategy. Results align
        positionally with ``queries``; :attr:`last_batch_stats` reports
        the reuse achieved.
        """
        planner, executor = self._query_runtime()
        plans = planner.plan_batch([self._to_ast(q) for q in queries])
        return executor.execute_batch(plans)

    @property
    def last_batch_stats(self):
        """Stats of the most recent discover / discover_batch call."""
        return self._executor.last_stats if self._executor else None
