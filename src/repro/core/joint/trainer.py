"""Training loop for the joint representation model (paper §4.2).

Each epoch regenerates mini batches, produces one aggregated triplet per
document (or all combinations when hard sampling is disabled for the
ablation), and performs one optimiser step per batch with the triplet
margin loss. Training converges when the epoch loss change drops below a
tolerance across consecutive epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.joint.minibatch import MiniBatchGenerator
from repro.core.joint.model import JointRepresentationModel
from repro.core.joint.triplets import Triplet, TripletGenerator
from repro.nn.losses import TripletMarginLoss
from repro.nn.optim import Adam
from repro.utils.timing import Timer


@dataclass
class TrainingResult:
    """Convergence diagnostics for one training run."""

    epochs: int
    seconds: float
    final_loss: float
    error_percent: float  # fraction of triplets violating the margin, x100
    loss_history: list[float] = field(default_factory=list)


class JointTrainer:
    """Trains a :class:`JointRepresentationModel` from triplets."""

    def __init__(
        self,
        model: JointRepresentationModel,
        margin: float = 0.2,
        lr: float = 1e-3,
        max_epochs: int = 300,
        patience: int = 5,
        tol: float = 1e-4,
    ):
        if max_epochs <= 0 or patience <= 0:
            raise ValueError("max_epochs and patience must be positive")
        self.model = model
        self.loss_fn = TripletMarginLoss(margin=margin)
        self.optimizer = Adam(model.parameters, model.gradients, lr=lr)
        self.max_epochs = max_epochs
        self.patience = patience
        self.tol = tol

    # ------------------------------------------------------------ training

    def train(
        self,
        batches: MiniBatchGenerator,
        triplet_gen: TripletGenerator,
    ) -> TrainingResult:
        """Run epochs until the loss stabilises or max_epochs is reached."""
        history: list[float] = []
        stable = 0
        with Timer() as timer:
            for _ in range(self.max_epochs):
                epoch_loss = self._run_epoch(batches, triplet_gen)
                history.append(epoch_loss)
                if len(history) >= 2 and abs(history[-2] - epoch_loss) < self.tol:
                    stable += 1
                    if stable >= self.patience:
                        break
                else:
                    stable = 0
        error = self._error_percent(batches, triplet_gen)
        return TrainingResult(
            epochs=len(history),
            seconds=timer.elapsed,
            final_loss=history[-1] if history else 0.0,
            error_percent=error,
            loss_history=history,
        )

    def _run_epoch(
        self, batches: MiniBatchGenerator, triplet_gen: TripletGenerator
    ) -> float:
        total_loss = 0.0
        total_triplets = 0
        for batch in batches.epoch():
            triplets = triplet_gen.triplets(batch, embed_fn=self.model.embed)
            if not triplets:
                continue
            loss = self._step(triplets)
            total_loss += loss * len(triplets)
            total_triplets += len(triplets)
        return total_loss / total_triplets if total_triplets else 0.0

    def _step(self, triplets: list[Triplet]) -> float:
        # Stack anchor/positive/negative rows into one batch so a single
        # forward/backward pass handles the shared network exactly.
        b = len(triplets)
        stacked = np.vstack(
            [t.anchor for t in triplets]
            + [t.positive for t in triplets]
            + [t.negative for t in triplets]
        )
        self.model.zero_grad()
        z = self.model.embed(stacked)
        loss, ga, gp, gn = self.loss_fn(z[:b], z[b : 2 * b], z[2 * b :])
        self.model.backward(np.vstack([ga, gp, gn]))
        self.optimizer.step()
        return loss

    def _error_percent(
        self, batches: MiniBatchGenerator, triplet_gen: TripletGenerator
    ) -> float:
        """Margin-violation percentage over one fresh epoch of triplets."""
        violations = []
        for batch in batches.epoch():
            triplets = triplet_gen.triplets(batch, embed_fn=self.model.embed)
            if not triplets:
                continue
            za = self.model.embed(np.vstack([t.anchor for t in triplets]))
            zp = self.model.embed(np.vstack([t.positive for t in triplets]))
            zn = self.model.embed(np.vstack([t.negative for t in triplets]))
            violations.append(self.loss_fn.violation_rate(za, zp, zn))
        return 100.0 * float(np.mean(violations)) if violations else 0.0
