"""Triplet generation with positive aggregation + hard negative sampling.

Per paper Figure 5: within a mini batch, each document row is categorised
into positive and negative columns by a relatedness threshold. To avoid the
quadratic (n/2)^2 triplet blow-up per anchor, CMDL aggregates *all*
positives into one instance and aggregates only the *hard* negatives —
those within a cutoff range of the anchor in the current output space —
into one instance, producing exactly one triplet per document. Documents
lacking either a positive or a negative column are skipped (paper
footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.joint.minibatch import MiniBatch

#: Hard-sampling cutoff strategies for negative columns.
HARD_SAMPLING_MODES = ("average", "median", "disabled")


@dataclass
class Triplet:
    """Anchor/positive/negative input encodings (one row each)."""

    anchor: np.ndarray
    positive: np.ndarray
    negative: np.ndarray


class TripletGenerator:
    """Turns mini batches into triplets of aggregated input encodings."""

    def __init__(
        self,
        encodings: dict[str, np.ndarray],
        positive_threshold: float = 0.5,
        hard_sampling: str = "average",
    ):
        if hard_sampling not in HARD_SAMPLING_MODES:
            raise ValueError(
                f"unknown hard_sampling {hard_sampling!r}; "
                f"expected one of {HARD_SAMPLING_MODES}"
            )
        if not 0.0 < positive_threshold < 1.0:
            raise ValueError(
                f"positive_threshold must be in (0,1), got {positive_threshold}"
            )
        self.encodings = encodings
        self.positive_threshold = positive_threshold
        self.hard_sampling = hard_sampling

    # ------------------------------------------------------------ triplets

    def triplets(self, batch: MiniBatch, embed_fn=None) -> list[Triplet]:
        """Generate triplets for a mini batch.

        ``embed_fn`` maps a (b, in_dim) encoding matrix to the *current*
        output space; hard-negative distances are measured there so the
        selection tracks the model as it trains. When None (or with hard
        sampling disabled), distances are measured in the input space.

        With ``hard_sampling="disabled"`` the method reproduces the paper's
        ablation baseline: every (positive, negative) combination yields its
        own (un-aggregated) triplet.
        """
        out: list[Triplet] = []
        column_matrix = np.vstack([self.encodings[c] for c in batch.column_ids])
        for i, doc_id in enumerate(batch.doc_ids):
            anchor = self.encodings[doc_id]
            labels = batch.scores[i] >= self.positive_threshold
            pos_idx = np.flatnonzero(labels)
            neg_idx = np.flatnonzero(~labels)
            if pos_idx.size == 0 or neg_idx.size == 0:
                continue  # paper footnote 4

            if self.hard_sampling == "disabled":
                for p in pos_idx:
                    for n in neg_idx:
                        out.append(
                            Triplet(anchor, column_matrix[p], column_matrix[n])
                        )
                continue

            positive = column_matrix[pos_idx].mean(axis=0)
            hard_negatives = self._hard_negatives(
                anchor, column_matrix, neg_idx, embed_fn
            )
            negative = column_matrix[hard_negatives].mean(axis=0)
            out.append(Triplet(anchor, positive, negative))
        return out

    def _hard_negatives(
        self,
        anchor: np.ndarray,
        column_matrix: np.ndarray,
        neg_idx: np.ndarray,
        embed_fn,
    ) -> np.ndarray:
        """Negatives within the cutoff range of the anchor (the hard ones)."""
        if embed_fn is not None:
            anchor_out = embed_fn(anchor[None, :])[0]
            negatives_out = embed_fn(column_matrix[neg_idx])
        else:
            anchor_out = anchor
            negatives_out = column_matrix[neg_idx]
        distances = np.linalg.norm(negatives_out - anchor_out[None, :], axis=1)
        if self.hard_sampling == "average":
            cutoff = float(distances.mean())
        else:  # median
            cutoff = float(np.median(distances))
        hard = neg_idx[distances <= cutoff]
        if hard.size == 0:
            hard = neg_idx[np.argsort(distances)[:1]]
        return hard
