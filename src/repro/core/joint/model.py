"""The joint representation model: a deep MLP from 200-d to 100-d (§4.2).

Architecture note: the network combines a *fixed* random projection of the
input (a Johnson-Lindenstrauss skip path) with a trainable MLP branch whose
output layer starts near zero. At initialisation the joint space is
therefore a distance-preserving projection of the solo encodings — the
model can only improve on the solo baseline as triplet training shapes the
MLP branch, never start from a scrambled space. This mirrors the paper's
empirical finding that the joint representation is a refinement over solo
embeddings (Figure 6's 5-10% gain).
"""

from __future__ import annotations

import numpy as np

from repro.nn.mlp import MLP


class JointRepresentationModel:
    """Skip-projected MLP mapping DE encodings into the joint space."""

    def __init__(
        self,
        in_dim: int = 200,
        hidden: list[int] | None = None,
        out_dim: int = 100,
        seed: int = 0,
        branch_init_scale: float = 0.1,
    ):
        self.mlp = MLP(in_dim, hidden if hidden is not None else [160, 128],
                       out_dim, activation="relu", seed=seed)
        # Small output-layer init: the trainable branch starts quiet.
        last_dense = self.mlp.network.layers[-1]
        last_dense.weight *= branch_init_scale
        rng = np.random.default_rng(seed + 101)
        # Fixed JL skip projection: preserves solo-space distances at init.
        self._skip = rng.standard_normal((in_dim, out_dim)) / np.sqrt(in_dim)
        self.in_dim = in_dim
        self.out_dim = out_dim

    # ------------------------------------------------------------- forward

    def embed(self, encodings: np.ndarray) -> np.ndarray:
        """Map (b, in_dim) input encodings to (b, out_dim) joint vectors."""
        x = np.atleast_2d(np.asarray(encodings, dtype=float))
        return x @ self._skip + self.mlp.forward(x)

    def backward(self, grad_output: np.ndarray) -> None:
        """Accumulate parameter gradients for the trainable branch.

        The skip path has no parameters; its input gradient is irrelevant
        because encodings are fixed inputs, so only the MLP branch needs
        backpropagation.
        """
        self.mlp.backward(grad_output)

    def zero_grad(self) -> None:
        self.mlp.zero_grad()

    @property
    def parameters(self) -> list[np.ndarray]:
        return self.mlp.parameters

    @property
    def gradients(self) -> list[np.ndarray]:
        return self.mlp.gradients

    # ------------------------------------------------------------ batch API

    def embed_all(self, encoding_map: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Apply the model to every DE encoding, preserving keys."""
        if not encoding_map:
            return {}
        keys = sorted(encoding_map)
        matrix = np.vstack([encoding_map[k] for k in keys])
        joint = self.embed(matrix)
        return {k: joint[i] for i, k in enumerate(keys)}
