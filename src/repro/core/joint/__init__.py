"""Joint Representation Learning (paper §4.2, Figures 4 and 5).

The training dataset of (doc, col, relatedness) rows is partitioned into
mini batches preserving the document:column ratio; per document, positive
columns are aggregated into one instance and hard negatives (inside the
cutoff range) into another, yielding exactly one triplet per document; the
200 -> 100 MLP is trained with the triplet margin loss until the epoch loss
stabilises.
"""

from repro.core.joint.minibatch import MiniBatch, MiniBatchGenerator
from repro.core.joint.triplets import Triplet, TripletGenerator
from repro.core.joint.model import JointRepresentationModel
from repro.core.joint.trainer import JointTrainer, TrainingResult

__all__ = [
    "MiniBatch",
    "MiniBatchGenerator",
    "Triplet",
    "TripletGenerator",
    "JointRepresentationModel",
    "JointTrainer",
    "TrainingResult",
]
