"""Mini-batch generation over the labeled training dataset (paper §4.2).

A mini batch is a small m x n matrix of documents against columns with
their relatedness scores; the m:n ratio matches the document:column ratio
of the full training dataset, and the union of one epoch's batches covers
every document. Batches are re-randomised every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.labeling import TrainingPair
from repro.utils.rng import ensure_rng


@dataclass
class MiniBatch:
    """One m x n slice of the training matrix."""

    doc_ids: list[str]
    column_ids: list[str]
    scores: np.ndarray  # shape (m, n), relatedness in [0, 1]


class MiniBatchGenerator:
    """Partitions the training dataset into ratio-preserving mini batches."""

    def __init__(self, pairs: list[TrainingPair], batch_fraction: float = 0.08,
                 seed: int = 0):
        if not pairs:
            raise ValueError("training dataset is empty")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(f"batch_fraction must be in (0,1], got {batch_fraction}")
        self.batch_fraction = batch_fraction
        self.seed = seed
        self._scores: dict[tuple[str, str], float] = {
            (p.doc_id, p.column_id): p.relatedness for p in pairs
        }
        self.doc_ids = sorted({p.doc_id for p in pairs})
        self.column_ids = sorted({p.column_id for p in pairs})
        self._epoch = 0

    @property
    def docs_per_batch(self) -> int:
        return max(1, int(round(len(self.doc_ids) * self.batch_fraction)))

    @property
    def columns_per_batch(self) -> int:
        return max(2, int(round(len(self.column_ids) * self.batch_fraction)))

    def epoch(self) -> list[MiniBatch]:
        """Generate one epoch: non-overlapping doc partitions, fresh shuffle."""
        rng = ensure_rng(self.seed + self._epoch)
        self._epoch += 1
        docs = list(self.doc_ids)
        cols = list(self.column_ids)
        rng.shuffle(docs)
        m = self.docs_per_batch
        n = self.columns_per_batch
        batches = []
        for start in range(0, len(docs), m):
            batch_docs = docs[start : start + m]
            pick = rng.choice(len(cols), size=min(n, len(cols)), replace=False)
            batch_cols = [cols[i] for i in sorted(pick)]
            scores = np.zeros((len(batch_docs), len(batch_cols)))
            for i, d in enumerate(batch_docs):
                for j, c in enumerate(batch_cols):
                    scores[i, j] = self._scores.get((d, c), 0.0)
            batches.append(MiniBatch(batch_docs, batch_cols, scores))
        return batches
