"""Heuristic-based column tagging (paper §3).

Tags decide which discovery tasks a column participates in and which
sketches the profiler builds for it:

* document-column / keyword-search discoveries: text columns only, and not
  low-cardinality categoricals (their few distinct values carry no
  discriminative signal);
* PK-FK discoveries: exclude dates and long-text columns;
* numeric statistics: numeric columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.table import Column
from repro.relational.types import ColumnType


@dataclass(frozen=True)
class ColumnTags:
    """Task-eligibility tags computed for one column."""

    text_discovery: bool    # doc-column relatedness + keyword search
    pkfk_discovery: bool    # PK-FK join candidates
    join_discovery: bool    # syntactic (value-overlap) joins
    numeric_profile: bool   # maintain numeric statistics


def tag_column(
    column: Column,
    categorical_threshold: float = 0.05,
    long_text_tokens: int = 12,
) -> ColumnTags:
    """Apply CMDL's tagging heuristics to ``column``.

    ``categorical_threshold`` is the distinct-to-rows ratio below which a
    text column counts as categorical (excluded from text discovery).
    ``long_text_tokens`` is the mean-token cutoff above which a column is a
    free-text blob (excluded from PK-FK discovery).
    """
    dtype = column.dtype
    is_numeric = dtype.is_numeric
    is_date = dtype is ColumnType.DATE
    is_empty = dtype is ColumnType.EMPTY

    non_missing = column.non_missing
    rows = max(len(column.values), 1)
    categorical = (
        not is_numeric
        and not is_date
        and column.cardinality / rows < categorical_threshold
    )
    if non_missing:
        mean_tokens = sum(len(v.split()) for v in non_missing) / len(non_missing)
    else:
        mean_tokens = 0.0
    long_text = mean_tokens > long_text_tokens

    text_eligible = (
        not is_empty and not is_numeric and not is_date and not categorical
    )
    pkfk_eligible = not is_empty and not is_date and not long_text
    join_eligible = not is_empty and not is_numeric and not is_date
    return ColumnTags(
        text_discovery=text_eligible,
        pkfk_discovery=pkfk_eligible,
        join_discovery=join_eligible,
        numeric_profile=is_numeric,
    )
