"""The CMDL facade: profile -> index -> label -> train -> discover.

:class:`CMDL` wires every component of Figure 2 into a single ``fit`` call
over a :class:`~repro.relational.catalog.DataLake`, returning a
:class:`~repro.core.discovery.DiscoveryEngine`. Diagnostics from each stage
(profiling times, labeling report, joint-training result) are retained on
the instance for the efficiency experiments (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.discovery import DiscoveryEngine
from repro.core.indexes import IndexCatalog
from repro.core.joint.minibatch import MiniBatchGenerator
from repro.core.joint.model import JointRepresentationModel
from repro.core.joint.trainer import JointTrainer, TrainingResult
from repro.core.joint.triplets import TripletGenerator
from repro.core.labeling import LabelingReport, TrainingDatasetGenerator
from repro.core.profiler import FitStats, Profile, Profiler
from repro.core.srql.planner import (
    validate_operator_strategies,
    validate_strategy,
)
from repro.relational.catalog import DataLake
from repro.utils.timing import Timer
from repro.weaklabel.lf import LabelingFunction


@dataclass
class CMDLConfig:
    """All knobs, defaulted to the paper's settings (§6, "Default Settings").

    * ``sample_fraction`` = 10% of DEs for the labeling sample;
    * ``batch_fraction`` = 8% mini-batch matrix size;
    * ``hard_sampling`` = "average" cutoff, enabled by default;
    * ``margin`` (triplet loss beta) = 0.2;
    * joint model: 200-d input (2 x 100-d solo), 100-d output.
    """

    embedding_dim: int = 100
    num_hashes: int = 128
    pooling: str = "mean"
    ranker: str = "bm25"

    use_joint: bool = True
    sample_fraction: float = 0.1
    top_k_probe: int = 10
    gold_relative_threshold: float = 0.5

    batch_fraction: float = 0.08
    positive_threshold: float = 0.5
    hard_sampling: str = "average"
    margin: float = 0.2
    learning_rate: float = 1e-3
    max_epochs: int = 120
    hidden_layers: list[int] = field(default_factory=lambda: [160, 128])
    joint_dim: int = 100

    pkfk_containment_threshold: float = 0.85
    pkfk_name_threshold: float = 0.35
    pkfk_key_uniqueness: float = 0.85

    #: Structured-discovery path: "indexed" serves join/union/PK-FK candidate
    #: generation from the sketch indexes (sub-linear probes, §6.4);
    #: "exact" brute-forces every eligible pair (the correctness oracle);
    #: "auto" (the default) lets the SRQL planner pick per operator via its
    #: size/density heuristic — exact sweeps win on small lakes, probes on
    #: large ones (the crossover the sharded benchmarks measure per shard;
    #: in a sharded session every shard resolves "auto" against its own
    #: shard-local size).
    discovery_strategy: str = "auto"
    #: Per-operator strategy overrides, e.g. ``{"pkfk": "exact"}``; keys are
    #: "joinable" / "unionable" / "pkfk", values as discovery_strategy.
    operator_strategies: dict[str, str] = field(default_factory=dict)

    #: Fit pipeline: "batched" (the default) assembles bags lake-wide, then
    #: computes every minhash signature in one vectorised pass over a shared
    #: fingerprint cache, embeds the union vocabulary once, and bulk-builds
    #: every index; "legacy" drives the whole fit through the per-item delta
    #: routines. Output is byte-identical either way — "legacy" is the
    #: parity oracle and the baseline of ``benchmarks/bench_fit.py``.
    fit_mode: str = "batched"

    #: Worker count of the batched fit's embed stage. Workers warm the
    #: embedder's per-word caches in vocabulary chunks overlapped with the
    #: sketch stage; output is byte-identical at any setting (0/1 = the
    #: sequential path). Distinct from the ``fit_workers`` argument of
    #: :meth:`CMDL.open`, which sizes the *per-shard* fit pool of a sharded
    #: session; this knob parallelises inside one fit.
    fit_workers: int = 1

    #: Embed warm-up backend when ``fit_workers > 1``: "thread" (default)
    #: shares one embedder across worker threads — overlap is limited to
    #: the kernel's GIL-releasing spans; "process" forks workers that each
    #: warm a cold copy of the embedder on a vocabulary chunk and ship
    #: their per-word cache fills back to be merged, so the warm-up truly
    #: runs in parallel on multi-core hosts. Falls back to the thread path
    #: (noted in ``FitStats.warnings``) when the platform lacks a usable
    #: start method or the embedder doesn't pickle. Output is
    #: byte-identical across backends and worker counts.
    fit_embed_backend: str = "thread"

    #: Document pipeline override. ``None`` builds the default
    #: :class:`~repro.text.pipeline.DocumentPipeline` per fit. The sharded
    #: lake passes per-shard pipelines pinned to the corpus-wide df filter
    #: (``ShardedLakeSession(global_stats=True)``) so shard-local fits keep
    #: document bags byte-identical to a monolithic fit.
    document_pipeline: object | None = None

    #: Word embedder for the solo encodings. ``None`` trains the default
    #: blended embedder on the lake's own text at fit time. Pass a
    #: corpus-independent embedder (e.g.
    #: :class:`~repro.embed.hashing_embedder.HashingEmbedder`) when lake
    #: *sessions* must keep exact embedding parity under mutation: the
    #: blended embedder is frozen at fit, so embeddings of DEs added later
    #: reflect the fit-time corpus until :meth:`LakeSession.refresh`.
    embedder: object | None = None

    seed: int = 0
    extra_labeling_functions: list[LabelingFunction] = field(default_factory=list)


class CMDL:
    """Cross Modal Data Discovery over Structured and Unstructured Data Lakes."""

    def __init__(self, config: CMDLConfig | None = None):
        self.config = config or CMDLConfig()
        self.profiler: Profiler | None = None
        self.profile: Profile | None = None
        self.indexes: IndexCatalog | None = None
        self.joint_model: JointRepresentationModel | None = None
        self.labeling_report: LabelingReport | None = None
        self.training_result: TrainingResult | None = None
        self.engine: DiscoveryEngine | None = None
        #: Stage timing of the last :meth:`fit` (see
        #: :class:`~repro.core.profiler.FitStats`).
        self.fit_stats: FitStats | None = None

    # ------------------------------------------------------------------ fit

    def fit(
        self,
        lake: DataLake,
        gold_pairs: list[tuple[str, str, int]] | None = None,
    ) -> DiscoveryEngine:
        """Build the full CMDL stack over ``lake``.

        ``gold_pairs`` — optional tiny (doc, col, label) ground truth; when
        supplied, the labeling stage prunes weak LFs against it (the paper's
        "joint embedding + gold tuning" variant).
        """
        cfg = self.config
        # Fail on a bad strategy knob here, with the allowed values spelled
        # out, rather than deep inside the discovery stack after profiling.
        validate_strategy(cfg.discovery_strategy)
        validate_operator_strategies(cfg.operator_strategies)
        if cfg.fit_mode not in ("batched", "legacy"):
            raise ValueError(
                f"unknown fit_mode {cfg.fit_mode!r}; expected 'batched' or 'legacy'"
            )
        if cfg.fit_embed_backend not in ("thread", "process"):
            raise ValueError(
                f"unknown fit_embed_backend {cfg.fit_embed_backend!r}; "
                "expected 'thread' or 'process'"
            )
        batched = cfg.fit_mode == "batched"
        with Timer() as t_total:
            self.profiler = Profiler(
                embedding_dim=cfg.embedding_dim,
                num_hashes=cfg.num_hashes,
                pooling=cfg.pooling,
                embedder=cfg.embedder,
                pipeline=cfg.document_pipeline,
                seed=cfg.seed,
                workers=cfg.fit_workers,
                embed_backend=cfg.fit_embed_backend,
            )
            self.profile = self.profiler.profile(lake, batched=batched)
            with Timer() as t_index:
                self.indexes = IndexCatalog(
                    self.profile, ranker=cfg.ranker, seed=cfg.seed, bulk=batched
                )

            with Timer() as t_train:
                if cfg.use_joint and self.profile.documents:
                    self._train_joint(gold_pairs)

            uniqueness = {c.qualified_name: c.uniqueness for c in lake.columns}
            self.engine = DiscoveryEngine(
                profile=self.profile,
                indexes=self.indexes,
                joint_model=self.joint_model,
                uniqueness=uniqueness,
                pkfk_params={
                    "containment_threshold": cfg.pkfk_containment_threshold,
                    "name_threshold": cfg.pkfk_name_threshold,
                    "key_uniqueness_threshold": cfg.pkfk_key_uniqueness,
                },
                strategy=cfg.discovery_strategy,
                operator_strategies=cfg.operator_strategies,
            )
        self.fit_stats = self.profile.fit_stats
        self.fit_stats.index_seconds = t_index.elapsed
        self.fit_stats.index_breakdown = dict(self.indexes.index_breakdown)
        self.fit_stats.train_seconds = t_train.elapsed
        self.fit_stats.total_seconds = t_total.elapsed
        return self.engine

    # ----------------------------------------------------------- sessions

    def open(
        self,
        lake: DataLake,
        gold_pairs=None,
        shards: int | None = None,
        router=None,
        global_stats: bool = False,
        auto_refresh_threshold: float | None = None,
        fit_workers: int | None = None,
    ):
        """Fit on ``lake`` and return a mutable session.

        The session keeps the fitted system live while the lake churns:
        ``add_table`` / ``add_document`` / ``remove`` / ``update_table``
        maintain the profile and every index incrementally (delta
        sketching, index inserts/deletes with lazy rebuilds) instead of
        refitting, and ``refresh()`` restores full cold-fit equivalence
        (embedder + joint model retrained).

        ``shards=N`` (or an explicit ``router``) partitions the lake into N
        independently-fitted shards and returns a
        :class:`~repro.core.sharding.ShardedLakeSession` instead: shards
        fit concurrently on a thread pool, mutations route to the owning
        shard, and SRQL queries scatter-gather across shards.
        ``global_stats=True`` merges document-frequency / BM25 corpus
        statistics across shards for byte-parity with a monolithic fit
        (see the sharding module docs for the freshness trade-off).
        ``auto_refresh_threshold`` arms the embedding-drift auto-refresh on
        the session (each shard of a sharded session refreshes itself on
        its own schedule).
        """
        if shards is not None or router is not None:
            from repro.core.sharding import ShardedLakeSession

            return ShardedLakeSession(
                lake,
                config=self.config,
                shards=shards,
                router=router,
                global_stats=global_stats,
                gold_pairs=gold_pairs,
                auto_refresh_threshold=auto_refresh_threshold,
                fit_workers=fit_workers,
            )
        from repro.core.session import LakeSession

        self.fit(lake, gold_pairs=gold_pairs)
        return LakeSession(
            self, lake, gold_pairs=gold_pairs,
            auto_refresh_threshold=auto_refresh_threshold,
        )

    @staticmethod
    def load(path):
        """Reopen a catalog written by ``session.save(path)`` — no refit.

        Returns a live :class:`~repro.core.session.LakeSession` or
        :class:`~repro.core.sharding.ShardedLakeSession` (whichever was
        saved) restored entirely from disk: profiles, every index
        structure, embedder/pipeline state, and the engine's fit-time
        strategy decisions come back verbatim, and any write-ahead journal
        tail left by the previous writer is replayed. Top-k results for
        all six SRQL primitives match the saved session byte-for-byte.
        """
        from repro.store import load_catalog

        return load_catalog(path)

    # ------------------------------------------------------------ internals

    def _train_joint(self, gold_pairs) -> None:
        cfg = self.config
        generator = TrainingDatasetGenerator(
            self.profile,
            self.indexes,
            sample_fraction=cfg.sample_fraction,
            top_k=cfg.top_k_probe,
            gold_relative_threshold=cfg.gold_relative_threshold,
            seed=cfg.seed,
            extra_lfs=cfg.extra_labeling_functions,
        )
        dataset, self.labeling_report = generator.generate(gold_pairs=gold_pairs)
        if not dataset:
            return

        encodings = {
            de_id: sketch.encoding
            for de_id, sketch in {**self.profile.documents,
                                  **self.profile.columns}.items()
        }
        batches = MiniBatchGenerator(
            dataset, batch_fraction=cfg.batch_fraction, seed=cfg.seed
        )
        triplet_gen = TripletGenerator(
            encodings,
            positive_threshold=cfg.positive_threshold,
            hard_sampling=cfg.hard_sampling,
        )
        self.joint_model = JointRepresentationModel(
            in_dim=2 * cfg.embedding_dim,
            hidden=cfg.hidden_layers,
            out_dim=cfg.joint_dim,
            seed=cfg.seed,
        )
        trainer = JointTrainer(
            self.joint_model,
            margin=cfg.margin,
            lr=cfg.learning_rate,
            max_epochs=cfg.max_epochs,
        )
        self.training_result = trainer.train(batches, triplet_gen)

        doc_vectors = self.joint_model.embed_all(
            {d: s.encoding for d, s in self.profile.documents.items()}
        )
        text_columns = set(self.profile.text_discovery_columns())
        col_vectors = self.joint_model.embed_all(
            {c: s.encoding for c, s in self.profile.columns.items()
             if c in text_columns}
        )
        self.indexes.index_joint_embeddings(doc_vectors, col_vectors)
