"""Training Dataset Generator: weak supervision over CMDL's indexes (§4.1).

Workflow (paper Figure 3):

1. sample documents and text-discovery columns (default 10% each);
2. form the Cartesian product of the samples as candidate (doc, col) pairs;
3. label each pair with four index-backed labeling functions — semantic
   (solo-embedding ANN), syntactic (LSH Ensemble containment), keyword over
   content, keyword over metadata — each a top-k probe: vote 1 if the
   column is among the document's top-k matches, else 0;
4. optionally measure LF accuracies on a tiny gold set and switch off LFs
   below 50% of the best (the augmented preprocessing phase);
5. fit the generative label model on pairs with at least one positive vote;
6. train the discriminative model on pair features against the
   probabilistic labels and emit (doc, col, relatedness) training rows.

One index probe per document labels *all* sampled columns for that
document, which keeps the quadratic pair space cheap (paper §4.1's
practicality argument); probes are cached accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.indexes import IndexCatalog
from repro.core.profiler import Profile
from repro.utils.rng import ensure_rng
from repro.weaklabel.discriminative import LogisticRegression
from repro.weaklabel.generative import GenerativeLabelModel
from repro.weaklabel.gold import prune_labeling_functions
from repro.weaklabel.lf import LabelingFunction, apply_labeling_functions


@dataclass
class TrainingPair:
    """One labeled (document, column) training row."""

    doc_id: str
    column_id: str
    relatedness: float


@dataclass
class LabelingReport:
    """Diagnostics of a training-dataset generation run."""

    sampled_docs: int = 0
    sampled_columns: int = 0
    candidate_pairs: int = 0
    positive_pairs: int = 0
    lf_accuracies: dict[str, float] = field(default_factory=dict)
    disabled_lfs: list[str] = field(default_factory=list)
    generative_accuracies: dict[str, float] = field(default_factory=dict)


class TrainingDatasetGenerator:
    """Builds the weakly-supervised (doc, col, relatedness) dataset."""

    def __init__(
        self,
        profile: Profile,
        indexes: IndexCatalog,
        sample_fraction: float = 0.1,
        top_k: int = 10,
        min_probe_score: float = 0.05,
        gold_relative_threshold: float = 0.5,
        seed: int = 0,
        extra_lfs: list[LabelingFunction] | None = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0,1], got {sample_fraction}")
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self.profile = profile
        self.indexes = indexes
        self.sample_fraction = sample_fraction
        self.top_k = top_k
        self.min_probe_score = min_probe_score
        self.gold_relative_threshold = gold_relative_threshold
        self.seed = seed
        self.extra_lfs = list(extra_lfs or [])
        self._probe_cache: dict[tuple[str, str], dict[str, float]] = {}

    # -------------------------------------------------------------- probes

    def _probe(self, lf_name: str, doc_id: str) -> dict[str, float]:
        """Top-k column matches for a document under one signal, cached.

        Matches whose index score falls below ``min_probe_score`` are
        dropped (the paper's low-quality-match elimination).
        """
        key = (lf_name, doc_id)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached
        sketch = self.profile.documents[doc_id]
        if lf_name == "semantic":
            hits = self.indexes.column_solo.query(sketch.encoding, k=self.top_k)
        elif lf_name == "syntactic":
            hits = self.indexes.column_containment.query(
                sketch.signature, k=self.top_k
            )
        elif lf_name == "content_keyword":
            hits = self.indexes.column_content.search(
                sketch.content_bow.terms, k=self.top_k
            )
        elif lf_name == "metadata_keyword":
            hits = self.indexes.column_metadata.search(
                sketch.metadata_bow.terms, k=self.top_k
            )
        else:
            raise ValueError(f"unknown labeling probe {lf_name!r}")
        result = {
            col: score for col, score in hits if score >= self.min_probe_score
        }
        self._probe_cache[key] = result
        return result

    def build_labeling_functions(self) -> list[LabelingFunction]:
        """The four index-backed LFs (plus any user-supplied extras)."""

        def make(lf_name: str) -> LabelingFunction:
            def fn(pair: tuple[str, str]) -> int:
                doc_id, col_id = pair
                return 1 if col_id in self._probe(lf_name, doc_id) else 0

            return LabelingFunction(lf_name, fn)

        lfs = [
            make("semantic"),
            make("syntactic"),
            make("content_keyword"),
            make("metadata_keyword"),
        ]
        lfs.extend(self.extra_lfs)
        return lfs

    # ------------------------------------------------------------ sampling

    def _sample(self, rng: np.random.Generator) -> tuple[list[str], list[str]]:
        docs = sorted(self.profile.documents)
        cols = sorted(self.profile.text_discovery_columns())
        if not docs or not cols:
            # One modality absent: no cross-modal pairs can be labeled.
            return [], []
        n_docs = max(1, int(round(len(docs) * self.sample_fraction)))
        n_cols = max(1, int(round(len(cols) * self.sample_fraction)))
        doc_sample = sorted(
            docs[i] for i in rng.choice(len(docs), size=n_docs, replace=False)
        )
        col_sample = sorted(
            cols[i] for i in rng.choice(len(cols), size=n_cols, replace=False)
        )
        return doc_sample, col_sample

    # ------------------------------------------------------------ generate

    def generate(
        self,
        gold_pairs: list[tuple[str, str, int]] | None = None,
    ) -> tuple[list[TrainingPair], LabelingReport]:
        """Produce the training dataset (and a diagnostics report).

        ``gold_pairs`` — optional tiny ground truth [(doc, col, 0/1), ...]
        enabling the gold-label LF pruning phase.
        """
        rng = ensure_rng(self.seed)
        report = LabelingReport()
        doc_sample, col_sample = self._sample(rng)
        report.sampled_docs = len(doc_sample)
        report.sampled_columns = len(col_sample)

        lfs = self.build_labeling_functions()
        if gold_pairs:
            points = [(d, c) for d, c, _ in gold_pairs]
            labels = [y for _, _, y in gold_pairs]
            report.lf_accuracies = prune_labeling_functions(
                lfs, points, labels,
                relative_threshold=self.gold_relative_threshold,
            )
            report.disabled_lfs = [lf.name for lf in lfs if not lf.enabled]

        pairs = [(d, c) for d in doc_sample for c in col_sample]
        report.candidate_pairs = len(pairs)
        if not pairs:
            return [], report
        votes = apply_labeling_functions(lfs, pairs)

        # The generative model only considers pairs with >= 1 positive vote
        # (paper §4.1, practicality point 4); all-negative pairs keep the
        # hard label 0 and a sparse representation.
        positive_mask = (votes == 1).any(axis=1)
        report.positive_pairs = int(positive_mask.sum())

        relatedness = np.zeros(len(pairs))
        if positive_mask.any():
            generative = GenerativeLabelModel(seed=self.seed)
            probs = generative.fit_predict_proba(votes[positive_mask])
            # Calibrate the posteriors into relatedness *degrees* spread over
            # (0, 1]: with only four LFs, a 1-of-4 vote row gets a small
            # absolute posterior even when it is among the most related pairs
            # in the sample. The rank transform (ties averaged) preserves the
            # generative ordering while making the fixed downstream
            # thresholds (triplet positive cut at 0.5) meaningful.
            from scipy.stats import rankdata

            ranks = rankdata(probs, method="average")
            calibrated = np.zeros(len(pairs))
            calibrated[positive_mask] = ranks / len(ranks)
            relatedness = calibrated.copy()
            report.generative_accuracies = {
                lf.name: float(acc)
                for lf, acc in zip(lfs, generative.lf_accuracies)
            }

            # Discriminative stage: generalise from features to soft labels.
            # The discriminator extends relatedness to pairs the index probes
            # never voted on; for vote-backed pairs the calibrated generative
            # label is at least as trustworthy, so the final degree is the
            # maximum of the two on those pairs and the (capped) prediction
            # elsewhere.
            features = np.vstack([self._pair_features(d, c) for d, c in pairs])
            discriminative = LogisticRegression(seed=self.seed)
            discriminative.fit(features, relatedness)
            predicted = discriminative.predict_proba(features)
            relatedness = np.where(
                positive_mask,
                np.maximum(predicted, calibrated),
                np.minimum(predicted, 0.49),
            )

        dataset = [
            TrainingPair(doc_id=d, column_id=c, relatedness=float(r))
            for (d, c), r in zip(pairs, relatedness)
        ]
        return dataset, report

    # ------------------------------------------------------------ features

    def _pair_features(self, doc_id: str, col_id: str) -> np.ndarray:
        """Discriminative features: interaction of the two 200-d encodings."""
        d = self.profile.documents[doc_id].encoding
        c = self.profile.columns[col_id].encoding
        return np.concatenate([d * c, np.abs(d - c)])
