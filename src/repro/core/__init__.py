"""CMDL core: the paper's primary contribution.

Modules map to the architecture of Figure 2:

* :mod:`repro.core.tagging` — heuristic-based column tagging.
* :mod:`repro.core.profiler` — sketches and statistics per DE.
* :mod:`repro.core.indexes` — the indexing framework over all sketch types.
* :mod:`repro.core.labeling` — weak-supervised training dataset generator.
* :mod:`repro.core.joint` — joint representation learning (triplet loss).
* :mod:`repro.core.joinability` / :mod:`repro.core.pkfk` /
  :mod:`repro.core.unionability` — structured discovery tasks.
* :mod:`repro.core.ekg` — Enterprise Knowledge Graph builder.
* :mod:`repro.core.discovery` — SRQL-style query interface.
* :mod:`repro.core.system` — the :class:`CMDL` facade wiring it all.
* :mod:`repro.core.session` — mutable lake sessions (incremental
  add/remove/refresh with delta index maintenance).
"""

from repro.core.system import CMDL, CMDLConfig
from repro.core.session import LakeSession, open_lake
from repro.core.discovery import DiscoveryEngine, DiscoveryResultSet
from repro.core.profiler import FitStats, Profile, Profiler
from repro.core.indexes import IndexCatalog

__all__ = [
    "CMDL",
    "CMDLConfig",
    "LakeSession",
    "open_lake",
    "DiscoveryEngine",
    "DiscoveryResultSet",
    "FitStats",
    "Profile",
    "Profiler",
    "IndexCatalog",
]
