"""Enterprise Knowledge Graph builder (paper §5.1).

Materialises the discovered relationships as a typed, weighted graph over
column, table, and document nodes. An edge is materialised when its
relationship strength exceeds a threshold or the target is within the
source's top-k (paper §2.1). Structural edges (column -> its table) tie the
two node levels together.
"""

from __future__ import annotations

import networkx as nx

from repro.core.profiler import COLUMN, DOCUMENT, Profile
from repro.core.relationships import NodeKind, RelationType


class EKG:
    """Typed multigraph with convenience accessors."""

    def __init__(self) -> None:
        self.graph = nx.MultiDiGraph()

    def add_node(self, node_id: str, kind: NodeKind) -> None:
        self.graph.add_node(node_id, kind=kind.value)

    def add_edge(self, source: str, target: str, rel_type: RelationType,
                 weight: float) -> None:
        self.graph.add_edge(source, target, key=rel_type.value,
                            rel_type=rel_type.value, weight=weight)

    def neighbors(
        self, node_id: str, rel_type: RelationType | None = None
    ) -> list[tuple[str, str, float]]:
        """(neighbor, rel_type, weight) triples from ``node_id``."""
        if node_id not in self.graph:
            return []
        out = []
        for _, target, data in self.graph.out_edges(node_id, data=True):
            if rel_type is not None and data["rel_type"] != rel_type.value:
                continue
            out.append((target, data["rel_type"], data["weight"]))
        out.sort(key=lambda t: (-t[2], t[0]))
        return out

    def combined_strength(self, source: str, target: str) -> float:
        """Normalised sum of relationship weights between a DE pair (§5.2)."""
        if source not in self.graph:
            return 0.0
        weights = [
            data["weight"]
            for _, t, data in self.graph.out_edges(source, data=True)
            if t == target
        ]
        if not weights:
            return 0.0
        return sum(weights) / len(weights)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()


class EKGBuilder:
    """Builds the EKG from a profile and the discovery components."""

    def __init__(self, profile: Profile, top_k: int = 5, threshold: float = 0.5):
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self.profile = profile
        self.top_k = top_k
        self.threshold = threshold

    def build(
        self,
        join_discovery=None,
        pkfk_links=None,
        union_discovery=None,
        doc_column_links: dict[str, list[tuple[str, float]]] | None = None,
    ) -> EKG:
        """Assemble the graph from whichever components are supplied."""
        ekg = EKG()
        for doc_id in self.profile.documents:
            ekg.add_node(doc_id, NodeKind.DOCUMENT)
        for table_name, column_ids in self.profile.table_columns.items():
            ekg.add_node(table_name, NodeKind.TABLE)
            for cid in column_ids:
                ekg.add_node(cid, NodeKind.COLUMN)
                # Structural membership edge ties column to table level.
                ekg.add_edge(cid, table_name, RelationType.NAME_SIMILARITY, 1.0)

        if join_discovery is not None:
            for cid in self.profile.columns:
                sketch = self.profile.columns[cid]
                if sketch.tags is None or not sketch.tags.join_discovery:
                    continue
                for other, score in join_discovery.joinable_columns(
                    cid, k=self.top_k, min_score=self.threshold
                ):
                    ekg.add_edge(cid, other,
                                 RelationType.CONTENT_CONTAINMENT, score)

        if pkfk_links is not None:
            for link in pkfk_links:
                pk_table = self.profile.columns[link.pk_column].table_name
                fk_table = self.profile.columns[link.fk_column].table_name
                ekg.add_edge(pk_table, fk_table, RelationType.PKFK, link.score)
                ekg.add_edge(fk_table, pk_table, RelationType.PKFK, link.score)

        if union_discovery is not None:
            for table_name in self.profile.table_columns:
                for other, score in union_discovery.unionable_tables(
                    table_name, k=self.top_k
                ):
                    if score >= self.threshold:
                        ekg.add_edge(table_name, other,
                                     RelationType.UNIONABLE, score)

        if doc_column_links:
            for doc_id, hits in doc_column_links.items():
                for col_id, score in hits[: self.top_k]:
                    ekg.add_edge(doc_id, col_id,
                                 RelationType.DOC_COLUMN_JOINT, score)
                    ekg.add_edge(col_id, doc_id,
                                 RelationType.DOC_COLUMN_JOINT, score)
        return ekg
