"""Mutable lake sessions: incremental add / remove / refresh over a fitted CMDL.

The paper presents discovery over a *living* data lake, but ``CMDL.fit`` is a
snapshot: any churn means a full refit. :class:`LakeSession` keeps a fitted
system live while the lake changes — the always-on posture HTAP systems take
toward mixing updates with analytics (Polynesia, arXiv:2103.00798) — by
maintaining delta paths through every layer:

* the **profiler** sketches only the new DEs (``profile_one`` /
  ``profile_table``; ``Profile.add_one`` / ``drop_one``);
* the **index catalog** inserts/deletes per DE — BM25 inverted indexes
  update their corpus statistics exactly (tombstoned postings, compacted
  past 25% churn), the LSH / LSH-Ensemble structures insert into the
  matching size partition and repartition lazily, the RP-forest ANN indexes
  scan fresh points exactly until a re-plant, and the interval index
  rebuilds its arrays lazily;
* the **engine** is invalidated under the generation-counter protocol
  (:meth:`DiscoveryEngine.invalidate`): the candidate generator, structured
  scorers, cached PK-FK sweeps, and ``"auto"`` strategy choices are all
  rebuilt lazily on the next query, so SRQL memoisation and the candidate
  caches can never serve stale results across mutations.

``engine.discover()`` keeps working unchanged mid-session. **Parity
contract:** value-set, name, numeric, and keyword semantics match a cold
``CMDL.fit`` on the final lake exactly (document bags are re-synced when the
corpus-wide df filter shifts). Embedding-based scores use the embedder *as
trained at fit time*: with a corpus-independent embedder (e.g.
:class:`~repro.embed.hashing_embedder.HashingEmbedder` via
``CMDLConfig.embedder``) incremental results are identical to a cold fit for
all six primitives; with the default corpus-trained blended embedder (or a
trained joint model) embeddings are frozen until :meth:`LakeSession.refresh`
retrains them.
"""

from __future__ import annotations

from repro.core.discovery import DiscoveryEngine
from repro.core.profiler import DESketch
from repro.core.system import CMDL, CMDLConfig
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table


def open_lake(
    lake: DataLake,
    config: CMDLConfig | None = None,
    gold_pairs: list[tuple[str, str, int]] | None = None,
) -> "LakeSession":
    """Fit a CMDL system over ``lake`` and return a mutable session.

    Top-level convenience for ``CMDL(config).open(lake)``::

        from repro import open_lake, Q, Table

        session = open_lake(lake)
        session.discover(Q.joinable("drugs", top_n=2))
        session.add_table(Table.from_dict("trials", {...}))
        session.discover(Q.joinable("trials", top_n=2))   # no refit
    """
    return CMDL(config).open(lake, gold_pairs=gold_pairs)


class LakeSession:
    """A fitted CMDL system plus the mutable lake it serves.

    Obtained from :meth:`CMDL.open` / :func:`open_lake`. All mutators keep
    the profile, every index, and the engine's caches consistent; queries
    between mutations are served without any refitting.
    """

    def __init__(
        self,
        cmdl: CMDL,
        lake: DataLake,
        gold_pairs: list[tuple[str, str, int]] | None = None,
    ):
        if cmdl.engine is None or cmdl.profiler is None:
            raise RuntimeError(
                "LakeSession needs a fitted CMDL; use CMDL.open(lake) or "
                "repro.open_lake(lake)"
            )
        self.cmdl = cmdl
        self.lake = lake
        #: Gold pairs the system was fitted with; :meth:`refresh` reuses
        #: them so a refreshed session equals a cold fit with the same gold.
        self.gold_pairs = gold_pairs
        #: Mutations applied since open()/refresh() (diagnostic).
        self.mutations = 0

    # ------------------------------------------------------------- access

    @property
    def engine(self) -> DiscoveryEngine:
        """The live engine (replaced wholesale by :meth:`refresh`)."""
        return self.cmdl.engine

    @property
    def profile(self):
        return self.cmdl.profile

    @property
    def indexes(self):
        return self.cmdl.indexes

    @property
    def profiler(self):
        return self.cmdl.profiler

    @property
    def generation(self) -> int:
        """The engine's cache generation; bumps on every mutation."""
        return self.engine.generation

    def discover(self, query):
        """Run one SRQL query against the current lake state."""
        return self.engine.discover(query)

    def discover_batch(self, queries):
        """Run an SRQL workload against the current lake state."""
        return self.engine.discover_batch(queries)

    # ----------------------------------------------------------- mutators

    def add_table(self, table: Table) -> None:
        """Add one table: sketch its columns, delta-index them, invalidate."""
        self.lake.add_table(table)
        self._register_table(table)
        self._commit()

    def add_document(self, document: Document) -> None:
        """Add one document (re-syncing df-filtered bags), invalidate."""
        self.lake.add_document(document)
        self._resync_documents()
        self._commit()

    def add_documents(self, documents: list[Document]) -> None:
        """Add several documents with a single re-sync and invalidation."""
        self.lake.add_documents(documents)
        self._resync_documents()
        self._commit()

    def remove(self, name: str) -> None:
        """Remove a table (by name) or a document (by id) from the session.

        Table and document ids share no namespace in practice (column DEs
        are ``table.column``); tables are checked first.
        """
        if self.lake.has_table(name):
            self._unregister_table(name)
            self.lake.remove_table(name)
        elif self.lake.has_document(name):
            self.indexes.remove_document(name)
            self.profile.drop_one(name)
            self.lake.remove_document(name)
            self._resync_documents()
        else:
            raise KeyError(
                f"lake {self.lake.name!r} has no table or document {name!r}"
            )
        self._commit()

    def update_table(self, table: Table) -> None:
        """Replace an existing table in place (schema/type changes included).

        Equivalent to ``remove`` + ``add_table`` under one invalidation;
        raises ``KeyError`` if no table of that name exists.
        """
        if table.name not in self.lake.table_names:
            raise KeyError(
                f"lake {self.lake.name!r} has no table {table.name!r} to update"
            )
        self._unregister_table(table.name)
        self.lake.remove_table(table.name)
        self.lake.add_table(table)
        self._register_table(table)
        self._commit()

    def refresh(self, gold_pairs=None) -> DiscoveryEngine:
        """Full refit on the current lake: cold-fit equivalence restored.

        Retrains the embedder (when corpus-trained) and the joint model,
        rebuilds every index from scratch, and replaces the engine. The
        gold pairs the session was opened with are reused unless new ones
        are passed (which become the session's gold from then on). The
        generation counter stays monotonic across the swap so stale
        :class:`~repro.core.srql.executor.ExecutionStats` remain detectable.
        """
        if gold_pairs is not None:
            self.gold_pairs = gold_pairs
        generation = self.engine.generation
        self.cmdl.fit(self.lake, gold_pairs=self.gold_pairs)
        engine = self.cmdl.engine
        engine.generation = generation + 1
        if engine.candidates is not None:
            # Keep the stamp invariant: the freshly-built generator belongs
            # to the generation the refreshed engine now carries.
            engine.candidates.generation = engine.generation
        self.mutations = 0
        return engine

    # ---------------------------------------------------------- internals

    def _commit(self) -> None:
        self.mutations += 1
        self.engine.invalidate("all")

    def _register_table(self, table: Table) -> None:
        # Cold fit registers every table, including zero-column ones.
        self.profile.table_columns.setdefault(table.name, [])
        for sketch in self.profiler.profile_table(table):
            self.profile.add_one(sketch)
            self.indexes.insert_column(sketch)
            self.engine.uniqueness[sketch.de_id] = table.column(
                sketch.column_name
            ).uniqueness
            self._joint_index_column(sketch)

    def _unregister_table(self, name: str) -> None:
        for col_id in list(self.profile.columns_of_table(name)):
            self.indexes.remove_column(col_id)
            self.profile.drop_one(col_id)
            self.engine.uniqueness.pop(col_id, None)
        self.profile.table_columns.pop(name, None)

    def _resync_documents(self) -> None:
        """Re-fit the document pipeline and re-sketch drifted documents.

        The pipeline's df filter is corpus-wide, so adding or removing a
        document can change *other* documents' bags of words; only those
        whose bag actually changed are re-sketched and re-indexed, which
        keeps the keyword/containment paths byte-identical to a cold fit on
        the current corpus.
        """
        pipeline = self.profiler.pipeline
        pipeline.fit(d.text for d in self.lake.documents)
        for document in self.lake.documents:
            old = self.profile.documents.get(document.doc_id)
            bow = None
            if old is not None:
                bow = pipeline.transform(document.text)
                if bow.terms == old.content_bow.terms:
                    continue
                self.indexes.remove_document(document.doc_id)
                self.profile.drop_one(document.doc_id)
            sketch = self.profiler.profile_one(document, content=bow)
            self.profile.add_one(sketch)
            self.indexes.insert_document(sketch)
            self._joint_index_document(sketch)

    def _joint_index_column(self, sketch: DESketch) -> None:
        """Delta-index a new column's joint vector under the frozen model
        (text-discovery columns only, matching the fit-time population)."""
        if self.cmdl.joint_model is None or not self.indexes.has_joint:
            return
        if sketch.tags is None or not sketch.tags.text_discovery:
            return
        vector = self.cmdl.joint_model.embed(sketch.encoding[None, :])[0]
        self.indexes.insert_joint_column(sketch.de_id, vector)

    def _joint_index_document(self, sketch: DESketch) -> None:
        if self.cmdl.joint_model is None or self.indexes.doc_joint is None:
            return
        vector = self.cmdl.joint_model.embed(sketch.encoding[None, :])[0]
        self.indexes.insert_joint_document(sketch.de_id, vector)
