"""Mutable lake sessions: incremental add / remove / refresh over a fitted CMDL.

The paper presents discovery over a *living* data lake, but ``CMDL.fit`` is a
snapshot: any churn means a full refit. :class:`LakeSession` keeps a fitted
system live while the lake changes — the always-on posture HTAP systems take
toward mixing updates with analytics (Polynesia, arXiv:2103.00798) — by
maintaining delta paths through every layer:

* the **profiler** sketches only the new DEs (``profile_one`` /
  ``profile_table``; ``Profile.add_one`` / ``drop_one``);
* the **index catalog** inserts/deletes per DE — BM25 inverted indexes
  update their corpus statistics exactly (tombstoned postings, compacted
  past 25% churn), the LSH / LSH-Ensemble structures insert into the
  matching size partition and repartition lazily, the RP-forest ANN indexes
  scan fresh points exactly until a re-plant, and the interval index
  rebuilds its arrays lazily;
* the **engine** is invalidated under the generation-counter protocol
  (:meth:`DiscoveryEngine.invalidate`): the candidate generator, structured
  scorers, cached PK-FK sweeps, and ``"auto"`` strategy choices are all
  rebuilt lazily on the next query, so SRQL memoisation and the candidate
  caches can never serve stale results across mutations.

``engine.discover()`` keeps working unchanged mid-session. **Parity
contract:** value-set, name, numeric, and keyword semantics match a cold
``CMDL.fit`` on the final lake exactly (document bags are re-synced when the
corpus-wide df filter shifts). Embedding-based scores use the embedder *as
trained at fit time*: with a corpus-independent embedder (e.g.
:class:`~repro.embed.hashing_embedder.HashingEmbedder` via
``CMDLConfig.embedder``) incremental results are identical to a cold fit for
all six primitives; with the default corpus-trained blended embedder (or a
trained joint model) embeddings are frozen until :meth:`LakeSession.refresh`
retrains them.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path

from repro.core.discovery import DiscoveryEngine
from repro.core.profiler import DESketch
from repro.core.system import CMDL, CMDLConfig
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Table


def open_lake(
    lake: DataLake | str | Path,
    config: CMDLConfig | None = None,
    gold_pairs: list[tuple[str, str, int]] | None = None,
    shards: int | None = None,
    router=None,
    global_stats: bool = False,
    auto_refresh_threshold: float | None = None,
    fit_workers: int | None = None,
):
    """Fit a CMDL system over ``lake`` and return a mutable session.

    Top-level convenience for ``CMDL(config).open(lake)``::

        from repro import open_lake, Q, Table

        session = open_lake(lake)
        session.discover(Q.joinable("drugs", top_n=2))
        session.add_table(Table.from_dict("trials", {...}))
        session.discover(Q.joinable("trials", top_n=2))   # no refit

    ``shards=N`` partitions the lake into N independently-fitted shards and
    returns a :class:`~repro.core.sharding.ShardedLakeSession` with the
    same mutation/query surface::

        session = open_lake(lake, shards=4)
        session.discover(Q.joinable("drugs", top_n=2))    # scatter-gather

    Passing a path instead of a lake reopens a catalog previously written
    by ``session.save(path)`` — no refitting; every fit-time option was
    saved with the catalog, so none may be passed here::

        session = open_lake("catalog/")
    """
    if isinstance(lake, (str, Path)):
        if config is not None or shards is not None or router is not None:
            raise ValueError(
                "open_lake(path) reopens a saved catalog; fit-time options "
                "(config/shards/router) were persisted with it and cannot "
                "be overridden here"
            )
        from repro.store import load_catalog

        return load_catalog(lake)
    return CMDL(config).open(
        lake,
        gold_pairs=gold_pairs,
        shards=shards,
        router=router,
        global_stats=global_stats,
        auto_refresh_threshold=auto_refresh_threshold,
        fit_workers=fit_workers,
    )


class LakeSession:
    """A fitted CMDL system plus the mutable lake it serves.

    Obtained from :meth:`CMDL.open` / :func:`open_lake`. All mutators keep
    the profile, every index, and the engine's caches consistent; queries
    between mutations are served without any refitting.
    """

    def __init__(
        self,
        cmdl: CMDL,
        lake: DataLake,
        gold_pairs: list[tuple[str, str, int]] | None = None,
        auto_refresh_threshold: float | None = None,
    ):
        if cmdl.engine is None or cmdl.profiler is None:
            raise RuntimeError(
                "LakeSession needs a fitted CMDL; use CMDL.open(lake) or "
                "repro.open_lake(lake)"
            )
        self.cmdl = cmdl
        self.lake = lake
        #: Gold pairs the system was fitted with; :meth:`refresh` reuses
        #: them so a refreshed session equals a cold fit with the same gold.
        self.gold_pairs = gold_pairs
        #: Mutations applied since open()/refresh() (diagnostic).
        self.mutations = 0
        #: When set, every mutation checks :meth:`drift` against this bound
        #: and triggers :meth:`refresh` once exceeded — the session retrains
        #: its frozen embedder on its own schedule as churn accumulates.
        self.auto_refresh_threshold = auto_refresh_threshold
        if auto_refresh_threshold is not None and not (
            0.0 <= auto_refresh_threshold <= 1.0
        ):
            raise ValueError(
                "auto_refresh_threshold must be in [0, 1] (an OOV rate), "
                f"got {auto_refresh_threshold!r}"
            )
        self._fit_vocabulary: set[str] = self._profile_vocabulary()
        #: Post-fit DE id -> its distinct terms. Keyed per DE so removals
        #: and replacements prune their contribution: drift always reflects
        #: the DEs *currently* in the lake that the fit never saw.
        self._post_fit_terms: dict[str, frozenset[str]] = {}
        #: Bound :class:`~repro.store.catalog.LakeStore` once :meth:`save`
        #: has written (or :func:`repro.open_lake` has reopened) a catalog.
        self._store = None

    # ------------------------------------------------------------- access

    @property
    def engine(self) -> DiscoveryEngine:
        """The live engine (replaced wholesale by :meth:`refresh`)."""
        return self.cmdl.engine

    @property
    def profile(self):
        return self.cmdl.profile

    @property
    def indexes(self):
        return self.cmdl.indexes

    @property
    def profiler(self):
        return self.cmdl.profiler

    @property
    def generation(self) -> int:
        """The engine's cache generation; bumps on every mutation."""
        return self.engine.generation

    def discover(self, query):
        """Run one SRQL query against the current lake state."""
        return self.engine.discover(query)

    def discover_batch(self, queries):
        """Run an SRQL workload against the current lake state."""
        return self.engine.discover_batch(queries)

    # -------------------------------------------------------------- drift

    def drift(self) -> float:
        """Embedding drift: OOV rate of post-fit DEs vs the fit vocabulary.

        Lake sessions keep the corpus-trained embedder frozen between
        :meth:`refresh` calls, so DEs added since the fit are embedded with
        vectors that never saw their vocabulary. This metric is the
        fraction of *distinct* terms across the post-fit DEs still in the
        lake (content + metadata bags; removed or replaced DEs stop
        counting) that are out-of-vocabulary w.r.t. the fit-time
        vocabulary — 0.0 right after a fit/refresh, rising toward 1.0 as
        mutations introduce novel language. With a corpus-independent
        embedder (the parity config) drift is harmless to scores, but it
        still measures how far the lake has moved from the fitted corpus.
        """
        oov, total = self._drift_counts()
        return oov / total if total else 0.0

    def _drift_counts(self) -> tuple[int, int]:
        """(OOV terms, total terms) over live post-fit DEs — the
        aggregation unit sharded sessions sum across shards."""
        if not self._post_fit_terms:
            return 0, 0
        terms: set[str] = set().union(*self._post_fit_terms.values())
        if not terms:
            return 0, 0
        oov = len(terms - self._fit_vocabulary)
        return oov, len(terms)

    def _profile_vocabulary(self) -> set[str]:
        """Every term the fit embedded (content + metadata bags, all DEs)."""
        vocabulary: set[str] = set()
        profile = self.cmdl.profile
        for sketch in {**profile.documents, **profile.columns}.values():
            vocabulary.update(sketch.content_bow.terms)
            vocabulary.update(sketch.metadata_bow.terms)
        return vocabulary

    def _track_post_fit(self, sketch: DESketch) -> None:
        self._post_fit_terms[sketch.de_id] = frozenset(
            set(sketch.content_bow.terms) | set(sketch.metadata_bow.terms)
        )

    def _untrack_post_fit(self, de_id: str) -> None:
        self._post_fit_terms.pop(de_id, None)

    # ----------------------------------------------------------- mutators

    def add_table(self, table: Table) -> None:
        """Add one table: sketch its columns, delta-index them, invalidate."""
        with self._journal("add_table", {"table": table}):
            self.lake.add_table(table)
            self._register_table(table)
            self._commit()

    def add_document(self, document: Document) -> None:
        """Add one document (re-syncing df-filtered bags), invalidate."""
        with self._journal("add_documents", {"documents": [document]}):
            self.lake.add_document(document)
            self._resync_documents()
            self._track_post_fit(self.profile.documents[document.doc_id])
            self._commit()

    def add_documents(self, documents: list[Document]) -> None:
        """Add several documents with a single re-sync and invalidation."""
        with self._journal("add_documents", {"documents": list(documents)}):
            self.lake.add_documents(documents)
            self._resync_documents()
            for document in documents:
                self._track_post_fit(self.profile.documents[document.doc_id])
            self._commit()

    def remove(self, name: str) -> None:
        """Remove a table (by name) or a document (by id) from the session.

        Table and document ids share no namespace in practice (column DEs
        are ``table.column``); tables are checked first.
        """
        with self._journal("remove", {"name": name}):
            if self.lake.has_table(name):
                self._unregister_table(name)
                self.lake.remove_table(name)
            elif self.lake.has_document(name):
                self.indexes.remove_document(name)
                self.profile.drop_one(name)
                self.lake.remove_document(name)
                self._untrack_post_fit(name)
                self._resync_documents()
            else:
                raise KeyError(
                    f"lake {self.lake.name!r} has no table or document {name!r}"
                )
            self._commit()

    def update_table(self, table: Table) -> None:
        """Replace an existing table in place (schema/type changes included).

        Equivalent to ``remove`` + ``add_table`` under one invalidation;
        raises ``KeyError`` if no table of that name exists.
        """
        with self._journal("update_table", {"table": table}):
            if table.name not in self.lake.table_names:
                raise KeyError(
                    f"lake {self.lake.name!r} has no table {table.name!r} "
                    "to update"
                )
            self._unregister_table(table.name)
            self.lake.remove_table(table.name)
            self.lake.add_table(table)
            self._register_table(table)
            self._commit()

    def refresh(self, gold_pairs=None) -> DiscoveryEngine:
        """Full refit on the current lake: cold-fit equivalence restored.

        Retrains the embedder (when corpus-trained) and the joint model,
        rebuilds every index from scratch, and replaces the engine. The
        gold pairs the session was opened with are reused unless new ones
        are passed (which become the session's gold from then on). The
        generation counter stays monotonic across the swap so stale
        :class:`~repro.core.srql.executor.ExecutionStats` remain detectable.
        """
        with self._journal(
            "refresh",
            {"with_gold": gold_pairs is not None, "gold_pairs": gold_pairs},
        ):
            if gold_pairs is not None:
                self.gold_pairs = gold_pairs
            generation = self.engine.generation
            self.cmdl.fit(self.lake, gold_pairs=self.gold_pairs)
            engine = self.cmdl.engine
            engine.generation = generation + 1
            if engine.candidates is not None:
                # Keep the stamp invariant: the freshly-built generator
                # belongs to the generation the refreshed engine carries.
                engine.candidates.generation = engine.generation
            self.mutations = 0
            self._fit_vocabulary = self._profile_vocabulary()
            self._post_fit_terms = {}
        return engine

    # -------------------------------------------------------- persistence

    def save(self, path: str | Path | None = None):
        """Write (or checkpoint) this session's durable catalog.

        The first call needs a ``path`` and full-writes the catalog; the
        session stays bound to it, journaling every subsequent mutation.
        Later calls checkpoint the bound catalog — folding the journal tail
        into the data tables incrementally — or, given a *different* path,
        rebind with a fresh full write. Returns the catalog path.
        """
        from repro.store import LakeStore

        if self._store is not None and (
            path is None or Path(path) == self._store.path
        ):
            self._store.checkpoint()
            return self._store.path
        if path is None:
            raise ValueError(
                "this session has no bound catalog; pass save(path=...)"
            )
        LakeStore.create(path, self)
        return self._store.path

    def close(self) -> None:
        """Release the bound catalog's file handles (idempotent).

        Any journal tail not yet folded by a checkpoint stays durable on
        disk — reopening the catalog replays it — so closing with a save
        pending loses nothing.
        """
        if self._store is not None:
            self._store.close()
            self._store = None

    def serve(self, backend: str = "thread", **kwargs):
        """Wrap this lake in a concurrent :class:`~repro.serve.LakeServer`.

        ``backend="thread"`` serves the live session in place (the session
        stays yours to close). ``backend="process"`` checkpoints the bound
        catalog, closes this session, and serves the catalog directory
        from a worker process — the server becomes the sole writer;
        requires a prior :meth:`save`.
        """
        from repro.serve.server import LakeServer

        if backend == "process":
            if self._store is None:
                raise ValueError(
                    "serve(backend='process') serves the saved catalog: "
                    "call save(path) first"
                )
            path = self._store.path
            self._store.checkpoint()
            self.close()
            return LakeServer(path, backend="process", **kwargs)
        return LakeServer(self, backend=backend, **kwargs)

    def __enter__(self) -> "LakeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _journal(self, op: str, payload: dict):
        """Write-ahead journal scope for one mutation (no-op when no
        catalog is bound)."""
        if self._store is None:
            return nullcontext()
        return self._store.journal_scope(op, payload)

    # ---------------------------------------------------------- internals

    def _commit(self) -> None:
        self.mutations += 1
        self.engine.invalidate("all")
        if (
            self.auto_refresh_threshold is not None
            and self.drift() > self.auto_refresh_threshold
        ):
            # Churn introduced enough novel vocabulary: retrain now. The
            # refresh resets the drift trackers, so this cannot recurse.
            self.refresh()

    def _register_table(self, table: Table) -> None:
        # Cold fit registers every table, including zero-column ones.
        self.profile.table_columns.setdefault(table.name, [])
        for sketch in self.profiler.profile_table(table):
            self.profile.add_one(sketch)
            self.indexes.insert_column(sketch)
            self.engine.uniqueness[sketch.de_id] = table.column(
                sketch.column_name
            ).uniqueness
            self._joint_index_column(sketch)
            self._track_post_fit(sketch)

    def _unregister_table(self, name: str) -> None:
        for col_id in list(self.profile.columns_of_table(name)):
            self.indexes.remove_column(col_id)
            self.profile.drop_one(col_id)
            self.engine.uniqueness.pop(col_id, None)
            self._untrack_post_fit(col_id)
        self.profile.table_columns.pop(name, None)

    def _resync_documents(self) -> int:
        """Re-fit the document pipeline and re-sketch drifted documents.

        The pipeline's df filter is corpus-wide, so adding or removing a
        document can change *other* documents' bags of words; only those
        whose bag actually changed are re-sketched and re-indexed, which
        keeps the keyword/containment paths byte-identical to a cold fit on
        the current corpus. (When the pipeline's filter is *pinned* — the
        sharded global-stats mode — the fit call is a no-op and only
        documents whose bag changed under the pinned filter are touched.)
        Returns the number of documents (re-)sketched, so callers — the
        sharded session syncing sibling shards after a corpus-wide filter
        shift — can tell whether this shard actually changed.
        """
        pipeline = self.profiler.pipeline
        pipeline.fit(d.text for d in self.lake.documents)
        changed = 0
        for document in self.lake.documents:
            old = self.profile.documents.get(document.doc_id)
            bow = None
            if old is not None:
                bow = pipeline.transform(document.text)
                if bow.terms == old.content_bow.terms:
                    continue
                self.indexes.remove_document(document.doc_id)
                self.profile.drop_one(document.doc_id)
            sketch = self.profiler.profile_one(document, content=bow)
            self.profile.add_one(sketch)
            self.indexes.insert_document(sketch)
            self._joint_index_document(sketch)
            if sketch.de_id in self._post_fit_terms:
                # A post-fit document re-sketched under a shifted df filter:
                # keep its drift contribution in step with its live bag.
                self._track_post_fit(sketch)
            changed += 1
        return changed

    def _joint_index_column(self, sketch: DESketch) -> None:
        """Delta-index a new column's joint vector under the frozen model
        (text-discovery columns only, matching the fit-time population)."""
        if self.cmdl.joint_model is None or not self.indexes.has_joint:
            return
        if sketch.tags is None or not sketch.tags.text_discovery:
            return
        vector = self.cmdl.joint_model.embed(sketch.encoding[None, :])[0]
        self.indexes.insert_joint_column(sketch.de_id, vector)

    def _joint_index_document(self, sketch: DESketch) -> None:
        if self.cmdl.joint_model is None or self.indexes.doc_joint is None:
            return
        vector = self.cmdl.joint_model.embed(sketch.encoding[None, :])[0]
        self.indexes.insert_joint_document(sketch.de_id, vector)
