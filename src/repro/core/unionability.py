"""Unionable-table discovery: ensemble column scores + bipartite matching.

Per paper §5.1: for each column of the query table, the top-k most
unionable columns are found by an *ensemble* of four similarity measures —
column-name similarity, value set containment, numeric-range overlap, and
semantic (solo-embedding cosine) similarity — combined *before* table
alignment. Candidate tables are then aligned with a maximal bipartite
matching between the two column sets (the TUS algorithm), and the matching
score, normalised by the smaller column count, ranks the candidates.

The individual measures are exposed separately to support the Relative
Recall analysis of Table 5.
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.profiler import Profile
from repro.relational.stats import numeric_overlap
from repro.text.similarity import cached_name_similarity, jaccard_containment

#: The four component measures of the ensemble.
UNION_MEASURES = ("name", "containment", "numeric", "semantic")


class UnionDiscovery:
    """Top-k unionable-table search over a profile.

    ``strategy="indexed"`` generates per-query-column candidates from the
    index-backed :class:`~repro.core.candidates.CandidateGenerator` (one
    probe per ensemble measure) instead of scoring every column of every
    other table; ``strategy="exact"`` is the brute-force oracle. Either way
    candidate tables are aligned with the exact bipartite matching.
    """

    def __init__(
        self,
        profile: Profile,
        weights: dict[str, float] | None = None,
        candidate_k: int = 10,
        candidates: CandidateGenerator | None = None,
        strategy: str | None = None,
    ):
        self.profile = profile
        self.weights = weights or {m: 1.0 for m in UNION_MEASURES}
        unknown = set(self.weights) - set(UNION_MEASURES)
        if unknown:
            raise ValueError(f"unknown union measures: {sorted(unknown)}")
        self.candidate_k = candidate_k
        self.candidates = candidates
        self.strategy = resolve_strategy(strategy, candidates)

    # -------------------------------------------------------- column scores

    def column_scores(self, col_a: str, col_b: str) -> dict[str, float]:
        """All four measure scores for one column pair."""
        sa = self.profile.columns[col_a]
        sb = self.profile.columns[col_b]
        scores = {
            "name": cached_name_similarity(sa.column_name, sb.column_name),
            "containment": max(
                jaccard_containment(sa.value_set, sb.value_set),
                jaccard_containment(sb.value_set, sa.value_set),
            ),
            "numeric": numeric_overlap(sa.numeric, sb.numeric),
            "semantic": self._cosine(sa.content_embedding, sb.content_embedding),
        }
        return scores

    def _combine(self, scores: dict[str, float]) -> float:
        """Weighted mean of precomputed measure scores (CMDL's combination)."""
        total_weight = sum(self.weights.values())
        return sum(self.weights[m] * scores[m] for m in self.weights) / total_weight

    def ensemble_score(self, col_a: str, col_b: str) -> float:
        """Weighted mean of the four measures (CMDL's combination)."""
        return self._combine(self.column_scores(col_a, col_b))

    def single_measure_score(self, col_a: str, col_b: str, measure: str) -> float:
        if measure not in UNION_MEASURES:
            raise ValueError(f"unknown measure {measure!r}")
        return self.column_scores(col_a, col_b)[measure]

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> float:
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    # ---------------------------------------------------------- table query

    def unionable_tables(
        self,
        table_name: str,
        k: int = 10,
        measure: str | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k unionable tables.

        ``measure`` restricts the column scoring to one individual measure
        (Table 5's Relative Recall analysis); None uses the full ensemble.
        """
        if measure is not None and measure not in UNION_MEASURES:
            raise ValueError(f"unknown measure {measure!r}")
        if k <= 0:
            return []
        query_columns = self.profile.columns_of_table(table_name)
        if not query_columns:
            return []

        # Per-query memo: candidate generation and alignment both score the
        # same (query column, other column) pairs, so each pair's 4-measure
        # dict is computed at most once per unionable_tables call.
        score_cache: dict[tuple[str, str], dict[str, float]] = {}

        def pair_measures(a: str, b: str) -> dict[str, float]:
            key = (a, b)
            if key not in score_cache:
                score_cache[key] = self.column_scores(a, b)
            return score_cache[key]

        def pair_score(a: str, b: str) -> float:
            scores = pair_measures(a, b)
            return scores[measure] if measure is not None else self._combine(scores)

        # Candidate generation: per query column, its top-k columns anywhere
        # (exact: scored against every other table; indexed: against the
        # per-measure index probes only). The best pair score observed per
        # candidate table doubles as the visit-order evidence below.
        evidence: dict[str, float] = {}
        all_others = [
            cid for cid in self.profile.columns
            if self.profile.columns[cid].table_name != table_name
        ]
        for qc in query_columns:
            if self.strategy == "indexed":
                # Unsorted is fine: the (-score, id) sort below canonicalises.
                others = self.candidates.union_candidates(qc, k=self.candidate_k)
            else:
                others = all_others
            scored = [(oc, pair_score(qc, oc)) for oc in others]
            scored.sort(key=lambda kv: (-kv[1], kv[0]))
            for oc, s in scored[: self.candidate_k]:
                if s > 0:
                    table = self.profile.columns[oc].table_name
                    evidence[table] = max(evidence.get(table, 0.0), s)

        # Alignment: maximal bipartite matching on the pair-score matrix.
        # Candidates are visited best-evidence-first so the top-k floor
        # rises quickly, and any table whose per-column best-case sum cannot
        # beat the floor is skipped before its matrix is fully scored.
        results: list[tuple[str, float]] = []
        top_scores: list[float] = []  # min-heap of the k best scores so far
        floor = float("-inf")
        for candidate in sorted(evidence, key=lambda t: (-evidence[t], t)):
            score = self._alignment_score(
                query_columns, candidate, pair_score, floor=floor
            )
            if score is None:
                continue  # upper bound below the floor: cannot enter the top-k
            results.append((candidate, score))
            heapq.heappush(top_scores, score)
            if len(top_scores) > k:
                heapq.heappop(top_scores)
            if len(top_scores) == k:
                floor = top_scores[0]
        results.sort(key=lambda kv: (-kv[1], kv[0]))
        return results[:k]

    def _alignment_score(
        self, query_columns, candidate_table, pair_score, floor=float("-inf")
    ) -> float | None:
        """Bipartite alignment score, or ``None`` when early-terminated.

        The matrix is filled row by row while an optimistic upper bound is
        maintained: every matched pair contributes at most its row's best
        score, and unfilled rows at most 1.0 (all four measures live in
        [0, 1]; negative cosines clip to 0 since matching never helps from
        them). As soon as the bound drops *strictly* below ``floor`` — the
        caller's current top-k cutoff — the remaining rows and the matching
        itself are skipped: the table provably cannot enter the top-k.
        """
        cand_columns = self.profile.columns_of_table(candidate_table)
        if not cand_columns:
            # Upper bound is exactly 0.0: prune only when strictly below.
            return 0.0 if floor <= 0.0 else None
        denom = min(len(query_columns), len(cand_columns))
        matrix = np.zeros((len(query_columns), len(cand_columns)))
        best_case = float(len(query_columns))
        for i, qc in enumerate(query_columns):
            for j, cc in enumerate(cand_columns):
                matrix[i, j] = pair_score(qc, cc)
            best_case += max(matrix[i].max(), 0.0) - 1.0
            if best_case / denom < floor:
                return None
        rows, cols = linear_sum_assignment(-matrix)
        matched = matrix[rows, cols]
        return float(matched.sum() / denom)
