"""Unionable-table discovery: ensemble column scores + bipartite matching.

Per paper §5.1: for each column of the query table, the top-k most
unionable columns are found by an *ensemble* of four similarity measures —
column-name similarity, value set containment, numeric-range overlap, and
semantic (solo-embedding cosine) similarity — combined *before* table
alignment. Candidate tables are then aligned with a maximal bipartite
matching between the two column sets (the TUS algorithm), and the matching
score, normalised by the smaller column count, ranks the candidates.

The individual measures are exposed separately to support the Relative
Recall analysis of Table 5.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.profiler import Profile
from repro.relational.stats import numeric_overlap
from repro.text.similarity import jaccard_containment, name_similarity

#: The four component measures of the ensemble.
UNION_MEASURES = ("name", "containment", "numeric", "semantic")


class UnionDiscovery:
    """Top-k unionable-table search over a profile."""

    def __init__(
        self,
        profile: Profile,
        weights: dict[str, float] | None = None,
        candidate_k: int = 10,
    ):
        self.profile = profile
        self.weights = weights or {m: 1.0 for m in UNION_MEASURES}
        unknown = set(self.weights) - set(UNION_MEASURES)
        if unknown:
            raise ValueError(f"unknown union measures: {sorted(unknown)}")
        self.candidate_k = candidate_k

    # -------------------------------------------------------- column scores

    def column_scores(self, col_a: str, col_b: str) -> dict[str, float]:
        """All four measure scores for one column pair."""
        sa = self.profile.columns[col_a]
        sb = self.profile.columns[col_b]
        scores = {
            "name": name_similarity(sa.column_name, sb.column_name),
            "containment": max(
                jaccard_containment(sa.value_set, sb.value_set),
                jaccard_containment(sb.value_set, sa.value_set),
            ),
            "numeric": numeric_overlap(sa.numeric, sb.numeric),
            "semantic": self._cosine(sa.content_embedding, sb.content_embedding),
        }
        return scores

    def ensemble_score(self, col_a: str, col_b: str) -> float:
        """Weighted mean of the four measures (CMDL's combination)."""
        scores = self.column_scores(col_a, col_b)
        total_weight = sum(self.weights.values())
        return sum(self.weights[m] * scores[m] for m in self.weights) / total_weight

    def single_measure_score(self, col_a: str, col_b: str, measure: str) -> float:
        if measure not in UNION_MEASURES:
            raise ValueError(f"unknown measure {measure!r}")
        return self.column_scores(col_a, col_b)[measure]

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> float:
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    # ---------------------------------------------------------- table query

    def unionable_tables(
        self,
        table_name: str,
        k: int = 10,
        measure: str | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k unionable tables.

        ``measure`` restricts the column scoring to one individual measure
        (Table 5's Relative Recall analysis); None uses the full ensemble.
        """
        query_columns = self.profile.columns_of_table(table_name)
        if not query_columns:
            return []

        def pair_score(a: str, b: str) -> float:
            if measure is None:
                return self.ensemble_score(a, b)
            return self.single_measure_score(a, b, measure)

        # Candidate generation: per query column, its top-k columns anywhere.
        candidates: set[str] = set()
        others = [
            cid for cid in self.profile.columns
            if self.profile.columns[cid].table_name != table_name
        ]
        for qc in query_columns:
            scored = [(oc, pair_score(qc, oc)) for oc in others]
            scored.sort(key=lambda kv: (-kv[1], kv[0]))
            for oc, s in scored[: self.candidate_k]:
                if s > 0:
                    candidates.add(self.profile.columns[oc].table_name)

        # Alignment: maximal bipartite matching on the pair-score matrix.
        results = []
        for candidate in sorted(candidates):
            score = self._alignment_score(query_columns, candidate, pair_score)
            results.append((candidate, score))
        results.sort(key=lambda kv: (-kv[1], kv[0]))
        return results[:k]

    def _alignment_score(self, query_columns, candidate_table, pair_score) -> float:
        cand_columns = self.profile.columns_of_table(candidate_table)
        if not cand_columns:
            return 0.0
        matrix = np.zeros((len(query_columns), len(cand_columns)))
        for i, qc in enumerate(query_columns):
            for j, cc in enumerate(cand_columns):
                matrix[i, j] = pair_score(qc, cc)
        rows, cols = linear_sum_assignment(-matrix)
        matched = matrix[rows, cols]
        denom = min(len(query_columns), len(cand_columns))
        return float(matched.sum() / denom) if denom else 0.0
